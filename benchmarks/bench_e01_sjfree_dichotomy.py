"""E1 — Table 1 / Figure 1: the sj-free dichotomy on the paper's examples.

Paper claims (Figure 1 caption, Theorem 7):
* {R, S, T} is a triad of q_triangle; {A, B, C} of q_tripod => NP-complete;
* in q_rats, A dominates R and T, "disarming" the apparent triad => P;
* q_lin is linear => P, solvable by network flow.
"""

from conftest import short_verdict

from repro.query.zoo import q_lin, q_rats, q_triangle, q_tripod
from repro.resilience import resilience_exact, resilience_linear_flow, solve
from repro.structure import classify, find_triad, normalize
from repro.structure.linearity import is_linear
from repro.workloads import random_database_for_query

PAPER_ROWS = {
    "q_triangle": "NPC",
    "q_tripod": "NPC",
    "q_rats": "P",
    "q_lin": "P",
}


def test_figure1_verdicts(benchmark):
    """Classify all four Figure 1 queries; verdicts must match the paper."""

    def run():
        return {
            q.name: short_verdict(classify(q))
            for q in (q_triangle, q_tripod, q_rats, q_lin)
        }

    verdicts = benchmark(run)
    assert verdicts == PAPER_ROWS
    benchmark.extra_info["paper"] = PAPER_ROWS
    benchmark.extra_info["measured"] = verdicts


def test_triangle_triad_detection(benchmark):
    """The triad of q_triangle is exactly its three atoms."""
    triad = benchmark(find_triad, q_triangle)
    assert triad == (0, 1, 2)


def test_rats_domination_disarms_triad(benchmark):
    """After normalization q_rats has no triad (Figure 1 caption)."""

    def run():
        norm = normalize(q_rats)
        return find_triad(norm), norm

    triad, norm = benchmark(run)
    assert triad is None
    flags = norm.relation_flags()
    assert flags["R"] and flags["T"]


def test_qlin_flow_equals_exact(benchmark):
    """q_lin is linear and its flow solver matches exact search."""
    assert is_linear(q_lin)
    dbs = [
        random_database_for_query(q_lin, domain_size=4, density=0.4, seed=s)
        for s in range(10)
    ]

    def run():
        return [resilience_linear_flow(db, q_lin).value for db in dbs]

    flow_values = benchmark(run)
    exact_values = [resilience_exact(db, q_lin).value for db in dbs]
    assert flow_values == exact_values
    benchmark.extra_info["values"] = flow_values


def test_rats_solved_correctly_despite_cycle(benchmark):
    """q_rats (cyclic but easy) solved by the dispatcher, cross-checked."""
    dbs = [
        random_database_for_query(q_rats, domain_size=4, density=0.45, seed=s)
        for s in range(6)
    ]

    def run():
        return [solve(db, q_rats).value for db in dbs]

    values = benchmark(run)
    assert values == [resilience_exact(db, q_rats).value for db in dbs]
