"""E2 — Figure 2 / Propositions 9 & 10: the basic hard queries q_vc, q_chain.

Paper claims:
* RES(q_vc) is NP-complete via VC: (G,k) in VC <=> (D_G,k) in RES(q_vc);
* RES(q_chain) is NP-complete via 3SAT with the Figure 10 gadget;
* hypergraphs vs binary graphs (Figure 2) distinguish the two queries.
"""

from conftest import SAT_FORMULA, UNSAT_FORMULA

from repro.query import BinaryGraph, DualHypergraph
from repro.query.zoo import q_chain, q_vc
from repro.reductions.chain_gadgets import chain_instance
from repro.reductions.vertex_cover import vc_instance
from repro.resilience.exact import resilience_exact, resilience_ilp
from repro.workloads import random_graph


def test_vc_reduction_biconditional(benchmark):
    """rho(q_vc, D_G) equals the vertex-cover number, across graphs."""
    graphs = [random_graph(6, 0.45, seed=s) for s in range(6)]
    graphs = [g for g in graphs if g.edges]

    def run():
        out = []
        for g in graphs:
            inst = vc_instance(g, 0)
            out.append(resilience_exact(inst.database, q_vc).value)
        return out

    rhos = benchmark(run)
    vcs = [g.vertex_cover_number() for g in graphs]
    assert rhos == vcs
    benchmark.extra_info["vertex_covers"] = vcs


def test_chain_gadget_satisfiable(benchmark):
    """Satisfiable psi => rho(D_psi) == k = (n+5)m."""
    inst = chain_instance(SAT_FORMULA)

    def run():
        return resilience_ilp(inst.database, inst.query).value

    rho = benchmark(run)
    assert SAT_FORMULA.is_satisfiable()
    assert rho == inst.k
    benchmark.extra_info["k"] = inst.k
    benchmark.extra_info["gadget_tuples"] = len(inst.database)


def test_chain_gadget_unsatisfiable(benchmark):
    """Unsatisfiable psi => rho(D_psi) == k + 1."""
    inst = chain_instance(UNSAT_FORMULA)

    def run():
        return resilience_ilp(inst.database, inst.query).value

    rho = benchmark(run)
    assert not UNSAT_FORMULA.is_satisfiable()
    assert rho == inst.k + 1
    benchmark.extra_info["k"] = inst.k


def test_figure2_representations(benchmark):
    """Figure 2: hypergraph and binary graph of q_vc and q_chain."""

    def run():
        return (
            DualHypergraph(q_vc),
            BinaryGraph(q_vc),
            DualHypergraph(q_chain),
            BinaryGraph(q_chain),
        )

    h_vc, b_vc, h_chain, b_chain = benchmark(run)
    # q_vc: hyperedges x (atoms R(x), S) and y (S, R(y)).
    assert h_vc.hyperedges["x"] == frozenset({0, 1})
    assert h_vc.hyperedges["y"] == frozenset({1, 2})
    # binary graph of q_vc: loops at x and y, S edge x -> y.
    assert ("x", "R") in b_vc.unary_loops and ("y", "R") in b_vc.unary_loops
    # q_chain binary graph: x -R-> y -R-> z.
    assert ("x", "y", "R", False) in b_chain.edges
    assert ("y", "z", "R", False) in b_chain.edges
