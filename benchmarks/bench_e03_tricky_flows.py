"""E3 — Figure 3 / Propositions 12 & 13: PTIME queries needing modified flow.

Paper claims:
* RES(q_ACconf) is in P (R-tuples never optimal; bipartite vertex cover);
* RES(q_A3perm_R) is in P via the 2-way-pair flow graph — notably it
  *contains* the hard q_chain pattern yet stays easy (Figure 3 caption).
"""

from repro.query.zoo import q_A3perm_R, q_ACconf, q_chain
from repro.resilience.exact import resilience_exact
from repro.resilience.flow_special import solve_qACconf, solve_qA3perm_R
from repro.structure import classify, Verdict
from repro.workloads import random_database_for_query

SEEDS = range(10)


def test_qACconf_flow_agrees(benchmark):
    dbs = [
        random_database_for_query(q_ACconf, domain_size=5, density=0.4, seed=s)
        for s in SEEDS
    ]

    def run():
        return [solve_qACconf(db).value for db in dbs]

    flow = benchmark(run)
    exact = [resilience_exact(db, q_ACconf).value for db in dbs]
    assert flow == exact
    benchmark.extra_info["values"] = flow


def test_qA3perm_R_flow_agrees(benchmark):
    dbs = [
        random_database_for_query(q_A3perm_R, domain_size=5, density=0.35, seed=s)
        for s in SEEDS
    ]

    def run():
        return [solve_qA3perm_R(db).value for db in dbs]

    flow = benchmark(run)
    exact = [resilience_exact(db, q_A3perm_R).value for db in dbs]
    assert flow == exact


def test_qA3perm_R_contains_chain_but_easy(benchmark):
    """Figure 3 caption: q_A3perm_R contains q_chain and is still in P."""

    def run():
        return classify(q_A3perm_R), classify(q_chain)

    res_perm, res_chain = benchmark(run)
    assert res_perm.verdict == Verdict.P
    assert res_chain.verdict == Verdict.NPC
    # The chain pattern R(x,y), R(y,z) is literally a sub-body.
    args = [a.args for a in q_A3perm_R.atoms if a.relation == "R"]
    assert ("x", "y") in args and ("y", "z") in args


def test_qACconf_flow_speed(benchmark):
    """Time the Prop 12 algorithm on a larger instance (polynomial)."""
    db = random_database_for_query(q_ACconf, domain_size=20, density=0.25, seed=0)

    def run():
        return solve_qACconf(db).value

    value = benchmark(run)
    benchmark.extra_info["tuples"] = len(db)
    benchmark.extra_info["rho"] = value
