"""E4 — Example 11 / Definition 16: domination with self-joins.

Paper claims:
* Example 11: in q_sj1_rats the sj-free domination rule would make R
  exogenous and force Gamma = {A(1), A(5)}, but {R(1,2)} (size 1) is a
  smaller contingency set — old domination is unsound with self-joins;
* Example 17: under Definition 16, A does not dominate R in q1 but does
  in q2; S is dominated in both;
* Proposition 18: normalization by SJ-domination preserves resilience.
"""

from repro.db import Database, DBTuple
from repro.query.zoo import q_dom_ex17_1, q_dom_ex17_2, q_sj1_rats
from repro.resilience.exact import resilience_exact
from repro.structure import normalize, sj_dominates
from repro.workloads import random_database_for_query


def _example_11_db():
    db = Database()
    db.add_all("A", [(1,), (5,)])
    db.add_all("R", [(1, 2), (2, 3), (3, 1), (5, 1), (2, 5)])
    return db


def test_example_11_exact_values(benchmark):
    """rho = 1 endogenous, rho = 2 with R frozen (the paper's numbers)."""

    def run():
        db = _example_11_db()
        rho_endo = resilience_exact(db, q_sj1_rats)
        frozen = db.copy()
        frozen.set_exogenous("R")
        rho_exo = resilience_exact(frozen, q_sj1_rats)
        return rho_endo, rho_exo

    rho_endo, rho_exo = benchmark(run)
    assert rho_endo.value == 1
    assert rho_endo.contingency_set == frozenset({DBTuple("R", (1, 2))})
    assert rho_exo.value == 2
    benchmark.extra_info["paper"] = "Gamma={R(1,2)} vs {A(1),A(5)}"


def test_example_17_sj_domination(benchmark):
    """Definition 16 verdicts on Example 17's q1 and q2."""

    def run():
        return (
            sj_dominates(q_dom_ex17_1, "A", "R"),
            sj_dominates(q_dom_ex17_2, "A", "R"),
            sj_dominates(q_dom_ex17_1, "A", "S"),
            sj_dominates(q_dom_ex17_2, "A", "S"),
        )

    q1_ar, q2_ar, q1_as, q2_as = benchmark(run)
    assert not q1_ar and q2_ar
    assert q1_as and q2_as


def test_proposition_18_preserves_resilience(benchmark):
    """Normalization never changes rho (checked over random databases)."""
    query = q_dom_ex17_2
    norm = normalize(query)
    dbs = [
        random_database_for_query(query, domain_size=4, density=0.45, seed=s)
        for s in range(8)
    ]

    def run():
        return [
            (resilience_exact(db, query).value, resilience_exact(db, norm).value)
            for db in dbs
        ]

    pairs = benchmark(run)
    assert all(a == b for a, b in pairs)
