"""E5 — Figure 5 / Theorem 37: the two-R-atom dichotomy table.

Regenerates every row of Figure 5 (chain / confluence / permutation /
REP, PTIME and NP-hard columns) through the classifier, and checks the
P rows' flow solvers against exact search.
"""

from conftest import short_verdict

from repro.query import parse_query
from repro.query.zoo import ALL_QUERIES, PAPER_VERDICTS
from repro.resilience import resilience_exact, solve
from repro.structure import classify
from repro.workloads import random_database_for_query

# Figure 5, row by row: (label, query text, paper verdict)
FIGURE_5 = [
    ("chain-bare", "R(x,y), R(y,z)", "NPC"),
    ("chain-abc", "A(x), R(x,y), B(y), R(y,z), C(z)", "NPC"),
    ("conf-AC", "A(x), R(x,y), R(z,y), C(z)", "P"),
    ("conf-AB-C", "A(x), R(x,y), B(y), R(z,y), C(z)", "P"),
    ("conf-exo-path", "R(x,y), H^x(x,z), R(z,y)", "NPC"),
    ("perm-bare", "R(x,y), R(y,x)", "P"),
    ("perm-A", "A(x), R(x,y), R(y,x)", "P"),
    ("perm-AB", "A(x), R(x,y), R(y,x), B(y)", "NPC"),
    ("rep-z3", "R(x,x), R(x,y), A(y)", "P"),
    ("rep-loops", "R(x,x), S(x,y), R(y,y)", "NPC"),
]


def test_figure5_table(benchmark):
    """Every Figure 5 row classified; all verdicts must match the paper."""

    def run():
        return [
            (label, short_verdict(classify(parse_query(text))))
            for (label, text, _paper) in FIGURE_5
        ]

    rows = benchmark(run)
    mismatches = [
        (label, got, paper)
        for (label, got), (_, _, paper) in zip(rows, FIGURE_5)
        if got != paper
    ]
    assert not mismatches, mismatches
    benchmark.extra_info["rows"] = {label: got for label, got in rows}


def test_full_zoo_against_paper(benchmark):
    """All 48 named queries with stated verdicts."""

    def run():
        return {
            name: short_verdict(classify(ALL_QUERIES[name]))
            for name in sorted(PAPER_VERDICTS)
        }

    verdicts = benchmark(run)
    assert verdicts == PAPER_VERDICTS
    benchmark.extra_info["agreement"] = f"{len(verdicts)}/{len(PAPER_VERDICTS)}"


def test_p_rows_flow_vs_exact(benchmark):
    """The PTIME rows of Figure 5 solved by dispatch == exact search."""
    p_queries = [
        ALL_QUERIES[name]
        for name in ("q_ACconf", "q_perm", "q_Aperm", "q_z3")
    ]
    dbs = {
        q.name: [
            random_database_for_query(q, domain_size=4, density=0.45, seed=s)
            for s in range(5)
        ]
        for q in p_queries
    }

    def run():
        return {
            q.name: [solve(db, q).value for db in dbs[q.name]]
            for q in p_queries
        }

    fast = benchmark(run)
    for q in p_queries:
        exact = [resilience_exact(db, q).value for db in dbs[q.name]]
        assert fast[q.name] == exact, q.name


def test_decision_procedure_is_fast(benchmark):
    """Theorem 37 promises a PTIME classification algorithm; time it on
    the whole zoo."""

    def run():
        return sum(1 for name in ALL_QUERIES if classify(ALL_QUERIES[name]))

    count = benchmark(run)
    assert count == len(ALL_QUERIES)
