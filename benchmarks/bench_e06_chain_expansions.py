"""E6 — Figure 6 / Proposition 29, Lemmas 52-54: qchain's unary expansions.

Paper claim: all 8 expansions of q_chain with unary relations
(A at x, B at y, C at z, in any combination) are NP-complete, via
adapted 3SAT gadgets (Figures 10-12).
"""

import pytest
from conftest import SAT_FORMULA, UNSAT_FORMULA, short_verdict

from repro.reductions.chain_gadgets import CHAIN_EXPANSIONS, chain_instance
from repro.resilience.exact import resilience_ilp
from repro.structure import classify

EXPANSIONS = sorted(CHAIN_EXPANSIONS)


def test_all_expansions_classified_hard(benchmark):
    def run():
        return {
            unaries or "(plain)": short_verdict(classify(CHAIN_EXPANSIONS[unaries]))
            for unaries in EXPANSIONS
        }

    verdicts = benchmark(run)
    assert all(v == "NPC" for v in verdicts.values()), verdicts
    benchmark.extra_info["verdicts"] = verdicts


@pytest.mark.parametrize("unaries", EXPANSIONS, ids=lambda u: u or "plain")
def test_expansion_gadget_biconditional(benchmark, unaries):
    """sat(psi) <=> rho(D_psi) <= k, for each expansion's gadget."""

    def run():
        sat_inst = chain_instance(SAT_FORMULA, unaries)
        unsat_inst = chain_instance(UNSAT_FORMULA, unaries)
        return (
            resilience_ilp(sat_inst.database, sat_inst.query).value,
            sat_inst.k,
            resilience_ilp(unsat_inst.database, unsat_inst.query).value,
            unsat_inst.k,
        )

    rho_sat, k_sat, rho_unsat, k_unsat = benchmark(run)
    assert rho_sat <= k_sat
    assert rho_unsat > k_unsat
    benchmark.extra_info["sat"] = f"rho={rho_sat} k={k_sat}"
    benchmark.extra_info["unsat"] = f"rho={rho_unsat} k={k_unsat}"
