"""E7 — Figure 7 / Section 8.2: the three 3-confluence queries.

Paper claims:
* RES(q_AC3conf) is NP-complete (Prop 39, Max 2SAT);
* RES(q_TS3conf) is in P (Prop 41, forced tuples + flow);
* RES(q_AS3conf) is open.
"""

from conftest import short_verdict

from repro.query.zoo import q_AC3conf, q_AS3conf, q_TS3conf
from repro.resilience.exact import resilience_exact
from repro.resilience.flow_special import solve_qTS3conf
from repro.structure import classify
from repro.workloads import random_database_for_query


def test_figure7_verdicts(benchmark):
    def run():
        return {
            q.name: short_verdict(classify(q))
            for q in (q_AC3conf, q_TS3conf, q_AS3conf)
        }

    verdicts = benchmark(run)
    assert verdicts == {
        "q_AC3conf": "NPC",
        "q_TS3conf": "P",
        "q_AS3conf": "OPEN",
    }
    benchmark.extra_info["verdicts"] = verdicts


def test_ts3conf_flow_vs_exact(benchmark):
    """Proposition 41's algorithm agrees with exact search."""
    dbs = [
        random_database_for_query(q_TS3conf, domain_size=4, density=0.4, seed=s)
        for s in range(10)
    ]

    def run():
        return [solve_qTS3conf(db, q_TS3conf).value for db in dbs]

    flow = benchmark(run)
    exact = [resilience_exact(db, q_TS3conf).value for db in dbs]
    assert flow == exact
    benchmark.extra_info["values"] = flow


def test_ts3conf_forced_tuples(benchmark):
    """Prop 41's key step: R(a,b) with T(a,b), S(a,b) present is forced."""
    from repro.db import Database, DBTuple

    def run():
        db = Database()
        db.declare("T", 2, exogenous=True)
        db.declare("S", 2, exogenous=True)
        db.add("T", 1, 2)
        db.add("S", 1, 2)
        db.add("R", 1, 2)
        return resilience_exact(db, q_TS3conf)

    res = benchmark(run)
    assert res.value == 1
    assert res.contingency_set == frozenset({DBTuple("R", (1, 2))})
