"""E8 — Section 8.4: the 3-permutation-plus-R family.

Paper claims:
* q_A3perm_R and q_Swx3perm_R are in P (Props 13/44, modified flows);
* q_Sxy3perm_R, q_AC3perm_R, q_AB3perm_R, q_SxyBC3perm_R are NP-complete
  (Props 45/46);
* q_ASxy3perm_R, q_SxyB3perm_R, q_SxyC3perm_R remain open.
"""

from conftest import short_verdict

from repro.query.zoo import ALL_QUERIES, q_A3perm_R, q_Swx3perm_R
from repro.resilience.exact import resilience_exact
from repro.resilience.flow_special import solve_qA3perm_R, solve_qSwx3perm_R
from repro.structure import classify
from repro.workloads import random_database_for_query

FAMILY = {
    "q_A3perm_R": "P",
    "q_Swx3perm_R": "P",
    "q_Sxy3perm_R": "NPC",
    "q_AC3perm_R": "NPC",
    "q_AB3perm_R": "NPC",
    "q_SxyBC3perm_R": "NPC",
    "q_ASxy3perm_R": "OPEN",
    "q_SxyB3perm_R": "OPEN",
    "q_SxyC3perm_R": "OPEN",
}


def test_family_verdicts(benchmark):
    def run():
        return {
            name: short_verdict(classify(ALL_QUERIES[name])) for name in FAMILY
        }

    verdicts = benchmark(run)
    assert verdicts == FAMILY
    benchmark.extra_info["verdicts"] = verdicts


def test_swx_flow_vs_exact(benchmark):
    """Prop 44's modified flow (1-way tuples deletable) vs exact."""
    dbs = [
        random_database_for_query(q_Swx3perm_R, domain_size=5, density=0.3, seed=s)
        for s in range(10)
    ]

    def run():
        return [solve_qSwx3perm_R(db).value for db in dbs]

    flow = benchmark(run)
    exact = [resilience_exact(db, q_Swx3perm_R).value for db in dbs]
    assert flow == exact


def test_a3perm_flow_vs_exact(benchmark):
    dbs = [
        random_database_for_query(q_A3perm_R, domain_size=5, density=0.35, seed=s)
        for s in range(10)
    ]

    def run():
        return [solve_qA3perm_R(db).value for db in dbs]

    flow = benchmark(run)
    exact = [resilience_exact(db, q_A3perm_R).value for db in dbs]
    assert flow == exact
