"""E9 — Figures 8/18/19, Examples 58-62: Independent Join Paths.

Paper claims:
* the Example 58/59 databases are IJPs for q_vc / q_triangle;
* the Example 60 database is an IJP for z5 — as printed it fails
  condition 5 (documented erratum: a ninth witness (5,2,3)); the
  single-tuple-repaired variant passes;
* Example 61's database is *not* an IJP (condition 4 fails);
* the Appendix C.2 enumeration rediscovers the triangle IJP among the
  21147 partitions of 9 constants (Example 62).
"""

from repro.ijp import (
    check_ijp,
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
    ijp_search,
)
from repro.query.zoo import q_Aperm, q_perm, q_triangle, q_vc


def test_example_58(benchmark):
    q, db, pair = example_58_qvc()
    report = benchmark(check_ijp, db, q, *pair)
    assert report.is_ijp and report.resilience == 1


def test_example_59(benchmark):
    q, db, pair = example_59_triangle()
    report = benchmark(check_ijp, db, q, *pair)
    assert report.is_ijp and report.resilience == 2


def test_example_60_erratum_and_fix(benchmark):
    def run():
        q, db, pair = example_60_z5()
        printed = check_ijp(db, q, *pair)
        q, db, pair = example_60_z5_corrected()
        fixed = check_ijp(db, q, *pair)
        return printed, fixed

    printed, fixed = benchmark(run)
    assert not printed.is_ijp and printed.resilience == 4  # rho matches paper
    assert printed.conditions[:4] == [True] * 4            # only cond 5 fails
    assert fixed.is_ijp
    benchmark.extra_info["erratum"] = "printed DB has extra witness (5,2,3)"


def test_example_61_rejected(benchmark):
    q, db, pair = example_61_failed()
    report = benchmark(check_ijp, db, q, *pair)
    assert not report.is_ijp
    assert report.conditions[3] is False  # condition 4, as the paper argues


def test_search_rediscovers_triangle_ijp(benchmark):
    """Example 62: Bell enumeration over 3 canonical copies of q_triangle."""

    def run():
        return ijp_search(q_triangle, max_joins=3, partition_budget=30000)

    report = benchmark(run)
    assert report is not None
    benchmark.extra_info["endpoints"] = repr(report.pair)


def test_search_empty_on_ptime_queries(benchmark):
    """Conjecture 49's converse: PTIME queries should admit no IJP.

    Holds for q_perm / q_Aperm (and q_z3, q_TS3conf, q_A3perm_R — see
    tests).  Note: it does NOT hold for q_ACconf and q_Swx3perm_R —
    Definition 48 as printed admits degenerate databases for those
    PTIME queries, a documented reproduction finding (EXPERIMENTS.md,
    E9): Conjecture 49 needs additional gluing conditions.
    """

    def run():
        return (
            ijp_search(q_perm, max_joins=2, partition_budget=5000),
            ijp_search(q_Aperm, max_joins=1),
        )

    perm, aperm = benchmark(run)
    assert perm is None and aperm is None


def test_search_certifies_hard_queries(benchmark):
    """IJPs found for NP-complete queries beyond the paper's examples."""
    from repro.query.zoo import q_ABperm, q_AC3conf, q_cfp, q_chain

    def run():
        return [
            ijp_search(q_chain, max_joins=2) is not None,
            ijp_search(q_ABperm, max_joins=3, partition_budget=50000) is not None,
            ijp_search(q_cfp, max_joins=2, partition_budget=20000) is not None,
            ijp_search(q_AC3conf, max_joins=2, partition_budget=20000) is not None,
        ]

    found = benchmark(run)
    assert all(found)
