"""E10 — Section 5 / Theorems 24 & 25: triads with self-joins; pseudo-linearity.

Paper claims:
* triads imply NP-completeness for arbitrary CQs (Theorem 24), in
  particular the self-join variations of q_rats / q_brats whose triads
  consist of three R-atoms (Prop 23, Lemmas 50/51);
* no triad => endogenous atoms linearly connected (Theorem 25);
* Lemma 21: self-join variations can only be harder — the tagged
  lifting preserves resilience exactly.
"""

from conftest import SAT_FORMULA

from repro.query.zoo import (
    ALL_QUERIES,
    q_sj1_brats,
    q_sj1_rats,
    q_triangle,
    q_triangle_sj2,
)
from repro.reductions.rats_gadgets import sj1_brats_instance, sj1_rats_instance
from repro.reductions.sj_variation import sj_variation_instance
from repro.resilience.exact import resilience_exact, resilience_ilp
from repro.structure import classify, has_triad, normalize, Verdict
from repro.structure.linearity import no_triad_implies_pseudo_linear
from repro.workloads import random_database_for_query


def test_sj_variation_triads_survive(benchmark):
    """q_sj1_rats / q_sj1_brats keep their triads after normalization."""

    def run():
        return (
            has_triad(normalize(q_sj1_rats)),
            has_triad(normalize(q_sj1_brats)),
            classify(q_sj1_rats).verdict,
            classify(q_sj1_brats).verdict,
        )

    t1, t2, v1, v2 = benchmark(run)
    assert t1 and t2
    assert v1 == Verdict.NPC and v2 == Verdict.NPC


def test_lemma_50_gadget(benchmark):
    """The collapsed triangle gadget for q_sj1_rats reaches k exactly."""
    inst = sj1_rats_instance(SAT_FORMULA)

    def run():
        return resilience_ilp(inst.database, inst.query).value

    rho = benchmark(run)
    assert rho == inst.k
    benchmark.extra_info["k"] = inst.k


def test_lemma_51_gadget(benchmark):
    inst = sj1_brats_instance(SAT_FORMULA)

    def run():
        return resilience_ilp(inst.database, inst.query).value

    rho = benchmark(run)
    assert rho == inst.k


def test_lemma_21_lifting(benchmark):
    """The tagged lifting preserves resilience exactly."""
    dbs = [
        random_database_for_query(q_triangle, domain_size=4, density=0.5, seed=s)
        for s in range(5)
    ]

    def run():
        out = []
        for db in dbs:
            base = resilience_exact(db, q_triangle).value
            inst = sj_variation_instance(q_triangle, q_triangle_sj2, db, base)
            out.append(
                (base, resilience_exact(inst.database, q_triangle_sj2).value)
            )
        return out

    pairs = benchmark(run)
    assert all(a == b for a, b in pairs)


def test_theorem_25_over_zoo(benchmark):
    """No triad => pseudo-linear, across every named query."""

    def run():
        return all(
            no_triad_implies_pseudo_linear(normalize(q))
            for q in ALL_QUERIES.values()
        )

    assert benchmark(run)
