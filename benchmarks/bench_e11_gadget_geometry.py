"""E11 — Figures 10-12, 14, 16: gadget geometry and thresholds.

Regenerates the size formulas and per-gadget costs the figures annotate:

* variable cycles of 2m tuples with minimum hitting m (Figure 10);
* clause gadgets costing 5 when satisfied, 6 otherwise (Figures 10-12);
* q_ABperm variable rings costing 3m (Figure 14), k = (3n+5)m;
* triangle rings of 12m solid + 12m dotted edges, 12m RGB triangles,
  minimum 6m (Figure 16), k = 6mn.

Note on constants: Proposition 10's prose states k = (2n+5)m; the
Figure 10 construction as drawn yields k = (n+5)m, which is what we
implement and verify (the biconditional is unaffected).
"""

from conftest import SAT_FORMULA, UNSAT_FORMULA

from repro.query.evaluation import witness_tuple_sets
from repro.query.zoo import q_chain, q_triangle
from repro.reductions.chain_gadgets import chain_instance
from repro.reductions.perm_gadgets import abperm_instance
from repro.reductions.triangle import triangle_instance
from repro.resilience.exact import resilience_ilp
from repro.workloads import CNFFormula


def test_variable_cycle_geometry(benchmark):
    """A lone variable cycle: 2m tuples, minimum hitting set of size m."""
    # A formula whose 4th variable appears in no clause still gets a cycle.
    f = CNFFormula(4, ((1, 2, -3), (-1, 2, 3)))

    def run():
        inst = chain_instance(f)
        # Count cycle tuples of the unused variable 4.
        cycle = [
            t
            for t in inst.database.relations["R"]
            if str(t.values[0]).startswith(("v4_", "nv4_"))
            and str(t.values[1]).startswith(("v4_", "nv4_"))
        ]
        return inst, cycle

    inst, cycle = benchmark(run)
    m = f.num_clauses
    assert len(cycle) == 2 * m
    benchmark.extra_info["cycle_tuples"] = len(cycle)


def test_clause_cost_five_vs_six(benchmark):
    """The 5-vs-6 clause-gadget split drives rho = k vs k+1."""

    def run():
        sat_inst = chain_instance(SAT_FORMULA)
        unsat_inst = chain_instance(UNSAT_FORMULA)
        return (
            resilience_ilp(sat_inst.database, q_chain).value - sat_inst.k,
            resilience_ilp(unsat_inst.database, q_chain).value - unsat_inst.k,
        )

    sat_slack, unsat_slack = benchmark(run)
    assert sat_slack == 0      # every clause satisfied at cost 5
    assert unsat_slack == 1    # exactly one clause pays 6 at the optimum


def test_abperm_threshold_formula(benchmark):
    """Figure 14: k = (3n+5)m and the gadget meets it exactly."""
    inst = abperm_instance(SAT_FORMULA)
    n, m = SAT_FORMULA.num_vars, SAT_FORMULA.num_clauses
    assert inst.k == (3 * n + 5) * m

    def run():
        return resilience_ilp(inst.database, inst.query).value

    rho = benchmark(run)
    assert rho == inst.k
    benchmark.extra_info["k"] = inst.k


def test_triangle_ring_geometry(benchmark):
    """Figure 16: per variable 12m solid + 12m dotted edges and 12m RGB
    triangles; clause gluing adds exactly one triangle per clause."""
    f = SAT_FORMULA
    n, m = f.num_vars, f.num_clauses

    def run():
        inst = triangle_instance(f)
        n_witnesses = len(
            witness_tuple_sets(inst.database, q_triangle, endogenous_only=False)
        )
        return inst, n_witnesses

    inst, n_witnesses = benchmark(run)
    assert inst.k == 6 * m * n
    # 12m triangles per ring + 1 per clause; no spurious ones.
    assert n_witnesses == 12 * m * n + m
    benchmark.extra_info["witnesses"] = n_witnesses
    benchmark.extra_info["expected"] = 12 * m * n + m
