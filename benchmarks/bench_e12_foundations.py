"""E12 — Lemmas 14/15/21, Examples 20/22: foundational machinery.

Paper claims:
* rho of a disconnected query is the minimum over its components
  (Lemma 14), and complexity is governed by the hardest component
  (Lemma 15);
* minimization must precede pattern analysis: Example 22's self-join
  variation of a triad query collapses to a single atom and is trivially
  in P;
* all self-join variations of q_triangle (Example 20) are NP-complete.
"""

from conftest import short_verdict

from repro.db import Database
from repro.query import parse_query, satisfies
from repro.query.zoo import ALL_QUERIES, q_comp, q_ex22_sj
from repro.resilience.exact import resilience_exact
from repro.structure import classify
from repro.workloads import random_database_for_query


def test_lemma_14_component_min_rule(benchmark):
    """rho(q_comp) == min over component resiliences on random data."""
    q1 = parse_query("A(x), R(x,y)")
    q2 = parse_query("R(z,w), B(w)")
    dbs = [
        random_database_for_query(q_comp, domain_size=4, density=0.5, seed=s)
        for s in range(8)
    ]
    dbs = [db for db in dbs if satisfies(db, q_comp)]

    def run():
        out = []
        for db in dbs:
            whole = resilience_exact(db, q_comp).value
            parts = [
                resilience_exact(db, q).value
                for q in (q1, q2)
                if satisfies(db, q)
            ]
            out.append((whole, min(parts)))
        return out

    pairs = benchmark(run)
    assert all(a == b for a, b in pairs)


def test_lemma_15_component_complexity(benchmark):
    """A disconnected query with one hard component is NP-complete."""
    hard = parse_query("R(x,y), R(y,z), S(u,v), A(u)")
    easy = ALL_QUERIES["q_comp"]

    def run():
        return short_verdict(classify(hard)), short_verdict(classify(easy))

    v_hard, v_easy = benchmark(run)
    assert v_hard == "NPC" and v_easy == "P"


def test_example_22_minimization(benchmark):
    """The 4-atom variation is equivalent to R(x,y): trivially in P."""

    def run():
        return classify(q_ex22_sj)

    res = benchmark(run)
    assert short_verdict(res) == "P"
    assert len(res.minimized.atoms) == 1


def test_example_20_variations_hard(benchmark):
    """All self-join variations of the triangle are NP-complete."""

    def run():
        return {
            name: short_verdict(classify(ALL_QUERIES[name]))
            for name in ("q_triangle_sj1", "q_triangle_sj2", "q_triangle_sj3")
        }

    verdicts = benchmark(run)
    assert all(v == "NPC" for v in verdicts.values())
