"""E13 — scaling behaviour behind the "in P" claims.

Times the flow solvers on growing instances (polynomial growth) and the
exact solver on growing *hard*-query gadgets (super-polynomial in the
worst case — here we only demonstrate the flow side stays cheap while
instance sizes grow by an order of magnitude).
"""

import pytest

from repro.query.zoo import q_A3perm_R, q_ACconf, q_chain
from repro.resilience.exact import resilience_ilp
from repro.resilience.flow_special import solve_qACconf, solve_qA3perm_R
from repro.workloads import random_database_for_query

DOMAINS = [8, 16, 24]


@pytest.mark.parametrize("domain", DOMAINS)
def test_qacconf_flow_scaling(benchmark, domain):
    db = random_database_for_query(q_ACconf, domain_size=domain, density=0.25, seed=0)

    def run():
        return solve_qACconf(db).value

    value = benchmark(run)
    benchmark.extra_info["domain"] = domain
    benchmark.extra_info["tuples"] = len(db)
    benchmark.extra_info["rho"] = value


@pytest.mark.parametrize("domain", DOMAINS)
def test_qa3perm_flow_scaling(benchmark, domain):
    db = random_database_for_query(
        q_A3perm_R, domain_size=domain, density=0.2, seed=0
    )

    def run():
        return solve_qA3perm_R(db).value

    value = benchmark(run)
    benchmark.extra_info["domain"] = domain
    benchmark.extra_info["tuples"] = len(db)
    benchmark.extra_info["rho"] = value


@pytest.mark.parametrize("domain", [5, 7, 9])
def test_exact_solver_on_chain(benchmark, domain):
    """ILP on the NP-complete q_chain over random data — tractable at
    these sizes, but with no polynomial guarantee."""
    db = random_database_for_query(q_chain, domain_size=domain, density=0.3, seed=0)

    def run():
        return resilience_ilp(db, q_chain).value

    value = benchmark(run)
    benchmark.extra_info["domain"] = domain
    benchmark.extra_info["tuples"] = len(db)
    benchmark.extra_info["rho"] = value
