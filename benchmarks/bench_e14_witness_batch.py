"""E14 — batch solving over the shared witness-structure engine.

The E5 dichotomy-table suite solves each (query, database) pair twice:
once through dispatch and once through exact search as a cross-check.
:func:`repro.core.solve_batch` amortizes that workload — one dispatch
plan per query, one evaluation index per database, one preprocessed
witness structure (and one result) per distinct pair — so the batch
must beat per-pair :func:`repro.resilience.solve` calls on it, while
returning identical values.
"""

import time

from repro.core import solve_batch
from repro.query.zoo import ALL_QUERIES
from repro.resilience import solve
from repro.resilience.solver import dispatch_plan
from repro.witness import clear_witness_cache, witness_structure
from repro.workloads import random_database_for_query

# The E5 "P rows vs exact" workload: the paper's PTIME queries over
# random databases, every pair solved twice (dispatch + cross-check).
E5_QUERIES = ("q_ACconf", "q_perm", "q_Aperm", "q_z3", "q_chain", "q_sj1_rats")
REPEATS = 2


def _workload():
    pairs = []
    for name in E5_QUERIES:
        q = ALL_QUERIES[name]
        for s in range(5):
            db = random_database_for_query(q, domain_size=6, density=0.4, seed=s)
            pairs.append((db, q))
    return pairs * REPEATS


def _cold():
    clear_witness_cache()
    dispatch_plan.cache_clear()


def test_batch_vs_per_pair(benchmark):
    """solve_batch beats per-pair solve on the E5 workload, same values."""
    pairs = _workload()
    # Warm library imports so neither strategy pays them.
    solve_batch(pairs)

    _cold()
    t0 = time.perf_counter()
    singles = [solve(db, q) for db, q in pairs]
    t_single = time.perf_counter() - t0

    def run():
        _cold()
        return solve_batch(pairs)

    batch = benchmark(run)
    assert batch.values() == [r.value for r in singles]
    speedup = t_single / batch.stats.time_total
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["unique_pairs"] = batch.stats.unique_pairs
    benchmark.extra_info["per_pair_seconds"] = round(t_single, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # Typically 1.3-2x (half the workload is memoized), but the whole
    # run is milliseconds, so on noisy shared CI runners we only gate
    # against a real regression rather than the exact margin.
    assert speedup > 0.5, f"batch dramatically slower: {speedup:.2f}x"


def test_preprocessing_shrinks_structures(benchmark):
    """Reductions must shrink the witness structures of the workload."""
    pairs = _workload()

    def run():
        _cold()
        return solve_batch(pairs).stats

    stats = benchmark(run)
    r = stats.reductions
    assert r.witnesses_final < r.witnesses_raw
    assert r.tuples_final < r.tuples_raw
    benchmark.extra_info["witnesses"] = f"{r.witnesses_raw}->{r.witnesses_final}"
    benchmark.extra_info["tuples"] = f"{r.tuples_raw}->{r.tuples_final}"
    benchmark.extra_info["forced"] = r.forced_tuples
    benchmark.extra_info["dominated"] = r.dominated_tuples


def test_structure_cache_repeated_solves(benchmark):
    """Re-solving a cached pair skips enumeration entirely."""
    q = ALL_QUERIES["q_chain"]
    db = random_database_for_query(q, domain_size=8, density=0.3, seed=7)
    _cold()
    witness_structure(db, q)  # prime

    def run():
        return witness_structure(db, q)

    ws = benchmark(run)
    assert ws.satisfied
