"""E15 — the certified approximate/anytime tier vs exact solving.

Exact resilience is NP-complete for the self-join queries on the hard
side of the dichotomy (Theorem 24), and `bench_e13_scaling` shows where
exact search hits its cliff.  This suite validates the escape hatch
(:mod:`repro.resilience.approx`) on two regimes:

* **bounded cases** — instances exact branch and bound can still
  solve: the approximate interval must *contain* the exact value on
  every pair (certified correctness) while the aggregate wall-clock is
  at least 5x faster;
* **beyond-exact cases** — thousands-of-tuples instances from
  :func:`repro.workloads.hard_scaling_workload` where branch and bound
  does not return in any reasonable time: the approximate tier must
  still produce non-trivial certified intervals, and the anytime
  driver must narrow (never widen) them as its budget grows.
"""

import time

from repro.query.zoo import ALL_QUERIES
from repro.resilience import (
    Budget,
    resilience_anytime,
    resilience_bounds,
    resilience_branch_and_bound,
)
from repro.resilience.exact import is_contingency_set
from repro.witness import WitnessStructure
from repro.workloads import large_random_database

# The bounded regime: sparse q_ac_chain instances around the BnB cliff
# (a few hundred tuples per relation).  BnB still terminates here —
# taking tens to hundreds of milliseconds per pair — while LP + greedy
# answer in single-digit milliseconds.
BOUNDED_QUERY = "q_ac_chain"
BOUNDED_TUPLES = 400
BOUNDED_SEEDS = (0, 1, 2, 3)

SCALE_QUERY = "q_chain"
SCALE_TUPLES = 2000


def _bounded_cases():
    vocab = [ALL_QUERIES[n] for n in ("q_chain", "q_a_chain", "q_ac_chain")]
    q = ALL_QUERIES[BOUNDED_QUERY]
    cases = []
    for seed in BOUNDED_SEEDS:
        db = large_random_database(vocab, n_tuples=BOUNDED_TUPLES, seed=seed)
        cases.append((db, q, WitnessStructure.build(db, q)))
    return cases


def test_certified_containment_and_speedup(benchmark):
    """Acceptance: intervals contain the exact value on every bounded
    pair, at >= 5x aggregate wall-clock speedup over exact BnB."""
    cases = _bounded_cases()
    # Warm the scipy.optimize import so the LP path is not charged for
    # one-time library loading.
    resilience_bounds(*cases[0][:2], structure=cases[0][2])

    t0 = time.perf_counter()
    exact_values = [
        resilience_branch_and_bound(db, q, structure=ws).value
        for db, q, ws in cases
    ]
    t_exact = time.perf_counter() - t0

    def run():
        return [
            resilience_bounds(db, q, structure=ws) for db, q, ws in cases
        ]

    bounded = benchmark(run)
    t_approx = benchmark.stats.stats.mean

    for (db, q, _), interval, value in zip(cases, bounded, exact_values):
        assert interval.lower_bound <= value <= interval.upper_bound
        assert is_contingency_set(db, q, set(interval.contingency_set))
    speedup = t_exact / t_approx
    benchmark.extra_info["pairs"] = len(cases)
    benchmark.extra_info["exact_seconds"] = round(t_exact, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["intervals"] = [r.interval for r in bounded]
    assert speedup >= 5.0, f"approx tier only {speedup:.1f}x faster than BnB"


def test_certified_intervals_beyond_exact_reach(benchmark):
    """On ~2000-tuple q_chain instances (where BnB does not return),
    the approx tier still certifies informative intervals."""
    vocab = [ALL_QUERIES[n] for n in ("q_chain", "q_a_chain", "q_ac_chain")]
    q = ALL_QUERIES[SCALE_QUERY]
    db = large_random_database(vocab, n_tuples=SCALE_TUPLES, seed=0)
    ws = WitnessStructure.build(db, q)

    def run():
        return resilience_bounds(db, q, structure=ws)

    result = benchmark(run)
    n_endogenous = len(db.relations["R"].tuples)
    assert 0 < result.lower_bound <= result.upper_bound < n_endogenous
    assert is_contingency_set(db, q, set(result.contingency_set))
    # The LP lower bound must do real work: the interval's relative gap
    # stays under 25% even though the instance is far beyond exact reach.
    gap_ratio = result.gap / result.upper_bound
    benchmark.extra_info["tuples"] = n_endogenous
    benchmark.extra_info["interval"] = result.interval
    benchmark.extra_info["gap_ratio"] = round(gap_ratio, 3)
    assert gap_ratio < 0.25


def test_anytime_budget_narrows_the_interval(benchmark):
    """More anytime budget never widens the interval, and an unlimited
    budget closes it to the exact optimum (validated against BnB)."""
    db, q, ws = _bounded_cases()[1]
    exact = resilience_branch_and_bound(db, q, structure=ws).value
    budgets = [Budget(node_limit=0), Budget(node_limit=200), Budget()]

    def run():
        return [
            resilience_anytime(db, q, budget=b, structure=ws)
            for b in budgets
        ]

    results = benchmark(run)
    gaps = [r.gap for r in results]
    assert gaps == sorted(gaps, reverse=True), f"gaps widened: {gaps}"
    assert results[-1].is_exact and results[-1].value == exact
    for r in results:
        assert r.lower_bound <= exact <= r.upper_bound
    benchmark.extra_info["gaps"] = gaps
    benchmark.extra_info["exact"] = exact
