"""E16 — parallel sharded batch execution and the persistent result cache.

The E13/E15 scaling story ends at one core: exact solving of the
NP-hard side (Theorem 24) is CPU-bound, and `bench_e15_approx` buys
scale by certifying intervals instead of values.  This suite validates
the orthogonal lever (:mod:`repro.parallel` + the
:class:`~repro.witness.cache.ResultCache`): the same E13/E15-style
scaling workload solved

* **sharded across a worker pool** — results (values *and* contingency
  sets) must be identical to the serial run, and on hardware with >= 4
  usable cores the 4-worker wall-clock must beat serial by >= 2x (on
  smaller machines the equality contract is still asserted and the
  measured speedup is recorded in ``extra_info``);
* **against a warm result cache** — a rerun over already-solved
  instances must be >= 5x faster than the cold run that populated the
  cache, with identical results and every unique pair served from disk.
"""

import os
import time

import pytest

from repro.core import solve_batch
from repro.query.zoo import ALL_QUERIES
from repro.witness import clear_witness_cache
from repro.workloads import large_random_database

# E13/E15-style scaling instances: the shared q_chain-family vocabulary
# at sizes where exact ILP still answers but each pair costs real CPU
# (~100ms), so a 12-pair batch is chunky enough to amortize pool
# startup yet short enough for CI.
VOCAB = ("q_chain", "q_a_chain", "q_ac_chain")
QUERY = "q_ac_chain"
N_TUPLES = 1200
N_PAIRS = 12
WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaling_pairs():
    vocab = [ALL_QUERIES[n] for n in VOCAB]
    q = ALL_QUERIES[QUERY]
    return [
        (large_random_database(vocab, n_tuples=N_TUPLES, seed=seed), q)
        for seed in range(N_PAIRS)
    ]


def _assert_identical(a, b):
    assert a.values() == b.values()
    assert [r.contingency_set for r in a] == [r.contingency_set for r in b]
    assert [r.method for r in a] == [r.method for r in b]


def test_parallel_speedup_and_equality(benchmark):
    """Acceptance: 4-worker results == serial results on the scaling
    workload; >= 2x wall-clock speedup when >= 4 cores are usable."""
    pairs = _scaling_pairs()
    clear_witness_cache()
    solve_batch(pairs[:1], workers=1)  # warm imports (HiGHS, scipy)

    clear_witness_cache()
    t0 = time.perf_counter()
    serial = solve_batch(pairs, workers=1)
    t_serial = time.perf_counter() - t0

    def run():
        clear_witness_cache()
        return solve_batch(pairs, workers=WORKERS)

    parallel = benchmark(run)
    t_parallel = benchmark.stats.stats.mean

    _assert_identical(serial, parallel)
    assert parallel.stats.workers == WORKERS
    assert parallel.stats.shards >= 2
    assert parallel.stats.structures == serial.stats.structures

    speedup = t_serial / t_parallel
    cpus = _usable_cpus()
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["tuples_per_db"] = N_TUPLES
    benchmark.extra_info["usable_cpus"] = cpus
    benchmark.extra_info["serial_seconds"] = round(t_serial, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"4-worker run only {speedup:.2f}x faster than serial "
            f"on {cpus} cores"
        )
    else:
        # One-core runners cannot demonstrate wall-clock speedup; the
        # equality contract above is the load-bearing assertion there.
        assert t_parallel <= t_serial * 1.6, (
            f"pool overhead out of hand: {t_parallel:.2f}s parallel vs "
            f"{t_serial:.2f}s serial on {cpus} core(s)"
        )


def test_cache_hit_rerun_speedup(benchmark, tmp_path):
    """Acceptance: a warm-cache rerun is >= 5x faster than the cold run
    and identical, with every unique pair served from disk."""
    pairs = _scaling_pairs()
    clear_witness_cache()
    solve_batch(pairs[:1], workers=1)  # warm imports outside the timing

    clear_witness_cache()
    t0 = time.perf_counter()
    cold = solve_batch(pairs, cache_dir=tmp_path)
    t_cold = time.perf_counter() - t0
    assert cold.stats.cache_hits == 0
    assert cold.stats.cache_misses == cold.stats.unique_pairs

    def run():
        clear_witness_cache()
        return solve_batch(pairs, cache_dir=tmp_path)

    warm = benchmark(run)
    t_warm = benchmark.stats.stats.mean

    _assert_identical(cold, warm)
    assert warm.stats.cache_hits == warm.stats.unique_pairs
    assert warm.stats.cache_misses == 0
    assert warm.stats.structures == 0  # nothing was recomputed

    speedup = t_cold / t_warm
    benchmark.extra_info["cold_seconds"] = round(t_cold, 3)
    benchmark.extra_info["warm_seconds"] = round(t_warm, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 5.0, f"warm cache rerun only {speedup:.1f}x faster"


def test_anytime_tier_through_the_pool(benchmark):
    """The bounded tier shards too: node-budgeted anytime intervals are
    deterministic, so pool results must equal serial exactly."""
    from repro.resilience.types import Budget

    vocab = [ALL_QUERIES[n] for n in VOCAB]
    q = ALL_QUERIES[QUERY]
    pairs = [
        (large_random_database(vocab, n_tuples=500, seed=seed), q)
        for seed in range(8)
    ]
    budget = Budget(node_limit=300)
    clear_witness_cache()
    serial = solve_batch(pairs, mode="anytime", budget=budget, workers=1)

    def run():
        clear_witness_cache()
        return solve_batch(pairs, mode="anytime", budget=budget, workers=WORKERS)

    parallel = benchmark(run)
    assert serial.intervals() == parallel.intervals()
    _assert_identical(serial, parallel)
    benchmark.extra_info["closed"] = parallel.stats.intervals_exact
    benchmark.extra_info["gap_total"] = parallel.stats.gap_total
