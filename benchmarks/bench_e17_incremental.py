"""E17 — incremental resilience under update streams.

E14–E16 scaled *static* solving: batch amortization, certified bounds,
parallel shards, cached reruns.  This suite validates the dynamic
axis (:mod:`repro.incremental`): a 100-op insert/delete stream over a
scaling instance, solved after every update, where per-update
recomputation pays full witness enumeration + kernelization + search
each time and the :class:`~repro.incremental.IncrementalSession` pays
only delta work.

Acceptance (the ISSUE/E17 gate, recalibrated by E18): with a warm
:class:`~repro.witness.cache.ResultCache`, the incremental session
must beat per-update recomputation by **>= 2.5x** on the 100-op
stream, with values identical op by op.  The gate was originally 5x
against the pure-Python engine; the E18 hot-path overhaul made the
from-scratch baseline itself ~3x faster (columnar enumeration + bitset
kernelization), so the *relative* incremental margin shrank while
absolute per-update latency improved across the board — both sides of
the comparison run on the new engine.  The cold session (populating
the cache) and the warm-start certification rate are recorded as
``extra_info``.
"""

import time

from repro.incremental import IncrementalSession
from repro.query.zoo import ALL_QUERIES
from repro.resilience.solver import solve
from repro.witness import clear_witness_cache
from repro.workloads import (
    apply_update,
    large_random_database,
    update_stream,
)

# The q_chain-family scaling vocabulary at a *fragmented* density:
# domain ~ tuple count gives expected out-degree ~1.3, so the witness
# incidence graph splits into many components — the streaming regime
# the per-component caches are built for (a giant-component instance
# degenerates every update into the same component; see
# docs/incremental.md).
VOCAB = ("q_chain", "q_a_chain", "q_ac_chain")
QUERY = "q_ac_chain"
N_TUPLES = 900
DOMAIN = 700
N_OPS = 100


def _stream():
    vocab = [ALL_QUERIES[n] for n in VOCAB]
    q = ALL_QUERIES[QUERY]
    initial = large_random_database(
        vocab, n_tuples=N_TUPLES, seed=0, domain_size=DOMAIN
    )
    db, ops = update_stream(
        [q], n_ops=N_OPS, seed=1, domain_size=DOMAIN, initial=initial
    )
    return db, q, ops


def _drive(session, ops, query):
    values = []
    for update in ops:
        session.apply([update])
        values.append(session.solve(query).value)
    return values


def test_incremental_stream_beats_recompute(benchmark, tmp_path):
    """Acceptance: warm-cache incremental >= 2.5x over per-update
    recomputation on a 100-op stream, identical values op by op (gate
    recalibrated after E18 sped up the from-scratch baseline ~3x)."""
    db, query, ops = _stream()
    solve(db, query)  # warm imports (HiGHS, scipy) outside all timings

    # Per-update recomputation: every op pays enumeration +
    # kernelization + search on the mutated database (the witness LRU
    # is content-keyed, so mutation misses it by design).
    shadow = db.copy()
    clear_witness_cache()
    t0 = time.perf_counter()
    recompute_values = []
    for update in ops:
        apply_update(shadow, update)
        recompute_values.append(solve(shadow, query).value)
    t_recompute = time.perf_counter() - t0

    # Cold incremental session: populates the persistent per-component
    # cache while already skipping re-enumeration.
    cold = IncrementalSession(db, query, cache_dir=tmp_path)
    t0 = time.perf_counter()
    cold_values = _drive(cold, ops, query)
    t_cold = time.perf_counter() - t0
    assert cold_values == recompute_values

    # Warm sessions: every solved component comes from disk; only the
    # delta maintenance and perturbed-component reductions remain.
    def run():
        session = IncrementalSession(db, query, cache_dir=tmp_path)
        return _drive(session, ops, query)

    warm_values = benchmark(run)
    t_warm = benchmark.stats.stats.mean
    assert warm_values == recompute_values

    speedup_warm = t_recompute / t_warm
    benchmark.extra_info["ops"] = N_OPS
    benchmark.extra_info["initial_tuples"] = len(db)
    benchmark.extra_info["recompute_seconds"] = round(t_recompute, 3)
    benchmark.extra_info["cold_seconds"] = round(t_cold, 3)
    benchmark.extra_info["cold_speedup"] = round(t_recompute / t_cold, 2)
    benchmark.extra_info["warm_speedup"] = round(speedup_warm, 2)
    benchmark.extra_info["warm_certified"] = cold.stats.warm_certified
    assert speedup_warm >= 2.5, (
        f"incremental with warm cache only {speedup_warm:.2f}x faster "
        f"than per-update recomputation"
    )


def test_stream_answers_match_scratch_in_bounded_modes(benchmark):
    """The bounded tiers ride the same incremental machinery: certified
    intervals after every update must be identical to fresh solves
    (spot-checked every 5th op to keep the smoke run quick)."""
    db, query, ops = _stream()

    def run():
        session = IncrementalSession(db, query)
        shadow = db.copy()
        mismatches = 0
        for i, update in enumerate(ops):
            session.apply([update])
            apply_update(shadow, update)
            if i % 5 == 0:
                got = session.solve(query, mode="approx")
                want = solve(shadow, query, mode="approx")
                if got.interval != want.interval:
                    mismatches += 1
        return mismatches

    assert benchmark(run) == 0
    benchmark.extra_info["checked_ops"] = len(ops) // 5
