"""E18 — the hot-path engine overhaul, gated and recorded.

Three drop-in engine layers replaced the pure-Python hot paths behind
every tier (PR 5): the columnar witness join (``repro.query.columnar``),
the bitset hitting-set kernel (``repro.witness.structure`` +
``repro.resilience.approx``), and the scipy csgraph flow backbone
(``repro.resilience.flownet``).  Each keeps the original implementation
selectable as a reference oracle via ``REPRO_JOIN_BACKEND`` /
``REPRO_KERNEL_BACKEND`` / ``REPRO_FLOW_BACKEND``.

Acceptance gates (the ISSUE/E18 contract), all measured old-path vs
new-path in the same process on the existing scaling workloads:

* **layer (a)** — witness-structure construction ≥ **3x** faster on the
  hard-scaling instances (~3000 tuples per binary relation), with the
  vectorized join actually running (no silent fallback);
* **layer (b)** — exact branch-and-bound solves on prebuilt kernelized
  components ≥ **2x** faster, answers (values *and* contingency sets)
  identical;
* **layer (c)** — flow-tier special-solver solves ≥ **2x** faster,
  values identical (cut sets are backend-specific but equally minimal —
  see ``tests/test_flow_backends.py``);
* **equality** — batch answers bit-identical to the reference engines
  in all three modes, serial and 2-worker, cold and warm cache.

The measured numbers are written to ``BENCH_e18_hotpaths.json`` at the
repository root — the first entry of the machine-readable benchmark
trajectory (``repro bench --json`` emits the same record format; see
``docs/performance.md``).
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.query.columnar import backend_counters, reset_backend_counters
from repro.query.zoo import ALL_QUERIES
from repro.resilience.exact import resilience_branch_and_bound
from repro.resilience.flow_special import (
    solve_qA3perm_R,
    solve_qAperm,
    solve_qz3,
)
from repro.resilience.types import Budget
from repro.core import solve_batch
from repro.witness import clear_witness_cache, witness_structure
from repro.witness.structure import WitnessStructure
from repro.workloads import (
    HARD_SCALING_QUERIES,
    large_random_database,
    random_database_for_queries,
    random_database_for_query,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e18_hotpaths.json"

# Results accumulated across the gate tests; the final test writes the
# BENCH record from whatever ran.
RESULTS = {}

REFERENCE_ENGINES = {
    "REPRO_JOIN_BACKEND": "reference",
    "REPRO_KERNEL_BACKEND": "reference",
    "REPRO_FLOW_BACKEND": "networkx",
}
NEW_ENGINES = {
    "REPRO_JOIN_BACKEND": "columnar",
    "REPRO_KERNEL_BACKEND": "bitset",
    "REPRO_FLOW_BACKEND": "csgraph",
}


@contextmanager
def _env(overrides):
    old = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            os.environ[key] = value
        yield
    finally:
        for key, value in old.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _scaling_workload():
    queries = [ALL_QUERIES[name] for name in HARD_SCALING_QUERIES]
    db = large_random_database(queries, n_tuples=3000, seed=0)
    return db, queries


def test_layer_a_structure_construction(benchmark):
    """Gate: ≥3x faster witness-structure construction on the scaling
    workload, identical structures, vectorized join actually running."""
    db, queries = _scaling_workload()

    def build_all():
        return [WitnessStructure.build(db, q) for q in queries]

    with _env(NEW_ENGINES):
        build_all()  # warm imports (scipy csgraph, numpy ufuncs)

    with _env(REFERENCE_ENGINES):
        build_all()  # warm the reference side too
        t0 = time.perf_counter()
        reference = build_all()
        t_reference = time.perf_counter() - t0

    with _env(NEW_ENGINES):
        reset_backend_counters()
        engine = benchmark(build_all)
        counters = backend_counters()
    t_engine = benchmark.stats.stats.min

    for ws_ref, ws_new in zip(reference, engine):
        assert ws_new.sets == ws_ref.sets
        assert ws_new.forced_ids == ws_ref.forced_ids
        assert ws_new.universe == ws_ref.universe
        assert ws_new.stats.rounds == ws_ref.stats.rounds
    assert counters["fallback"] == 0, "vectorized join silently fell back"
    assert counters["columnar"] >= len(queries)

    speedup = t_reference / t_engine
    benchmark.extra_info["tuples"] = len(db)
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["reference_seconds"] = round(t_reference, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    RESULTS["a_structure_build"] = {
        "workload": {
            "kind": "hard_scaling",
            "n_tuples": 3000,
            "queries": list(HARD_SCALING_QUERIES),
        },
        "reference_seconds": round(t_reference, 4),
        "engine_seconds": round(t_engine, 4),
        "speedup": round(speedup, 2),
        "gate": 3.0,
    }
    assert speedup >= 3.0, (
        f"witness-structure construction only {speedup:.2f}x faster"
    )


# BnB-heavy instances: NP-hard chain queries at densities where the
# kernelized components still require real search.
BNB_INSTANCES = tuple(
    ("q_3chain", 9, 0.45, seed) for seed in range(6)
) + tuple(("q_chain", 10, 0.45, seed) for seed in range(4))


def test_layer_b_bnb_solve(benchmark):
    """Gate: ≥2x faster exact branch-and-bound on prebuilt kernelized
    components, bit-identical results."""
    instances = []
    for name, domain, density, seed in BNB_INSTANCES:
        query = ALL_QUERIES[name]
        db = random_database_for_query(
            query, domain_size=domain, density=density, seed=seed
        )
        instances.append((db, query, witness_structure(db, query)))

    def solve_all():
        return [
            resilience_branch_and_bound(db, query, structure=ws)
            for db, query, ws in instances
        ]

    with _env(REFERENCE_ENGINES):
        solve_all()  # warm
        t0 = time.perf_counter()
        reference = solve_all()
        t_reference = time.perf_counter() - t0

    with _env(NEW_ENGINES):
        engine = benchmark(solve_all)
    t_engine = benchmark.stats.stats.min

    for r_ref, r_new in zip(reference, engine):
        assert (r_new.value, r_new.contingency_set) == (
            r_ref.value,
            r_ref.contingency_set,
        )

    speedup = t_reference / t_engine
    benchmark.extra_info["instances"] = len(instances)
    benchmark.extra_info["reference_seconds"] = round(t_reference, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    RESULTS["b_bnb_solve"] = {
        "workload": {
            "kind": "kernelized_bnb",
            "instances": [
                {"query": n, "domain": d, "density": s}
                for n, d, s, _ in BNB_INSTANCES[:1]
            ]
            + [{"n_instances": len(BNB_INSTANCES)}],
        },
        "reference_seconds": round(t_reference, 4),
        "engine_seconds": round(t_engine, 4),
        "speedup": round(speedup, 2),
        "gate": 2.0,
    }
    assert speedup >= 2.0, f"BnB solve only {speedup:.2f}x faster"


FLOW_INSTANCES = (
    ("q_A3perm_R", lambda db: solve_qA3perm_R(db), 80, 0.2),
    ("q_Aperm", lambda db: solve_qAperm(db), 96, 0.3),
    ("q_z3", lambda db: solve_qz3(db), 110, 0.3),
)


def test_layer_c_flow_solves(benchmark):
    """Gate: ≥2x faster flow-tier solves on the csgraph backbone,
    values identical."""
    instances = []
    for name, fn, domain, density in FLOW_INSTANCES:
        query = ALL_QUERIES[name]
        for seed in range(2):
            db = random_database_for_query(
                query, domain_size=domain, density=density, seed=seed
            )
            instances.append((db, fn))

    def solve_all():
        return [fn(db).value for db, fn in instances]

    with _env(REFERENCE_ENGINES):
        solve_all()  # warm
        t0 = time.perf_counter()
        reference = solve_all()
        t_reference = time.perf_counter() - t0

    with _env(NEW_ENGINES):
        engine = benchmark(solve_all)
    t_engine = benchmark.stats.stats.min

    assert engine == reference

    speedup = t_reference / t_engine
    benchmark.extra_info["instances"] = len(instances)
    benchmark.extra_info["reference_seconds"] = round(t_reference, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    RESULTS["c_flow_min_cut"] = {
        "workload": {
            "kind": "flow_specials",
            "instances": [
                {"query": n, "domain": d, "density": s}
                for n, _fn, d, s in FLOW_INSTANCES
            ],
        },
        "reference_seconds": round(t_reference, 4),
        "engine_seconds": round(t_engine, 4),
        "speedup": round(speedup, 2),
        "gate": 2.0,
    }
    assert speedup >= 2.0, f"flow-tier solves only {speedup:.2f}x faster"


def test_answers_bit_identical_across_engines(tmp_path):
    """Answers match the reference engines in all modes — exact values,
    contingency sets on the hitting-set path, certified intervals — for
    serial and 2-worker execution, cold and warm persistent cache.

    The instances are small enough for the reference engines, so the
    columnar size threshold is forced to 0 to make the comparison
    meaningful everywhere.
    """
    names = [
        "q_chain", "q_sj1_rats", "q_perm", "q_Aperm",
        "q_ACconf", "q_z3", "q_conf", "q_a_chain",
    ]
    queries = [ALL_QUERIES[n] for n in names]
    dbs = [
        random_database_for_queries(
            queries, domain_size=5, density=0.4, seed=seed
        )
        for seed in range(3)
    ]
    pairs = [(db, q) for db in dbs for q in queries]
    budget = Budget(node_limit=200)  # node budgets are deterministic
    checked = 0

    for mode in ("exact", "approx", "anytime"):
        kwargs = {"mode": mode}
        if mode == "anytime":
            kwargs["budget"] = budget
        with _env(REFERENCE_ENGINES):
            clear_witness_cache()
            baseline = solve_batch(pairs, **kwargs)
        runs = {}
        with _env({**NEW_ENGINES, "REPRO_COLUMNAR_MIN_TUPLES": "0"}):
            cache_dir = tmp_path / mode
            for label, extra in (
                ("serial", {}),
                ("workers2", {"workers": 2}),
                ("cache_cold", {"cache_dir": cache_dir}),
                ("cache_warm", {"cache_dir": cache_dir}),
            ):
                clear_witness_cache()
                runs[label] = solve_batch(pairs, **kwargs, **extra)
        for label, batch in runs.items():
            assert batch.values() == baseline.values(), (mode, label)
            if mode != "exact":
                assert batch.intervals() == baseline.intervals(), (mode, label)
            for got, ref in zip(batch, baseline):
                # Hitting-set answers are bit-identical; flow-tier cuts
                # are backend-specific (equal value, equally minimal).
                if ref.method in ("branch-and-bound", "ilp", "anytime",
                                  "lp+greedy", "unsatisfied"):
                    assert got.contingency_set == ref.contingency_set, (
                        mode, label, ref.method,
                    )
                    assert got.method == ref.method
            checked += 1
    clear_witness_cache()
    RESULTS["equality"] = {
        "modes": ["exact", "approx", "anytime"],
        "executions": ["serial", "workers2", "cache_cold", "cache_warm"],
        "pairs": len(pairs),
        "runs_checked": checked,
        "ok": True,
    }


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    import repro

    record = {
        "schema": 1,
        "bench": "e18_hotpaths",
        "version": repro.__version__,
        "gates": {"a_structure_build": 3.0, "b_bnb_solve": 2.0,
                  "c_flow_min_cut": 2.0},
        "layers": {
            key: RESULTS[key]
            for key in ("a_structure_build", "b_bnb_solve", "c_flow_min_cut")
            if key in RESULTS
        },
        "equality": RESULTS.get("equality"),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
