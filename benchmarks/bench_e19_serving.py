"""E19 — the serving tier under concurrent load, gated and recorded.

A load generator drives a real :class:`repro.serving.ResilienceServer`
over localhost sockets with a *duplicate-heavy* workload — waves of
``N`` concurrent clients all requesting the same resilience instance,
which is exactly the shape request coalescing exists for (one solve
per distinct :func:`~repro.witness.cache.pair_cache_key`, however many
clients ask).

Acceptance gates (the ISSUE/E19 contract):

* **coalescing throughput** — with ``N >= 8`` concurrent clients the
  coalescing server sustains **>= 3x** the throughput of the same
  server with coalescing disabled, on the same workload, and the
  follower count proves requests actually coalesced;
* **warm-cache latency** — with a persistent result cache populated,
  served p99 latency stays under the gate (cache hits never re-solve);
* **bit-identical answers** — every served result (value, contingency
  set, and method) equals a direct
  :func:`repro.resilience.solver.solve` call; a served answer is never
  a different answer.

``REPRO_BENCH_E19_CLIENTS`` / ``REPRO_BENCH_E19_WAVES`` shrink the
load for CI smoke runs.  The measured numbers are written to
``BENCH_e19_serving.json`` at the repository root (the same
machine-readable trajectory format as ``BENCH_e18_hotpaths.json``; see
``docs/performance.md``).
"""

import json
import os
import threading
import time
from pathlib import Path

from repro.query.zoo import ALL_QUERIES
from repro.resilience.solver import solve
from repro.serving import ResilienceServer, ServingClient
from repro.witness import clear_witness_cache
from repro.workloads import random_database_for_query

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e19_serving.json"

# Load shape: N clients per wave, one distinct instance per wave, every
# client in a wave requesting that wave's instance (duplicate-heavy).
CLIENTS = max(2, int(os.environ.get("REPRO_BENCH_E19_CLIENTS", "8")))
WAVES = max(1, int(os.environ.get("REPRO_BENCH_E19_WAVES", "3")))

GATE_COALESCING_SPEEDUP = 3.0
GATE_WARM_P99_MS = 250.0

# Results accumulated across the gate tests; the final test writes the
# BENCH record from whatever ran.
RESULTS = {}

# BnB-dominated instances (seeds chosen so the search, not the cached
# witness-structure build, is the per-request cost — an uncoalesced
# follower pays nearly full price even with a warm structure cache,
# which makes the comparison fair rather than flattering).
BENCH_QUERY = "q_3chain"
BENCH_SEEDS = tuple(range(1, 1 + WAVES))
BENCH_DOMAIN = 10
BENCH_DENSITY = 0.45


def _instances():
    query = ALL_QUERIES[BENCH_QUERY]
    return [
        (
            random_database_for_query(
                query,
                domain_size=BENCH_DOMAIN,
                density=BENCH_DENSITY,
                seed=seed,
            ),
            query,
        )
        for seed in BENCH_SEEDS
    ]


def _expected(instances):
    """Direct solve() answers — the oracle every served answer must hit."""
    clear_witness_cache()
    return [solve(db, q) for db, q in instances]


def _drive_waves(server, instances, clients):
    """The load generator: per wave, ``clients`` threads all request the
    wave's instance concurrently.  Returns per-request latencies (s),
    total elapsed (s), and the (result, meta) pairs in arrival order."""
    latencies = []
    outcomes = []
    lock = threading.Lock()
    errors = []

    def worker(db, q, barrier):
        client = ServingClient(server.address, timeout=120)
        barrier.wait()  # release the whole wave at once
        t0 = time.perf_counter()
        try:
            result, meta = client.solve(db, q)
        except Exception as exc:  # pragma: no cover - failure reporting
            with lock:
                errors.append(exc)
            return
        dt = time.perf_counter() - t0
        with lock:
            latencies.append(dt)
            outcomes.append((result, meta))

    t_start = time.perf_counter()
    for db, q in instances:
        barrier = threading.Barrier(clients)
        threads = [
            threading.Thread(target=worker, args=(db, q, barrier))
            for _ in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
            assert not t.is_alive(), "load-generator thread hung"
    elapsed = time.perf_counter() - t_start
    assert not errors, f"load generation hit errors: {errors[:3]}"
    return latencies, elapsed, outcomes


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def test_gate_coalescing_throughput():
    """Gate: >= 3x throughput from coalescing on the duplicate-heavy
    workload, answers bit-identical, followers provably coalesced."""
    instances = _instances()
    expected = _expected(instances)
    total_requests = CLIENTS * len(instances)

    # Coalescing disabled: every client pays for its own solve.
    clear_witness_cache()
    with ResilienceServer(port=0, coalesce=False) as server:
        _, elapsed_off, outcomes_off = _drive_waves(server, instances, CLIENTS)
        metrics_off = server.app.metrics.snapshot()
    throughput_off = total_requests / elapsed_off

    # Coalescing enabled: one solve per wave, followers share it.
    clear_witness_cache()
    with ResilienceServer(port=0) as server:
        latencies_on, elapsed_on, outcomes_on = _drive_waves(
            server, instances, CLIENTS
        )
        metrics_on = server.app.metrics.snapshot()
    throughput_on = total_requests / elapsed_on

    # Served answers are bit-identical to direct solve() in both
    # configurations (value, contingency set, and method).
    by_value = {r.value: r for r in expected}
    for outcomes in (outcomes_off, outcomes_on):
        assert len(outcomes) == total_requests
        for result, _meta in outcomes:
            assert result == by_value[result.value]

    # Coalescing actually happened — and solves were actually saved.
    assert metrics_off["coalesced_total"] == 0
    assert metrics_off["solves_total"] == total_requests
    assert metrics_on["coalesced_total"] > 0
    assert metrics_on["solves_total"] < total_requests
    assert (
        metrics_on["solves_total"] + metrics_on["coalesced_total"]
        == total_requests
    )

    speedup = throughput_on / throughput_off
    RESULTS["coalescing"] = {
        "workload": {
            "query": BENCH_QUERY,
            "domain_size": BENCH_DOMAIN,
            "density": BENCH_DENSITY,
            "seeds": list(BENCH_SEEDS),
            "clients": CLIENTS,
            "waves": len(instances),
            "requests": total_requests,
        },
        "throughput_rps_coalesced": round(throughput_on, 2),
        "throughput_rps_uncoalesced": round(throughput_off, 2),
        "solves_run_coalesced": metrics_on["solves_total"],
        "solves_run_uncoalesced": metrics_off["solves_total"],
        "requests_coalesced_away": metrics_on["coalesced_total"],
        "p50_ms_coalesced": round(_percentile(latencies_on, 0.50) * 1000, 2),
        "p99_ms_coalesced": round(_percentile(latencies_on, 0.99) * 1000, 2),
        "speedup": round(speedup, 2),
        "gate": GATE_COALESCING_SPEEDUP,
    }
    assert speedup >= GATE_COALESCING_SPEEDUP, (
        f"coalescing only bought {speedup:.2f}x throughput "
        f"({throughput_on:.1f} vs {throughput_off:.1f} req/s)"
    )


def test_gate_warm_cache_latency(tmp_path):
    """Gate: with the persistent result cache warm, served p50/p99 stay
    bounded (hits never re-solve) and answers still match solve()."""
    instances = _instances()
    expected = _expected(instances)
    rounds = max(20, 60 // max(1, len(instances)))

    clear_witness_cache()
    with ResilienceServer(port=0, cache_dir=tmp_path / "cache") as server:
        client = ServingClient(server.address, timeout=120)
        # Populate: one cold request per instance.
        for (db, q), exp in zip(instances, expected):
            result, meta = client.solve(db, q)
            assert result == exp
            assert meta["cache"] == "miss"

        latencies = []
        for _ in range(rounds):
            for (db, q), exp in zip(instances, expected):
                t0 = time.perf_counter()
                result, meta = client.solve(db, q)
                latencies.append(time.perf_counter() - t0)
                assert meta["cache"] == "hit", "warm request missed the cache"
                assert result == exp, "cached answer drifted from solve()"
        metrics = server.app.metrics.snapshot()

    assert metrics["cache_hits_total"] == len(latencies)
    p50_ms = _percentile(latencies, 0.50) * 1000
    p99_ms = _percentile(latencies, 0.99) * 1000
    RESULTS["warm_cache"] = {
        "requests": len(latencies),
        "p50_ms": round(p50_ms, 2),
        "p99_ms": round(p99_ms, 2),
        "gate_p99_ms": GATE_WARM_P99_MS,
    }
    assert p99_ms <= GATE_WARM_P99_MS, (
        f"warm-cache p99 {p99_ms:.1f}ms exceeds the "
        f"{GATE_WARM_P99_MS:.0f}ms gate"
    )


def test_streamed_intervals_match_served_result():
    """The streamed anytime trajectory ends exactly on the answer the
    unstreamed endpoint returns (same budget, same instance)."""
    from repro.resilience.types import Budget

    db, q = _instances()[0]
    budget = Budget(node_limit=100)
    clear_witness_cache()
    with ResilienceServer(port=0) as server:
        client = ServingClient(server.address, timeout=120)
        frames = list(client.stream_solve(db, q, budget=budget))
        served, _ = client.solve(db, q, mode="anytime", budget=budget)
    assert frames[-1]["event"] == "result"
    assert frames[-1]["result"] == served
    intervals = [f for f in frames if f["event"] == "interval"]
    assert intervals
    direct = solve(db, q, mode="anytime", budget=budget)
    for f in intervals:
        assert f["lower_bound"] <= direct.upper_bound
        assert f["lower_bound"] <= f["upper_bound"]
    RESULTS["streaming"] = {
        "frames": len(frames),
        "intervals": len(intervals),
        "final_interval": list(direct.interval),
        "ok": True,
    }


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    import repro

    coalescing = RESULTS.get("coalescing", {})
    warm = RESULTS.get("warm_cache", {})
    record = {
        "schema": 1,
        "bench": "e19_serving",
        "version": repro.__version__,
        "load": {
            "clients": CLIENTS,
            "waves": WAVES,
            "workload": coalescing.get("workload"),
        },
        "gates": {
            "coalescing_speedup": {
                "value": coalescing.get("speedup"),
                "gate": GATE_COALESCING_SPEEDUP,
            },
            "warm_p99_ms": {
                "value": warm.get("p99_ms"),
                "gate": GATE_WARM_P99_MS,
            },
        },
        "coalescing": coalescing,
        "warm_cache": warm,
        "streaming": RESULTS.get("streaming"),
        "answers_bit_identical": bool(coalescing) and bool(warm),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
