"""E20 — weighted resilience, gated against the ILP oracle and recorded.

Weighted resilience charges each endogenous tuple its ``cost`` (a
positive integer, default 1) instead of counting deletions; the optimum
is the minimum-*cost* hitting set of the witness structure.  This
benchmark drives the full randomized matrix the ISSUE/E20 contract
names and gates on exact agreement everywhere:

* **PTIME weighted flow vs the ILP oracle** — every query the weighted
  dispatcher routes to min-cost flow (the cost-sound specials
  ``q_perm``/``q_Aperm`` plus repeat-free linear queries) must match
  :func:`repro.resilience.exact.resilience_ilp` *and*
  :func:`~repro.resilience.exact.resilience_branch_and_bound` on value,
  and its certificate must pay exactly that value and destroy every
  witness;
* **weighted kernel + BnB vs the ILP oracle** — on the NP-hard zoo
  queries the cost-aware kernelization + branch-and-bound must agree
  with the ILP on every skewed-cost instance;
* **unit-cost delegation** — with every cost 1, ``weighted=True``
  returns results *bit-identical* (value, contingency set, interval,
  method) to the unweighted path in all three modes;
* **certified weighted intervals** — the approx/anytime tier's bounds
  must enclose the weighted optimum.

``REPRO_BENCH_E20_SEEDS`` shrinks the matrix for CI smoke runs.  The
measured numbers are written to ``BENCH_e20_weighted.json`` at the
repository root (the same machine-readable trajectory format as
``BENCH_e18_hotpaths.json``; see ``docs/performance.md``).
"""

import json
import os
import time
from pathlib import Path

from repro.db.tuples import DBTuple
from repro.query.zoo import ALL_QUERIES
from repro.resilience.exact import (
    is_contingency_set,
    resilience_branch_and_bound,
    resilience_ilp,
)
from repro.resilience.solver import dispatch_plan, solve
from repro.resilience.types import Budget, UnbreakableQueryError
from repro.witness import clear_witness_cache
from repro.workloads import assign_skewed_costs, random_database_for_query

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e20_weighted.json"

SEEDS = max(1, int(os.environ.get("REPRO_BENCH_E20_SEEDS", "6")))

# Density/domain tuned so instances carry real witness structure while
# the ILP oracle stays fast enough to run the whole matrix.
DOMAIN = 6
DENSITY = 0.4
MAX_COST = 9

# NP-hard zoo queries for the kernel+BnB-vs-ILP leg (weighted dispatch
# routes all of these to the exact tier).
HARD_QUERIES = (
    "q_chain",
    "q_3chain",
    "q_sj1_rats",
    "q_triangle_sj1",
    "q_conf",
)

# Results accumulated across the gate tests; the final test writes the
# BENCH record from whatever ran.
RESULTS = {}


def _weighted_flow_queries():
    """Every zoo query the *weighted* dispatcher keeps polynomial."""
    names = []
    for name in sorted(ALL_QUERIES):
        if dispatch_plan(ALL_QUERIES[name], weighted=True).kind in (
            "special",
            "flow",
        ):
            names.append(name)
    return names


def _skewed_instance(query, seed):
    db = random_database_for_query(
        query, domain_size=DOMAIN, density=DENSITY, seed=seed
    )
    assign_skewed_costs(db, seed=seed + 101, max_cost=MAX_COST)
    return db


def _endogenous_cost(db, gamma):
    assert all(isinstance(t, DBTuple) for t in gamma)
    return db.total_cost(gamma)


def _check_certificate(db, query, result):
    """The contingency set pays exactly the value and kills every witness."""
    assert _endogenous_cost(db, result.contingency_set) == result.value
    assert is_contingency_set(db, query, result.contingency_set)


def test_gate_weighted_flow_matches_ilp_oracle():
    """Gate: every weighted-PTIME query agrees with ILP + BnB on the
    full randomized skewed-cost matrix."""
    names = _weighted_flow_queries()
    assert "q_perm" in names and "q_Aperm" in names, names
    clear_witness_cache()
    cases = unbreakable = 0
    t0 = time.perf_counter()
    per_query = {}
    for name in names:
        query = ALL_QUERIES[name]
        agreed = 0
        for seed in range(SEEDS):
            db = _skewed_instance(query, 1 + seed)
            try:
                flow = solve(db, query, weighted=True)
            except UnbreakableQueryError:
                # Some witness is all-exogenous: no deletion set exists.
                # Every solver must refuse identically.
                for oracle in (resilience_ilp, resilience_branch_and_bound):
                    try:
                        oracle(db, query, weighted=True)
                        raise AssertionError(
                            f"{name} seed {seed}: {oracle.__name__} solved "
                            "an unbreakable instance"
                        )
                    except UnbreakableQueryError:
                        pass
                unbreakable += 1
                continue
            ilp = resilience_ilp(db, query, weighted=True)
            bnb = resilience_branch_and_bound(db, query, weighted=True)
            assert flow.value == ilp.value == bnb.value, (
                f"{name} seed {seed}: flow {flow.value} vs "
                f"ilp {ilp.value} vs bnb {bnb.value}"
            )
            _check_certificate(db, query, flow)
            _check_certificate(db, query, ilp)
            _check_certificate(db, query, bnb)
            cases += 1
            agreed += 1
        per_query[name] = agreed
    elapsed = time.perf_counter() - t0
    assert cases > 0
    RESULTS["flow_vs_ilp"] = {
        "queries": names,
        "seeds": SEEDS,
        "cases_agreed": cases,
        "unbreakable_skipped": unbreakable,
        "per_query": per_query,
        "seconds": round(elapsed, 3),
    }


def test_gate_weighted_kernel_bnb_matches_ilp_oracle():
    """Gate: cost-aware kernel + BnB equals the ILP oracle on the
    NP-hard leg of the matrix."""
    clear_witness_cache()
    cases = 0
    t0 = time.perf_counter()
    for name in HARD_QUERIES:
        query = ALL_QUERIES[name]
        assert dispatch_plan(query, weighted=True).kind == "exact", name
        for seed in range(SEEDS):
            db = _skewed_instance(query, 1 + seed)
            bnb = resilience_branch_and_bound(db, query, weighted=True)
            ilp = resilience_ilp(db, query, weighted=True)
            assert bnb.value == ilp.value, (
                f"{name} seed {seed}: bnb {bnb.value} vs ilp {ilp.value}"
            )
            _check_certificate(db, query, bnb)
            _check_certificate(db, query, ilp)
            cases += 1
    elapsed = time.perf_counter() - t0
    RESULTS["kernel_bnb_vs_ilp"] = {
        "queries": list(HARD_QUERIES),
        "seeds": SEEDS,
        "cases_agreed": cases,
        "seconds": round(elapsed, 3),
    }


def test_gate_unit_cost_delegation_bit_identical():
    """Gate: all-unit ``weighted=True`` solves are bit-identical to the
    unweighted path in every mode."""
    clear_witness_cache()
    cases = 0
    queries = list(HARD_QUERIES) + ["q_perm", "q_Aperm"]
    for name in queries:
        query = ALL_QUERIES[name]
        for seed in range(min(SEEDS, 3)):
            db = random_database_for_query(
                query, domain_size=DOMAIN, density=DENSITY, seed=1 + seed
            )
            try:
                plain = solve(db, query)
            except UnbreakableQueryError:
                continue
            assert solve(db, query, weighted=True) == plain
            budget = Budget(node_limit=50)
            for mode, kwargs in (
                ("approx", {}),
                ("anytime", {"budget": budget}),
            ):
                a = solve(db, query, mode=mode, **kwargs)
                b = solve(db, query, mode=mode, weighted=True, **kwargs)
                assert a == b, f"{name} seed {seed} mode {mode}: {a} != {b}"
            cases += 1
    assert cases > 0
    RESULTS["unit_cost_delegation"] = {"cases": cases, "modes": 3}


def test_gate_weighted_intervals_certified():
    """Gate: weighted approx/anytime intervals enclose the weighted
    optimum, and anytime closure reports the exact value."""
    clear_witness_cache()
    cases = 0
    for name in HARD_QUERIES:
        query = ALL_QUERIES[name]
        for seed in range(min(SEEDS, 3)):
            db = _skewed_instance(query, 1 + seed)
            exact = resilience_ilp(db, query, weighted=True)
            bounds = solve(db, query, mode="approx", weighted=True)
            assert bounds.lower_bound <= exact.value <= bounds.upper_bound
            _check_certificate_interval(db, query, bounds)
            anytime = solve(db, query, mode="anytime", weighted=True)
            assert anytime.is_exact and anytime.value == exact.value
            cases += 1
    RESULTS["certified_intervals"] = {"cases": cases}


def _check_certificate_interval(db, query, bounded):
    """A bounded result's witness set pays its upper bound and is a
    valid contingency set."""
    assert _endogenous_cost(db, bounded.contingency_set) == bounded.upper_bound
    assert is_contingency_set(db, query, bounded.contingency_set)


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    import repro

    flow = RESULTS.get("flow_vs_ilp", {})
    hard = RESULTS.get("kernel_bnb_vs_ilp", {})
    record = {
        "schema": 1,
        "bench": "e20_weighted",
        "version": repro.__version__,
        "matrix": {
            "seeds": SEEDS,
            "domain_size": DOMAIN,
            "density": DENSITY,
            "max_cost": MAX_COST,
        },
        "gates": {
            "flow_vs_ilp_cases": flow.get("cases_agreed"),
            "kernel_bnb_vs_ilp_cases": hard.get("cases_agreed"),
            "unit_cost_delegation_cases": RESULTS.get(
                "unit_cost_delegation", {}
            ).get("cases"),
            "certified_interval_cases": RESULTS.get(
                "certified_intervals", {}
            ).get("cases"),
        },
        "flow_vs_ilp": flow,
        "kernel_bnb_vs_ilp": hard,
        "unit_cost_delegation": RESULTS.get("unit_cost_delegation"),
        "certified_intervals": RESULTS.get("certified_intervals"),
        "all_agreed": bool(flow) and bool(hard),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
