"""E21 — cost-based planner vs every fixed global backend configuration.

The planner (:mod:`repro.planner`) picks a join backend, kernel
backend, flow backend, solver method and sharding decision *per
instance* from cheap features.  A fixed ``REPRO_*_BACKEND``
environment, by contrast, commits the whole batch to one choice and
pays wherever that choice is wrong: exact resilience is NP-complete in
general (Theorem 24) but PTIME on the flow specials (Proposition 31),
so no single solver/flow/join setting is right for a mixed workload.

This benchmark builds one mixed batch spanning the regimes where each
backend wins and loses:

* **leg A (small/mid PTIME)** — flow specials (``q_perm``/``q_conf``
  plus ``q_Aperm`` at domain sizes where the csgraph backbone's
  advantage is measurable); forcing ``networkx`` pays here;
* **leg B1 (many small NP-hard)** — dozens of small ``q_chain``/
  ``q_3chain``/``q_a_chain`` instances whose kernels are tiny, so
  ``choose_backend`` picks branch-and-bound; forcing ``ilp`` pays a
  per-instance setup cost on every one;
* **leg B2 (mid NP-hard, dense)** — a few dense ``q_3chain``
  instances whose kernels stay large, where branch-and-bound blows up
  and the ILP wins by seconds; forcing ``bnb`` pays here;
* **leg C (large weighted)** — skewed-cost instances whose witness
  enumeration dominates (``q_vc``/``q_sj1_rats`` kernelize to almost
  nothing, so the structure *build* is the entire cost and forcing the
  ``reference`` join or kernel pays), plus large weighted ``q_Aperm``
  flow instances.

**Gate.**  The planner-driven ``solve_batch`` must be at least
``MIN_SPEEDUP``x faster end-to-end than the **best single global
environment configuration**, with bit-identical values on the exact
batch and bit-identical certified intervals on a bounded anytime
batch.  A "configuration" here is one of the 16 fully pinned
``(join, kernel, flow, solver)`` combinations.  Leaving a variable
*unset* is not a configuration: unset means the engine's built-in
adaptive default, which is exactly the policy the planner's static
cost model generalizes — measuring against it would compare the
planner to itself.  The comparison the gate makes is the operational
one: a user who pins backends globally (the only control surface that
existed before the planner) versus the planner choosing per instance.

``REPRO_BENCH_E21_SEEDS`` (default 40) scales leg B1,
``REPRO_BENCH_E21_REPEATS`` (default 2) the timing repeats, and
``REPRO_BENCH_E21_MIN_SPEEDUP`` (default 1.2) the gate threshold —
CI's smoke run shrinks the matrix and relaxes the timing gate (tiny
batches measure mostly noise) while still checking bit-identity
everywhere and uploading the record.  Results are written to
``BENCH_e21_planner.json`` at the repository root (same trajectory
format as ``BENCH_e18_hotpaths.json``; see ``docs/performance.md``).
"""

import itertools
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core import solve_batch
from repro.planner import plan_instance
from repro.query.zoo import ALL_QUERIES
from repro.resilience.types import Budget
from repro.witness import clear_witness_cache
from repro.workloads import assign_skewed_costs, random_database_for_query

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e21_planner.json"

SEEDS = max(4, int(os.environ.get("REPRO_BENCH_E21_SEEDS", "40")))
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_E21_REPEATS", "2")))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_E21_MIN_SPEEDUP", "1.2"))

# The 16 fully pinned global configurations the planner competes with.
JOIN_BACKENDS = ("columnar", "reference")
KERNEL_BACKENDS = ("bitset", "reference")
FLOW_BACKENDS = ("csgraph", "networkx")
SOLVER_BACKENDS = ("bnb", "ilp")
ALL_CONFIGS = tuple(
    itertools.product(JOIN_BACKENDS, KERNEL_BACKENDS, FLOW_BACKENDS, SOLVER_BACKENDS)
)

# Results accumulated across the gate tests; the final test writes the
# BENCH record from whatever ran.
RESULTS = {}


@contextmanager
def _env(**overrides):
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _forced_env(join, kernel, flow, solver):
    """Environment pinning one global configuration, planner off."""
    return {
        "REPRO_PLANNER": "off",
        "REPRO_JOIN_BACKEND": join,
        # The columnar path normally defers to the reference join below
        # its crossover; a *pinned* configuration means the backend is
        # used unconditionally.
        "REPRO_COLUMNAR_MIN_TUPLES": "0",
        "REPRO_KERNEL_BACKEND": kernel,
        "REPRO_FLOW_BACKEND": flow,
        "REPRO_SOLVER_BACKEND": solver,
    }


def _warm_imports():
    """Pay one-time import costs outside the timed region (E18 idiom)."""
    import networkx  # noqa: F401
    import scipy.optimize  # noqa: F401
    import scipy.sparse  # noqa: F401
    import scipy.sparse.csgraph  # noqa: F401


def _scaled(n):
    """Scale a leg size with the seed knob (full scale at SEEDS=40)."""
    return max(1, round(n * SEEDS / 40))


def _build_exact_batch():
    """The mixed exact batch: legs A, B1, B2 and C (see module doc)."""
    pairs = []
    # Leg A — small/mid PTIME flow specials (unit costs).
    for name, dom, dens, count in (
        ("q_perm", 24, 0.25, _scaled(4)),
        ("q_conf", 30, 0.2, _scaled(4)),
        ("q_Aperm", 120, 0.3, _scaled(6)),
    ):
        query = ALL_QUERIES[name]
        for seed in range(count):
            db = random_database_for_query(
                query, domain_size=dom, density=dens, seed=seed
            )
            pairs.append((db, query))
    # Leg B1 — many small NP-hard instances (auto picks bnb on all).
    for name in ("q_chain", "q_3chain", "q_a_chain"):
        query = ALL_QUERIES[name]
        for seed in range(SEEDS):
            db = random_database_for_query(
                query, domain_size=6, density=0.45, seed=seed
            )
            pairs.append((db, query))
    # Leg B2 — dense mid NP-hard instances where bnb blows up
    # (auto picks ilp; seeds chosen for consistently large kernels).
    q3 = ALL_QUERIES["q_3chain"]
    for seed in (2, 4):
        db = random_database_for_query(q3, domain_size=11, density=0.4, seed=seed)
        pairs.append((db, q3))
    # Leg C — large weighted: build-dominated kernelizers plus large
    # weighted flow instances.
    for seed in range(_scaled(3)):
        for name, dom, dens, cost_seed in (
            ("q_vc", 40, 0.35, 100),
            ("q_sj1_rats", 24, 0.35, 200),
            ("q_Aperm", 100, 0.3, 300),
        ):
            query = ALL_QUERIES[name]
            db = random_database_for_query(
                query, domain_size=dom, density=dens, seed=seed
            )
            assign_skewed_costs(db, seed=cost_seed + seed)
            pairs.append((db, query))
    return pairs


def _build_anytime_batch():
    """A small bounded batch for the interval-equality gate."""
    pairs = []
    for name in ("q_chain", "q_3chain", "q_conf", "q_sj1_rats"):
        query = ALL_QUERIES[name]
        for seed in range(min(SEEDS, 4)):
            db = random_database_for_query(
                query, domain_size=6, density=0.45, seed=seed
            )
            if seed % 2:
                assign_skewed_costs(db, seed=seed + 7)
            pairs.append((db, query))
    return pairs


def _timed_batch(pairs, repeats=1, **env_overrides):
    """Best-of-``repeats`` wall time for one cold-cache batch solve."""
    best = None
    batch = None
    for _ in range(repeats):
        with _env(**env_overrides):
            clear_witness_cache()
            start = time.perf_counter()
            batch = solve_batch(pairs, weighted=True)
            elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, batch


def test_gate_planner_beats_best_fixed_config():
    """Gate: planner-driven batch is >= MIN_SPEEDUP x faster than the
    best of the 16 pinned configurations, with bit-identical values."""
    _warm_imports()
    pairs = _build_exact_batch()
    # Warm every code path once so no configuration is charged for
    # lazy imports or first-call setup.
    _timed_batch(pairs, **_forced_env("columnar", "bitset", "csgraph", "ilp"))

    planner_seconds, planner_batch = _timed_batch(
        pairs, repeats=REPEATS, REPRO_PLANNER="on"
    )
    planner_values = planner_batch.values()
    assert planner_batch.stats.plans, "planner recorded no plans"

    config_times = {}
    mismatches = []
    for join, kernel, flow, solver in ALL_CONFIGS:
        seconds, batch = _timed_batch(
            pairs, repeats=REPEATS, **_forced_env(join, kernel, flow, solver)
        )
        key = f"{join}/{kernel}/{flow}/{solver}"
        config_times[key] = round(seconds, 3)
        if batch.values() != planner_values:
            mismatches.append(key)
    assert not mismatches, (
        f"planner values differ from forced configurations: {mismatches}"
    )

    best_key = min(config_times, key=config_times.get)
    best_seconds = config_times[best_key]
    speedup = best_seconds / planner_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"planner {planner_seconds:.3f}s vs best fixed config "
        f"{best_key} {best_seconds:.3f}s: speedup {speedup:.2f}x "
        f"< required {MIN_SPEEDUP}x"
    )
    RESULTS["exact_batch"] = {
        "pairs": len(pairs),
        "repeats": REPEATS,
        "planner_seconds": round(planner_seconds, 3),
        "best_config": best_key,
        "best_config_seconds": best_seconds,
        "speedup_vs_best_config": round(speedup, 3),
        "min_speedup_required": MIN_SPEEDUP,
        "config_seconds": config_times,
        "plans": dict(planner_batch.stats.plans),
        "values_identical_configs": len(ALL_CONFIGS),
    }


def test_gate_anytime_intervals_identical():
    """Gate: bounded anytime intervals are bit-identical between the
    planner and every pinned configuration."""
    _warm_imports()
    pairs = _build_anytime_batch()
    budget = Budget(node_limit=64)

    def _run(**env_overrides):
        with _env(**env_overrides):
            clear_witness_cache()
            return solve_batch(pairs, mode="anytime", budget=budget, weighted=True)

    planner_batch = _run(REPRO_PLANNER="on")
    planner_intervals = planner_batch.intervals()
    checked = 0
    for join, kernel, flow, solver in ALL_CONFIGS:
        batch = _run(**_forced_env(join, kernel, flow, solver))
        assert batch.intervals() == planner_intervals, (
            f"intervals diverge under {join}/{kernel}/{flow}/{solver}"
        )
        assert list(batch.results) == list(planner_batch.results)
        checked += 1
    RESULTS["anytime_batch"] = {
        "pairs": len(pairs),
        "node_limit": budget.node_limit,
        "intervals_identical_configs": checked,
    }


def test_gate_plans_deterministic_across_runs():
    """Gate: the plans the timed batch runs under are reproducible —
    replanning every instance cold yields the same signatures."""
    pairs = _build_exact_batch()
    signatures = []
    for _ in range(2):
        clear_witness_cache()
        signatures.append(
            [plan_instance(db, query, weighted=True).signature() for db, query in pairs]
        )
    assert signatures[0] == signatures[1]
    RESULTS["plan_determinism"] = {
        "pairs": len(pairs),
        "distinct_plans": len(set(signatures[0])),
    }


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    import repro

    exact = RESULTS.get("exact_batch", {})
    record = {
        "schema": 1,
        "bench": "e21_planner",
        "version": repro.__version__,
        "matrix": {
            "seeds": SEEDS,
            "repeats": REPEATS,
            "configs": len(ALL_CONFIGS),
        },
        "gates": {
            "speedup_vs_best_config": exact.get("speedup_vs_best_config"),
            "min_speedup_required": MIN_SPEEDUP,
            "values_identical_configs": exact.get("values_identical_configs"),
            "intervals_identical_configs": RESULTS.get("anytime_batch", {}).get(
                "intervals_identical_configs"
            ),
            "plans_deterministic": "plan_determinism" in RESULTS,
        },
        "exact_batch": exact,
        "anytime_batch": RESULTS.get("anytime_batch"),
        "plan_determinism": RESULTS.get("plan_determinism"),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
