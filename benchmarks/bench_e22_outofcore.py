"""E22 — out-of-core storage: million-tuple PTIME instances under a
fixed RSS ceiling.

The storage engine (:mod:`repro.storage`) keeps a database as memmap'd
int64 column files and hands the columnar join the on-disk matrices
directly, so witness enumeration over ``D |= q`` (Section 2) — the
whole cost of a resilience solve on the PTIME chain workload
(Proposition 31's tractable side) — runs without ever materializing
the instance as Python objects.

**Gates.**

* *RSS ceiling* — a fresh subprocess streams a
  ``REPRO_BENCH_E22_TUPLES``-tuple chain instance (default 10^6)
  straight into a snapshot, reopens it, and solves exact resilience;
  its lifetime peak RSS (``ru_maxrss``) must stay under
  ``REPRO_BENCH_E22_RSS_MB`` (default 1024), and the value must equal
  the workload's known ground truth (the hot-pair count).
* *Bit-identity* — at an overlapping scale
  (``REPRO_BENCH_E22_OVERLAP``, default 50k tuples) the snapshot-backed
  and in-memory backends must agree bit-for-bit: equal content
  digests, identical witness incidence matrices (universe order and
  all), and equal resilience values.
* *Planner* — a snapshot-backed instance must plan ``join=columnar``
  with ``size_class="out-of-core"``.

Results are written to ``BENCH_e22_outofcore.json`` at the repository
root (same trajectory format as ``BENCH_e21_planner.json``; see
``docs/performance.md``).  CI's ``tests-storage`` job shrinks the
scale through ``REPRO_BENCH_E22_TUPLES`` for a smoke run and uploads
the record as an artifact.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.planner import plan_instance
from repro.query.columnar import columnar_witness_incidence
from repro.resilience.solver import solve
from repro.storage import ingest_database, open_stored_database
from repro.workloads import (
    DEFAULT_HOT_PAIRS,
    chain_database,
    chain_query,
    write_chain_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e22_outofcore.json"

TUPLES = max(2_000, int(os.environ.get("REPRO_BENCH_E22_TUPLES", "1000000")))
HOT_PAIRS = max(1, int(os.environ.get("REPRO_BENCH_E22_HOT", str(DEFAULT_HOT_PAIRS))))
RSS_CEILING_MB = max(128, int(os.environ.get("REPRO_BENCH_E22_RSS_MB", "1024")))
OVERLAP_TUPLES = min(
    TUPLES, max(2_000, int(os.environ.get("REPRO_BENCH_E22_OVERLAP", "50000")))
)

RESULTS = {}

# The ceiling gate runs build+solve in a *fresh* interpreter:
# ru_maxrss is a lifetime peak, so measuring in the long-lived pytest
# process would charge E22 for every previously-run benchmark.
_CHILD_SCRIPT = """\
import json, os, resource, sys, time
from repro.query.columnar import backend_counters
from repro.resilience.solver import solve
from repro.storage import open_stored_database
from repro.workloads import chain_query, write_chain_snapshot

path = os.environ["E22_SNAPSHOT_PATH"]
tuples = int(os.environ["E22_TUPLES"])
hot = int(os.environ["E22_HOT"])
t0 = time.time()
write_chain_snapshot(path, tuples, hot)
t1 = time.time()
stored = open_stored_database(path)
result = solve(stored, chain_query(), method="exact")
t2 = time.time()
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024  # macOS reports bytes, Linux kilobytes
print(json.dumps({
    "value": result.value,
    "method": result.method,
    "digest": stored.content_digest(),
    "build_seconds": round(t1 - t0, 3),
    "solve_seconds": round(t2 - t1, 3),
    "ru_maxrss_kb": int(peak),
    "counters": backend_counters(),
}))
"""


def _run_child(path: Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    env["E22_SNAPSHOT_PATH"] = str(path)
    env["E22_TUPLES"] = str(TUPLES)
    env["E22_HOT"] = str(HOT_PAIRS)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, f"E22 child failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_gate_build_and_solve_under_rss_ceiling(tmp_path):
    """Gate: a fresh process builds and solves the full-scale instance
    with peak RSS under the ceiling, and gets the known answer."""
    pytest.importorskip("resource")
    report = _run_child(tmp_path / "e22-snapshot")
    peak_mb = report["ru_maxrss_kb"] / 1024.0
    assert report["value"] == HOT_PAIRS, report
    assert peak_mb <= RSS_CEILING_MB, (
        f"peak RSS {peak_mb:.0f} MB exceeds the {RSS_CEILING_MB} MB ceiling"
    )
    # The solve must actually have run the columnar join (never the
    # reference evaluator, which would materialize every fact).
    assert report["counters"]["columnar"] >= 1, report["counters"]
    assert report["counters"]["fallback"] == 0, report["counters"]
    RESULTS["ceiling"] = {
        "tuples": TUPLES,
        "hot_pairs": HOT_PAIRS,
        "rss_ceiling_mb": RSS_CEILING_MB,
        "peak_rss_mb": round(peak_mb, 1),
        "build_seconds": report["build_seconds"],
        "solve_seconds": report["solve_seconds"],
        "value": report["value"],
        "digest": report["digest"],
    }


def test_gate_bit_identical_to_in_memory_at_overlap(tmp_path):
    """Gate: snapshot-backed and in-memory backends agree bit-for-bit
    at an overlapping scale — digests, witness incidence, values."""
    db = chain_database(OVERLAP_TUPLES, HOT_PAIRS)
    path = ingest_database(db, tmp_path / "overlap")
    stored = open_stored_database(path)
    query = chain_query()

    assert stored.content_digest() == db.content_digest()
    streamed = write_chain_snapshot(
        tmp_path / "overlap-streamed", OVERLAP_TUPLES, HOT_PAIRS
    )
    assert open_stored_database(streamed).content_digest() == db.content_digest()

    mem_universe, mem_matrix = columnar_witness_incidence(db, query)
    st_universe, st_matrix = columnar_witness_incidence(stored, query)
    assert st_universe == mem_universe
    assert np.array_equal(st_matrix, mem_matrix)

    r_mem = solve(db, query, method="exact")
    r_st = solve(stored, query, method="exact")
    assert r_st.value == r_mem.value == HOT_PAIRS
    RESULTS["overlap"] = {
        "tuples": OVERLAP_TUPLES,
        "witnesses": int(mem_matrix.shape[0]),
        "value": r_mem.value,
        "digest_match": True,
    }


def test_gate_planner_plans_out_of_core(tmp_path):
    """Gate: the planner recognizes snapshot-backed instances."""
    db = chain_database(4_000, HOT_PAIRS)
    stored = open_stored_database(ingest_database(db, tmp_path / "plan"))
    plan = plan_instance(stored, chain_query())
    assert plan.join == "columnar"
    assert plan.size_class == "out-of-core"
    assert plan.features.storage
    RESULTS["plan"] = {"signature": plan.signature()}


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    ceiling = RESULTS.get("ceiling", {})
    record = {
        "schema": 1,
        "bench": "e22_outofcore",
        "version": repro.__version__,
        "matrix": {
            "tuples": TUPLES,
            "hot_pairs": HOT_PAIRS,
            "overlap_tuples": OVERLAP_TUPLES,
        },
        "gates": {
            "rss_ceiling_mb": RSS_CEILING_MB,
            "peak_rss_mb": ceiling.get("peak_rss_mb"),
            "under_ceiling": (
                ceiling.get("peak_rss_mb") is not None
                and ceiling["peak_rss_mb"] <= RSS_CEILING_MB
            ),
            "value_matches_ground_truth": ceiling.get("value") == HOT_PAIRS,
            "bit_identical_at_overlap": "overlap" in RESULTS,
            "planner_out_of_core": "plan" in RESULTS,
        },
        "ceiling": ceiling,
        "overlap": RESULTS.get("overlap"),
        "plan": RESULTS.get("plan"),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
