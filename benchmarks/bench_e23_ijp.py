"""E23 — distributed IJP certificate search: throughput, determinism,
rediscovery, resume.

The Appendix C.2 search (:mod:`repro.ijp`) enumerates set partitions of
``k`` canonical query copies and runs the Definition 48 checker over
each merged database.  The distributed engine replaces the recursive
one-partition-at-a-time walk (kept as
:func:`repro.ijp.search.ijp_search_reference`) with restricted-growth-
string batches over numpy, sound prefix pruning, vectorized leaf
screens, and an exact hitting-set prescreen for condition 5 — then
shards the space into worker-independent lexicographic ranges with
per-shard checkpoints.

**Gates** (all on the Example 62 space: the triangle query at
``REPRO_BENCH_E23_COPIES`` copies, B(9) = 21147 partitions at the
default 3).

* *Speedup* — covered partitions/second of the full engine sweep must
  beat the reference walk (timed on a
  ``REPRO_BENCH_E23_BASELINE_SLICE``-partition slice, default 200) by
  ≥ 10×.
* *Parallel bit-identity* — a serial sweep and a
  ``REPRO_BENCH_E23_WORKERS``-worker sweep (default 2) must produce
  identical certificates, near misses, and statistics.
* *Example 62 rediscovery* — the triangle IJP (a proper certificate
  partitioning the 9 constants into 5 blocks) must be among the found
  certificates and re-check as an IJP through the independent serial
  checker on its rebuilt database.
* *Resume* — a second cache-backed sweep must replay every shard from
  its checkpoint (``shards_resumed`` equal to the shard count) and
  return identical results.

Results are written to ``BENCH_e23_ijp.json`` at the repository root
(same trajectory format as ``BENCH_e22_outofcore.json``; see
``docs/ijp.md``).  CI's ``tests-ijp`` job shrinks the scale through
``REPRO_BENCH_E23_COPIES=2`` for a smoke run and uploads the record as
an artifact.
"""

import itertools
import json
import os
import time
from pathlib import Path

import pytest

import repro
from repro.ijp.checker import check_ijp, find_ijp_pair
from repro.ijp.rgs import bell_number
from repro.ijp.search import _merge_copies, set_partitions
from repro.ijp.sweep import certificate_is_proper, sweep_range
from repro.query.evaluation import satisfies
from repro.query.zoo import q_triangle

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_e23_ijp.json"

COPIES = max(2, int(os.environ.get("REPRO_BENCH_E23_COPIES", "3")))
WORKERS = max(2, int(os.environ.get("REPRO_BENCH_E23_WORKERS", "2")))
BASELINE_SLICE = max(
    20, int(os.environ.get("REPRO_BENCH_E23_BASELINE_SLICE", "200"))
)
SPEEDUP_GATE = 10.0 if COPIES >= 3 else 1.0

RESULTS = {}


def _reference_partitions_per_second(k: int, limit: int) -> dict:
    """Time the pre-vectorization per-partition check — exactly
    :func:`ijp_search_reference`'s loop body, minus the early exit —
    on a slice strided uniformly across the space.  A lexicographic
    *prefix* would flatter the baseline: early RGS codes merge most
    constants into few blocks, so their databases are small and cheap
    to check.  Only check time is measured (the recursive enumeration
    rides along for free), which also favors the baseline."""
    constants = [
        (tag, v) for tag in range(k) for v in sorted(q_triangle.variables())
    ]
    step = max(1, bell_number(len(constants)) // limit)
    checked = 0
    seconds = 0.0
    for partition in itertools.islice(
        set_partitions(constants), 0, None, step
    ):
        checked += 1
        started = time.perf_counter()
        db = _merge_copies(q_triangle, k, partition)
        if satisfies(db, q_triangle):
            find_ijp_pair(db, q_triangle)
        seconds += time.perf_counter() - started
    return {
        "partitions": checked,
        "stride": step,
        "seconds": round(seconds, 3),
        "partitions_per_second": checked / seconds,
    }


def test_gate_speedup_vs_reference():
    """Gate: the engine covers ≥ 10× more partitions/second than the
    recursive reference walk on the triangle space.

    The 10× claim amortizes batch setup over the B(9) = 21147-partition
    space; the reduced CI smoke (``REPRO_BENCH_E23_COPIES=2``, a
    203-partition space dominated by fixed overhead) measures and
    records the ratio but gates only on the engine not being *slower*.
    """
    baseline = _reference_partitions_per_second(COPIES, BASELINE_SLICE)

    started = time.perf_counter()
    sweep = sweep_range(q_triangle, COPIES, query_name="q_triangle")
    seconds = time.perf_counter() - started
    assert sweep.stats.exhausted
    engine_pps = sweep.stats.covered / seconds
    speedup = engine_pps / baseline["partitions_per_second"]

    RESULTS["serial"] = sweep
    RESULTS["speedup"] = {
        "copies": COPIES,
        "space": sweep.stats.covered,
        "engine_seconds": round(seconds, 3),
        "engine_partitions_per_second": round(engine_pps, 1),
        "baseline": {
            **baseline,
            "partitions_per_second": round(
                baseline["partitions_per_second"], 1
            ),
        },
        "speedup": round(speedup, 1),
    }
    assert speedup >= SPEEDUP_GATE, RESULTS["speedup"]


def _identical(a, b) -> bool:
    return (
        a.certificates == b.certificates
        and a.near_misses == b.near_misses
        and a.stats.to_dict() == b.stats.to_dict()
        and a.shards == b.shards
    )


def test_gate_parallel_bit_identical():
    """Gate: a multi-worker sweep equals the serial one bit for bit."""
    serial = RESULTS.get("serial") or sweep_range(
        q_triangle, COPIES, query_name="q_triangle"
    )
    parallel = sweep_range(
        q_triangle, COPIES, query_name="q_triangle", workers=WORKERS
    )
    assert _identical(serial, parallel), (
        serial.stats.to_dict(),
        parallel.stats.to_dict(),
    )
    RESULTS["parallel"] = {
        "workers": WORKERS,
        "shards": parallel.shards,
        "certificates": len(parallel.certificates),
        "identical": True,
    }


def test_gate_triangle_rediscovered():
    """Gate: Example 62's triangle IJP — a proper certificate whose
    partition has 5 blocks — is found and re-checks independently."""
    if COPIES != 3:
        pytest.skip("Example 62 lives in the k=3 triangle space")
    sweep = RESULTS.get("serial") or sweep_range(
        q_triangle, COPIES, query_name="q_triangle"
    )
    example_62 = [
        cert
        for cert in sweep.certificates
        if cert.k == 3
        and certificate_is_proper(cert)
        and len(cert.blocks(q_triangle)) == 5
    ]
    assert example_62, "no proper 5-block triangle certificate at k=3"
    cert = example_62[0]
    report = check_ijp(cert.database(q_triangle), q_triangle, *cert.pair)
    assert report.is_ijp, report
    assert report.resilience == cert.resilience
    RESULTS["triangle"] = {
        "k": cert.k,
        "blocks": len(cert.blocks(q_triangle)),
        "pair": [repr(t) for t in cert.pair],
        "resilience": cert.resilience,
        "proper_5_block_certificates": len(example_62),
        "rechecked": True,
    }


def test_gate_resume_without_recompute(tmp_path):
    """Gate: the second cache-backed sweep replays every shard from its
    checkpoint and returns identical results."""
    cache_dir = tmp_path / "e23-cache"
    cold_started = time.perf_counter()
    cold = sweep_range(
        q_triangle, COPIES, query_name="q_triangle", cache_dir=cache_dir
    )
    cold_seconds = time.perf_counter() - cold_started
    assert cold.shards_resumed == 0
    warm_started = time.perf_counter()
    warm = sweep_range(
        q_triangle, COPIES, query_name="q_triangle", cache_dir=cache_dir
    )
    warm_seconds = time.perf_counter() - warm_started
    assert warm.shards_resumed == warm.shards > 0
    assert _identical(cold, warm)
    RESULTS["resume"] = {
        "shards": warm.shards,
        "shards_resumed": warm.shards_resumed,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "identical": True,
    }


def test_write_bench_record():
    """Persist the measured trajectory entry (runs last in this file)."""
    speedup = RESULTS.get("speedup", {})
    serial = RESULTS.get("serial")
    record = {
        "schema": 1,
        "bench": "e23_ijp",
        "version": repro.__version__,
        "matrix": {
            "query": "q_triangle",
            "copies": COPIES,
            "workers": WORKERS,
            "baseline_slice": BASELINE_SLICE,
        },
        "gates": {
            "speedup_vs_reference": {
                "value": speedup.get("speedup"),
                "gate": SPEEDUP_GATE,
            },
            "parallel_bit_identical": RESULTS.get("parallel", {}).get(
                "identical", False
            ),
            "triangle_rediscovered": RESULTS.get("triangle", {}).get(
                "rechecked", False
            ),
            "resume_without_recompute": RESULTS.get("resume", {}).get(
                "identical", False
            ),
        },
        "speedup": speedup,
        "sweep": serial.to_dict() if serial is not None else None,
        "parallel": RESULTS.get("parallel"),
        "triangle": RESULTS.get("triangle"),
        "resume": RESULTS.get("resume"),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert RECORD_PATH.exists()
