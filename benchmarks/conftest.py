"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` module regenerates one of the paper's tables or
figures (see DESIGN.md's experiment index).  Benchmarks both *time* the
relevant computation and *assert* the paper's qualitative claim, so a
green benchmark run is a machine-checked reproduction.  Numbers are
recorded in ``benchmark.extra_info`` (visible in the JSON output) and
in EXPERIMENTS.md.
"""

import itertools

import pytest

from repro.workloads import CNFFormula, random_3cnf

# One satisfiable and one unsatisfiable formula reused across benches.
SAT_FORMULA = random_3cnf(3, 2, seed=11)
UNSAT_FORMULA = CNFFormula(
    3,
    tuple(
        tuple(s * (i + 1) for i, s in enumerate(signs))
        for signs in itertools.product([1, -1], repeat=3)
    ),
)

VERDICT_SHORT = {"P": "P", "NP-complete": "NPC", "OPEN": "OPEN"}


def short_verdict(classification) -> str:
    return VERDICT_SHORT[classification.verdict.value]
