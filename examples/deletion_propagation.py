"""Deletion propagation with source side-effects via resilience.

Run:  python examples/deletion_propagation.py

The paper's Section 1 motivation: to delete a tuple from a *view*, find
the minimum set of source tuples to remove.  This reduces to resilience
of the Boolean specialization, so the whole complexity map applies.

Scenario: a who-follows-whom graph and a "2-hop influence" view.  An
analyst wants a specific influence pair gone from the view while
deleting as few follow-edges as possible; account records themselves
are off-limits (exogenous).
"""

from repro.core import ResilienceAnalyzer, deletion_propagation, parse_view
from repro.db import Database


def main() -> None:
    db = Database()
    # follows(u, v): u follows v — deletable.
    db.add_all(
        "Follows",
        [
            ("ana", "bo"), ("bo", "cy"), ("ana", "dee"), ("dee", "cy"),
            ("cy", "eli"), ("bo", "eli"), ("dee", "eli"),
        ],
    )
    # account(u): exists — context only, never deletable.
    db.declare("Account", 1, exogenous=True)
    for user in ("ana", "bo", "cy", "dee", "eli"):
        db.add("Account", user)

    view = parse_view(
        "influences(x, z) :- Account^x(x), Follows(x,y), Follows(y,z)"
    )
    print(f"view: {view}")
    contents = sorted(view.evaluate(db))
    print(f"\nview contents ({len(contents)} tuples):")
    for row in contents:
        print(f"  influences{row}")

    target = ("ana", "eli")
    print(f"\ngoal: remove influences{target} from the view")
    result = deletion_propagation(view, db, target)
    print(f"minimum source deletions: {result.value}")
    print(f"delete: {sorted(result.contingency_set)}")

    after = db.minus(result.contingency_set)
    remaining = sorted(view.evaluate(after))
    assert target not in remaining
    print(f"\nafter deletion the view keeps {len(remaining)} tuples; "
          f"{target} is gone.")
    lost = set(contents) - set(remaining) - {target}
    print(f"side-effects (other view tuples lost): {sorted(lost) or 'none'}")

    # The complexity side: the underlying Boolean query is a chain with
    # a self-join, so the general problem is NP-complete — worth knowing
    # before shipping this as a production feature.
    analyzer = ResilienceAnalyzer("A^x(x), F(x,y), F(y,z)")
    print("\ncomplexity of the underlying resilience problem:")
    print(analyzer.explain())


if __name__ == "__main__":
    main()
