"""Regenerate the paper's dichotomy table (Figure 5) and classify
every named query of the paper.

Run:  python examples/dichotomy_explorer.py

The first table mirrors Figure 5 — each two-R-atom self-join pattern
with its PTIME and NP-hard cases, classified by the Theorem 37 decision
procedure.  The second table sweeps the whole query zoo (all named
queries of the paper) and compares the classifier's verdict against the
verdict the paper states.
"""

from repro import parse_query
from repro.query.zoo import ALL_QUERIES, PAPER_VERDICTS
from repro.structure import classify

FIGURE_5_ROWS = [
    # (pattern, query text, paper verdict)
    ("chain   ", "R(x,y), R(y,z)", "NPC"),
    ("chain   ", "A(x), R(x,y), B(y), R(y,z), C(z)", "NPC"),
    ("conf    ", "A(x), R(x,y), R(z,y), C(z)", "P"),
    ("conf    ", "R(x,y), H^x(x,z), R(z,y)", "NPC"),
    ("perm    ", "R(x,y), R(y,x)", "P"),
    ("perm    ", "A(x), R(x,y), R(y,x)", "P"),
    ("perm    ", "A(x), R(x,y), R(y,x), B(y)", "NPC"),
    ("REP     ", "R(x,x), R(x,y), A(y)", "P"),
]


def main() -> None:
    print("=" * 72)
    print("Figure 5 — two-R-atom self-join patterns")
    print("=" * 72)
    print(f"{'pattern':9s} {'verdict':13s} {'paper':6s} {'rule':34s} query")
    for pattern, text, paper in FIGURE_5_ROWS:
        q = parse_query(text)
        res = classify(q)
        got = {"P": "P", "NP-complete": "NPC", "OPEN": "OPEN"}[res.verdict.value]
        flag = "" if got == paper else "  << MISMATCH"
        print(f"{pattern:9s} {res.verdict.value:13s} {paper:6s} {res.rule:34s} {text}{flag}")

    print()
    print("=" * 72)
    print("The full query zoo vs the paper's verdicts")
    print("=" * 72)
    agree = 0
    for name in sorted(PAPER_VERDICTS):
        res = classify(ALL_QUERIES[name])
        got = {"P": "P", "NP-complete": "NPC", "OPEN": "OPEN"}[res.verdict.value]
        paper = PAPER_VERDICTS[name]
        mark = "ok" if got == paper else "** MISMATCH **"
        agree += got == paper
        print(f"{name:18s} classifier={got:5s} paper={paper:5s} [{res.rule}] {mark}")
    print(f"\n{agree}/{len(PAPER_VERDICTS)} verdicts match the paper.")


if __name__ == "__main__":
    main()
