"""The paper's polynomial-time algorithms vs exact search.

Run:  python examples/flow_algorithms.py

For each PTIME query of the paper, solve random instances with the
bespoke flow algorithm and with exact hitting-set search, confirm they
agree, and time both to show the flow algorithms scale polynomially
while exact search blows up.
"""

import time

from repro.query.zoo import (
    q_A3perm_R,
    q_ACconf,
    q_Aperm,
    q_Swx3perm_R,
    q_TS3conf,
    q_perm,
    q_z3,
)
from repro.resilience import resilience_exact, solve
from repro.workloads import random_database_for_query

PTIME_QUERIES = [q_ACconf, q_A3perm_R, q_perm, q_Aperm, q_z3, q_TS3conf, q_Swx3perm_R]


def main() -> None:
    print("--- agreement on random instances ---\n")
    for q in PTIME_QUERIES:
        ok = 0
        for seed in range(10):
            db = random_database_for_query(q, domain_size=5, density=0.4, seed=seed)
            fast = solve(db, q)
            slow = resilience_exact(db, q)
            assert fast.value == slow.value, (q.name, seed)
            ok += 1
        print(f"{q.name:16s} {ok}/10 random instances agree "
              f"(algorithm: {fast.method})")

    print("\n--- scaling: flow vs exact on growing q_ACconf instances ---\n")
    print(f"{'domain':>6s} {'tuples':>7s} {'flow (s)':>10s} {'exact (s)':>10s}")
    for domain in (6, 9, 12, 15):
        db = random_database_for_query(
            q_ACconf, domain_size=domain, density=0.3, seed=1
        )
        t0 = time.perf_counter()
        fast = solve(db, q_ACconf)
        t_flow = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = resilience_exact(db, q_ACconf)
        t_exact = time.perf_counter() - t0
        assert fast.value == slow.value
        print(f"{domain:6d} {len(db):7d} {t_flow:10.4f} {t_exact:10.4f}")

    print("\nThe flow algorithms stay fast as instances grow; exact search")
    print("is exponential in the worst case — which is the paper's point")
    print("for the NP-complete side of the dichotomy.")


if __name__ == "__main__":
    main()
