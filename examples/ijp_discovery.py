"""Independent Join Paths: check the paper's examples and re-discover
one automatically (Section 9, Appendix C).

Run:  python examples/ijp_discovery.py
"""

from repro.ijp import (
    check_ijp,
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
    ijp_search,
)
from repro.query.zoo import q_Aperm, q_chain, q_perm, q_vc


def report(name, fn):
    q, db, pair = fn()
    rep = check_ijp(db, q, *pair)
    print(f"{name}: query {q.name}, endpoints {pair[0]} / {pair[1]}")
    print(f"  conditions 1-5: {rep.conditions}")
    print(f"  is IJP: {rep.is_ijp}" + (f", rho = {rep.resilience}" if rep.resilience is not None else ""))
    for reason in rep.reasons:
        print(f"  note: {reason}")
    print()


def main() -> None:
    print("--- The paper's IJP examples (Appendix C.1) ---\n")
    report("Example 58 (q_vc)", example_58_qvc)
    report("Example 59 (triangle, Figure 18)", example_59_triangle)
    report("Example 60 (z5, Figure 19) — as printed", example_60_z5)
    print("  ^ erratum: the printed database has a ninth witness (5,2,3)")
    print("    that its claimed contingency sets miss; see the corrected")
    print("    variant below (R(5,2) replaced by R(6,2)).\n")
    report("Example 60 corrected", example_60_z5_corrected)
    report("Example 61 (two repeated relations) — a failed IJP", example_61_failed)

    print("--- Automated search (Appendix C.2 / Example 62) ---\n")
    for q, max_joins in [(q_vc, 1), (q_chain, 2)]:
        rep = ijp_search(q, max_joins=max_joins)
        print(f"search over canonical copies of {q.name}: ", end="")
        if rep is None:
            print("no IJP found")
        else:
            print(f"IJP found with endpoints {rep.pair[0]} / {rep.pair[1]}")

    print("\nPTIME queries should come up empty (Conjecture 49 converse):")
    for q in (q_perm, q_Aperm):
        rep = ijp_search(q, max_joins=2, partition_budget=5000)
        print(f"  {q.name}: {'no IJP found (as expected)' if rep is None else 'unexpected IJP!'}")


if __name__ == "__main__":
    main()
