"""Quickstart: resilience of a Boolean conjunctive query.

Run:  python examples/quickstart.py

Covers the core workflow: write a query in Datalog syntax, load a
database, ask how many tuples must be deleted to make the query false
(= its resilience, Definition 1 of the paper), and ask the classifier
whether that computation is tractable in general.
"""

from repro import Database, classify, parse_query, solve, witnesses


def main() -> None:
    # The paper's running example: the chain query (Proposition 10).
    q = parse_query("qchain() :- R(x,y), R(y,z)")

    db = Database()
    db.add_all("R", [(1, 2), (2, 3), (3, 3)])

    print(f"query: {q}")
    print(f"database: {sorted(db.all_tuples())}")

    ws = witnesses(db, q)
    print(f"\n{len(ws)} witnesses (valuations of x, y, z):")
    for w in ws:
        print(f"  x={w['x']}, y={w['y']}, z={w['z']}")

    result = solve(db, q)
    print(f"\nresilience rho(q, D) = {result.value}")
    print(f"a minimum contingency set: {sorted(result.contingency_set)}")
    print(f"computed by: {result.method}")

    verdict = classify(q)
    print(f"\ncomplexity of RES(q): {verdict.verdict.value}")
    print(f"  deciding rule: {verdict.rule} — {verdict.detail}")

    # An easy query for contrast: the confluence (Proposition 12).
    q_easy = parse_query("qACconf() :- A(x), R(x,y), R(z,y), C(z)")
    verdict = classify(q_easy)
    print(f"\ncomplexity of RES({q_easy.name}): {verdict.verdict.value}")
    print(f"  deciding rule: {verdict.rule} — {verdict.detail}")


if __name__ == "__main__":
    main()
