"""Walk through the 3SAT -> RES(q_chain) hardness gadget (Prop 10).

Run:  python examples/sat_reduction_demo.py

Builds the Figure 10 database for a small formula, shows the gadget
anatomy (variable cycles, clause triangles, connectors), solves the
resulting resilience problem exactly, and reads the satisfying
assignment back out of the minimum contingency set.
"""

from repro.reductions.chain_gadgets import chain_instance
from repro.resilience.exact import resilience_ilp
from repro.workloads import CNFFormula


def main() -> None:
    # (x1 v x2 v ~x3) & (~x1 v x2 v x3)
    formula = CNFFormula(3, ((1, 2, -3), (-1, 2, 3)))
    print(f"formula: {formula}")
    print(f"satisfiable (exhaustive check): {formula.is_satisfiable()}")

    inst = chain_instance(formula)
    n, m = formula.num_vars, formula.num_clauses
    print(f"\ngadget database: {len(inst.database)} R-tuples")
    print(f"  {n} variable cycles of 2m = {2*m} tuples each")
    print(f"  {m} clause triangles with spokes and connectors")
    print(f"threshold k = n*m + 5*m = {inst.k}")

    result = resilience_ilp(inst.database, inst.query)
    print(f"\nrho(q_chain, D_psi) = {result.value}")
    verdict = "<= k: formula is SATISFIABLE" if result.value <= inst.k else "> k: formula is UNSATISFIABLE"
    print(f"  {result.value} {verdict}")

    # Decode the assignment: a variable is TRUE when its blue tuples
    # (R(v^j, ~v^j)) were deleted.
    gamma = result.contingency_set
    print("\ndecoded assignment from the minimum contingency set:")
    for var in range(1, n + 1):
        blue = [t for t in gamma if t.values[0] == f"v{var}_0" ]
        value = bool(blue)
        print(f"  x{var} = {value}")

    assignment = {
        var: any(t.values[0] == f"v{var}_0" for t in gamma)
        for var in range(1, n + 1)
    }
    print(f"\nassignment satisfies formula: {formula.is_satisfied(assignment)}")

    # Contrast with an unsatisfiable formula: rho exceeds k.
    unsat = CNFFormula(
        3,
        tuple(
            tuple(s * (i + 1) for i, s in enumerate(signs))
            for signs in __import__("itertools").product([1, -1], repeat=3)
        ),
    )
    inst2 = chain_instance(unsat)
    rho2 = resilience_ilp(inst2.database, inst2.query).value
    print(f"\nall-8-clauses formula (unsatisfiable): rho = {rho2}, k = {inst2.k}")
    print(f"  rho > k confirms unsatisfiability: {rho2 > inst2.k}")


if __name__ == "__main__":
    main()
