"""Setup shim: this environment lacks the `wheel` package, so PEP 660
editable installs fail; `python setup.py develop` (or `pip install -e .
--no-build-isolation` once wheel exists) works via this file."""
from setuptools import setup

setup()
