"""repro — Resilience of binary conjunctive queries with self-joins.

A full reproduction of *"New Results for the Complexity of Resilience
for Binary Conjunctive Queries with Self-Joins"* (Freire, Gatterbauer,
Immerman, Meliou — PODS 2020, arXiv:1907.01129).

Quickstart
----------
>>> from repro import Database, parse_query, solve, classify
>>> q = parse_query("qchain() :- R(x,y), R(y,z)")
>>> db = Database()
>>> db.add_all("R", [(1, 2), (2, 3), (3, 3)])
>>> solve(db, q).value
2
>>> classify(q).verdict.value
'NP-complete'

Package map
-----------
``repro.db``
    Databases, relations, tuples (with exogenous marking).
``repro.query``
    Conjunctive queries, parsing, evaluation (witnesses), containment
    and minimization, dual hypergraphs, binary graphs, the query zoo.
``repro.structure``
    Domination, triads, (pseudo-)linearity, self-join patterns, and the
    dichotomy classifier (Theorem 37 + Section 8).
``repro.witness``
    The shared witness-structure engine: integer-indexed witness sets
    with preprocessing reductions (superset elimination, unit forcing,
    dominated-tuple elimination, component decomposition) and a cache.
``repro.resilience``
    Exact solvers, all of the paper's polynomial-time flow algorithms,
    and the certified approximate/anytime tier (LP relaxation + greedy
    bounds + budgeted search), behind a dispatching :func:`solve` with
    ``mode="exact" | "approx" | "anytime"`` and a ``weighted=True``
    min-cost objective over per-tuple deletion costs.
``repro.core``
    The high-level API: :class:`ResilienceAnalyzer`,
    :func:`solve_batch`, and deletion propagation.
``repro.reductions``
    Executable hardness gadgets for every NP-completeness proof.
``repro.ijp``
    Independent Join Paths: the Definition 48 checker, the automated
    search of Appendix C.2, and the paper's example IJPs.
``repro.parallel``
    Sharded parallel batch execution: deterministic shard partitioning
    (pair- and witness-component-granular) and the process-pool
    executor behind ``solve_batch(workers=N)``.
``repro.incremental``
    Incremental resilience under database updates:
    :class:`IncrementalSession` maintains witness structures across
    ``insert``/``delete`` deltas, certifies new optima from the
    single-tuple delta laws, and reuses per-component results across
    database states.
``repro.workloads``
    Random graphs, CNF formulas, and databases for tests/benchmarks.
"""

from repro.db import Database, DBTuple, Relation
from repro.query import (
    Atom,
    BinaryGraph,
    ConjunctiveQuery,
    DualHypergraph,
    minimize,
    parse_query,
    satisfies,
    witnesses,
)
from repro.core import solve_batch
from repro.resilience import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
    resilience,
    resilience_anytime,
    resilience_bounds,
    solve,
)
from repro.incremental import IncrementalSession, Update
from repro.structure import Classification, Verdict, classify, normalize
from repro.witness import ResultCache, WitnessStructure, witness_structure

__version__ = "1.9.0"

__all__ = [
    "Database",
    "DBTuple",
    "Relation",
    "Atom",
    "ConjunctiveQuery",
    "BinaryGraph",
    "DualHypergraph",
    "parse_query",
    "satisfies",
    "witnesses",
    "minimize",
    "BoundedResilienceResult",
    "Budget",
    "ResilienceResult",
    "resilience",
    "resilience_bounds",
    "resilience_anytime",
    "solve",
    "solve_batch",
    "IncrementalSession",
    "Update",
    "ResultCache",
    "WitnessStructure",
    "witness_structure",
    "Classification",
    "Verdict",
    "classify",
    "normalize",
    "__version__",
]
