"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``classify "<query>"``
    Run the dichotomy decision procedure and print the verdict with the
    full structural explanation (triads, domination, patterns).

``solve "<query>" <database.json>``
    Compute resilience over a database given as JSON
    ``{"relations": {"R": {"arity": 2, "exogenous": false,
    "tuples": [[1,2], ...]}}}`` and print the value, a minimum
    contingency set, and the algorithm used.

``zoo``
    List every named query from the paper with its paper verdict and
    the classifier's verdict.

``ijp "<query>"``
    Search for an Independent Join Path (Appendix C.2) within a small
    budget and report the endpoints if found.

``ijp sweep``
    Run the standing open-conjecture sweep (``docs/ijp.md``): shard the
    partition spaces of the paper's OPEN queries (``--queries`` picks
    others, ``--random N`` adds seeded three-occurrence samples) across
    ``--workers`` processes, print the open-query table, and — with
    ``--cache-dir`` — checkpoint every completed shard so an
    interrupted sweep resumes without re-enumerating (``--no-resume``
    forces a recompute).  ``--json OUT`` writes the full report.

``bench``
    Solve a randomized workload through :func:`repro.core.solve_batch`
    and report per-stage timings (enumerate / reduce / solve) plus the
    witness-preprocessing reduction statistics; ``--compare`` also
    times naive per-pair solving and prints the batch speedup.
    ``--mode approx`` / ``--mode anytime`` run the certified bounded
    tier instead of exact solving (``--budget-seconds`` /
    ``--budget-nodes`` cap the anytime refinement), and ``--scale N``
    swaps the workload for the thousands-of-tuples NP-hard scaling
    workload that exact solving cannot touch.  ``--workers N`` solves
    the batch on a process pool with deterministic sharding, and
    ``--cache-dir PATH`` persists results on disk so reruns skip solved
    instances (see ``docs/parallelism.md``).  ``--weighted`` assigns
    skewed per-tuple deletion costs and solves the min-cost weighted
    objective (see ``docs/solvers.md``).  ``--updates N`` switches
    to the dynamic workload: a randomized N-op insert/delete stream
    solved through an :class:`repro.incremental.IncrementalSession`
    after every update (``--compare`` then times naive per-update
    recomputation and checks equality; see ``docs/incremental.md``).

``serve``
    Run the resilience HTTP daemon (``POST /solve`` / ``/solve_batch``,
    ``GET /health`` / ``/metrics``) with request coalescing, admission
    control, and optional on-disk result caching; ``--check`` binds,
    probes ``/health``, and exits (the CI smoke path).  See
    ``docs/serving.md``.

``planner explain "<query>" <database.json>``
    Print the features the cost-based planner extracts from the
    instance, the plan it would run, and the model that priced it
    (see ``docs/planner.md``).

``planner calibrate [records...]``
    Fit a planner cost model offline from committed ``BENCH_*.json``
    trajectory records (default: the checked-in E18/E19/E20 records)
    and print it, or write it with ``--json OUT`` for use via
    ``REPRO_PLANNER_MODEL``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.core.analyzer import ResilienceAnalyzer, solve_batch
from repro.db.database import Database
from repro.ijp.search import ijp_search
from repro.query.parser import parse_query
from repro.query.zoo import ALL_QUERIES, PAPER_VERDICTS
from repro.structure.classifier import classify


def load_database(path: str) -> Database:
    """Load a database from the JSON schema documented in the module.

    The file format is exactly the serving tier's wire form, so a
    database file works unchanged as the ``"database"`` field of a
    ``POST /solve`` payload (and vice versa).
    """
    from repro.serving.wire import database_from_spec

    with open(path) as handle:
        spec = json.load(handle)
    return database_from_spec(spec)


def cmd_classify(args) -> int:
    analyzer = ResilienceAnalyzer(args.query)
    print(analyzer.explain())
    return 0


def cmd_solve(args) -> int:
    query = parse_query(args.query)
    db = load_database(args.database)
    analyzer = ResilienceAnalyzer(query)
    result = analyzer.solve(db)
    print(f"rho = {result.value}")
    print(f"contingency set: {sorted(result.contingency_set)}")
    print(f"method: {result.method}")
    return 0


def cmd_zoo(args) -> int:
    short = {"P": "P", "NP-complete": "NPC", "OPEN": "OPEN"}
    print(f"{'query':20s} {'paper':6s} {'classifier':11s} rule")
    for name in sorted(ALL_QUERIES):
        res = classify(ALL_QUERIES[name])
        paper = PAPER_VERDICTS.get(name, "-")
        print(f"{name:20s} {paper:6s} {short[res.verdict.value]:11s} {res.rule}")
    return 0


def cmd_ijp(args) -> int:
    if args.query == "sweep":
        return _cmd_ijp_sweep(args)
    query = parse_query(args.query)
    report = ijp_search(
        query,
        max_joins=args.max_joins,
        partition_budget=20000 if args.budget is None else args.budget,
    )
    if report is None:
        print("no IJP found within the budget "
              "(not a proof of impossibility — Conjecture 49's converse is open)")
        return 1
    print(f"IJP found: endpoints {report.pair[0]} / {report.pair[1]}")
    print(f"resilience of the gadget: {report.resilience}")
    for reason in report.reasons:
        print(f"  {reason}")
    return 0


def _cmd_ijp_sweep(args) -> int:
    """``repro ijp sweep``: the standing distributed certificate sweep."""
    import random

    from repro.ijp.sweep import OPEN_QUERIES, sweep
    from repro.workloads.random_queries import random_three_occurrence_cq

    if args.queries is None:
        names = list(OPEN_QUERIES)
    else:
        names = [n.strip() for n in args.queries.split(",") if n.strip()]
        unknown = [n for n in names if n not in ALL_QUERIES]
        if unknown:
            print(f"unknown zoo queries: {', '.join(unknown)}", file=sys.stderr)
            return 2
    population = [(name, ALL_QUERIES[name]) for name in names]
    rng = random.Random(args.seed)
    for i in range(args.random):
        population.append(
            (f"rand_3occ_{args.seed}_{i}", random_three_occurrence_cq(rng=rng))
        )
    report = sweep(
        population,
        copies=args.copies,
        budget=args.budget,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=not args.no_resume,
    )
    print(report.render())
    print(
        f"{len(report.sweeps)} ranges, {report.shards_resumed} shards "
        f"resumed, {report.workers} workers, {report.seconds:.1f}s"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


# Queries sharing one vocabulary (A, C unary; R binary) so a single
# random database serves the whole set.  q_vc is excluded: it uses a
# unary R, clashing with the binary R here.
DEFAULT_BENCH_QUERIES = (
    "q_chain,q_sj1_rats,q_perm,q_Aperm,q_ACconf,q_z3,q_conf,q_a_chain"
)


def _warm_imports() -> None:
    """Pay one-time library import costs (HiGHS, networkx, csgraph)
    before timing anything, so whichever strategy runs first is not
    penalized."""
    import networkx  # noqa: F401
    import scipy.optimize  # noqa: F401
    import scipy.sparse  # noqa: F401
    import scipy.sparse.csgraph  # noqa: F401


def _engine_backends() -> dict:
    """The engine backend selection in effect (for ``--json`` records)."""
    from repro.query.columnar import join_backend
    from repro.resilience.flownet import flow_backend
    from repro.witness.structure import _kernel_backend

    return {
        "join": join_backend(),
        "kernel": _kernel_backend(),
        "flow": flow_backend(),
    }


def _stats_payload(stats) -> dict:
    """A :class:`~repro.core.analyzer.BatchStats` as plain JSON data."""
    r = stats.reductions
    return {
        "pairs": stats.pairs,
        "unique_pairs": stats.unique_pairs,
        "mode": stats.mode,
        "methods": dict(sorted(stats.methods.items())),
        "plans": dict(sorted(stats.plans.items())),
        "structures": stats.structures,
        "time_total": stats.time_total,
        "workers": stats.workers,
        "shards": stats.shards,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "intervals_exact": stats.intervals_exact,
        "gap_total": stats.gap_total,
        "reductions": {
            "witnesses_raw": r.witnesses_raw,
            "witnesses_distinct": r.witnesses_distinct,
            "witnesses_minimal": r.witnesses_minimal,
            "witnesses_final": r.witnesses_final,
            "tuples_raw": r.tuples_raw,
            "tuples_final": r.tuples_final,
            "forced_tuples": r.forced_tuples,
            "dominated_tuples": r.dominated_tuples,
            "components": r.components,
            "rounds": r.rounds,
            "time_enumerate": r.time_enumerate,
            "time_reduce": r.time_reduce,
        },
    }


def _write_bench_json(path: str, payload: dict) -> None:
    """Write one machine-readable benchmark record (the ``BENCH_*.json``
    trajectory format; see ``docs/performance.md``)."""
    import repro
    from repro.query.columnar import backend_counters

    record = {
        "schema": 1,
        "bench": "repro-bench-cli",
        "version": repro.__version__,
        "backends": _engine_backends(),
        "join_backend_counters": backend_counters(),
    }
    record.update(payload)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def cmd_bench(args) -> int:
    """Randomized batch-solving benchmark with reduction statistics."""
    from repro.resilience.solver import dispatch_plan, solve
    from repro.resilience.types import Budget
    from repro.witness import clear_witness_cache
    from repro.workloads import (
        HARD_SCALING_QUERIES,
        assign_skewed_costs,
        hard_scaling_workload,
        random_database_for_queries,
        weighted_hard_scaling_workload,
    )

    budget = Budget(
        time_limit=args.budget_seconds, node_limit=args.budget_nodes
    )
    if args.compare and args.mode != "exact":
        print("--compare only applies to --mode exact", file=sys.stderr)
        return 2
    if not budget.unlimited and args.mode != "anytime":
        print(
            "--budget-seconds/--budget-nodes only apply to --mode anytime",
            file=sys.stderr,
        )
        return 2
    if args.updates is not None:
        if args.scale:
            print("--updates and --scale are mutually exclusive", file=sys.stderr)
            return 2
        if args.repeat is not None:
            print("--repeat does not apply to --updates", file=sys.stderr)
            return 2
        if args.weighted:
            print("--weighted does not apply to --updates", file=sys.stderr)
            return 2
        return _bench_updates(args, budget)
    if args.scale:
        if args.mode == "exact":
            print(
                "--scale generates instances exact solving cannot touch; "
                "use --mode approx or --mode anytime",
                file=sys.stderr,
            )
            return 2
        if args.mode == "anytime" and budget.unlimited:
            # An unlimited anytime search IS an exact solve — the very
            # thing --scale instances are built to defeat.
            print(
                "--mode anytime --scale needs --budget-seconds or "
                "--budget-nodes (an unlimited budget is an exact solve)",
                file=sys.stderr,
            )
            return 2
        ignored = [
            flag
            for flag, value in (
                ("--queries", args.queries),
                ("--domain-size", args.domain_size),
                ("--density", args.density),
                ("--repeat", args.repeat),
            )
            if value is not None
        ]
        if ignored:
            print(
                f"--scale uses its own fixed NP-hard workload; "
                f"not compatible with {', '.join(ignored)}",
                file=sys.stderr,
            )
            return 2
        if args.weighted:
            pairs = weighted_hard_scaling_workload(
                n_tuples=args.scale, n_databases=args.databases, seed=args.seed
            )
        else:
            pairs = hard_scaling_workload(
                n_tuples=args.scale, n_databases=args.databases, seed=args.seed
            )
        print(
            f"workload: {len(HARD_SCALING_QUERIES)} NP-hard queries x "
            f"{args.databases} shared databases of ~{args.scale} tuples per "
            f"binary relation = {len(pairs)} pairs (seed {args.seed}"
            f"{', skewed costs' if args.weighted else ''})"
        )
    else:
        queries_spec = (
            args.queries if args.queries is not None else DEFAULT_BENCH_QUERIES
        )
        domain_size = args.domain_size if args.domain_size is not None else 5
        density = args.density if args.density is not None else 0.4
        repeat = args.repeat if args.repeat is not None else 2
        names = [n.strip() for n in queries_spec.split(",") if n.strip()]
        unknown = [n for n in names if n not in ALL_QUERIES]
        if unknown:
            print(f"unknown zoo queries: {', '.join(unknown)}", file=sys.stderr)
            return 2
        queries = [ALL_QUERIES[n] for n in names]
        # The cross product query x database: every database is shared by
        # all queries, which is the workload shape batch solving amortizes.
        try:
            dbs = [
                random_database_for_queries(
                    queries,
                    domain_size=domain_size,
                    density=density,
                    seed=args.seed + i,
                )
                for i in range(args.databases)
            ]
        except ValueError as exc:
            # e.g. q_chain (binary R) mixed with q_vc (unary R)
            print(f"incompatible query set: {exc}", file=sys.stderr)
            return 2
        if args.weighted:
            for i, db in enumerate(dbs):
                assign_skewed_costs(db, seed=args.seed + 7919 * (i + 1))
        pairs = [(db, q) for db in dbs for q in queries] * repeat
        print(
            f"workload: {len(queries)} queries x {len(dbs)} shared databases "
            f"x {repeat} repeats = {len(pairs)} pairs "
            f"(domain {domain_size}, density {density}, seed {args.seed}"
            f"{', skewed costs' if args.weighted else ''})"
        )

    _warm_imports()

    planner = None if args.planner is None else (args.planner == "on")
    clear_witness_cache()
    dispatch_plan.cache_clear()
    batch = solve_batch(
        pairs,
        mode=args.mode,
        budget=budget,
        workers=args.workers,
        cache_dir=args.cache_dir,
        weighted=args.weighted,
        planner=planner,
    )
    for line in batch.stats.summary_lines():
        print(line)
    if args.json:
        _write_bench_json(
            args.json,
            {
                "command": "bench",
                "workload": {
                    "kind": "scale" if args.scale else "static",
                    "pairs": len(pairs),
                    "databases": args.databases,
                    "seed": args.seed,
                    "scale": args.scale,
                    "weighted": bool(args.weighted),
                    "planner": args.planner,
                },
                "stats": _stats_payload(batch.stats),
                "values": batch.values(),
            },
        )

    if args.compare:
        # Fresh caches so the per-pair loop pays the same cold costs the
        # batch just paid.
        clear_witness_cache()
        dispatch_plan.cache_clear()
        t0 = time.perf_counter()
        singles = [solve(db, q, weighted=args.weighted) for db, q in pairs]
        t_single = time.perf_counter() - t0
        if [r.value for r in singles] != batch.values():
            print("MISMATCH between batch and per-pair values!", file=sys.stderr)
            return 1
        speedup = t_single / batch.stats.time_total if batch.stats.time_total else 0
        print(
            f"per-pair solve: {t_single:.3f}s -> batch speedup {speedup:.2f}x"
        )
    return 0


def _bench_updates(args, budget) -> int:
    """The ``repro bench --updates N`` dynamic-workload benchmark.

    Generates a reproducible N-op insert/delete stream over the query
    set, solves every query after every update through an
    :class:`~repro.incremental.IncrementalSession`, and (with
    ``--compare``) times naive per-update recomputation and verifies
    the values agree op by op.
    """
    from repro.incremental import IncrementalSession
    from repro.resilience.solver import dispatch_plan, solve
    from repro.witness import clear_witness_cache
    from repro.workloads import apply_update, update_stream

    queries_spec = (
        args.queries if args.queries is not None else DEFAULT_BENCH_QUERIES
    )
    names = [n.strip() for n in queries_spec.split(",") if n.strip()]
    unknown = [n for n in names if n not in ALL_QUERIES]
    if unknown:
        print(f"unknown zoo queries: {', '.join(unknown)}", file=sys.stderr)
        return 2
    queries = [ALL_QUERIES[n] for n in names]
    domain_size = args.domain_size if args.domain_size is not None else 5
    density = args.density if args.density is not None else 0.4
    try:
        db, stream = update_stream(
            queries,
            n_ops=args.updates,
            seed=args.seed,
            domain_size=domain_size,
            density=density,
        )
    except ValueError as exc:
        print(f"incompatible query set: {exc}", file=sys.stderr)
        return 2
    print(
        f"workload: {args.updates}-op update stream over {len(queries)} "
        f"queries, initial n={len(db)} (domain {domain_size}, "
        f"density {density}, seed {args.seed})"
    )

    _warm_imports()

    solve_budget = budget if args.mode == "anytime" else None
    session = IncrementalSession(
        db, queries, cache_dir=args.cache_dir, workers=args.workers
    )
    t0 = time.perf_counter()
    per_op_values: List[List[int]] = []
    for update in stream:
        session.apply([update])
        results = session.solve_all(mode=args.mode, budget=solve_budget)
        per_op_values.append([r.value for r in results])
    t_incremental = time.perf_counter() - t0
    rate = len(stream) / t_incremental if t_incremental else float("inf")
    print(
        f"incremental: {len(stream)} updates x {len(queries)} queries in "
        f"{t_incremental:.3f}s ({rate:.0f} updates/s, mode {args.mode})"
    )
    for line in session.stats.summary_lines():
        print(line)
    if args.json:
        _write_bench_json(
            args.json,
            {
                "command": "bench --updates",
                "workload": {
                    "kind": "updates",
                    "updates": args.updates,
                    "queries": len(queries),
                    "seed": args.seed,
                },
                "mode": args.mode,
                "incremental_seconds": t_incremental,
                "updates_per_second": rate if t_incremental else None,
            },
        )

    if args.compare:
        shadow = db.copy()
        clear_witness_cache()
        dispatch_plan.cache_clear()
        t0 = time.perf_counter()
        for i, update in enumerate(stream):
            apply_update(shadow, update)
            values = [solve(shadow, q).value for q in queries]
            if values != per_op_values[i]:
                print(
                    f"MISMATCH at op {i} ({update!r}): incremental "
                    f"{per_op_values[i]} vs recompute {values}",
                    file=sys.stderr,
                )
                return 1
        t_recompute = time.perf_counter() - t0
        speedup = t_recompute / t_incremental if t_incremental else 0
        print(
            f"per-update recompute: {t_recompute:.3f}s -> incremental "
            f"speedup {speedup:.2f}x"
        )
    return 0


def cmd_planner_explain(args) -> int:
    """Print the planner's features, plan, and model for one instance."""
    from repro.planner import active_model, extract_features, plan_instance
    from repro.resilience.types import Budget

    query = parse_query(args.query) if args.query not in ALL_QUERIES else (
        ALL_QUERIES[args.query]
    )
    db = load_database(args.database)
    budget = Budget(
        time_limit=args.budget_seconds, node_limit=args.budget_nodes
    )
    budget_arg = None if budget.unlimited else budget
    model = active_model()
    features = extract_features(
        db, query, mode=args.mode, budget=budget_arg, weighted=args.weighted
    )
    plan = plan_instance(
        db, query, mode=args.mode, budget=budget_arg, weighted=args.weighted
    )
    print(f"model: {model.version}"
          + (f" (source: {', '.join(model.source)})" if model.source else ""))
    print("features:")
    for name, value in features.as_dict().items():
        print(f"  {name}: {value}")
    if features.kernel_size is not None:
        print(f"  kernel_size: {features.kernel_size}")
    print(f"plan: {plan.signature()}")
    print(
        "note: explicit solve() arguments and REPRO_* backend env vars "
        "override the plan (see docs/planner.md)"
    )
    return 0


# The checked-in trajectory records `repro planner calibrate` reads by
# default (relative to the current directory, i.e. the repo root).
DEFAULT_CALIBRATION_RECORDS = (
    "BENCH_e18_hotpaths.json",
    "BENCH_e19_serving.json",
    "BENCH_e20_weighted.json",
)


def cmd_planner_calibrate(args) -> int:
    """Fit a cost model from BENCH_*.json records and print/write it."""
    from repro.planner import calibrate

    paths = args.records if args.records else list(DEFAULT_CALIBRATION_RECORDS)
    records = []
    for path in paths:
        try:
            with open(path) as handle:
                records.append((path, json.load(handle)))
        except (OSError, ValueError) as exc:
            print(f"cannot read record {path}: {exc}", file=sys.stderr)
            return 2
    try:
        model = calibrate(records)
    except ValueError as exc:
        print(f"calibration failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        model.save(args.json)
        print(f"wrote {args.json} (version {model.version})")
        print(f"use it with REPRO_PLANNER_MODEL={args.json}")
    else:
        print(json.dumps(model.to_json(), indent=2, sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    """Run the serving daemon (``repro serve``)."""
    from repro.serving import AdmissionPolicy, ResilienceServer, ServingClient

    server = ResilienceServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        policy=AdmissionPolicy.from_env(),
        workers=args.workers,
    )
    print(
        f"serving resilience on {server.address} "
        f"(workers={server.app.workers}, "
        f"cache={'on: ' + args.cache_dir if args.cache_dir else 'off'})"
    )
    if args.check:
        # CI smoke: bind, round-trip /health over a real socket, exit.
        server.start()
        try:
            payload = ServingClient(server.address, timeout=10).health()
        finally:
            server.stop()
        print(f"health: {json.dumps(payload, sort_keys=True)}")
        return 0 if payload.get("status") == "ok" else 1
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resilience of conjunctive queries with self-joins (PODS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="classify RES(q) as P / NP-complete / OPEN")
    p.add_argument("query", help='e.g. "R(x,y), R(y,z)"')
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("solve", help="compute resilience over a JSON database")
    p.add_argument("query")
    p.add_argument("database", help="path to a database JSON file")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("zoo", help="list the paper's queries and verdicts")
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser(
        "ijp",
        help="search for an Independent Join Path, or run the standing "
        "'sweep' over the open queries",
    )
    p.add_argument("query", help='a query string, or "sweep"')
    p.add_argument("--max-joins", type=int, default=2)
    p.add_argument(
        "--budget",
        type=int,
        default=None,
        help="partition budget (default: 20000 for a single search, "
        "full coverage for a sweep; counts covered = enumerated + "
        "pruned partitions per copy count)",
    )
    p.add_argument(
        "--queries",
        default=None,
        help="sweep: comma-separated zoo names (default: the seven "
        "OPEN queries)",
    )
    p.add_argument(
        "--copies", type=int, default=3, help="sweep: max join copies"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep: worker processes (results are bit-identical to "
        "serial for any count)",
    )
    p.add_argument(
        "--random",
        type=int,
        default=0,
        metavar="N",
        help="sweep: add N seeded random three-occurrence queries",
    )
    p.add_argument("--seed", type=int, default=0, help="sweep: random seed")
    p.add_argument(
        "--cache-dir",
        default=None,
        help="sweep: checkpoint shards and probe results here (enables "
        "resume)",
    )
    p.add_argument(
        "--no-resume",
        action="store_true",
        help="sweep: ignore existing shard checkpoints",
    )
    p.add_argument(
        "--json", default=None, metavar="OUT", help="sweep: write the report"
    )
    p.set_defaults(func=cmd_ijp)

    p = sub.add_parser(
        "bench", help="batch-solve a random workload and report timings"
    )
    p.add_argument(
        "--queries",
        default=None,
        help="comma-separated zoo query names (default: a shared-vocabulary "
        "mix; incompatible with --scale)",
    )
    p.add_argument(
        "--databases", type=int, default=10, help="shared databases to generate"
    )
    p.add_argument(
        "--domain-size", type=int, default=None, help="default 5; not with --scale"
    )
    p.add_argument(
        "--density", type=float, default=None, help="default 0.4; not with --scale"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="solve each pair this many times (default 2; benchmark suites "
        "cross-check pairs repeatedly; the batch memoizes duplicates); "
        "not with --scale",
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="also time naive per-pair solving and print the speedup",
    )
    p.add_argument(
        "--mode",
        choices=("exact", "approx", "anytime"),
        default="exact",
        help="solving tier: exact values, certified approx intervals, or "
        "budgeted anytime refinement",
    )
    p.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="anytime refinement wall-clock budget (default unlimited)",
    )
    p.add_argument(
        "--budget-nodes",
        type=int,
        default=None,
        help="anytime refinement branch-and-bound node budget",
    )
    p.add_argument(
        "--scale",
        type=int,
        default=None,
        metavar="N",
        help="replace the workload with the NP-hard scaling workload "
        "(~N tuples per binary relation; requires a bounded --mode)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="solve the batch on N worker processes with deterministic "
        "sharding (default: serial, or the REPRO_WORKERS env var)",
    )
    p.add_argument(
        "--weighted",
        action="store_true",
        help="assign skewed per-tuple deletion costs and solve the "
        "min-cost (weighted resilience) objective; not with --updates",
    )
    p.add_argument(
        "--updates",
        type=int,
        default=None,
        metavar="N",
        help="benchmark the incremental engine on a randomized N-op "
        "insert/delete stream, solving after every update "
        "(--compare times per-update recomputation; not with --scale)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist results in a content-hash-keyed on-disk cache; "
        "reruns over the same instances are served from disk",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write a machine-readable benchmark record (the "
        "BENCH_*.json trajectory format, see docs/performance.md): "
        "workload, engine backends, batch statistics, values",
    )
    p.add_argument(
        "--planner",
        choices=("on", "off"),
        default=None,
        help="force the cost-based backend planner on or off for the "
        "batch (default: the REPRO_PLANNER env var, which defaults on; "
        "see docs/planner.md)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "planner",
        help="inspect or calibrate the cost-based backend planner",
    )
    planner_sub = p.add_subparsers(dest="planner_command", required=True)

    pe = planner_sub.add_parser(
        "explain",
        help="print the features, plan, and model for one instance",
    )
    pe.add_argument("query", help='zoo name or e.g. "R(x,y), R(y,z)"')
    pe.add_argument("database", help="path to a database JSON file")
    pe.add_argument(
        "--mode", choices=("exact", "approx", "anytime"), default="exact"
    )
    pe.add_argument("--weighted", action="store_true")
    pe.add_argument("--budget-seconds", type=float, default=None)
    pe.add_argument("--budget-nodes", type=int, default=None)
    pe.set_defaults(func=cmd_planner_explain)

    pc = planner_sub.add_parser(
        "calibrate",
        help="fit a cost model from BENCH_*.json trajectory records",
    )
    pc.add_argument(
        "records",
        nargs="*",
        help="trajectory record paths (default: the checked-in "
        "E18/E19/E20 records in the current directory)",
    )
    pc.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the fitted model here (load it back via "
        "REPRO_PLANNER_MODEL) instead of printing it",
    )
    pc.set_defaults(func=cmd_planner_calibrate)

    p = sub.add_parser(
        "serve", help="run the resilience HTTP serving daemon"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8421,
        help="listening port (0 binds an ephemeral port)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size for /solve_batch (default 1: batches "
        "solve in the request thread)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist solved results across restarts (content-hash keyed)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="bind, probe /health over a real socket, and exit (CI smoke)",
    )
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
