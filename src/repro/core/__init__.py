"""High-level API: analysis reports and deletion propagation.

The paper's primary contribution is the complexity map of RES(q); this
package wraps it in the two interfaces a downstream user actually
wants:

* :class:`~repro.core.analyzer.ResilienceAnalyzer` — one object that
  classifies a query, explains the verdict (triads, patterns,
  domination), and solves instances with the right algorithm;
* :mod:`repro.core.deletion_propagation` — the paper's motivating
  application (Section 1): deletion propagation with source
  side-effects for non-Boolean views reduces to resilience of the
  Boolean specialization;
* :func:`~repro.core.analyzer.solve_batch` — amortized solving of many
  (database, query) pairs over shared dispatch plans, evaluation
  indexes, and preprocessed witness structures, optionally fanned out
  across a worker pool (``workers=N``) and backed by the persistent
  result cache (``cache_dir=...``).
"""

from repro.core.analyzer import (
    AnalysisReport,
    BatchResult,
    BatchStats,
    ResilienceAnalyzer,
    solve_batch,
)
from repro.core.deletion_propagation import (
    ViewQuery,
    deletion_propagation,
    parse_view,
)

__all__ = [
    "AnalysisReport",
    "BatchResult",
    "BatchStats",
    "ResilienceAnalyzer",
    "solve_batch",
    "ViewQuery",
    "deletion_propagation",
    "parse_view",
]
