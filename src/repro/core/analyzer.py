"""End-to-end resilience analysis for a fixed query.

:class:`ResilienceAnalyzer` bundles the paper's pipeline — minimize,
normalize (SJ-domination), detect triads / patterns, classify, pick a
solver — behind one object, and renders a human-readable explanation of
*why* the query lands where it does in the dichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.homomorphism import minimize
from repro.query.parser import parse_query
from repro.resilience.solver import solve
from repro.resilience.types import ResilienceResult
from repro.structure.classifier import Classification, Verdict, classify
from repro.structure.domination import dominated_relations, normalize
from repro.structure.linearity import find_linear_order, is_pseudo_linear
from repro.structure.patterns import two_atom_pattern
from repro.structure.triads import find_triad


@dataclass
class AnalysisReport:
    """Everything the pipeline learned about one query."""

    query: ConjunctiveQuery
    minimized: ConjunctiveQuery
    normalized: ConjunctiveQuery
    dominated: List[Tuple[str, str]]
    triad: Optional[Tuple[int, int, int]]
    linear_order: Optional[List[int]]
    pseudo_linear: bool
    pattern: Optional[str]
    classification: Classification

    @property
    def verdict(self) -> Verdict:
        return self.classification.verdict

    def explain(self) -> str:
        """A multi-line, paper-vocabulary explanation of the verdict."""
        lines = [f"query: {self.query}"]
        if len(self.minimized.atoms) != len(self.query.atoms):
            lines.append(
                f"minimized to {len(self.minimized.atoms)} atoms: {self.minimized}"
            )
        if self.dominated:
            pairs = ", ".join(f"{a} dominates {b}" for a, b in self.dominated)
            lines.append(f"SJ-domination (Def 16): {pairs}; dominated made exogenous")
        if self.triad is not None:
            atoms = ", ".join(
                repr(self.normalized.atoms[i]) for i in self.triad
            )
            lines.append(f"triad found (Def 5): {{{atoms}}} -> NP-complete (Thm 24)")
        else:
            lines.append("no triad; endogenous atoms are pseudo-linear (Thm 25)")
        if self.linear_order is not None:
            ordered = " < ".join(
                repr(self.normalized.atoms[i]) for i in self.linear_order
            )
            lines.append(f"linear order: {ordered}")
        if self.pattern is not None:
            lines.append(f"two-R-atom pattern (Fig 5): {self.pattern}")
        lines.append(
            f"verdict: RES(q) is {self.classification.verdict.value} "
            f"[{self.classification.rule}] — {self.classification.detail}"
        )
        return "\n".join(lines)


class ResilienceAnalyzer:
    """Analyze and solve resilience for one conjunctive query.

    Parameters
    ----------
    query:
        A :class:`ConjunctiveQuery` or Datalog text (parsed on the fly).

    Examples
    --------
    >>> analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
    >>> analyzer.report().verdict.value
    'NP-complete'
    """

    def __init__(self, query):
        if isinstance(query, str):
            query = parse_query(query)
        self.query: ConjunctiveQuery = query
        self._report: Optional[AnalysisReport] = None

    def report(self) -> AnalysisReport:
        """Run (and cache) the full structural analysis."""
        if self._report is not None:
            return self._report
        minimized = minimize(self.query)
        dominated = dominated_relations(minimized)
        normalized = normalize(minimized)
        triad = find_triad(normalized)
        order = find_linear_order(normalized)
        self._report = AnalysisReport(
            query=self.query,
            minimized=minimized,
            normalized=normalized,
            dominated=dominated,
            triad=triad,
            linear_order=order,
            pseudo_linear=is_pseudo_linear(normalized),
            pattern=two_atom_pattern(normalized),
            classification=classify(self.query),
        )
        return self._report

    def solve(self, database: Database) -> ResilienceResult:
        """Resilience of this query over ``database`` (auto dispatch)."""
        return solve(database, self.query)

    def explain(self) -> str:
        """Shortcut for ``report().explain()``."""
        return self.report().explain()
