"""End-to-end resilience analysis for a fixed query.

:class:`ResilienceAnalyzer` bundles the paper's pipeline — minimize
(Section 4.1), normalize via SJ-domination (Definition 16 /
Proposition 18), detect triads (Definition 5) and the Figure 5
patterns, classify (Theorem 37 plus the Section 8 catalog), pick a
solver — behind one object, and renders a human-readable explanation of
*why* the query lands where it does in the dichotomy.

:func:`solve_batch` is the amortized entry point for many
(database, query) pairs at once: one dispatch plan per distinct query,
one evaluation index per distinct database, one preprocessed witness
structure per distinct pair, with aggregate reduction statistics for
reporting (``repro bench`` consumes them).  Its ``mode`` / ``budget``
parameters expose the certified approximate/anytime tier for workloads
on the NP-complete side of the dichotomy (Theorem 24).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.query.homomorphism import minimize
from repro.query.parser import parse_query
from repro.resilience.solver import dispatch_plan, solve
from repro.resilience.types import ResilienceResult
from repro.structure.classifier import Classification, Verdict, classify
from repro.structure.domination import dominated_relations, normalize
from repro.structure.linearity import find_linear_order, is_pseudo_linear
from repro.structure.patterns import two_atom_pattern
from repro.structure.triads import find_triad
from repro.witness import ReductionStats, witness_cache_info, witness_structure


@dataclass
class AnalysisReport:
    """Everything the pipeline learned about one query."""

    query: ConjunctiveQuery
    minimized: ConjunctiveQuery
    normalized: ConjunctiveQuery
    dominated: List[Tuple[str, str]]
    triad: Optional[Tuple[int, int, int]]
    linear_order: Optional[List[int]]
    pseudo_linear: bool
    pattern: Optional[str]
    classification: Classification

    @property
    def verdict(self) -> Verdict:
        return self.classification.verdict

    def explain(self) -> str:
        """A multi-line, paper-vocabulary explanation of the verdict."""
        lines = [f"query: {self.query}"]
        if len(self.minimized.atoms) != len(self.query.atoms):
            lines.append(
                f"minimized to {len(self.minimized.atoms)} atoms: {self.minimized}"
            )
        if self.dominated:
            pairs = ", ".join(f"{a} dominates {b}" for a, b in self.dominated)
            lines.append(f"SJ-domination (Def 16): {pairs}; dominated made exogenous")
        if self.triad is not None:
            atoms = ", ".join(
                repr(self.normalized.atoms[i]) for i in self.triad
            )
            lines.append(f"triad found (Def 5): {{{atoms}}} -> NP-complete (Thm 24)")
        else:
            lines.append("no triad; endogenous atoms are pseudo-linear (Thm 25)")
        if self.linear_order is not None:
            ordered = " < ".join(
                repr(self.normalized.atoms[i]) for i in self.linear_order
            )
            lines.append(f"linear order: {ordered}")
        if self.pattern is not None:
            lines.append(f"two-R-atom pattern (Fig 5): {self.pattern}")
        lines.append(
            f"verdict: RES(q) is {self.classification.verdict.value} "
            f"[{self.classification.rule}] — {self.classification.detail}"
        )
        return "\n".join(lines)


class ResilienceAnalyzer:
    """Analyze and solve resilience for one conjunctive query.

    Parameters
    ----------
    query:
        A :class:`ConjunctiveQuery` or Datalog text (parsed on the fly).

    Examples
    --------
    >>> analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
    >>> analyzer.report().verdict.value
    'NP-complete'
    """

    def __init__(self, query):
        if isinstance(query, str):
            query = parse_query(query)
        self.query: ConjunctiveQuery = query
        self._report: Optional[AnalysisReport] = None

    def report(self) -> AnalysisReport:
        """Run (and cache) the full structural analysis."""
        if self._report is not None:
            return self._report
        minimized = minimize(self.query)
        dominated = dominated_relations(minimized)
        normalized = normalize(minimized)
        triad = find_triad(normalized)
        order = find_linear_order(normalized)
        self._report = AnalysisReport(
            query=self.query,
            minimized=minimized,
            normalized=normalized,
            dominated=dominated,
            triad=triad,
            linear_order=order,
            pseudo_linear=is_pseudo_linear(normalized),
            pattern=two_atom_pattern(normalized),
            classification=classify(self.query),
        )
        return self._report

    def solve(self, database: Database, mode: str = "exact", budget=None):
        """Resilience of this query over ``database`` (auto dispatch).

        ``mode`` and ``budget`` pass through to
        :func:`repro.resilience.solver.solve`: ``"exact"`` (default)
        returns a :class:`ResilienceResult`; ``"approx"`` /
        ``"anytime"`` return a certified
        :class:`~repro.resilience.types.BoundedResilienceResult`
        interval, the latter refined within ``budget``.
        """
        return solve(database, self.query, mode=mode, budget=budget)

    def explain(self) -> str:
        """Shortcut for ``report().explain()``."""
        return self.report().explain()


# ---------------------------------------------------------------------------
# Batch solving
# ---------------------------------------------------------------------------

@dataclass
class BatchStats:
    """Aggregate accounting for one :func:`solve_batch` call.

    ``mode`` records which solving tier produced the batch; for the
    bounded tiers (``"approx"`` / ``"anytime"``) the interval counters
    below summarize certification quality: ``intervals_exact`` pairs
    closed their interval (``lb == ub``), and ``gap_total`` sums the
    remaining ``ub - lb`` over the ones that did not.
    """

    pairs: int = 0
    unique_pairs: int = 0
    methods: Counter = field(default_factory=Counter)
    structures: int = 0
    reductions: ReductionStats = field(default_factory=ReductionStats)
    time_total: float = 0.0
    mode: str = "exact"
    intervals_exact: int = 0
    gap_total: int = 0

    def summary_lines(self) -> List[str]:
        """Human-readable report (used by ``repro bench``)."""
        r = self.reductions
        per_s = self.pairs / self.time_total if self.time_total else float("inf")
        lines = [
            f"pairs: {self.pairs} ({self.unique_pairs} unique) "
            f"in {self.time_total:.3f}s ({per_s:.0f} pairs/s, mode {self.mode})",
            "methods: "
            + ", ".join(f"{m}={c}" for m, c in sorted(self.methods.items())),
        ]
        if self.mode != "exact":
            lines.append(
                f"certified intervals: {self.intervals_exact}/{self.pairs} "
                f"closed (lb == ub), total remaining gap {self.gap_total}"
            )
        if self.structures:
            duplicates = r.witnesses_raw - r.witnesses_distinct
            superset = r.witnesses_distinct - r.witnesses_minimal
            lines += [
                f"witness structures built: {self.structures} "
                f"(enumerate {r.time_enumerate:.3f}s, reduce {r.time_reduce:.3f}s)",
                f"  witnesses {r.witnesses_raw} -> {r.witnesses_minimal} minimal "
                f"-> {r.witnesses_final} after forcing/domination",
                f"  tuples {r.tuples_raw} -> {r.tuples_final} "
                f"(forced {r.forced_tuples}, dominated {r.dominated_tuples})",
                f"  kernelization: duplicates={duplicates} superset={superset} "
                f"unit={r.forced_tuples} dominated={r.dominated_tuples} "
                f"components={r.components}",
                f"  components: {r.components} "
                f"across {self.structures} structures, {r.rounds} reduction rounds",
            ]
        return lines


class BatchResult(Sequence):
    """Results of :func:`solve_batch`, in input order, plus statistics.

    Behaves as a sequence of :class:`ResilienceResult`; ``stats`` holds
    the aggregate :class:`BatchStats`.
    """

    def __init__(self, results: List[ResilienceResult], stats: BatchStats):
        self.results = results
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i):
        return self.results[i]

    def values(self) -> List[int]:
        """Just the resilience values, in input order (for bounded
        modes: the certified upper bounds)."""
        return [r.value for r in self.results]

    def intervals(self) -> List[Tuple[int, int]]:
        """The ``(lb, ub)`` intervals, in input order (bounded modes
        only; exact results raise ``AttributeError``)."""
        return [r.interval for r in self.results]

    def __repr__(self) -> str:
        return f"BatchResult(n={len(self.results)}, stats={self.stats})"


def solve_batch(
    pairs: Iterable[Tuple[Database, ConjunctiveQuery]],
    method: Optional[str] = None,
    mode: str = "exact",
    budget=None,
) -> BatchResult:
    """Solve many (database, query) pairs, amortizing shared work.

    Compared to calling :func:`repro.resilience.solver.solve` per pair,
    this reuses three things across the batch:

    * one :class:`DispatchPlan` per distinct query signature (the
      classifier, flow-safety analysis, and flow-network setup run once
      per query, not once per pair);
    * one :class:`~repro.query.evaluation.DatabaseIndex` per distinct
      database object (per-relation hash indexes are shared by the
      satisfiability probes and witness enumeration of every query
      solved over it);
    * one preprocessed witness structure — and one result — per
      distinct (database, query) pair; duplicated pairs are free.

    Databases must not be mutated while the batch runs (identity is
    used to share indexes).  ``method`` forces a backend exactly as in
    :func:`~repro.resilience.solver.solve`; ``mode`` and ``budget``
    select the solving tier per the same function (``"approx"`` /
    ``"anytime"`` produce certified
    :class:`~repro.resilience.types.BoundedResilienceResult` intervals,
    with the shared ``budget`` applying to each distinct pair).  Results
    come back in input order inside a :class:`BatchResult` carrying
    aggregate reduction and interval statistics.
    """
    pair_list = list(pairs)
    t0 = time.perf_counter()
    stats = BatchStats(pairs=len(pair_list), mode=mode)
    results: List[Optional[ResilienceResult]] = [None] * len(pair_list)
    indexes: Dict[int, DatabaseIndex] = {}
    memo: Dict[Tuple[int, frozenset], ResilienceResult] = {}

    for i, (db, query) in enumerate(pair_list):
        key = (id(db), query.canonical_signature())
        res = memo.get(key)
        if res is None:
            index = indexes.get(id(db))
            if index is None:
                index = DatabaseIndex(db)
                indexes[id(db)] = index
            if method is None and dispatch_plan(query).kind == "exact":
                _, misses_before, _ = witness_cache_info()
                ws = witness_structure(db, query, index=index)
                _, misses_after, _ = witness_cache_info()
                # Only count structures this batch actually built —
                # cache hits (from this batch or an earlier caller)
                # did not pay the enumerate/reduce times being merged.
                if misses_after > misses_before:
                    stats.structures += 1
                    stats.reductions.merge(ws.stats)
                res = solve(
                    db, query, structure=ws, index=index, mode=mode, budget=budget
                )
            else:
                res = solve(
                    db, query, method=method, index=index, mode=mode, budget=budget
                )
            memo[key] = res
        results[i] = res
        stats.methods[res.method] += 1
        if mode != "exact":
            if res.is_exact:
                stats.intervals_exact += 1
            else:
                stats.gap_total += res.gap

    stats.unique_pairs = len(memo)
    stats.time_total = time.perf_counter() - t0
    return BatchResult(results, stats)
