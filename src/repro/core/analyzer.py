"""End-to-end resilience analysis for a fixed query.

:class:`ResilienceAnalyzer` bundles the paper's pipeline — minimize
(Section 4.1), normalize via SJ-domination (Definition 16 /
Proposition 18), detect triads (Definition 5) and the Figure 5
patterns, classify (Theorem 37 plus the Section 8 catalog), pick a
solver — behind one object, and renders a human-readable explanation of
*why* the query lands where it does in the dichotomy.

:func:`solve_batch` is the amortized entry point for many
(database, query) pairs at once: one dispatch plan per distinct query,
one evaluation index per distinct database, one preprocessed witness
structure per distinct pair, with aggregate reduction statistics for
reporting (``repro bench`` consumes them).  Its ``mode`` / ``budget``
parameters expose the certified approximate/anytime tier for workloads
on the NP-complete side of the dichotomy (Theorem 24); ``workers``
fans the batch out across a process pool via :mod:`repro.parallel`,
and ``cache_dir`` backs it with the persistent
:class:`~repro.witness.cache.ResultCache` (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.query.homomorphism import minimize
from repro.query.parser import parse_query
from repro.resilience.solver import dispatch_plan, solve
from repro.resilience.types import ResilienceResult
from repro.structure.classifier import Classification, Verdict, classify
from repro.structure.domination import dominated_relations, normalize
from repro.structure.linearity import find_linear_order, is_pseudo_linear
from repro.structure.patterns import two_atom_pattern
from repro.structure.triads import find_triad
from repro.witness import (
    ReductionStats,
    ResultCache,
    pair_cache_key,
    witness_cache_info,
    witness_structure,
)


@dataclass
class AnalysisReport:
    """Everything the pipeline learned about one query."""

    query: ConjunctiveQuery
    minimized: ConjunctiveQuery
    normalized: ConjunctiveQuery
    dominated: List[Tuple[str, str]]
    triad: Optional[Tuple[int, int, int]]
    linear_order: Optional[List[int]]
    pseudo_linear: bool
    pattern: Optional[str]
    classification: Classification

    @property
    def verdict(self) -> Verdict:
        return self.classification.verdict

    def explain(self) -> str:
        """A multi-line, paper-vocabulary explanation of the verdict."""
        lines = [f"query: {self.query}"]
        if len(self.minimized.atoms) != len(self.query.atoms):
            lines.append(
                f"minimized to {len(self.minimized.atoms)} atoms: {self.minimized}"
            )
        if self.dominated:
            pairs = ", ".join(f"{a} dominates {b}" for a, b in self.dominated)
            lines.append(f"SJ-domination (Def 16): {pairs}; dominated made exogenous")
        if self.triad is not None:
            atoms = ", ".join(
                repr(self.normalized.atoms[i]) for i in self.triad
            )
            lines.append(f"triad found (Def 5): {{{atoms}}} -> NP-complete (Thm 24)")
        else:
            lines.append("no triad; endogenous atoms are pseudo-linear (Thm 25)")
        if self.linear_order is not None:
            ordered = " < ".join(
                repr(self.normalized.atoms[i]) for i in self.linear_order
            )
            lines.append(f"linear order: {ordered}")
        if self.pattern is not None:
            lines.append(f"two-R-atom pattern (Fig 5): {self.pattern}")
        lines.append(
            f"verdict: RES(q) is {self.classification.verdict.value} "
            f"[{self.classification.rule}] — {self.classification.detail}"
        )
        return "\n".join(lines)


class ResilienceAnalyzer:
    """Analyze and solve resilience for one conjunctive query.

    Parameters
    ----------
    query:
        A :class:`ConjunctiveQuery` or Datalog text (parsed on the fly).

    Examples
    --------
    >>> analyzer = ResilienceAnalyzer("R(x,y), R(y,z)")
    >>> analyzer.report().verdict.value
    'NP-complete'
    """

    def __init__(self, query):
        if isinstance(query, str):
            query = parse_query(query)
        self.query: ConjunctiveQuery = query
        self._report: Optional[AnalysisReport] = None

    def report(self) -> AnalysisReport:
        """Run (and cache) the full structural analysis."""
        if self._report is not None:
            return self._report
        minimized = minimize(self.query)
        dominated = dominated_relations(minimized)
        normalized = normalize(minimized)
        triad = find_triad(normalized)
        order = find_linear_order(normalized)
        self._report = AnalysisReport(
            query=self.query,
            minimized=minimized,
            normalized=normalized,
            dominated=dominated,
            triad=triad,
            linear_order=order,
            pseudo_linear=is_pseudo_linear(normalized),
            pattern=two_atom_pattern(normalized),
            classification=classify(self.query),
        )
        return self._report

    def solve(
        self,
        database: Database,
        mode: str = "exact",
        budget=None,
        weighted: bool = False,
    ):
        """Resilience of this query over ``database`` (auto dispatch).

        ``mode``, ``budget``, and ``weighted`` pass through to
        :func:`repro.resilience.solver.solve`: ``"exact"`` (default)
        returns a :class:`ResilienceResult`; ``"approx"`` /
        ``"anytime"`` return a certified
        :class:`~repro.resilience.types.BoundedResilienceResult`
        interval, the latter refined within ``budget``.
        """
        return solve(
            database, self.query, mode=mode, budget=budget, weighted=weighted
        )

    def solve_many(
        self,
        databases: Iterable[Database],
        mode: str = "exact",
        budget=None,
        workers: Optional[int] = None,
        cache_dir=None,
        weighted: bool = False,
    ) -> "BatchResult":
        """Solve this query over many databases through the batch engine.

        Equivalent to ``solve_batch([(db, q) for db in databases], ...)``
        — one dispatch plan for the query, one evaluation index per
        database, with the full ``workers`` / ``cache_dir`` machinery of
        :func:`solve_batch` available.  Results come back in input
        order inside a :class:`BatchResult`.
        """
        return solve_batch(
            [(db, self.query) for db in databases],
            mode=mode,
            budget=budget,
            workers=workers,
            cache_dir=cache_dir,
            weighted=weighted,
        )

    def session(
        self,
        database: Database,
        cache_dir=None,
        workers: Optional[int] = None,
        warm_start: bool = True,
    ):
        """An incremental solving session for this query over ``database``.

        Returns a :class:`~repro.incremental.IncrementalSession` that
        applies ``insert``/``delete``/``apply`` tuple updates and keeps
        every answer equal to a from-scratch solve while re-doing only
        delta work (see ``docs/incremental.md``).  ``cache_dir`` backs
        the per-component results with the persistent
        :class:`~repro.witness.cache.ResultCache`; ``workers`` fans
        uncached component solves out through :mod:`repro.parallel`.
        """
        # Imported here: repro.incremental builds on the solver stack
        # that this module also feeds, so the import stays one-way.
        from repro.incremental import IncrementalSession

        return IncrementalSession(
            database,
            self.query,
            cache_dir=cache_dir,
            workers=workers,
            warm_start=warm_start,
        )

    def explain(self) -> str:
        """Shortcut for ``report().explain()``."""
        return self.report().explain()


# ---------------------------------------------------------------------------
# Batch solving
# ---------------------------------------------------------------------------

@dataclass
class BatchStats:
    """Aggregate accounting for one :func:`solve_batch` call.

    ``mode`` records which solving tier produced the batch; for the
    bounded tiers (``"approx"`` / ``"anytime"``) the interval counters
    below summarize certification quality: ``intervals_exact`` pairs
    closed their interval (``lb == ub``), and ``gap_total`` sums the
    remaining ``ub - lb`` over the ones that did not.

    Execution telemetry: ``workers`` is the worker count the batch ran
    with (1 = serial), ``shards`` how many shards were dispatched to
    the pool, and ``cache_hits`` / ``cache_misses`` how many *unique*
    pairs the persistent result cache served / had to compute (zero
    when no ``cache_dir`` was given).  ``plans`` counts the planner's
    per-instance decisions by plan signature (one entry per *solved*
    unique pair; empty when planning is off — see
    :mod:`repro.planner`).  Every counter in this object is
    reproducible for a fixed input batch regardless of worker count;
    only the wall-clock fields (``time_total`` and the times inside
    ``reductions``) vary run to run.
    """

    pairs: int = 0
    unique_pairs: int = 0
    methods: Counter = field(default_factory=Counter)
    structures: int = 0
    reductions: ReductionStats = field(default_factory=ReductionStats)
    time_total: float = 0.0
    mode: str = "exact"
    intervals_exact: int = 0
    gap_total: int = 0
    workers: int = 1
    shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    plans: Counter = field(default_factory=Counter)

    def summary_lines(self) -> List[str]:
        """Human-readable report (used by ``repro bench``)."""
        r = self.reductions
        per_s = self.pairs / self.time_total if self.time_total else float("inf")
        lines = [
            f"pairs: {self.pairs} ({self.unique_pairs} unique) "
            f"in {self.time_total:.3f}s ({per_s:.0f} pairs/s, mode {self.mode})",
            "methods: "
            + ", ".join(f"{m}={c}" for m, c in sorted(self.methods.items())),
        ]
        if self.workers > 1:
            lines.append(
                f"parallel: {self.workers} workers, {self.shards} shards"
            )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"result cache: {self.cache_hits} hits, "
                f"{self.cache_misses} misses over {self.unique_pairs} "
                f"unique pairs"
            )
        if self.plans:
            lines.append(
                "plans: "
                + ", ".join(
                    f"{sig} x{count}"
                    for sig, count in sorted(self.plans.items())
                )
            )
        if self.mode != "exact":
            lines.append(
                f"certified intervals: {self.intervals_exact}/{self.pairs} "
                f"closed (lb == ub), total remaining gap {self.gap_total}"
            )
        if self.structures:
            duplicates = r.witnesses_raw - r.witnesses_distinct
            superset = r.witnesses_distinct - r.witnesses_minimal
            lines += [
                f"witness structures built: {self.structures} "
                f"(enumerate {r.time_enumerate:.3f}s, reduce {r.time_reduce:.3f}s)",
                f"  witnesses {r.witnesses_raw} -> {r.witnesses_minimal} minimal "
                f"-> {r.witnesses_final} after forcing/domination",
                f"  tuples {r.tuples_raw} -> {r.tuples_final} "
                f"(forced {r.forced_tuples}, dominated {r.dominated_tuples})",
                f"  kernelization: duplicates={duplicates} superset={superset} "
                f"unit={r.forced_tuples} dominated={r.dominated_tuples} "
                f"components={r.components}",
                f"  components: {r.components} "
                f"across {self.structures} structures, {r.rounds} reduction rounds",
            ]
        return lines


class BatchResult(Sequence):
    """Results of :func:`solve_batch`, in input order, plus statistics.

    Behaves as a sequence of :class:`ResilienceResult`; ``stats`` holds
    the aggregate :class:`BatchStats`.
    """

    def __init__(self, results: List[ResilienceResult], stats: BatchStats):
        self.results = results
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i):
        return self.results[i]

    def values(self) -> List[int]:
        """Just the resilience values, in input order (for bounded
        modes: the certified upper bounds)."""
        return [r.value for r in self.results]

    def intervals(self) -> List[Tuple[int, int]]:
        """The ``(lb, ub)`` intervals, in input order (bounded modes
        only; exact results raise ``AttributeError``)."""
        return [r.interval for r in self.results]

    def __repr__(self) -> str:
        return f"BatchResult(n={len(self.results)}, stats={self.stats})"


# A database at least this large (in tuples) has its post-kernelization
# connected components sharded individually when solving in parallel;
# below it, whole-pair tasks amortize better than a coordinator-side
# structure build.  Override per call via ``split_components``.
COMPONENT_SPLIT_THRESHOLD = 400


def _default_workers() -> int:
    """The worker count used when ``solve_batch(workers=None)``.

    Reads ``REPRO_WORKERS`` (so deployments and the CI parallel leg can
    flip the whole system to pool execution without touching call
    sites); defaults to 1, i.e. serial.
    """
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def solve_batch(
    pairs: Iterable[Tuple[Database, ConjunctiveQuery]],
    method: Optional[str] = None,
    mode: str = "exact",
    budget=None,
    workers: Optional[int] = None,
    cache_dir=None,
    split_components: Union[int, bool, None] = None,
    pool=None,
    weighted: bool = False,
    planner: Optional[bool] = None,
) -> BatchResult:
    """Solve many (database, query) pairs, amortizing shared work.

    Compared to calling :func:`repro.resilience.solver.solve` per pair,
    this reuses three things across the batch:

    * one :class:`DispatchPlan` per distinct query signature (the
      classifier, flow-safety analysis, and flow-network setup run once
      per query, not once per pair);
    * one :class:`~repro.query.evaluation.DatabaseIndex` per distinct
      database object (per-relation hash indexes are shared by the
      satisfiability probes and witness enumeration of every query
      solved over it);
    * one preprocessed witness structure — and one result — per
      distinct (database, query) pair.  Pairs are deduplicated by
      *content* (the database's canonical form plus the query's
      canonical signature), so duplicated pairs are free even when they
      arrive as distinct-but-equal objects.

    Databases must not be mutated while the batch runs (evaluation
    indexes are shared by object identity, and the content keys are
    computed once up front).  ``method`` forces a backend exactly as in
    :func:`~repro.resilience.solver.solve`; ``mode`` and ``budget``
    select the solving tier per the same function (``"approx"`` /
    ``"anytime"`` produce certified
    :class:`~repro.resilience.types.BoundedResilienceResult` intervals,
    with the shared ``budget`` applying to each distinct pair).

    ``workers`` > 1 partitions the unique pairs into deterministic
    shards and solves them on a process pool (:mod:`repro.parallel`);
    large exact instances (``len(db) >=`` ``split_components``,
    default :data:`COMPONENT_SPLIT_THRESHOLD`; pass ``False`` to
    disable) are further split into per-component hitting-set tasks.
    Results — values *and* contingency sets — are identical to a serial
    run, and every :class:`BatchStats` counter is reproducible
    regardless of worker count.  ``workers=None`` reads the
    ``REPRO_WORKERS`` environment variable (default: serial).

    ``cache_dir`` enables the persistent
    :class:`~repro.witness.cache.ResultCache`: unique pairs already
    solved by any earlier invocation (same contents, tier, and budget)
    are served from disk, and newly solved ones are written back, so
    repeated CLI / benchmark runs skip solved instances entirely.

    ``pool`` accepts a persistent :class:`repro.parallel.WorkerPool` to
    execute on instead of a per-call executor — long-lived callers (the
    serving tier) amortize worker start-up across batches this way.
    When a pool is passed and ``workers`` is not, the pool's own worker
    count is used.

    ``weighted=True`` solves the weighted problem per pair, exactly as
    :func:`~repro.resilience.solver.solve` would — pairs over all-unit
    databases delegate to the unweighted path, bit for bit, and the
    persistent cache keys cover the flag and the cost assignments.

    ``planner`` controls per-instance backend planning exactly as in
    :func:`~repro.resilience.solver.solve` (``None`` follows
    ``REPRO_PLANNER``; the coordinator resolves the flag once, so
    workers never consult the environment themselves).  When planning
    is on, each solved unique pair gets a deterministic
    :class:`~repro.planner.Plan` — tallied by signature in
    ``stats.plans`` — that picks its backends, its LPT shard weight,
    and (when ``split_components`` is ``None``) whether the instance
    is decomposed into per-component tasks.  Plans never change
    results: values, certificates, and intervals are bit-identical to
    a planner-off run.

    Results come back in input order inside a :class:`BatchResult`
    carrying aggregate reduction, interval, shard, plan, and cache
    statistics.
    """
    from repro.planner import plan_instance, planner_enabled

    pair_list = list(pairs)
    t0 = time.perf_counter()
    if workers is None:
        workers = pool.workers if pool is not None else _default_workers()
    workers = max(1, int(workers))
    planner_on = planner_enabled(planner)
    stats = BatchStats(pairs=len(pair_list), mode=mode, workers=workers)
    indexes: Dict[int, DatabaseIndex] = {}
    canon: Dict[int, frozenset] = {}

    def _index(db: Database) -> DatabaseIndex:
        index = indexes.get(id(db))
        if index is None:
            index = DatabaseIndex(db)
            indexes[id(db)] = index
        return index

    # Deduplicate by content, preserving first-appearance order (the
    # merge below walks units in this order, which is what makes the
    # accumulated counters independent of shard layout).
    units: Dict[Tuple[frozenset, frozenset], Tuple[Database, ConjunctiveQuery]] = {}
    unit_of_pair: List[Tuple[frozenset, frozenset]] = []
    for db, query in pair_list:
        form = canon.get(id(db))
        if form is None:
            form = db.canonical_form()
            canon[id(db)] = form
        key = (form, query.canonical_signature())
        units.setdefault(key, (db, query))
        unit_of_pair.append(key)

    unit_results: Dict[Tuple[frozenset, frozenset], object] = {}
    cache: Optional[ResultCache] = None
    cache_keys: Dict[Tuple[frozenset, frozenset], str] = {}
    if cache_dir is not None:
        cache = cache_dir if isinstance(cache_dir, ResultCache) else ResultCache(cache_dir)
        for key, (db, query) in units.items():
            ck = pair_cache_key(
                db, query, mode=mode, method=method, budget=budget,
                weighted=weighted,
            )
            cache_keys[key] = ck
            hit = cache.get(ck)
            if hit is not None:
                unit_results[key] = hit
        stats.cache_hits = len(unit_results)
        stats.cache_misses = len(units) - len(unit_results)

    todo = [
        (key, db, query)
        for key, (db, query) in units.items()
        if key not in unit_results
    ]

    # One plan per solved unique pair, computed coordinator-side in
    # first-appearance order: stats.plans is then reproducible for a
    # fixed input batch regardless of worker count or shard layout
    # (workers recompute identical plans from the same content).
    unit_plans: Dict[Tuple[frozenset, frozenset], object] = {}
    if planner_on:
        for key, db, query in todo:
            plan = plan_instance(
                db, query, mode=mode, budget=budget, weighted=weighted
            )
            unit_plans[key] = plan
            stats.plans[plan.signature()] += 1

    def _count_structure_build(ws) -> None:
        stats.structures += 1
        stats.reductions.merge(ws.stats)

    if workers <= 1 and todo:
        # The serial fast path runs the one worker loop in-process: no
        # pool, no pickling, and — because it is literally the same
        # code workers execute — bit-identical to pool execution by
        # construction.
        from repro.parallel import PairTask, Shard, run_shard
        from repro.resilience.types import Budget

        budget_obj = None if budget is None else Budget.coerce(budget)
        tasks = tuple(
            PairTask(
                i, db, query, method, mode, budget_obj, weighted, planner_on
            )
            for i, (key, db, query) in enumerate(todo)
        )
        outcome = run_shard(Shard(0, tasks))
        stats.structures += outcome.telemetry.structures
        stats.reductions.merge(outcome.telemetry.reductions)
        for i, (key, _db, _query) in enumerate(todo):
            unit_results[key] = outcome.outcomes[i]
    elif todo:
        _solve_units_parallel(
            todo,
            unit_results,
            stats,
            _index,
            _count_structure_build,
            method=method,
            mode=mode,
            budget=budget,
            workers=workers,
            split_components=split_components,
            pool=pool,
            weighted=weighted,
            planner_on=planner_on,
            unit_plans=unit_plans,
        )

    if cache is not None:
        for key, _db, _query in todo:
            cache.put(cache_keys[key], unit_results[key])

    results: List[object] = []
    for key in unit_of_pair:
        res = unit_results[key]
        results.append(res)
        stats.methods[res.method] += 1
        if mode != "exact":
            if res.is_exact:
                stats.intervals_exact += 1
            else:
                stats.gap_total += res.gap

    stats.unique_pairs = len(units)
    stats.time_total = time.perf_counter() - t0
    return BatchResult(results, stats)


def _solve_units_parallel(
    todo,
    unit_results,
    stats: BatchStats,
    _index,
    _count_structure_build,
    method: Optional[str],
    mode: str,
    budget,
    workers: int,
    split_components: Union[int, bool, None],
    pool=None,
    weighted: bool = False,
    planner_on: bool = False,
    unit_plans: Optional[Dict[Tuple[frozenset, frozenset], object]] = None,
) -> None:
    """The ``workers > 1`` arm of :func:`solve_batch`.

    Builds the task table (splitting large exact instances into
    per-component hitting-set tasks), shards it deterministically,
    executes on the pool, and assembles unit results.  Mutates
    ``unit_results`` and ``stats`` exactly as the serial arm would:
    outcomes are merged by task id and telemetry in shard order, never
    in completion order, so counters are reproducible.

    With planning on, each unit's precomputed plan (``unit_plans``)
    governs the coordinator-side structure builds (join/kernel
    backends), the split decision when ``split_components`` is ``None``
    (an explicit argument always wins), and the LPT cost hints.
    """
    from repro.parallel import (
        ComponentTask,
        PairTask,
        build_shards,
        execute_shards,
        group_by_database,
    )
    from repro.planner import use_plan
    from repro.resilience.types import Budget

    if split_components is False:
        split_threshold: Optional[int] = None
    elif split_components is None or split_components is True:
        split_threshold = COMPONENT_SPLIT_THRESHOLD
    else:
        split_threshold = int(split_components)
    unit_plans = unit_plans or {}

    budget_obj = None if budget is None else Budget.coerce(budget)
    tasks: List[object] = []
    pair_task_units: Dict[int, Tuple[frozenset, frozenset]] = {}
    # unit key -> (structure, method name, component task ids)
    assemblies: Dict[Tuple[frozenset, frozenset], Tuple[object, str, List[int]]] = {}

    # unit key -> effective weighted flag (all-unit pairs delegate)
    unit_weighted: Dict[Tuple[frozenset, frozenset], bool] = {}

    for key, db, query in todo:
        w = weighted and db.has_weighted_costs()
        unit_weighted[key] = w
        plan = unit_plans.get(key)
        exact_path = (
            method is None and dispatch_plan(query, weighted=w).kind == "exact"
        )
        if split_components is None and plan is not None:
            # The planner's shard-layer decision; an explicit
            # split_components argument (including the legacy True)
            # keeps the static threshold instead.
            split_instance = plan.split
        else:
            split_instance = (
                split_threshold is not None and len(db) >= split_threshold
            )
        if exact_path and mode == "exact" and split_instance:
            index = _index(db)
            with use_plan(plan):
                _, misses_before, _ = witness_cache_info()
                ws = witness_structure(db, query, index=index, weighted=w)
                _, misses_after, _ = witness_cache_info()
                if misses_after > misses_before:
                    _count_structure_build(ws)
                if not ws.satisfied:
                    unit_results[key] = ResilienceResult(
                        0, frozenset(), method="unsatisfied"
                    )
                    continue
                # The backend is decided per whole structure — the same
                # rule resilience_exact(prefer="auto") applies, override
                # (env var / plan) included — so the assembled result
                # names the method a serial solve would have named.
                from repro.resilience.exact import effective_backend

                backend = effective_backend(ws)
            method_name = "ilp" if backend == "ilp" else "branch-and-bound"
            comp_ids: List[int] = []
            for comp in ws.components:
                task_id = len(tasks)
                comp_costs = (
                    tuple((t, ws.costs[t]) for t in comp.tuple_ids)
                    if w
                    else None
                )
                tasks.append(
                    ComponentTask(
                        task_id, comp.tuple_ids, comp.sets, backend, comp_costs
                    )
                )
                comp_ids.append(task_id)
            assemblies[key] = (ws, method_name, comp_ids)
        else:
            task_id = len(tasks)
            tasks.append(
                PairTask(
                    task_id,
                    db,
                    query,
                    method,
                    mode,
                    budget_obj,
                    weighted,
                    planner_on,
                    plan.features.witness_estimate if plan is not None else None,
                )
            )
            pair_task_units[task_id] = key

    shards = build_shards(group_by_database(tasks), workers)
    outcomes, telemetry = execute_shards(shards, workers, pool=pool)
    stats.shards = len(shards)
    for telem in telemetry:
        stats.structures += telem.structures
        stats.reductions.merge(telem.reductions)

    for task_id, key in pair_task_units.items():
        unit_results[key] = outcomes[task_id]
    for key, (ws, method_name, comp_ids) in assemblies.items():
        chosen = set(ws.forced_ids)
        for task_id in comp_ids:
            chosen |= outcomes[task_id]
        value = ws.cost_of(chosen) if unit_weighted[key] else len(chosen)
        unit_results[key] = ResilienceResult(
            value, ws.tuples(chosen), method=method_name
        )
