"""Deletion propagation with source side-effects (Section 1).

The paper's opening observation: *"A solution to [resilience]
immediately translates into a solution for the more widely known
problem of deletion propagation with source-side effects."*  This
module is that translation.

Given a non-Boolean view ``q(y) :- body`` over a database ``D`` and an
output tuple ``t ∈ q(D)``, the source-side-effect deletion-propagation
problem asks for the minimum set of (endogenous) source tuples to
delete so that ``t`` disappears from the view.  This is exactly the
resilience of the Boolean specialization ``q[t/y]``.

Constants are handled per the paper's footnote 3 idiom without touching
the atom machinery: each head variable ``y_i`` is pinned with a fresh
exogenous unary "selector" relation holding just ``t_i``.  Selector
tuples are exogenous, so contingency sets are untouched, and the
specialized Boolean query has a witness exactly when ``t`` is in the
view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from repro.db.database import Database
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.parser import parse_query
from repro.resilience.solver import solve
from repro.resilience.types import ResilienceResult


@dataclass
class ViewQuery:
    """A non-Boolean CQ: a body plus an ordered tuple of head variables."""

    head: Tuple[str, ...]
    body: ConjunctiveQuery
    name: str = "q"

    def __post_init__(self):
        missing = [v for v in self.head if v not in self.body.variables()]
        if missing:
            raise ValueError(f"head variables {missing} not in body")

    def evaluate(self, database: Database) -> set:
        """The view contents ``q(D)``: the set of head-value tuples."""
        out = set()
        for valuation in iter_witnesses(database, self.body):
            out.add(tuple(valuation[v] for v in self.head))
        return out

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.head)}) :- {self.body!r}"


def parse_view(text: str) -> ViewQuery:
    """Parse ``"q(x, z) :- R(x,y), R(y,z)"`` into a :class:`ViewQuery`."""
    if ":-" not in text:
        raise ValueError("a view needs an explicit head, e.g. 'q(x) :- R(x,y)'")
    head_text, _body_text = text.split(":-", 1)
    head_text = head_text.strip()
    if "(" not in head_text:
        raise ValueError(f"malformed head: {head_text!r}")
    name = head_text.split("(", 1)[0].strip() or "q"
    inner = head_text[head_text.index("(") + 1 : head_text.rindex(")")]
    head = tuple(v.strip() for v in inner.split(",") if v.strip())
    body = parse_query(text)
    return ViewQuery(head=head, body=body, name=name)


def _specialize(
    view: ViewQuery, database: Database, output_tuple: Sequence[Hashable]
) -> Tuple[ConjunctiveQuery, Database]:
    """Pin head variables to the output tuple via exogenous selectors."""
    if len(output_tuple) != len(view.head):
        raise ValueError(
            f"output tuple arity {len(output_tuple)} != head arity {len(view.head)}"
        )
    existing = view.body.relation_names()
    atoms: List[Atom] = list(view.body.atoms)
    spec_db = database.copy()
    for i, (var, value) in enumerate(zip(view.head, output_tuple)):
        sel = f"__sel{i}_{var}"
        if sel in existing:  # pragma: no cover - double-underscore namespace
            raise ValueError(f"selector name collision: {sel}")
        atoms.append(Atom(sel, (var,), exogenous=True))
        spec_db.declare(sel, 1, exogenous=True)
        spec_db.add(sel, value)
    boolean = ConjunctiveQuery(atoms, name=f"{view.name}_at_{output_tuple!r}")
    return boolean, spec_db


def deletion_propagation(
    view: ViewQuery,
    database: Database,
    output_tuple: Sequence[Hashable],
) -> ResilienceResult:
    """Minimum source-side deletion removing ``output_tuple`` from the view.

    Returns the same :class:`ResilienceResult` as :func:`repro.solve`:
    ``value`` is the minimum number of endogenous source tuples, and
    ``contingency_set`` is one optimal deletion set.  ``value == 0``
    means the tuple is not in the view to begin with.
    """
    boolean, spec_db = _specialize(view, database, output_tuple)
    return solve(spec_db, boolean)
