"""Relational database substrate.

This subpackage implements the data model of the paper (Section 2):
relational vocabularies, finite relation instances with an *exogenous*
flag, and database instances viewed as a disjoint union of tuples.

The central objects are:

``DBTuple``
    An immutable fact ``R(a, b, ...)`` with a stable identity, so that
    contingency sets (sets of tuples) are well defined even when the same
    value vector appears in two relations.

``Relation``
    A named, fixed-arity set of value vectors, marked endogenous or
    exogenous.  Exogenous relations provide context and may never appear
    in contingency sets (footnote 5 of the paper).

``Database``
    A collection of relations; supports evaluation bookkeeping (active
    domain, size ``n = |D|``) and functional-style deletion ``D - Gamma``.
"""

from repro.db.tuples import DBTuple
from repro.db.relation import Relation
from repro.db.database import Database

__all__ = ["DBTuple", "Relation", "Database"]
