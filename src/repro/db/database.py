"""Database instances.

A :class:`Database` is a collection of :class:`~repro.db.relation.Relation`
instances over a fixed vocabulary.  Following the paper (Section 2), a
database is also viewed as the disjoint union of all its tuples, with size
``n = |D|`` counting tuples.

Databases support:

* convenient fact insertion — ``db.add("R", 1, 2)``;
* the deletion operator ``D - Gamma`` used throughout the paper
  (:meth:`Database.minus`), which refuses to delete exogenous facts;
* the active domain ``dom(D)``;
* structural hashing for memoised solvers;
* per-tuple costs (positive ints, default 1) for *weighted* resilience:
  ``db.add("R", 1, 2, cost=5)``, :meth:`Database.cost`,
  :meth:`Database.total_cost`.  Exogenous facts may carry costs but are
  never charged — contingency sets cannot contain them (Definition 1) —
  so only endogenous costs are semantically meaningful; a database with
  all endogenous costs at 1 behaves (and hashes) exactly like an
  unweighted one.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.db.relation import Relation
from repro.db.tuples import DBTuple


class Database:
    """A database instance: a set of named relations.

    Relations are declared lazily: :meth:`add` creates the relation on
    first use, inferring its arity from the inserted fact.  Declare
    relations explicitly with :meth:`declare` when you need an empty
    relation or an exogenous one.
    """

    def __init__(self, relations: Optional[Iterable[Relation]] = None):
        self.relations: Dict[str, Relation] = {}
        # Content-epoch memo slots: each caches (epoch, value) where the
        # epoch is the tuple of per-relation version counters at
        # materialization time (see content_epoch()).
        self._canonical_form_memo: Optional[Tuple[tuple, frozenset]] = None
        self._canonical_text_memo: Optional[Tuple[tuple, str]] = None
        self._content_digest_memo: Optional[Tuple[tuple, str]] = None
        if relations is not None:
            for rel in relations:
                if rel.name in self.relations:
                    raise ValueError(f"duplicate relation {rel.name!r}")
                self.relations[rel.name] = rel

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def declare(self, name: str, arity: int, exogenous: bool = False) -> Relation:
        """Declare (or fetch) relation ``name`` with the given signature."""
        existing = self.relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise ValueError(
                    f"relation {name!r} already declared with arity {existing.arity}"
                )
            if exogenous and not existing.exogenous:
                existing.exogenous = True
            return existing
        rel = Relation(name, arity, exogenous=exogenous)
        self.relations[name] = rel
        return rel

    def add(self, name: str, *values: Hashable, cost: Optional[int] = None) -> DBTuple:
        """Insert fact ``name(values...)``, declaring the relation if new.

        ``cost`` (positive int) sets the fact's weighted-resilience cost;
        omitted, the fact keeps its current cost (1 for a new fact).
        """
        rel = self.relations.get(name)
        if rel is None:
            rel = self.declare(name, len(values))
        return rel.add(*values, cost=cost)

    def add_all(self, name: str, rows: Iterable) -> None:
        """Insert many facts into relation ``name``.

        Rows may be value vectors (tuples/lists) or single values for a
        unary relation.
        """
        for row in rows:
            if isinstance(row, (tuple, list)):
                self.add(name, *row)
            else:
                self.add(name, row)

    def set_exogenous(self, *names: str) -> None:
        """Mark the named relations exogenous."""
        for name in names:
            if name not in self.relations:
                raise KeyError(f"unknown relation {name!r}")
            self.relations[name].exogenous = True

    def set_cost(self, fact: DBTuple, cost: int) -> None:
        """Set the cost of a present fact (``ValueError`` if absent)."""
        rel = self.relations.get(fact.relation)
        if rel is None or fact not in rel:
            raise ValueError(f"{fact!r} is not in the database")
        rel.set_cost(fact, cost)

    def cost(self, fact: DBTuple) -> int:
        """The cost of ``fact`` (1 unless explicitly set; ``ValueError``
        if the fact is not in the database)."""
        rel = self.relations.get(fact.relation)
        if rel is None or fact not in rel:
            raise ValueError(f"{fact!r} is not in the database")
        return rel.cost(fact)

    def total_cost(self, facts: Iterable[DBTuple]) -> int:
        """The summed cost of ``facts`` (each must be in the database)."""
        return sum(self.cost(fact) for fact in facts)

    def has_weighted_costs(self) -> bool:
        """Does any *endogenous* fact carry a non-unit cost?

        Exogenous costs are ignored: exogenous facts can never be
        charged, so they do not make an instance weighted.  Solvers use
        this to route all-unit ``weighted=True`` calls through the
        unweighted fast paths (bit-identical results by construction).
        """
        return any(
            rel.has_weighted_costs
            for rel in self.relations.values()
            if not rel.exogenous
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation instance named ``name``."""
        return self.relations[name]

    def __contains__(self, fact: DBTuple) -> bool:
        rel = self.relations.get(fact.relation)
        return rel is not None and fact in rel

    def __iter__(self) -> Iterator[DBTuple]:
        """Iterate over all facts (the disjoint-union view)."""
        for rel in self.relations.values():
            yield from rel

    def __len__(self) -> int:
        """Database size ``n = |D|``: the number of tuples."""
        return sum(len(rel) for rel in self.relations.values())

    def all_tuples(self) -> Set[DBTuple]:
        """All facts as a set."""
        return set(self)

    def endogenous_tuples(self) -> Set[DBTuple]:
        """All facts belonging to endogenous relations."""
        out: Set[DBTuple] = set()
        for rel in self.relations.values():
            if not rel.exogenous:
                out.update(rel)
        return out

    def active_domain(self) -> Set[Hashable]:
        """``dom(D)``: every constant occurring in some fact."""
        dom: Set[Hashable] = set()
        for fact in self:
            dom.update(fact.values)
        return dom

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def minus(self, gamma: Iterable[DBTuple]) -> "Database":
        """The database ``D - Gamma``.

        Raises ``ValueError`` if ``gamma`` contains an exogenous fact —
        contingency sets may only contain endogenous tuples
        (Definition 1).
        """
        gamma = set(gamma)
        for fact in gamma:
            rel = self.relations.get(fact.relation)
            if rel is None or fact not in rel:
                raise ValueError(f"{fact!r} is not in the database")
            if rel.exogenous:
                raise ValueError(f"cannot delete exogenous fact {fact!r}")
        clone = self.copy()
        for fact in gamma:
            clone.relations[fact.relation].discard(fact)
        return clone

    def copy(self) -> "Database":
        """A deep-enough copy: fresh relations, shared immutable facts."""
        return Database([rel.copy() for rel in self.relations.values()])

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def content_epoch(self) -> tuple:
        """A cheap fingerprint of this object's mutation state.

        The tuple of ``(name, id(rel), rel.version)`` triples over the
        sorted relation names: O(#relations) to compute, and guaranteed
        to change whenever any relation gains/loses a fact, changes a
        cost, or flips its exogenous flag (every mutation path bumps
        :attr:`Relation.version`).  The canonical-form/text/digest memos
        below key on it, so an unmutated database materializes each
        snapshot exactly once per epoch.
        """
        return tuple(
            (name, id(rel), rel.version)
            for name, rel in sorted(self.relations.items())
        )

    def canonical_form(self) -> frozenset:
        """A hashable snapshot of the database contents.

        Two databases are equal as instances iff their canonical forms
        are equal (relation flags and endogenous non-unit costs
        included).  Cost parts are emitted only when present, so an
        all-unit database has exactly the pre-weighting canonical form —
        content-hash caches and memo keys are unchanged by the weighted
        machinery until someone actually assigns a cost.

        Memoized per :meth:`content_epoch`: hash/equality-heavy paths
        (solver memo dicts, the witness-structure LRU) pay the O(|D|)
        materialization once per mutation epoch instead of per call.
        """
        epoch = self.content_epoch()
        memo = self._canonical_form_memo
        if memo is not None and memo[0] == epoch:
            return memo[1]
        form = self._materialize_canonical_form()
        self._canonical_form_memo = (epoch, form)
        return form

    def _materialize_canonical_form(self) -> frozenset:
        """Actually build the canonical form (the memoized
        :meth:`canonical_form` calls this once per mutation epoch; the
        regression suite counts calls to pin that contract)."""
        parts: List = []
        for name in sorted(self.relations):
            rel = self.relations[name]
            parts.append((name, rel.arity, rel.exogenous, rel.tuples))
            if not rel.exogenous and rel.has_weighted_costs:
                parts.append(("__costs__", name, rel.cost_items()))
        return frozenset(parts)

    def canonical_text(self) -> str:
        """The deterministic textual form of the database contents.

        Exactly the database segments of the result-cache pair text
        (sorted relation declarations, sorted tuple reprs, ``$costs``
        segments for weighted endogenous relations, ``|``-joined) —
        :func:`repro.witness.cache.pair_cache_key` feeds this to its
        incremental SHA-256, so the format is pinned bit-for-bit by the
        golden-key suite.  Memoized per :meth:`content_epoch`.
        """
        epoch = self.content_epoch()
        memo = self._canonical_text_memo
        if memo is not None and memo[0] == epoch:
            return memo[1]
        parts = []
        for name in sorted(self.relations):
            rel = self.relations[name]
            rows = ",".join(sorted(repr(t.values) for t in rel))
            parts.append(f"{name}/{rel.arity}/{int(rel.exogenous)}:{rows}")
            if not rel.exogenous and rel.has_weighted_costs:
                cost_rows = ",".join(
                    sorted(f"{values!r}={cost}" for values, cost in rel.cost_items())
                )
                parts.append(f"{name}$costs:{cost_rows}")
        text = "|".join(parts)
        self._canonical_text_memo = (epoch, text)
        return text

    def content_digest(self) -> str:
        """SHA-256 hexdigest of :meth:`canonical_text`.

        The process-stable content identity of the instance: equal
        contents (tuples, flags, endogenous costs) give equal digests
        across runs regardless of ``PYTHONHASHSEED``.  Storage snapshots
        (:mod:`repro.storage`) record this digest at ingest, so a
        memmap-backed handle can stand in for the in-memory database in
        any content-keyed cache.  Memoized per :meth:`content_epoch`.
        """
        epoch = self.content_epoch()
        memo = self._content_digest_memo
        if memo is not None and memo[0] == epoch:
            return memo[1]
        digest = hashlib.sha256(self.canonical_text().encode()).hexdigest()
        self._content_digest_memo = (epoch, digest)
        return digest

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{r.name}{'^x' if r.exogenous else ''}:{len(r)}"
            for r in self.relations.values()
        )
        return f"Database({rels}; n={len(self)})"
