"""Relation instances.

A :class:`Relation` is a finite set of value vectors under a name and a
fixed arity, with an *endogenous/exogenous* marker.

Exogenous relations (atoms written with a superscript ``x`` in the paper,
e.g. ``W^x(x, y, z)``) provide context: their tuples may participate in
witnesses but may never be deleted, i.e. they never appear in contingency
sets.  Endogenous relations are the ones interventions may touch.

Each fact optionally carries a positive integer *cost* (default 1), the
weight it contributes to a contingency set in the weighted resilience
problem.  Costs live on the relation (keyed by fact), not on
:class:`~repro.db.tuples.DBTuple`, so fact identity — and therefore
every set/frozenset the solvers build — is untouched by weighting.
Only non-unit costs are stored; an all-unit relation is bit-for-bit
the pre-weighting representation.

Every *content* mutation — fact insertion/removal, cost change,
exogenous flip — bumps :attr:`Relation.version`, a monotone epoch
counter.  :meth:`repro.db.database.Database.canonical_form` memoizes
its frozenset materialization against the tuple of relation versions,
so hash/equality lookups on an unmutated database are O(#relations)
instead of O(|D|) per call.  No-op mutations (re-inserting a present
fact without changing its cost, discarding an absent one) leave the
version alone, so they cannot invalidate the memo.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.db.tuples import DBTuple


def _check_cost(cost) -> int:
    """Validate a tuple cost: a positive ``int`` (bools rejected)."""
    if isinstance(cost, bool) or not isinstance(cost, int) or cost < 1:
        raise ValueError(f"tuple cost must be a positive integer, got {cost!r}")
    return cost


class Relation:
    """A named, fixed-arity finite relation instance.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"R"``.
    arity:
        Number of attributes.  The paper's *binary* queries use arity 1
        ("unary") or 2 ("binary"); the class supports any positive arity
        because triads and the generic Lemma 6 reduction need wider atoms
        (e.g. ``W(x, y, z)`` in the tripod query).
    tuples:
        Optional initial contents, as value vectors.
    exogenous:
        If ``True``, tuples of this relation may never be deleted.
    """

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Optional[Iterable[Sequence[Hashable]]] = None,
        exogenous: bool = False,
    ):
        if arity < 1:
            raise ValueError(f"arity must be >= 1, got {arity}")
        self.name = name
        self.arity = arity
        self._version = 0
        self._exogenous = bool(exogenous)
        self._tuples: Set[DBTuple] = set()
        # fact -> cost, for non-unit costs only (unit is the implicit
        # default, so an unweighted relation stores nothing extra).
        self._costs: Dict[DBTuple, int] = {}
        self._tuples_snapshot: Optional[frozenset] = None
        self._tuples_snapshot_version = -1
        if tuples is not None:
            for values in tuples:
                self.add(*values)

    @property
    def version(self) -> int:
        """Monotone content-epoch counter.

        Bumped by every effective mutation (fact added or removed, cost
        changed, exogenous flag flipped); no-op mutations leave it
        unchanged.  Memo layers key on ``(id(rel), rel.version)``.
        """
        return self._version

    @property
    def exogenous(self) -> bool:
        """May this relation's tuples appear in contingency sets?"""
        return self._exogenous

    @exogenous.setter
    def exogenous(self, value: bool) -> None:
        value = bool(value)
        if value != self._exogenous:
            self._exogenous = value
            self._version += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, *values: Hashable, cost: Optional[int] = None) -> DBTuple:
        """Insert the fact ``name(values...)`` and return it.

        Re-inserting an existing fact is a no-op (set semantics), except
        that an explicit ``cost`` always takes effect (last writer wins).
        ``cost`` must be a positive integer; omitting it leaves the
        fact's current cost alone (1 for a new fact).
        """
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got {len(values)} values: {values!r}"
            )
        fact = DBTuple(self.name, tuple(values))
        if fact not in self._tuples:
            self._tuples.add(fact)
            self._version += 1
        if cost is not None:
            self.set_cost(fact, cost)
        return fact

    def discard(self, fact: DBTuple) -> None:
        """Remove ``fact`` if present."""
        if fact in self._tuples:
            self._tuples.discard(fact)
            self._costs.pop(fact, None)
            self._version += 1

    def set_cost(self, fact: DBTuple, cost: int) -> None:
        """Set the cost of a present fact (cost 1 clears the entry)."""
        cost = _check_cost(cost)
        if fact not in self._tuples:
            raise ValueError(f"{fact!r} is not in relation {self.name}")
        if cost == self._costs.get(fact, 1):
            return
        if cost == 1:
            self._costs.pop(fact, None)
        else:
            self._costs[fact] = cost
        self._version += 1

    def cost(self, fact: DBTuple) -> int:
        """The cost of ``fact`` (1 unless explicitly set)."""
        return self._costs.get(fact, 1)

    @property
    def has_weighted_costs(self) -> bool:
        """Does any fact of this relation carry a non-unit cost?"""
        return bool(self._costs)

    def cost_items(self) -> frozenset:
        """The non-unit cost assignments as ``(values, cost)`` pairs —
        the canonical-form contribution of this relation's weighting."""
        return frozenset((t.values, c) for t, c in self._costs.items())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, DBTuple):
            return item in self._tuples
        if isinstance(item, tuple):
            return DBTuple(self.name, item) in self._tuples
        return False

    def __iter__(self) -> Iterator[DBTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> frozenset:
        """The facts of this relation, as an immutable snapshot.

        Memoized per content epoch: repeat reads of an unmutated
        relation return the same frozenset object instead of
        rematerializing O(n) each call.
        """
        if self._tuples_snapshot_version != self._version:
            self._tuples_snapshot = frozenset(self._tuples)
            self._tuples_snapshot_version = self._version
        return self._tuples_snapshot

    def value_vectors(self) -> Set[Tuple[Hashable, ...]]:
        """The raw value vectors, without relation identity."""
        return {t.values for t in self._tuples}

    def copy(self) -> "Relation":
        """An independent copy (same name/arity/exogenous flag, facts,
        and costs)."""
        clone = Relation(self.name, self.arity, exogenous=self.exogenous)
        clone._tuples = set(self._tuples)
        clone._costs = dict(self._costs)
        return clone

    def __repr__(self) -> str:
        flag = "^x" if self.exogenous else ""
        shown = ", ".join(repr(t) for t in sorted(self._tuples)[:6])
        suffix = ", ..." if len(self._tuples) > 6 else ""
        return f"Relation {self.name}{flag}/{self.arity} {{{shown}{suffix}}}"
