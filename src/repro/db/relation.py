"""Relation instances.

A :class:`Relation` is a finite set of value vectors under a name and a
fixed arity, with an *endogenous/exogenous* marker.

Exogenous relations (atoms written with a superscript ``x`` in the paper,
e.g. ``W^x(x, y, z)``) provide context: their tuples may participate in
witnesses but may never be deleted, i.e. they never appear in contingency
sets.  Endogenous relations are the ones interventions may touch.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.db.tuples import DBTuple


class Relation:
    """A named, fixed-arity finite relation instance.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"R"``.
    arity:
        Number of attributes.  The paper's *binary* queries use arity 1
        ("unary") or 2 ("binary"); the class supports any positive arity
        because triads and the generic Lemma 6 reduction need wider atoms
        (e.g. ``W(x, y, z)`` in the tripod query).
    tuples:
        Optional initial contents, as value vectors.
    exogenous:
        If ``True``, tuples of this relation may never be deleted.
    """

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Optional[Iterable[Sequence[Hashable]]] = None,
        exogenous: bool = False,
    ):
        if arity < 1:
            raise ValueError(f"arity must be >= 1, got {arity}")
        self.name = name
        self.arity = arity
        self.exogenous = exogenous
        self._tuples: Set[DBTuple] = set()
        if tuples is not None:
            for values in tuples:
                self.add(*values)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, *values: Hashable) -> DBTuple:
        """Insert the fact ``name(values...)`` and return it.

        Re-inserting an existing fact is a no-op (set semantics).
        """
        if len(values) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got {len(values)} values: {values!r}"
            )
        fact = DBTuple(self.name, tuple(values))
        self._tuples.add(fact)
        return fact

    def discard(self, fact: DBTuple) -> None:
        """Remove ``fact`` if present."""
        self._tuples.discard(fact)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, DBTuple):
            return item in self._tuples
        if isinstance(item, tuple):
            return DBTuple(self.name, item) in self._tuples
        return False

    def __iter__(self) -> Iterator[DBTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> frozenset:
        """The facts of this relation, as an immutable snapshot."""
        return frozenset(self._tuples)

    def value_vectors(self) -> Set[Tuple[Hashable, ...]]:
        """The raw value vectors, without relation identity."""
        return {t.values for t in self._tuples}

    def copy(self) -> "Relation":
        """An independent copy (same name/arity/exogenous flag and facts)."""
        clone = Relation(self.name, self.arity, exogenous=self.exogenous)
        clone._tuples = set(self._tuples)
        return clone

    def __repr__(self) -> str:
        flag = "^x" if self.exogenous else ""
        shown = ", ".join(repr(t) for t in sorted(self._tuples)[:6])
        suffix = ", ..." if len(self._tuples) > 6 else ""
        return f"Relation {self.name}{flag}/{self.arity} {{{shown}{suffix}}}"
