"""Immutable database facts.

A :class:`DBTuple` is a single fact ``R(v1, ..., vk)``.  The paper treats a
database as a *disjoint* union of its relations (Section 2, "with some
abuse of notation we also denote D as the set of all tuples"), so a tuple
carries its relation name: ``R(1, 2)`` and ``S(1, 2)`` are different
tuples even though their value vectors coincide.

Values are arbitrary hashable Python objects.  The paper's constructions
use integers, strings, and composite constants such as ``<ab>`` — we model
composite constants simply as tuples or strings produced by the
reductions.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple


class DBTuple:
    """A fact ``relation(values...)`` with value-based identity.

    Instances are immutable and hashable, which lets contingency sets be
    ordinary Python ``set``/``frozenset`` objects.

    Parameters
    ----------
    relation:
        Name of the relation this fact belongs to, e.g. ``"R"``.
    values:
        The value vector.  Length must equal the relation's arity; this is
        enforced by :class:`repro.db.relation.Relation` on insertion.
    """

    __slots__ = ("relation", "values", "_hash")

    def __init__(self, relation: str, values: Tuple[Hashable, ...]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "_hash", hash((relation, self.values)))

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("DBTuple is immutable")

    def __reduce__(self):
        # The immutability guard above breaks pickle's default slot-state
        # protocol (__setstate__ would call the blocked __setattr__), so
        # reconstruct through the constructor instead.  Facts must cross
        # process boundaries: repro.parallel ships shards of (database,
        # query) work to worker processes and receives contingency sets
        # back, and the persistent result cache stores them on disk.
        return (DBTuple, (self.relation, self.values))

    @property
    def arity(self) -> int:
        """Number of values in the fact."""
        return len(self.values)

    def sort_key(self) -> Tuple[str, Tuple[str, ...]]:
        """The key realising the stable total order of :meth:`__lt__`.

        Exposed so solvers can break ties deterministically on the same
        order used everywhere else (sorted contingency sets, witness
        universes) instead of inventing ad-hoc keys.
        """
        return (self.relation, _sort_key(self.values))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DBTuple):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __lt__(self, other: "DBTuple") -> bool:
        # A stable total order so outputs (e.g. sorted contingency sets)
        # are deterministic across runs.
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def _sort_key(values: Tuple[Hashable, ...]) -> Tuple[str, ...]:
    """Sort heterogeneous value vectors by their repr.

    Reductions freely mix ints, strings, and composite tuples, which are
    not mutually orderable in Python 3; comparing their reprs gives a
    deterministic (if arbitrary) total order.
    """
    return tuple(repr(v) for v in values)
