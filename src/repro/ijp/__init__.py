"""Independent Join Paths (Section 9, Appendix C).

An IJP is a canonical database certifying hardness of RES(q) via a
generalized vertex-cover reduction (Definition 48, Conjecture 49):

* :mod:`repro.ijp.checker` — verify the five IJP conditions for a
  given (database, query, tuple pair);
* :mod:`repro.ijp.search` — the Appendix C.2 procedure: enumerate
  canonical join copies and constant partitions (Bell-number
  enumeration, Example 62) and test each merged database;
* :mod:`repro.ijp.examples` — the paper's concrete IJP databases
  (Examples 58-61).
"""

from repro.ijp.checker import IJPReport, check_ijp, find_ijp_pair
from repro.ijp.search import ijp_search, canonical_database, set_partitions
from repro.ijp.examples import (
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
)

__all__ = [
    "IJPReport",
    "check_ijp",
    "find_ijp_pair",
    "ijp_search",
    "canonical_database",
    "set_partitions",
    "example_58_qvc",
    "example_59_triangle",
    "example_60_z5",
    "example_60_z5_corrected",
    "example_61_failed",
]
