"""Independent Join Paths (Section 9, Appendix C).

An IJP is a canonical database certifying hardness of RES(q) via a
generalized vertex-cover reduction (Definition 48, Conjecture 49):

* :mod:`repro.ijp.checker` — verify the five IJP conditions for a
  given (database, query, tuple pair);
* :mod:`repro.ijp.rgs` — restricted-growth-string enumeration of the
  partition space: vectorized lex-order expansion, exact subtree
  counting, contiguous sharding;
* :mod:`repro.ijp.space` — batched Definition 48 screening over RGS
  ranges: sound subtree pruning, vectorized leaf filters, the shared
  condition-5 hitting-set prescreen, engine-probe certification;
* :mod:`repro.ijp.search` — the Appendix C.2 procedure (Example 62):
  enumerate canonical join copies and constant partitions, test each
  merged database; :func:`ijp_search_reference` keeps the recursive
  baseline the vectorized engine is benchmarked against;
* :mod:`repro.ijp.sweep` — the sharded, resumable, distributed sweep
  and the standing open-conjecture table (``docs/ijp.md``);
* :mod:`repro.ijp.examples` — the paper's concrete IJP databases
  (Examples 58-61).
"""

from repro.ijp.checker import IJPReport, check_ijp, find_ijp_pair
from repro.ijp.rgs import bell_number, rgs_from_partition, shard_space
from repro.ijp.search import (
    canonical_database,
    ijp_search,
    ijp_search_reference,
    set_partitions,
)
from repro.ijp.space import (
    IJPCertificate,
    NearMiss,
    SpaceSweepResult,
    SpaceSweepStats,
    sweep_space,
)
from repro.ijp.sweep import (
    OPEN_QUERIES,
    OPEN_QUERY_STATUS,
    QuerySweep,
    SweepReport,
    certificate_is_proper,
    standing_queries,
    standing_sweep,
    sweep,
    sweep_range,
)
from repro.ijp.examples import (
    example_58_qvc,
    example_59_triangle,
    example_60_z5,
    example_60_z5_corrected,
    example_61_failed,
)

__all__ = [
    "IJPReport",
    "check_ijp",
    "find_ijp_pair",
    "bell_number",
    "rgs_from_partition",
    "shard_space",
    "ijp_search",
    "ijp_search_reference",
    "canonical_database",
    "set_partitions",
    "IJPCertificate",
    "NearMiss",
    "SpaceSweepResult",
    "SpaceSweepStats",
    "sweep_space",
    "OPEN_QUERIES",
    "OPEN_QUERY_STATUS",
    "QuerySweep",
    "SweepReport",
    "certificate_is_proper",
    "standing_queries",
    "standing_sweep",
    "sweep",
    "sweep_range",
    "example_58_qvc",
    "example_59_triangle",
    "example_60_z5",
    "example_60_z5_corrected",
    "example_61_failed",
]
