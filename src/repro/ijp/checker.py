"""The Definition 48 checker: is a database an Independent Join Path?

Conditions, for a query ``q`` with ``m`` atoms and a database ``D``:

1. some endogenous relation ``R`` has tuples ``R(a)``, ``R(b)`` with
   ``a ⊄ b`` and ``b ⊄ a`` (as constant sets);
2. ``R(a)`` and ``R(b)`` each participate in exactly one witness, and
   those witnesses use exactly ``m`` tuples each;
3. no endogenous relation holds a tuple whose constants are a proper
   subset of ``a``'s or of ``b``'s;
4. if an exogenous relation holds a tuple equal to a subvector ``a_j``
   of ``a``, it also holds the matching subvector ``b_j`` of ``b``
   (and symmetrically);
5. with ``c = rho(q, D)``, removing ``R(a)``, ``R(b)``, or both drops
   the resilience to exactly ``c - 1`` in all three cases.

Condition 5 is the "or-property" of Figure 8: deleting either endpoint
buys exactly one unit of cover inside the gadget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import witness_tuple_sets
from repro.resilience.types import UnbreakableQueryError


@dataclass
class IJPReport:
    """Outcome of an IJP check: per-condition verdicts and diagnostics."""

    is_ijp: bool
    pair: Optional[Tuple[DBTuple, DBTuple]] = None
    conditions: List[bool] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)
    resilience: Optional[int] = None

    def __repr__(self) -> str:
        status = "IJP" if self.is_ijp else "not an IJP"
        return f"IJPReport({status}, pair={self.pair}, conditions={self.conditions})"


def _values_set(t: DBTuple) -> frozenset:
    return frozenset(t.values)


def _proper_subset(small: frozenset, big: frozenset) -> bool:
    return small < big


def _subvectors(values: Tuple) -> List[Tuple[Tuple[int, ...], Tuple]]:
    """All nonempty index subsequences of a value vector."""
    out = []
    n = len(values)
    for r in range(1, n + 1):
        for idx in combinations(range(n), r):
            out.append((idx, tuple(values[i] for i in idx)))
    return out


def combined_flags(database: Database, query: ConjunctiveQuery) -> Dict[str, bool]:
    """Exogenous flags as the checker sees them: a relation is exogenous
    if either the query or the database declaration marks it so."""
    flags = dict(query.relation_flags())
    for name, rel in database.relations.items():
        if rel.exogenous:
            flags[name] = True
    return flags


def check_conditions_1_4(
    database: Database,
    query: ConjunctiveQuery,
    tuple_a: DBTuple,
    tuple_b: DBTuple,
    all_sets: Optional[List[FrozenSet[DBTuple]]] = None,
    flags: Optional[Dict[str, bool]] = None,
) -> Tuple[List[bool], List[str]]:
    """Conditions 1-4 of Definition 48 for one candidate endpoint pair.

    These four are the *cheap* conditions — pure set/vector tests over
    the database, no resilience solve — so the batch search evaluates
    them separately and reserves the condition-5 probes for survivors.
    ``all_sets``/``flags`` let callers amortize the witness enumeration
    across the many pairs of one database (the search checks every
    endpoint pair of every merged candidate; recomputing witnesses per
    pair would dominate).
    """
    conditions: List[bool] = []
    reasons: List[str] = []
    if flags is None:
        flags = combined_flags(database, query)

    # Condition 1 — same endogenous relation, incomparable constant sets.
    set_a, set_b = _values_set(tuple_a), _values_set(tuple_b)
    cond1 = (
        tuple_a.relation == tuple_b.relation
        and not flags.get(tuple_a.relation, False)
        and tuple_a != tuple_b
        and not set_a <= set_b
        and not set_b <= set_a
    )
    conditions.append(cond1)
    if not cond1:
        reasons.append("condition 1: endpoints must be incomparable tuples of one endogenous relation")

    # Condition 2 — each endpoint in exactly one witness of m tuples.
    if all_sets is None:
        all_sets = witness_tuple_sets(database, query, endogenous_only=False)
    m = len(query.atoms)
    wa = [s for s in all_sets if tuple_a in s]
    wb = [s for s in all_sets if tuple_b in s]
    cond2 = (
        len(wa) == 1 and len(wb) == 1 and len(wa[0]) == m and len(wb[0]) == m
    )
    conditions.append(cond2)
    if not cond2:
        reasons.append(
            f"condition 2: endpoints in {len(wa)}/{len(wb)} witnesses "
            f"(sizes {[len(s) for s in wa + wb]}, need exactly 1 of size {m})"
        )

    # Condition 3 — no endogenous tuple strictly below an endpoint.
    cond3 = True
    for fact in database:
        if flags.get(fact.relation, False):
            continue
        fs = _values_set(fact)
        if _proper_subset(fs, set_a) or _proper_subset(fs, set_b):
            cond3 = False
            reasons.append(f"condition 3: endogenous {fact!r} sits below an endpoint")
            break
    conditions.append(cond3)

    # Condition 4 — exogenous subvector symmetry.
    cond4 = True
    for name, rel in database.relations.items():
        if not flags.get(name, False):
            continue
        vectors = rel.value_vectors()
        for idx, sub_a in _subvectors(tuple_a.values):
            sub_b = tuple(tuple_b.values[i] for i in idx)
            if sub_a in vectors and sub_b not in vectors:
                cond4 = False
                reasons.append(
                    f"condition 4: exogenous {name} holds {sub_a} (= a_{idx}) but not {sub_b}"
                )
            if sub_b in vectors and sub_a not in vectors:
                cond4 = False
                reasons.append(
                    f"condition 4: exogenous {name} holds {sub_b} (= b_{idx}) but not {sub_a}"
                )
    conditions.append(cond4)
    return conditions, reasons


def check_ijp(
    database: Database,
    query: ConjunctiveQuery,
    tuple_a: DBTuple,
    tuple_b: DBTuple,
    cache_dir=None,
) -> IJPReport:
    """Check Definition 48 for the candidate endpoint pair.

    Condition 5 ("or-property") needs four resilience values — on
    ``D``, ``D - a``, ``D - b``, ``D - ab`` — and routes them through
    the engine front door (:func:`repro.resilience.solver.solve` /
    :func:`repro.core.analyzer.solve_batch`) rather than a fixed exact
    backend, so dispatch, the planner, and the bitset kernel all apply.
    With ``cache_dir`` the probes go through the persistent
    :class:`~repro.witness.cache.ResultCache`, where their content-hash
    keys dedupe repeats — the unmodified-``D`` probe is shared by every
    candidate pair of the same database.
    """
    flags = combined_flags(database, query)
    conditions, reasons = check_conditions_1_4(
        database, query, tuple_a, tuple_b, flags=flags
    )

    resilience = None
    cond5 = False
    if all(conditions):
        # Condition 5 — the "or-property".
        try:
            probes = [
                database,
                database.minus({tuple_a}),
                database.minus({tuple_b}),
                database.minus({tuple_a, tuple_b}),
            ]
            values = _probe_resilience(probes, query, cache_dir)
            resilience = values[0]
            cond5 = all(v == resilience - 1 for v in values[1:])
            if not cond5:
                reasons.append("condition 5: removing endpoints does not drop resilience by exactly 1")
        except UnbreakableQueryError:
            reasons.append("condition 5: resilience undefined (all-exogenous witness)")
    conditions.append(cond5)

    return IJPReport(
        is_ijp=all(conditions),
        pair=(tuple_a, tuple_b),
        conditions=conditions,
        reasons=reasons,
        resilience=resilience,
    )


def _probe_resilience(databases, query: ConjunctiveQuery, cache_dir=None) -> List[int]:
    """Exact resilience of each probe database, through the engine.

    Imported lazily: the solver stack pulls in the planner and batch
    machinery, and :mod:`repro.ijp` must stay importable on its own.
    """
    if cache_dir is not None:
        from repro.core.analyzer import solve_batch

        batch = solve_batch([(db, query) for db in databases], cache_dir=cache_dir)
        return batch.values()
    from repro.resilience.solver import solve

    return [solve(db, query).value for db in databases]


def find_ijp_pair(
    database: Database, query: ConjunctiveQuery
) -> Optional[IJPReport]:
    """Try every candidate endpoint pair; return the first full IJP."""
    flags = dict(query.relation_flags())
    for name, rel in database.relations.items():
        if rel.exogenous:
            flags[name] = True
    for name, rel in sorted(database.relations.items()):
        if flags.get(name, False):
            continue
        facts = sorted(rel)
        for ta, tb in combinations(facts, 2):
            report = check_ijp(database, query, ta, tb)
            if report.is_ijp:
                return report
    return None
