"""The paper's concrete IJP example databases (Appendix C.1).

Each function returns ``(query, database, expected_pair)`` where
``expected_pair`` is the endpoint pair the paper names.  The checker is
run on these in tests and in benchmark E9.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.zoo import q_ex61, q_triangle, q_vc, q_z5


def example_58_qvc() -> Tuple[ConjunctiveQuery, Database, Tuple[DBTuple, DBTuple]]:
    """Example 58: ``D = {R(1), S(1,2), R(2)}`` is an IJP for q_vc."""
    db = Database()
    db.add("R", 1)
    db.add("R", 2)
    db.add("S", 1, 2)
    return q_vc, db, (DBTuple("R", (1,)), DBTuple("R", (2,)))


def example_59_triangle() -> Tuple[ConjunctiveQuery, Database, Tuple[DBTuple, DBTuple]]:
    """Example 59: a 7-tuple IJP for the triangle query (Figure 18)."""
    db = Database()
    db.add_all("R", [(1, 2), (4, 2), (4, 5)])
    db.add_all("S", [(2, 3), (5, 3)])
    db.add_all("T", [(3, 1), (3, 4)])
    return q_triangle, db, (DBTuple("R", (1, 2)), DBTuple("R", (4, 5)))


def example_60_z5() -> Tuple[ConjunctiveQuery, Database, Tuple[DBTuple, DBTuple]]:
    """Example 60: a 21-tuple IJP for ``z5 :- A(x), R(x,y), R(y,z), R(z,z)``
    (Figure 19) with endpoints ``A(9)`` and ``A(13)``."""
    db = Database()
    db.add_all("A", [(1,), (4,), (5,), (9,), (13,)])
    db.add_all(
        "R",
        [
            (1, 2), (2, 2), (2, 3), (3, 3), (4, 1), (5, 2),
            (5, 6), (6, 7), (7, 7), (8, 7), (9, 8),
            (1, 10), (10, 11), (11, 11), (12, 11), (13, 12),
        ],
    )
    return q_z5, db, (DBTuple("A", (9,)), DBTuple("A", (13,)))


def example_60_z5_corrected() -> Tuple[ConjunctiveQuery, Database, Tuple[DBTuple, DBTuple]]:
    """A corrected variant of Example 60 that passes all five conditions.

    **Erratum.** The database printed in the paper fails condition 5:
    the tuples ``R(5,2), R(2,3), R(3,3)`` generate a ninth witness
    ``(5,2,3)`` (Figure 19 draws only eight joins), and with it the
    resilience after removing ``A(13)`` stays 4 instead of dropping to
    3 — the claimed contingency set ``{A(1), R(2,2), R(7,7)}`` misses
    that witness.  Replacing ``R(5,2)`` by ``R(6,2)`` (found by
    exhaustive single-tuple repair around the printed database) yields
    a database satisfying all of Definition 48.
    """
    db = Database()
    db.add_all("A", [(1,), (4,), (5,), (9,), (13,)])
    db.add_all(
        "R",
        [
            (1, 2), (2, 2), (2, 3), (3, 3), (4, 1), (6, 2),
            (5, 6), (6, 7), (7, 7), (8, 7), (9, 8),
            (1, 10), (10, 11), (11, 11), (12, 11), (13, 12),
        ],
    )
    return q_z5, db, (DBTuple("A", (9,)), DBTuple("A", (13,)))


def example_61_failed() -> Tuple[ConjunctiveQuery, Database, Tuple[DBTuple, DBTuple]]:
    """Example 61: the canonical database of
    ``q :- A^x(x), R(x), S(x,y), S(z,y), R(z), B^x(z)`` — *not* an IJP:
    condition 4 would force ``B^x(1)`` and ``A^x(3)`` into the database,
    after which conditions 2 and 5 fail."""
    db = Database()
    db.declare("A", 1, exogenous=True)
    db.declare("B", 1, exogenous=True)
    db.add("R", 1)
    db.add("A", 1)
    db.add("S", 1, 2)
    db.add("S", 3, 2)
    db.add("R", 3)
    db.add("B", 3)
    return q_ex61, db, (DBTuple("R", (1,)), DBTuple("R", (3,)))
