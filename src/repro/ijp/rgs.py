"""Restricted-growth-string enumeration of set partitions (Appendix C.2).

The Appendix C.2 search (Example 62) enumerates every set partition of
the ``k * |vars(q)|`` constants of ``k`` canonical copies — a Bell
number of candidates (B(9) = 21147 for the triangle at three copies,
B(12) ≈ 4.2M for four-variable queries).  The recursive generator in
:mod:`repro.ijp.search` walks them one Python list at a time; this
module enumerates the same space as *restricted growth strings* over
numpy int arrays so that Definition 48's cheap conditions can be
checked on whole batches at once and entire subtrees skipped before
any database is materialized.

A restricted growth string (RGS) of length ``n`` is an int vector
``a`` with ``a[0] = 0`` and ``a[i] <= max(a[:i]) + 1``; it encodes the
partition whose blocks are the index sets sharing a digit, with blocks
numbered in order of first appearance.  RGS of length ``n`` are in
bijection with set partitions of ``n`` items, and enumerating digits
in increasing order visits them in a canonical lexicographic order —
which is what makes contiguous index ranges well-defined shard units
for the distributed sweep (:mod:`repro.ijp.sweep`).

Subtree sizes are closed-form: a prefix with ``r`` positions left and
``c = max + 2`` allowed next digits has ``T(r, c)`` completions where
``T(0, c) = 1`` and ``T(r, c) = (c-1) * T(r-1, c) + T(r-1, c+1)`` (the
restricted Bell recurrence; ``T(n, 1)`` is the Bell number ``B(n)``).
Pruned subtrees are therefore *counted* exactly without being walked,
which keeps partition budgets and progress accounting honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

# Digits are bounded by n (the string length); int8 caps n at 127,
# far beyond any feasible Bell enumeration.
RGS_DTYPE = np.int8


@lru_cache(maxsize=None)
def restricted_bell(remaining: int, choices: int) -> int:
    """Completions of an RGS prefix: ``remaining`` open positions,
    ``choices = max(prefix) + 2`` allowed values for the next digit.

    ``T(r, c) = (c-1) * T(r-1, c) + T(r-1, c+1)``: any of the ``c-1``
    old digits keeps the ceiling, opening a new block raises it.
    """
    if remaining < 0:
        raise ValueError(f"remaining must be >= 0, got {remaining}")
    if remaining == 0:
        return 1
    return (choices - 1) * restricted_bell(remaining - 1, choices) + restricted_bell(
        remaining - 1, choices + 1
    )


def bell_number(n: int) -> int:
    """The Bell number ``B(n)`` — partitions of an ``n``-element set."""
    return restricted_bell(n, 1)


def rgs_reference(n: int) -> Iterator[Tuple[int, ...]]:
    """Recursive reference enumeration of all RGS of length ``n``.

    Lexicographic order; the vectorized expansion below must agree with
    this exactly (pinned by a hypothesis test), mirroring how the
    recursive ``set_partitions`` generator is kept as the checked
    baseline of the Appendix C.2 rewrite.
    """
    if n == 0:
        yield ()
        return

    def rec(prefix: List[int], ceiling: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == n:
            yield tuple(prefix)
            return
        for digit in range(ceiling + 2):
            prefix.append(digit)
            yield from rec(prefix, max(ceiling, digit))
            prefix.pop()

    yield from rec([], -1)


def blocks_from_rgs(code: Sequence[int]) -> List[List[int]]:
    """The partition blocks (index lists) an RGS encodes, in order of
    first appearance."""
    blocks: List[List[int]] = []
    for index, digit in enumerate(code):
        digit = int(digit)
        while digit >= len(blocks):
            blocks.append([])
        blocks[digit].append(index)
    return blocks


def partition_from_rgs(code: Sequence[int], items: Sequence) -> List[List]:
    """Map an RGS over ``range(len(items))`` to a partition of ``items``."""
    if len(code) != len(items):
        raise ValueError(
            f"RGS length {len(code)} does not match {len(items)} items"
        )
    return [[items[i] for i in block] for block in blocks_from_rgs(code)]


def rgs_from_partition(partition: Sequence[Sequence], items: Sequence) -> Tuple[int, ...]:
    """The RGS encoding a partition of ``items`` (inverse of
    :func:`partition_from_rgs`); blocks are renumbered canonically by
    first appearance, so any block order encodes the same string."""
    position = {item: i for i, item in enumerate(items)}
    digit_of = [None] * len(items)
    for block_id, block in enumerate(partition):
        for item in block:
            digit_of[position[item]] = block_id
    if any(d is None for d in digit_of):
        raise ValueError("partition does not cover the item set")
    relabel = {}
    code = []
    for digit in digit_of:
        if digit not in relabel:
            relabel[digit] = len(relabel)
        code.append(relabel[digit])
    return tuple(code)


def expand_level(
    codes: np.ndarray, maxes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One level of breadth-first RGS expansion, preserving lex order.

    ``codes`` is a ``(rows, level)`` int array of prefixes (in lex
    order) and ``maxes`` their per-row digit ceilings; returns the
    ``(rows', level+1)`` array of all one-digit extensions and the new
    ceilings.  Each prefix expands to ``max + 2`` children with digits
    ascending, so children of earlier prefixes come first — lex order
    is preserved by construction.
    """
    rows = codes.shape[0]
    counts = (maxes.astype(np.int64)) + 2
    total = int(counts.sum())
    parent = np.repeat(np.arange(rows), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    digits = (np.arange(total) - offsets[parent]).astype(codes.dtype)
    out = np.empty((total, codes.shape[1] + 1), dtype=codes.dtype)
    out[:, : codes.shape[1]] = codes[parent]
    out[:, codes.shape[1]] = digits
    return out, np.maximum(maxes[parent], digits)


def completions(n: int, codes: np.ndarray, maxes: np.ndarray) -> np.ndarray:
    """Per-row leaf counts ``T(n - level, max + 2)`` for a prefix batch."""
    level = codes.shape[1]
    uniques, inverse = np.unique(maxes, return_inverse=True)
    table = np.array(
        [restricted_bell(n - level, int(m) + 2) for m in uniques], dtype=object
    )
    return table[inverse]


def root_prefix() -> Tuple[np.ndarray, np.ndarray]:
    """The empty prefix: one row, zero columns, ceiling -1."""
    return (
        np.zeros((1, 0), dtype=RGS_DTYPE),
        np.full(1, -1, dtype=RGS_DTYPE),
    )


@dataclass
class LeafBatch:
    """One lex-contiguous batch of fully expanded RGS leaves.

    ``pruned`` counts the leaves a prune predicate removed while this
    batch was produced (exact, via :func:`restricted_bell`) — callers
    charge ``codes.shape[0] + pruned`` partitions against their budget,
    so pruning never makes a sweep claim more coverage than it proved.
    """

    codes: np.ndarray
    pruned: int


def iter_leaf_batches(
    n: int,
    codes: Optional[np.ndarray] = None,
    maxes: Optional[np.ndarray] = None,
    pruner=None,
    max_rows: int = 65536,
) -> Iterator[LeafBatch]:
    """Expand prefixes to full-length RGS leaves, in lex order, in
    batches of at most ~``max_rows`` rows of working set.

    ``pruner(codes, maxes)`` (if given) is called once per intermediate
    level with the current prefix batch and must return a boolean keep
    mask; dropped prefixes contribute their exact completion counts to
    :attr:`LeafBatch.pruned`.  Subtrees whose estimated size exceeds
    ``max_rows`` are split — row ranges first, then one forced level of
    expansion — so memory stays bounded even at B(12)+ scales.
    """
    if codes is None or maxes is None:
        codes, maxes = root_prefix()
    if n == 0:
        yield LeafBatch(np.zeros((1, 0), dtype=RGS_DTYPE), 0)
        return
    stack: List[Tuple[np.ndarray, np.ndarray]] = [(codes, maxes)]
    while stack:
        codes, maxes = stack.pop()
        if codes.shape[0] == 0:
            continue
        level = codes.shape[1]
        size = int(completions(n, codes, maxes).sum())
        if size > max_rows:
            if codes.shape[0] > 1:
                half = codes.shape[0] // 2
                stack.append((codes[half:], maxes[half:]))
                stack.append((codes[:half], maxes[:half]))
            else:
                child_codes, child_maxes = expand_level(codes, maxes)
                pruned = 0
                if pruner is not None and child_codes.shape[1] < n:
                    keep = pruner(child_codes, child_maxes)
                    if not keep.all():
                        dropped = completions(
                            n, child_codes[~keep], child_maxes[~keep]
                        )
                        pruned = int(sum(dropped))
                        child_codes = child_codes[keep]
                        child_maxes = child_maxes[keep]
                if pruned:
                    yield LeafBatch(
                        np.zeros((0, n), dtype=RGS_DTYPE), pruned
                    )
                stack.append((child_codes, child_maxes))
            continue
        pruned = 0
        while codes.shape[1] < n:
            codes, maxes = expand_level(codes, maxes)
            if pruner is not None and codes.shape[1] < n:
                keep = pruner(codes, maxes)
                if not keep.all():
                    dropped = completions(n, codes[~keep], maxes[~keep])
                    pruned += int(sum(dropped))
                    codes = codes[keep]
                    maxes = maxes[keep]
        yield LeafBatch(codes, pruned)


@dataclass
class RGSShard:
    """A lex-contiguous slice of the RGS space of length ``n``.

    ``codes``/``maxes`` hold the shard's depth-``d`` prefixes (a
    contiguous run in prefix lex order), ``leaves`` the exact number of
    full-length strings below them, and ``start`` the number of leaves
    lexicographically before the shard — so shard boundaries, budgets,
    and progress offsets are all deterministic functions of ``(n,
    shard count)`` alone, independent of workers or timing.
    """

    index: int
    n: int
    codes: np.ndarray
    maxes: np.ndarray
    leaves: int
    start: int


def shard_space(n: int, num_shards: int, max_depth: int = 6) -> List[RGSShard]:
    """Split the length-``n`` RGS space into at most ``num_shards``
    contiguous lexicographic ranges of near-equal leaf count.

    The split depth is the smallest ``d`` with ``B(d)`` at least
    ``4 * num_shards`` (capped at ``min(n, max_depth)``); depth-``d``
    prefixes are then packed greedily, in lex order, into groups of
    roughly ``B(n) / num_shards`` leaves.  Deterministic — resuming a
    sweep re-derives the identical shard table.
    """
    num_shards = max(1, int(num_shards))
    depth = 1
    while depth < min(n, max_depth) and bell_number(depth) < 4 * num_shards:
        depth += 1
    depth = min(depth, n)
    codes, maxes = root_prefix()
    for _ in range(depth):
        codes, maxes = expand_level(codes, maxes)
    counts = completions(n, codes, maxes)
    total = int(sum(counts))
    target = max(1, -(-total // num_shards))  # ceil division
    shards: List[RGSShard] = []
    row = 0
    consumed = 0
    while row < codes.shape[0]:
        acc = 0
        first = row
        while row < codes.shape[0] and (acc == 0 or acc + int(counts[row]) <= target):
            acc += int(counts[row])
            row += 1
        shards.append(
            RGSShard(
                index=len(shards),
                n=n,
                codes=codes[first:row].copy(),
                maxes=maxes[first:row].copy(),
                leaves=acc,
                start=consumed,
            )
        )
        consumed += acc
    return shards
