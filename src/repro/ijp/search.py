"""Automated IJP search (Appendix C.2, Example 62).

The procedure: for an increasing number of join copies ``k``, lay down
``k`` disjoint canonical databases of the query (one witness each, with
copy-tagged constants), then enumerate all set partitions of the
constants; each partition identifies constants across copies, yielding
a candidate database that is tested against Definition 48.

Example 62 walks this for the triangle query: 3 copies use 9 constants,
whose Bell number is 21147, and one of those partitions —
``{{1}, {2,a}, {3,b,c}, {4,d}, {5}}`` — is isomorphic to the Figure 18
IJP.  The search below re-discovers it.

Exhaustive Bell enumeration explodes quickly (B(12) ≈ 4.2M), so the
search accepts a partition budget and prunes with the cheap conditions
before ever calling the exact resilience solver.  :func:`ijp_search`
runs on the vectorized restricted-growth-string engine
(:mod:`repro.ijp.rgs`, :mod:`repro.ijp.space`): lexicographic numpy
enumeration, sound subtree pruning, batched condition-5 probes through
the solver front door.  The original recursive walk survives as
:func:`ijp_search_reference` / :func:`set_partitions` — the
differential baseline benchmark E23 measures the speedup against —
and the sharded, resumable version lives in :mod:`repro.ijp.sweep`.

**Reproduction finding.**  Definition 48, read literally, is satisfied
by degenerate databases for some *PTIME* queries: e.g. for
``q_ACconf`` (Proposition 12, in P) the two-copy partition
``{x0,y0} {z0,x1} {y1,z1}`` yields endpoints ``R(p,p)``/``R(r,r)``
passing all five conditions, and for ``q_Swx3perm_R`` (Proposition 44,
in P) a one-copy partition does.  Under Conjecture 49 these would imply
NP-hardness of PTIME problems, so the conjecture as stated needs
further conditions (plausibly about how IJP copies can be *glued* at
their endpoints without spurious witnesses — the property the Figure 8
vertex-cover template actually uses).  The tests and benchmark E9
record this; the search remains empty, as expected, on
``q_perm``, ``q_Aperm``, ``q_z3``, ``q_TS3conf`` and ``q_A3perm_R``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.db.database import Database
from repro.ijp.checker import IJPReport, check_ijp, find_ijp_pair
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import satisfies
from repro.workloads.random_db import declare_vocabulary


def canonical_database(query: ConjunctiveQuery, tag: int = 0) -> Database:
    """The canonical database of ``q``: one tuple per atom, constants
    ``(tag, variable)``; relations are declared through the shared
    workload vocabulary helper, so canonical copies and the random
    cross-validation instances always agree on arities and flags."""
    db = declare_vocabulary(Database(), [query])
    for atom in query.atoms:
        db.add(atom.relation, *((tag, v) for v in atom.args))
    return db


def set_partitions(items: List) -> Iterator[List[List]]:
    """All set partitions of ``items`` (Bell-number many).

    The recursive reference enumerator — kept as the checked baseline
    of the vectorized RGS engine (:mod:`repro.ijp.rgs`): property tests
    pin that both visit the same partition set, and benchmark E23
    measures its partitions/second as the 1x floor.
    """
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        yield [[first]] + partition


def _merge_copies(
    query: ConjunctiveQuery, k: int, partition: List[List]
) -> Database:
    """Build the database of ``k`` canonical copies under a partition."""
    representative = {}
    for block in partition:
        rep = ("blk",) + tuple(sorted(map(repr, block)))
        for item in block:
            representative[item] = rep
    db = declare_vocabulary(Database(), [query])
    for tag in range(k):
        for atom in query.atoms:
            db.add(
                atom.relation,
                *(representative[(tag, v)] for v in atom.args),
            )
    return db


def ijp_search_reference(
    query: ConjunctiveQuery,
    max_joins: int = 3,
    partition_budget: int = 200_000,
) -> Optional[IJPReport]:
    """The pre-vectorization Appendix C.2 search, kept verbatim as the
    differential baseline: one recursive partition at a time, one
    full Definition 48 check per merged database.  Benchmark E23's
    speedup gate and the pruning-soundness tests compare
    :func:`ijp_search` against this."""
    for k in range(1, max_joins + 1):
        constants = [(tag, v) for tag in range(k) for v in sorted(query.variables())]
        budget = partition_budget
        for partition in set_partitions(constants):
            budget -= 1
            if budget < 0:
                break
            db = _merge_copies(query, k, partition)
            if not satisfies(db, query):
                continue  # pragma: no cover - canonical copies always satisfy
            report = find_ijp_pair(db, query)
            if report is not None:
                report.reasons.append(
                    f"found with {k} join copies, partition {partition}"
                )
                return report
    return None


def ijp_search(
    query: ConjunctiveQuery,
    max_joins: int = 3,
    partition_budget: int = 200_000,
    cache_dir=None,
    prune: bool = True,
) -> Optional[IJPReport]:
    """Search for an IJP by the Appendix C.2 enumeration.

    Returns the first :class:`IJPReport` found, or ``None`` when no IJP
    exists within ``max_joins`` copies and the partition budget.  A
    ``None`` is *not* a proof of impossibility — Conjecture 49's
    converse direction is open — but on the paper's PTIME queries the
    bounded search comes up empty, as expected.

    Since the distributed-search rewrite this rides the vectorized RGS
    engine (:mod:`repro.ijp.rgs` / :mod:`repro.ijp.space`): partitions
    are enumerated as restricted growth strings in lexicographic order,
    subtrees that provably contain no IJP are skipped (``prune``), the
    cheap Definition 48 conditions run vectorized over leaf batches,
    and condition-5 probes go through ``solve_batch`` (pass
    ``cache_dir`` to persist/dedupe them).  The partition budget counts
    *covered* partitions — enumerated plus soundly pruned — per copy
    count, so the search semantics match the recursive baseline.
    """
    from repro.ijp.space import sweep_space

    for k in range(1, max_joins + 1):
        result = sweep_space(
            query,
            k,
            budget=partition_budget,
            cache_dir=cache_dir,
            prune=prune,
            stop_on_first=True,
        )
        if result.certificates:
            cert = result.certificates[0]
            db = cert.database(query)
            report = check_ijp(db, query, *cert.pair, cache_dir=cache_dir)
            report.reasons.append(
                f"found with {k} join copies, partition {cert.blocks(query)}"
            )
            return report
    return None
