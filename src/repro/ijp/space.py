"""Vectorized Definition 48 screening over RGS partition batches.

The Appendix C.2 search tests every merged-copy database against the
five IJP conditions (Definition 48).  Conditions 1-4 are pure
set/vector tests, and — crucially — several of their *failure* modes
are monotone under adding facts, so they can be decided on partial
partitions and on whole numpy batches without materializing a single
:class:`~repro.db.database.Database`:

* *copy self-collapse* — two atoms of one canonical copy mapped to the
  same fact leave that copy's canonical witness with fewer than ``m``
  distinct tuples, so every fact in it fails condition 2 as an
  endpoint, forever (extra facts only add witnesses);
* *condition-3 extinction* — an endogenous fact whose constant set is
  a strict subset of a candidate endpoint's kills that endpoint, and
  stays in the database for every completion of the prefix;
* *condition-1 incomparability* — decided per fact pair on the leaf
  batch via uint64 value-set bitmasks (``f ⊆ g`` iff
  ``mask_f | mask_g == mask_g``).

A prefix whose every endogenous relation cannot muster two surviving
endpoint candidates (determined survivors plus facts not yet
determined) has no IJP below it, and the whole RGS subtree is skipped
— its exact size charged to the partition budget via the restricted
Bell recurrence (:mod:`repro.ijp.rgs`).  Condition 4 is *not* monotone
(a later fact can restore exogenous subvector symmetry), so it is only
ever checked on leaves.  Condition 5 — the Figure 8 "or-property" —
needs four resilience probes per surviving pair and is batched through
:func:`repro.core.analyzer.solve_batch`, so the planner, bitset
kernel, columnar join, and content-hash result cache from the engine
PRs all apply, and the unmodified-``D`` probe is shared by every pair
of the same candidate database.

The screen is *sound*, never complete: it only discards candidates a
Definition 48 condition provably rules out, so the pruned search finds
exactly the certificates the exhaustive one does (pinned by tests and
the E23 gates); Example 62's triangle IJP is rediscovered from the
21147 three-copy partitions with only a few hundred leaves surviving
to a per-database check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.ijp.checker import check_conditions_1_4, combined_flags
from repro.ijp.rgs import LeafBatch, iter_leaf_batches, partition_from_rgs
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import witness_tuple_sets
from repro.witness.cache import CACHE_SCHEMA, _canonical_query_text


@dataclass(frozen=True)
class IJPCertificate:
    """One found IJP, content-addressed and rebuildable.

    The partition is stored as its RGS code over the ``k * |vars|``
    copy-tagged constants (tag-major, variables sorted), so the
    candidate database — and with it the full Definition 48 report —
    can be reconstructed exactly with :meth:`database`.
    """

    query_name: str
    k: int
    rgs: Tuple[int, ...]
    pair: Tuple[DBTuple, DBTuple]
    resilience: int

    def database(self, query: ConjunctiveQuery) -> Database:
        return PartitionSpace(query, self.k).merge(self.rgs)

    def blocks(self, query: ConjunctiveQuery) -> List[List]:
        """The partition as blocks of ``(copy, variable)`` constants."""
        return partition_from_rgs(self.rgs, PartitionSpace(query, self.k).items)

    def sort_key(self) -> Tuple:
        return (self.k, self.rgs, repr(self.pair))

    def content_key(self, query: ConjunctiveQuery) -> str:
        """SHA-256 content key for the certificate store: covers the
        query text, copy count, partition, and endpoint pair — equal
        certificates collide, anything else cannot."""
        hasher = hashlib.sha256()
        for segment in (
            f"schema={CACHE_SCHEMA}",
            "kind=ijp-certificate",
            _canonical_query_text(query),
            f"k={self.k}",
            f"rgs={','.join(map(str, self.rgs))}",
            f"pair={self.pair!r}",
        ):
            hasher.update(segment.encode())
            hasher.update(b"\x1f")
        return hasher.hexdigest()


@dataclass(frozen=True)
class NearMiss:
    """A candidate that passed conditions 1-4 but failed the
    condition-5 "or-property" — the paper's interesting failure class
    (Example 61 is exactly such a near miss)."""

    query_name: str
    k: int
    rgs: Tuple[int, ...]
    pair: Tuple[DBTuple, DBTuple]
    probe_values: Tuple[int, int, int, int]

    def sort_key(self) -> Tuple:
        return (self.k, self.rgs, repr(self.pair))


@dataclass
class LeafEvaluation:
    """Full conditions-1-4 evaluation of one surviving leaf.

    ``witness_sets`` keeps the database's (deduplicated) witness tuple
    sets alive for the condition-5 stage: removing an endpoint ``a``
    from ``D`` removes exactly the witnesses containing ``a`` and
    creates none, so all four condition-5 probes are hitting-set
    problems over *subsets of one shared witness enumeration* — the
    kernelized component the probes share.
    """

    rgs: Tuple[int, ...]
    database: Database
    candidates: List[Tuple[DBTuple, DBTuple]]
    unbreakable: bool
    witness_sets: List[frozenset] = field(default_factory=list)
    endo_tuples: List[DBTuple] = field(default_factory=list)


@dataclass
class SpaceSweepStats:
    """Accounting for one (query, k) sweep range.

    ``covered = enumerated + pruned`` is the number of partitions the
    sweep *proved something about* — enumerated leaves were screened
    individually, pruned leaves were discarded by a sound subtree rule
    — and is the numerator of the E23 partitions/second gate.
    """

    k: int
    n: int
    covered: int = 0
    enumerated: int = 0
    pruned: int = 0
    checked_rows: int = 0
    candidates: int = 0
    prescreened: int = 0
    probes: int = 0
    exhausted: bool = True

    def merge(self, other: "SpaceSweepStats") -> None:
        self.covered += other.covered
        self.enumerated += other.enumerated
        self.pruned += other.pruned
        self.checked_rows += other.checked_rows
        self.candidates += other.candidates
        self.prescreened += other.prescreened
        self.probes += other.probes
        self.exhausted = self.exhausted and other.exhausted

    def to_dict(self) -> Dict:
        return {
            "k": self.k,
            "n": self.n,
            "covered": self.covered,
            "enumerated": self.enumerated,
            "pruned": self.pruned,
            "checked_rows": self.checked_rows,
            "candidates": self.candidates,
            "prescreened": self.prescreened,
            "probes": self.probes,
            "exhausted": self.exhausted,
        }


@dataclass
class SpaceSweepResult:
    """Certificates, near misses, and accounting for one sweep range."""

    stats: SpaceSweepStats
    certificates: List[IJPCertificate] = field(default_factory=list)
    near_misses: List[NearMiss] = field(default_factory=list)


class PartitionSpace:
    """The RGS search space of ``k`` canonical copies of one query.

    Constants are ``(copy, variable)`` pairs indexed tag-major with
    variables sorted — constant ``(t, v)`` is RGS position
    ``t * |vars| + index(v)`` — and a partition maps each constant to
    its block id, so the merged candidate database (Appendix C.2) is
    just the query's atoms re-addressed through integer block labels.
    """

    def __init__(self, query: ConjunctiveQuery, k: int):
        if k < 1:
            raise ValueError(f"need at least one copy, got k={k}")
        self.query = query
        self.k = k
        self.variables = sorted(query.variables())
        self.width = len(self.variables)
        self.n = k * self.width
        if self.n > 63:
            raise ValueError(
                f"{self.n} constants exceed the 63-bit value-set masks"
            )
        self.items = [(tag, v) for tag in range(k) for v in self.variables]
        var_pos = {v: i for i, v in enumerate(self.variables)}
        self.flags = query.relation_flags()
        self.m = len(query.atoms)
        # One "fact slot" per (copy, atom): the merged database's tuple
        # for that atom under the partition.
        self.fact_rel: List[str] = []
        self.fact_cols: List[Tuple[int, ...]] = []
        self.fact_copy: List[int] = []
        self.fact_endo: List[bool] = []
        self.fact_level: List[int] = []
        for tag in range(k):
            for atom in query.atoms:
                cols = tuple(tag * self.width + var_pos[a] for a in atom.args)
                self.fact_rel.append(atom.relation)
                self.fact_cols.append(cols)
                self.fact_copy.append(tag)
                self.fact_endo.append(not self.flags[atom.relation])
                self.fact_level.append(max(cols) + 1)
        self.F = len(self.fact_rel)
        # Same-copy same-relation slot pairs: if such a pair maps to one
        # fact, the copy's canonical witness collapses below m tuples.
        self.collapse_pairs: List[Tuple[int, int]] = [
            (i, j)
            for i, j in combinations(range(self.F), 2)
            if self.fact_copy[i] == self.fact_copy[j]
            and self.fact_rel[i] == self.fact_rel[j]
        ]
        self.endo_relations = sorted(
            {r for r, e in zip(self.fact_rel, self.fact_endo) if e}
        )

    # -- batch helpers ----------------------------------------------------

    def _vec(self, codes: np.ndarray, slot: int) -> np.ndarray:
        return codes[:, list(self.fact_cols[slot])]

    def _mask(self, codes: np.ndarray, slot: int) -> np.ndarray:
        """Per-row uint64 bitmask of the slot's constant (block) set."""
        cols = codes[:, list(self.fact_cols[slot])].astype(np.uint64)
        return np.bitwise_or.reduce(np.uint64(1) << cols, axis=1)

    def _collapsed(
        self, codes: np.ndarray, determined_level: Optional[int] = None
    ) -> np.ndarray:
        """(rows, k) — copies whose canonical witness has collapsed.

        Only slot pairs determined at ``determined_level`` (default:
        all) are consulted, so on prefixes this under-reports — which
        is the sound direction for pruning.
        """
        rows = codes.shape[0]
        out = np.zeros((rows, self.k), dtype=bool)
        for i, j in self.collapse_pairs:
            if determined_level is not None and (
                self.fact_level[i] > determined_level
                or self.fact_level[j] > determined_level
            ):
                continue
            equal = np.all(self._vec(codes, i) == self._vec(codes, j), axis=1)
            out[:, self.fact_copy[i]] |= equal
        return out

    def prune_prefixes(self, codes: np.ndarray, maxes: np.ndarray) -> np.ndarray:
        """Keep mask for a prefix batch (sound subtree pruning).

        A prefix is discarded only when *no* endogenous relation can
        ever hold two condition-2/3-eligible endpoints: determined
        slots already killed by a collapse or a determined strict
        subset stay dead in every completion, and undetermined slots of
        a collapsed copy are born dead.  Everything else is counted as
        potentially alive, so no IJP below the prefix is ever lost.
        """
        level = codes.shape[1]
        rows = codes.shape[0]
        collapsed = self._collapsed(codes, determined_level=level)
        determined = [
            s
            for s in range(self.F)
            if self.fact_level[s] <= level and self.fact_endo[s]
        ]
        masks = {s: self._mask(codes, s) for s in determined}
        dead = {}
        for s in determined:
            d = collapsed[:, self.fact_copy[s]].copy()
            for t in determined:
                if t == s:
                    continue
                mt, ms = masks[t], masks[s]
                d |= ((mt | ms) == ms) & (mt != ms)
            dead[s] = d
        viable = np.zeros(rows, dtype=bool)
        for rel in self.endo_relations:
            alive = np.zeros(rows, dtype=np.int64)
            for s in determined:
                if self.fact_rel[s] == rel:
                    alive += (~dead[s]).astype(np.int64)
            for s in range(self.F):
                if (
                    self.fact_rel[s] == rel
                    and self.fact_endo[s]
                    and self.fact_level[s] > level
                ):
                    alive += (~collapsed[:, self.fact_copy[s]]).astype(np.int64)
            viable |= alive >= 2
        return viable

    def filter_leaves(self, codes: np.ndarray) -> np.ndarray:
        """Keep mask for a leaf batch: rows that still admit a
        condition-1-compatible pair of condition-2/3-alive endpoints.

        Checks, fully vectorized: copy self-collapse (including facts
        equal to a collapsed copy's facts — they share its undersized
        witness), condition-3 strict-subset extinction, and
        condition-1 incomparability, per endogenous same-relation slot
        pair.  Rows failing have no IJP pair; survivors go to the
        per-database conditions 1-4 check.
        """
        rows = codes.shape[0]
        if rows == 0:
            return np.zeros(0, dtype=bool)
        collapsed = self._collapsed(codes)
        vecs = [self._vec(codes, s) for s in range(self.F)]
        masks = [self._mask(codes, s) for s in range(self.F)]
        dead = []
        for s in range(self.F):
            d = collapsed[:, self.fact_copy[s]].copy()
            for t in range(self.F):
                if t == s or self.fact_rel[t] != self.fact_rel[s]:
                    continue
                if self.fact_copy[t] != self.fact_copy[s]:
                    equal = np.all(vecs[s] == vecs[t], axis=1)
                    d |= equal & collapsed[:, self.fact_copy[t]]
            if self.fact_endo[s]:
                for t in range(self.F):
                    if t == s or not self.fact_endo[t]:
                        continue
                    mt, ms = masks[t], masks[s]
                    d |= ((mt | ms) == ms) & (mt != ms)
            dead.append(d)
        keep = np.zeros(rows, dtype=bool)
        for i, j in combinations(range(self.F), 2):
            if (
                self.fact_rel[i] != self.fact_rel[j]
                or not self.fact_endo[i]
                or not self.fact_endo[j]
            ):
                continue
            mi, mj = masks[i], masks[j]
            incomparable = ((mi | mj) != mi) & ((mi | mj) != mj)
            keep |= incomparable & ~dead[i] & ~dead[j]
        return keep

    # -- per-leaf machinery -----------------------------------------------

    def merge(self, code: Sequence[int]) -> Database:
        """The candidate database of one partition: every copy's atoms,
        re-addressed through integer block labels."""
        from repro.workloads.random_db import declare_vocabulary

        db = Database()
        declare_vocabulary(db, [self.query])
        for s in range(self.F):
            db.add(self.fact_rel[s], *(int(code[c]) for c in self.fact_cols[s]))
        return db

    def evaluate_leaf(self, code: Sequence[int]) -> LeafEvaluation:
        """Conditions 1-4 over every endpoint pair of one candidate.

        Witness sets are enumerated once and shared across the pairs
        (the amortization :func:`check_conditions_1_4` is built for);
        ``unbreakable`` flags an all-exogenous witness, which makes
        condition 5 undefined for every pair — those candidates never
        reach the probe batch, so the batch cannot raise
        ``UnbreakableQueryError`` (witnesses of ``D - a`` are a subset
        of ``D``'s, so the screen on ``D`` covers the probes too).
        """
        db = self.merge(code)
        flags = combined_flags(db, self.query)
        all_sets = witness_tuple_sets(db, self.query, endogenous_only=False)
        unbreakable = any(
            all(flags.get(t.relation, False) for t in s) for s in all_sets
        )
        candidates: List[Tuple[DBTuple, DBTuple]] = []
        if not unbreakable:
            for name in sorted(db.relations):
                if flags.get(name, False):
                    continue
                for ta, tb in combinations(sorted(db.relations[name]), 2):
                    conditions, _ = check_conditions_1_4(
                        db, self.query, ta, tb, all_sets=all_sets, flags=flags
                    )
                    if all(conditions):
                        candidates.append((ta, tb))
        endo = sorted(
            {
                t
                for s in all_sets
                for t in s
                if not flags.get(t.relation, False)
            }
        )
        return LeafEvaluation(
            rgs=tuple(int(c) for c in code),
            database=db,
            candidates=candidates,
            unbreakable=unbreakable,
            witness_sets=all_sets,
            endo_tuples=endo,
        )


def _min_hitting_number(masks: List[int]) -> int:
    """Exact minimum hitting-set size over bitmask witness sets.

    The Section 2 view at candidate scale: a merged ``k``-copy database
    has at most ``k * m`` facts, so witness sets fit in one machine int
    each and an exact branch-and-bound (branch on the tuples of a
    smallest uncovered set) runs in microseconds.  Every mask must be
    nonzero — all-exogenous witnesses are screened out upstream.
    """
    work = sorted(set(masks), key=lambda m: (bin(m).count("1"), m))
    pruned: List[int] = []
    for m in work:  # supersets of a kept set are hit whenever it is
        if not any(m & p == p for p in pruned):
            pruned.append(m)
    best = len(pruned)  # hitting one tuple per set always works

    def bnb(remaining: List[int], depth: int) -> None:
        nonlocal best
        if not remaining:
            best = min(best, depth)
            return
        if depth + 1 >= best:
            return
        smallest = min(remaining, key=lambda m: bin(m).count("1"))
        bits = smallest
        while bits:
            bit = bits & -bits
            bits ^= bit
            bnb([m for m in remaining if not m & bit], depth + 1)

    bnb(pruned, 0)
    return best


def _cond5_prescreen(
    ev: LeafEvaluation, flags: Dict[str, bool]
) -> Tuple[int, List[Tuple[Tuple[DBTuple, DBTuple], Tuple[int, int, int, int]]]]:
    """Exact condition-5 values for every candidate pair of one leaf,
    computed from the shared witness enumeration.

    ``witnesses(D - t)`` are precisely the witness sets of ``D`` not
    containing ``t`` (a homomorphism not using ``t`` survives the
    removal, and removals create no witnesses), so all four probes are
    hitting-set problems over one set family — no per-probe database
    build, canonicalization, or witness re-enumeration.  Probes short-
    circuit: most candidates already miss ``rho(D-a) = rho(D) - 1``.
    """
    bit_of = {t: 1 << i for i, t in enumerate(ev.endo_tuples)}
    full_masks: List[int] = []
    endo_masks: List[int] = []
    for s in ev.witness_sets:
        endo_masks.append(
            sum(bit_of[t] for t in s if not flags.get(t.relation, False))
        )
        full_masks.append(sum(bit_of.get(t, 0) for t in s))
    r0 = _min_hitting_number(endo_masks)
    outcomes = []
    for ta, tb in ev.candidates:
        ba, bb = bit_of[ta], bit_of[tb]

        def rho_minus(removed: int) -> int:
            kept = [
                em
                for em, fm in zip(endo_masks, full_masks)
                if not fm & removed
            ]
            return _min_hitting_number(kept) if kept else 0

        ra = rho_minus(ba)
        if ra != r0 - 1:
            outcomes.append(((ta, tb), (r0, ra, None, None)))
            continue
        rb = rho_minus(bb)
        if rb != r0 - 1:
            outcomes.append(((ta, tb), (r0, ra, rb, None)))
            continue
        rab = rho_minus(ba | bb)
        outcomes.append(((ta, tb), (r0, ra, rb, rab)))
    return r0, outcomes


def certify_candidates(
    query: ConjunctiveQuery,
    k: int,
    evaluations: Sequence[LeafEvaluation],
    cache_dir=None,
    query_name: Optional[str] = None,
) -> Tuple[List[IJPCertificate], List[NearMiss], int, int]:
    """Condition-5 stage: shared-witness prescreen, then engine probes.

    Every candidate pair is first decided exactly from its leaf's
    shared witness enumeration (:func:`_cond5_prescreen`); the pairs
    that pass — the would-be certificates, a tiny fraction — are then
    confirmed through :func:`~repro.core.analyzer.solve_batch`, so each
    emitted certificate's four probe values (``D``, ``D-a``, ``D-b``,
    ``D-ab``) come from the engine front door with planner, kernel,
    and — given ``cache_dir`` — content-hash caching applied (the
    unmodified-``D`` probe dedupes across a database's pairs by
    construction).  Returns at most one certificate per database (the
    first passing pair in the serial checker's scan order), plus a
    :class:`NearMiss` for every pair failing only condition 5, the
    ``solve_batch`` probe count, and the prescreened pair count.
    """
    from repro.core.analyzer import solve_batch

    name = query_name or query.name or "q"
    prescreened = 0
    near_misses: List[NearMiss] = []
    passing: List[Tuple[LeafEvaluation, Tuple[DBTuple, DBTuple]]] = []
    for ev in evaluations:
        if not ev.candidates:
            continue
        flags = combined_flags(ev.database, query)
        _, outcomes = _cond5_prescreen(ev, flags)
        prescreened += len(outcomes)
        found = False
        for (ta, tb), (r0, ra, rb, rab) in outcomes:
            if not found and ra == rb == rab == r0 - 1:
                passing.append((ev, (ta, tb)))
                found = True
            elif not found:
                near_misses.append(
                    NearMiss(name, k, ev.rgs, (ta, tb), (r0, ra, rb, rab))
                )
    if not passing:
        return [], near_misses, 0, prescreened
    probes: List[Tuple[Database, ConjunctiveQuery]] = []
    for ev, (ta, tb) in passing:
        probes.append((ev.database, query))
        probes.append((ev.database.minus({ta}), query))
        probes.append((ev.database.minus({tb}), query))
        probes.append((ev.database.minus({ta, tb}), query))
    values = solve_batch(probes, cache_dir=cache_dir).values()
    certificates: List[IJPCertificate] = []
    for i, (ev, (ta, tb)) in enumerate(passing):
        r0, ra, rb, rab = values[4 * i : 4 * i + 4]
        if ra == rb == rab == r0 - 1:
            certificates.append(IJPCertificate(name, k, ev.rgs, (ta, tb), r0))
        else:  # pragma: no cover - prescreen and engine are both exact
            near_misses.append(
                NearMiss(name, k, ev.rgs, (ta, tb), (r0, ra, rb, rab))
            )
    return certificates, near_misses, len(probes), prescreened


def sweep_space(
    query: ConjunctiveQuery,
    k: int,
    codes: Optional[np.ndarray] = None,
    maxes: Optional[np.ndarray] = None,
    budget: Optional[int] = None,
    cache_dir=None,
    prune: bool = True,
    max_rows: int = 65536,
    stop_on_first: bool = False,
    near_miss_limit: int = 8,
    certificate_limit: Optional[int] = None,
    query_name: Optional[str] = None,
    probe_chunk: int = 64,
) -> SpaceSweepResult:
    """Screen one lex range of the ``k``-copy partition space.

    The workhorse of both :func:`repro.ijp.search.ijp_search` (whole
    space, ``stop_on_first=True``) and the sharded sweep
    (:mod:`repro.ijp.sweep` hands each worker its shard's prefix rows).
    Deterministic for fixed arguments: leaves are visited in RGS lex
    order, pairs in the serial checker's scan order, so the result is a
    pure function of ``(query, k, range, budget)`` — which is what
    makes per-shard checkpoints and serial-vs-parallel bit-identity
    work.  ``budget`` caps *covered* partitions (enumerated + pruned);
    the cut is applied at leaf granularity within a batch.
    """
    space = PartitionSpace(query, k)
    name = query_name or query.name or "q"
    stats = SpaceSweepStats(k=k, n=space.n)
    result = SpaceSweepResult(stats=stats)
    pruner = space.prune_prefixes if prune else None
    pending: List[LeafEvaluation] = []

    def flush() -> bool:
        """Run the probe batch; True when the sweep should stop."""
        if not pending:
            return False
        certs, misses, probes, prescreened = certify_candidates(
            query, k, pending, cache_dir=cache_dir, query_name=name
        )
        pending.clear()
        stats.probes += probes
        stats.prescreened += prescreened
        for cert in certs:
            if (
                certificate_limit is None
                or len(result.certificates) < certificate_limit
            ):
                result.certificates.append(cert)
        for miss in misses:
            if len(result.near_misses) < near_miss_limit:
                result.near_misses.append(miss)
        return stop_on_first and bool(result.certificates)

    stop = False
    for batch in iter_leaf_batches(
        space.n, codes, maxes, pruner=pruner, max_rows=max_rows
    ):
        rows = batch.codes
        stats.pruned += batch.pruned
        stats.covered += batch.pruned
        if budget is not None:
            remaining = max(0, budget - stats.covered)
            if rows.shape[0] > remaining:
                rows = rows[:remaining]
                stats.exhausted = False
                stop = True
        stats.enumerated += rows.shape[0]
        stats.covered += rows.shape[0]
        if rows.shape[0]:
            keep = space.filter_leaves(rows)
            keep_rows = rows[keep]
            stopped_at = None
            for at, code in enumerate(keep_rows):
                ev = space.evaluate_leaf(code)
                stats.checked_rows += 1
                stats.candidates += len(ev.candidates)
                if ev.candidates:
                    pending.append(ev)
                    if (
                        sum(len(e.candidates) for e in pending) >= probe_chunk
                        and flush()
                    ):
                        stopped_at = at + 1
                        break
            if stopped_at is not None:
                # Survivor rows past the stop were never checked; the
                # coverage claim must not include them.
                unchecked = keep_rows.shape[0] - stopped_at
                stats.covered -= unchecked
                stats.enumerated -= unchecked
                stats.exhausted = False
                break
        if stop:
            break
    if not (stop_on_first and result.certificates):
        flush()
    if stop_on_first and result.certificates:
        result.certificates = result.certificates[:1]
    return result
