"""Sharded, resumable IJP certificate sweeps (Appendix C.2 at scale).

One :func:`repro.ijp.space.sweep_space` call screens a lex-contiguous
range of the ``k``-copy partition space; this module turns that into a
*standing* search over the paper's seven OPEN queries (Section 8,
Conjecture 49) and beyond:

* the RGS space is split into contiguous lexicographic shards
  (:func:`repro.ijp.rgs.shard_space`) whose boundaries depend only on
  the space size — never on worker count or timing — and farmed across
  a :class:`repro.parallel.WorkerPool`, results merged in shard order,
  so a parallel sweep is bit-identical to the serial one;
* every completed shard is checkpointed in the engine's content-hash
  :class:`~repro.witness.cache.ResultCache` under a key covering the
  query text, copy count, shard prefixes, budget, and prune flag —
  resuming an interrupted sweep re-derives the identical shard table
  and replays finished shards from disk without re-enumerating a
  single partition;
* found certificates are additionally stored content-addressed
  (:meth:`~repro.ijp.space.IJPCertificate.content_key`), so independent
  sweeps landing on the same IJP collide on the same cache entry;
* partition budgets are pre-allocated to shards in lex order
  (earlier shards fill first), keeping budgeted sweeps a pure prefix
  of the unbudgeted ones.

**The open-query table.**  :data:`OPEN_QUERY_STATUS` pins what the
standing sweep finds on the paper's OPEN queries, and extends the
repository's documented *Reproduction finding* (see
:mod:`repro.ijp.search`): Definition 48 read literally is satisfiable
by degenerate databases, and indeed four of the seven open queries
admit literal certificates within the swept range — mostly with
*reflexive* endpoints like ``R(p, p)``, the same shape that already
"certifies" known-PTIME queries.  The table therefore classifies
certificates as *proper* (no endpoint repeats a constant) or
degenerate; either way, a literal-Definition-48 pass does **not**
resolve the query's complexity, because Conjecture 49 as stated is
refuted by the degenerate constructions.  Queries whose space is empty
of certificates through the swept range stay genuinely open in both
senses.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ijp.rgs import RGSShard, bell_number, shard_space
from repro.ijp.space import (
    IJPCertificate,
    NearMiss,
    SpaceSweepResult,
    SpaceSweepStats,
    sweep_space,
)
from repro.parallel import WorkerPool
from repro.query.cq import ConjunctiveQuery
from repro.witness.cache import CACHE_SCHEMA, ResultCache, _canonical_query_text

# Bumped whenever the sweep engine changes in a way that invalidates
# stored shard checkpoints (new prune rules, changed accounting, ...).
SWEEP_SCHEMA = 1

# The paper's seven OPEN queries (Table 2 / Section 8) — the standing
# sweep's fixed population.
OPEN_QUERIES: Tuple[str, ...] = (
    "q_AS3conf",
    "q_ASxy3perm_R",
    "q_S3cc",
    "q_SxyB3perm_R",
    "q_SxyC3perm_R",
    "q_z6",
    "q_z7",
)

# What the standing sweep (full coverage, no budget, prune on) finds on
# the OPEN queries, pinned as of SWEEP_SCHEMA 1.  ``swept_copies`` is
# the largest copy count whose space fits the 9-constant standing cap
# (B(9) = 21147; one more copy of a 4-variable query would be
# B(12) ≈ 4.2M); ``first_certificate_k`` is the least k whose space
# contains a literal Definition 48 certificate, with ``certificates``
# databases admitting one at that k, of which ``proper`` have no
# repeated-constant endpoint.  The degenerate-heavy picture is the
# Reproduction finding at population scale: literal Definition 48
# passes say nothing about hardness until the conjecture is repaired.
OPEN_QUERY_STATUS: Dict[str, Dict] = {
    "q_AS3conf": {
        "variables": 4,
        "swept_copies": 2,
        "first_certificate_k": 2,
        "certificates": 72,
        "proper": 16,
    },
    "q_ASxy3perm_R": {
        "variables": 3,
        "swept_copies": 3,
        "first_certificate_k": None,
        "certificates": 0,
        "proper": 0,
    },
    "q_S3cc": {
        "variables": 4,
        "swept_copies": 2,
        "first_certificate_k": 1,
        "certificates": 4,
        "proper": 3,
    },
    "q_SxyB3perm_R": {
        "variables": 3,
        "swept_copies": 3,
        "first_certificate_k": None,
        "certificates": 0,
        "proper": 0,
    },
    "q_SxyC3perm_R": {
        "variables": 3,
        "swept_copies": 3,
        "first_certificate_k": 3,
        "certificates": 84,
        "proper": 66,
    },
    "q_z6": {
        "variables": 3,
        "swept_copies": 3,
        "first_certificate_k": 3,
        "certificates": 90,
        "proper": 0,
    },
    "q_z7": {
        "variables": 2,
        "swept_copies": 3,
        "first_certificate_k": None,
        "certificates": 0,
        "proper": 0,
    },
}


def certificate_is_proper(certificate: IJPCertificate) -> bool:
    """Whether neither endpoint repeats a constant.

    The known-degenerate literal Definition 48 passes (the Reproduction
    finding) all pivot on *reflexive* endpoints such as ``R(p, p)``,
    whose removal collapses several copies at once — the shape
    Conjecture 49's vertex-cover gluing cannot use.  Properness is a
    necessary sanity cut, not a sufficiency proof."""
    return all(
        len(set(t.values)) == len(t.values) for t in certificate.pair
    )


def default_shard_count(n: int) -> int:
    """Shards for a length-``n`` space: ~1024 leaves per shard, capped
    at 64.  A pure function of the space size — never of the worker
    count — so serial and parallel sweeps share one shard table and
    one set of checkpoint keys."""
    return max(1, min(64, bell_number(n) // 1024))


def shard_checkpoint_key(
    query: ConjunctiveQuery,
    k: int,
    shard: RGSShard,
    budget: Optional[int],
    prune: bool,
    near_miss_limit: int,
) -> str:
    """The content-hash key one completed shard's result is stored
    under: anything that could change the shard's outcome — query text,
    copy count, the shard's exact prefix rows, its budget slice, the
    prune flag, the near-miss cap, and both schema salts — changes the
    key, so stale checkpoints can never resume."""
    hasher = hashlib.sha256()
    for segment in (
        f"schema={CACHE_SCHEMA}",
        f"sweep={SWEEP_SCHEMA}",
        "kind=ijp-shard",
        _canonical_query_text(query),
        f"k={k}",
        f"n={shard.n}",
        f"shard={shard.index}",
        f"start={shard.start}",
        f"shape={shard.codes.shape}",
        shard.codes.tobytes().hex(),
        shard.maxes.tobytes().hex(),
        f"budget={budget}",
        f"prune={prune}",
        f"near_miss_limit={near_miss_limit}",
    ):
        hasher.update(segment.encode())
        hasher.update(b"\x1f")
    return hasher.hexdigest()


@dataclass
class ShardJob:
    """One picklable unit of sweep work: a shard's prefix rows plus
    everything :func:`repro.ijp.space.sweep_space` needs to screen
    them.  Runs identically in a worker process or in-process."""

    query: ConjunctiveQuery
    query_name: str
    k: int
    codes: np.ndarray
    maxes: np.ndarray
    budget: Optional[int]
    prune: bool
    cache_dir: Optional[str]
    near_miss_limit: int


def run_shard_job(job: ShardJob) -> SpaceSweepResult:
    """Screen one shard (the worker-process entry point).

    Also the serial fallback — which is what makes ``workers=2``
    bit-identical to serial by construction: the same jobs run the same
    code, and the coordinator merges in shard order either way."""
    return sweep_space(
        job.query,
        job.k,
        job.codes,
        job.maxes,
        budget=job.budget,
        cache_dir=job.cache_dir,
        prune=job.prune,
        near_miss_limit=job.near_miss_limit,
        query_name=job.query_name,
    )


@dataclass
class QuerySweep:
    """The merged outcome of one (query, copy-count) sweep range."""

    query_name: str
    k: int
    n: int
    shards: int
    shards_resumed: int
    seconds: float
    stats: SpaceSweepStats
    certificates: List[IJPCertificate] = field(default_factory=list)
    near_misses: List[NearMiss] = field(default_factory=list)

    @property
    def proper_certificates(self) -> List[IJPCertificate]:
        return [c for c in self.certificates if certificate_is_proper(c)]

    def to_dict(self) -> Dict:
        return {
            "query": self.query_name,
            "k": self.k,
            "n": self.n,
            "shards": self.shards,
            "shards_resumed": self.shards_resumed,
            "seconds": self.seconds,
            "stats": self.stats.to_dict(),
            "certificates": [
                {
                    "rgs": list(c.rgs),
                    "pair": [repr(c.pair[0]), repr(c.pair[1])],
                    "resilience": c.resilience,
                    "proper": certificate_is_proper(c),
                }
                for c in self.certificates
            ],
            "near_misses": [
                {
                    "rgs": list(m.rgs),
                    "pair": [repr(m.pair[0]), repr(m.pair[1])],
                    "probe_values": list(m.probe_values),
                }
                for m in self.near_misses
            ],
        }


@dataclass
class SweepReport:
    """A whole sweep: per-(query, k) outcomes plus the roll-up table."""

    sweeps: List[QuerySweep] = field(default_factory=list)
    workers: int = 1
    seconds: float = 0.0

    @property
    def shards_resumed(self) -> int:
        return sum(s.shards_resumed for s in self.sweeps)

    def table(self) -> List[Dict]:
        """One row per query: paper verdict, coverage, and the first
        copy count admitting a literal Definition 48 certificate (with
        its proper/degenerate split) — the open-conjecture table."""
        from repro.query.zoo import PAPER_VERDICTS

        rows: List[Dict] = []
        seen: List[str] = []
        for sweep in self.sweeps:
            if sweep.query_name not in seen:
                seen.append(sweep.query_name)
        for name in seen:
            ranges = [s for s in self.sweeps if s.query_name == name]
            first = next((s for s in ranges if s.certificates), None)
            rows.append(
                {
                    "query": name,
                    "verdict": PAPER_VERDICTS.get(name, "-"),
                    "swept_copies": max(s.k for s in ranges),
                    "covered": sum(s.stats.covered for s in ranges),
                    "exhausted": all(s.stats.exhausted for s in ranges),
                    "first_certificate_k": first.k if first else None,
                    "certificates": len(first.certificates) if first else 0,
                    "proper": len(first.proper_certificates) if first else 0,
                    "near_misses": sum(len(s.near_misses) for s in ranges),
                }
            )
        return rows

    def render(self) -> str:
        lines = [
            f"{'query':16s} {'paper':6s} {'k*':>3s} {'certs':>6s} "
            f"{'proper':>6s} {'covered':>9s} {'exhausted':9s}"
        ]
        for row in self.table():
            k_star = "-" if row["first_certificate_k"] is None else str(
                row["first_certificate_k"]
            )
            lines.append(
                f"{row['query']:16s} {row['verdict']:6s} {k_star:>3s} "
                f"{row['certificates']:6d} {row['proper']:6d} "
                f"{row['covered']:9d} {'yes' if row['exhausted'] else 'no':9s}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "schema": 1,
            "sweep_schema": SWEEP_SCHEMA,
            "workers": self.workers,
            "seconds": self.seconds,
            "shards_resumed": self.shards_resumed,
            "table": self.table(),
            "sweeps": [s.to_dict() for s in self.sweeps],
        }


def allocate_budgets(
    shards: Sequence[RGSShard], budget: Optional[int]
) -> List[Optional[int]]:
    """Pre-allocate a covered-partition budget to shards in lex order.

    Earlier shards fill first, so a budgeted sweep covers exactly the
    lexicographic prefix an unbudgeted sweep would visit first — the
    allocation is deterministic, so shard checkpoint keys (which cover
    the budget slice) are too.  ``None`` means unlimited everywhere."""
    if budget is None:
        return [None] * len(shards)
    out: List[Optional[int]] = []
    remaining = max(0, int(budget))
    for shard in shards:
        slice_ = min(shard.leaves, remaining)
        out.append(slice_)
        remaining -= slice_
    return out


def sweep_range(
    query: ConjunctiveQuery,
    k: int,
    query_name: Optional[str] = None,
    budget: Optional[int] = None,
    workers: int = 1,
    cache_dir=None,
    resume: bool = True,
    prune: bool = True,
    near_miss_limit: int = 8,
    pool: Optional[WorkerPool] = None,
) -> QuerySweep:
    """Sweep the whole ``k``-copy partition space of one query.

    The space is split by :func:`default_shard_count` /
    :func:`repro.ijp.rgs.shard_space` (worker-independent), each shard
    screened by :func:`run_shard_job` — on a :class:`WorkerPool` when
    ``workers > 1`` and more than one shard needs running, in-process
    otherwise — and the results merged **in shard order**, so the merged
    certificates and near misses come out in global RGS lex order for
    any worker count.  With ``cache_dir``, completed shards are
    checkpointed and (``resume=True``) replayed from disk, certificates
    are stored content-addressed, and the condition-5 probes share the
    engine's persistent result cache.
    """
    name = query_name or query.name or "q"
    started = time.perf_counter()
    n = k * len(query.variables())
    shards = shard_space(n, default_shard_count(n))
    budgets = allocate_budgets(shards, budget)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    cache_path = str(cache.cache_dir) if cache is not None else None
    results: List[Optional[SpaceSweepResult]] = [None] * len(shards)
    resumed = 0
    jobs: List[Tuple[int, str, ShardJob]] = []
    for i, (shard, slice_) in enumerate(zip(shards, budgets)):
        if slice_ == 0:
            # Budget exhausted before this shard: nothing was covered,
            # and saying otherwise would overstate the sweep's claim.
            results[i] = SpaceSweepResult(
                stats=SpaceSweepStats(k=k, n=n, exhausted=False)
            )
            continue
        key = (
            shard_checkpoint_key(query, k, shard, slice_, prune, near_miss_limit)
            if cache is not None
            else None
        )
        if resume and cache is not None:
            stored = cache.get(key)
            if isinstance(stored, SpaceSweepResult):
                results[i] = stored
                resumed += 1
                continue
        jobs.append(
            (
                i,
                key,
                ShardJob(
                    query=query,
                    query_name=name,
                    k=k,
                    codes=shard.codes,
                    maxes=shard.maxes,
                    budget=slice_,
                    prune=prune,
                    cache_dir=cache_path,
                    near_miss_limit=near_miss_limit,
                ),
            )
        )
    if jobs and workers > 1 and len(jobs) > 1:
        own_pool = pool is None
        active = pool or WorkerPool(workers)
        try:
            executor = active.executor()
            futures = [executor.submit(run_shard_job, job) for _, _, job in jobs]
            # Collect in submission (= shard) order, not completion order.
            for (i, key, _), future in zip(jobs, futures):
                results[i] = future.result()
                if cache is not None:
                    cache.put(key, results[i])
        finally:
            if own_pool:
                active.shutdown()
    else:
        for i, key, job in jobs:
            results[i] = run_shard_job(job)
            if cache is not None:
                cache.put(key, results[i])
    stats = SpaceSweepStats(k=k, n=n)
    certificates: List[IJPCertificate] = []
    near_misses: List[NearMiss] = []
    for result in results:
        stats.merge(result.stats)
        certificates.extend(result.certificates)
        near_misses.extend(result.near_misses)
    near_misses = near_misses[:near_miss_limit]
    if cache is not None:
        for cert in certificates:
            cache.put(cert.content_key(query), cert)
    return QuerySweep(
        query_name=name,
        k=k,
        n=n,
        shards=len(shards),
        shards_resumed=resumed,
        seconds=time.perf_counter() - started,
        stats=stats,
        certificates=certificates,
        near_misses=near_misses,
    )


def sweep(
    queries: Sequence[Tuple[str, ConjunctiveQuery]],
    copies: int = 3,
    budget: Optional[int] = None,
    workers: int = 1,
    cache_dir=None,
    resume: bool = True,
    prune: bool = True,
    max_constants: int = 9,
    near_miss_limit: int = 8,
    pool: Optional[WorkerPool] = None,
) -> SweepReport:
    """Sweep every query at every feasible copy count up to ``copies``.

    Copy counts whose space would exceed ``max_constants`` constants
    are skipped — the default 9 caps each range at B(9) = 21147
    partitions, so four-variable queries sweep two copies and
    two-variable queries three; raise the cap (up to the engine's
    63-constant mask limit) for deeper, B(12)+-scale campaigns.
    ``budget`` is per (query, k) range.  One :class:`WorkerPool` is
    shared across all ranges.
    """
    started = time.perf_counter()
    own_pool = pool is None and workers > 1
    active = pool if pool is not None else (
        WorkerPool(workers) if workers > 1 else None
    )
    report = SweepReport(workers=max(1, workers))
    try:
        for name, query in queries:
            width = max(1, len(query.variables()))
            for k in range(1, copies + 1):
                if k > 1 and k * width > max_constants:
                    continue
                report.sweeps.append(
                    sweep_range(
                        query,
                        k,
                        query_name=name,
                        budget=budget,
                        workers=workers,
                        cache_dir=cache_dir,
                        resume=resume,
                        prune=prune,
                        near_miss_limit=near_miss_limit,
                        pool=active,
                    )
                )
    finally:
        if own_pool and active is not None:
            active.shutdown()
    report.seconds = time.perf_counter() - started
    return report


def standing_queries(
    random_queries: int = 0, seed: int = 0
) -> List[Tuple[str, ConjunctiveQuery]]:
    """The standing sweep population: the paper's seven OPEN queries
    plus ``random_queries`` seeded three-occurrence samples from the
    Conjecture 49 frontier fragment (one shared generator, so the whole
    population is reproducible from one seed)."""
    import random

    from repro.query.zoo import ALL_QUERIES
    from repro.workloads.random_queries import random_three_occurrence_cq

    population: List[Tuple[str, ConjunctiveQuery]] = [
        (name, ALL_QUERIES[name]) for name in OPEN_QUERIES
    ]
    rng = random.Random(seed)
    for i in range(random_queries):
        q = random_three_occurrence_cq(rng=rng)
        population.append((f"rand_3occ_{seed}_{i}", q))
    return population


def standing_sweep(
    copies: int = 3,
    budget: Optional[int] = None,
    workers: int = 1,
    cache_dir=None,
    resume: bool = True,
    random_queries: int = 0,
    seed: int = 0,
    max_constants: int = 9,
) -> SweepReport:
    """The standing open-conjecture sweep: :func:`sweep` over
    :func:`standing_queries` — the run whose full-coverage results
    :data:`OPEN_QUERY_STATUS` pins."""
    return sweep(
        standing_queries(random_queries=random_queries, seed=seed),
        copies=copies,
        budget=budget,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        max_constants=max_constants,
    )
