"""Incremental resilience under database updates.

Resilience (Definition 1, the Section 2 hitting-set view) over a
database that changes: :class:`IncrementalSession` applies
``insert`` / ``delete`` / ``apply`` tuple deltas and keeps the witness
structure, its kernelization, and the per-component solves incremental,
certifying updated optima from the single-tuple delta laws
(``rho_old <= rho(D + t) <= rho_old + 1`` for an endogenous insert,
``rho_old - 1 <= rho(D - t) <= rho_old`` for an endogenous delete)
whenever they pin the value.  See :mod:`repro.incremental.session` for
the engine and ``docs/incremental.md`` for the contract.
"""

from repro.incremental.session import IncrementalSession, SessionStats, Update

__all__ = ["IncrementalSession", "SessionStats", "Update"]
