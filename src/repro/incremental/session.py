"""Incremental resilience under database updates.

Resilience (Definition 1) is defined over a *fixed* database, but the
paper's motivating scenarios — deletion propagation, causal
responsibility, what-if analysis — live on databases that change.
Re-solving from scratch after every tuple insert/delete pays the full
Section 2 pipeline each time: witness enumeration, the kernelization
fixpoint, and an NP-hard hitting-set search (Theorem 24).  An
:class:`IncrementalSession` keeps all three incremental:

1. **Delta witness enumeration.**  The session maintains the set of
   *full* witness tuple-sets (endogenous and exogenous facts alike).
   Inserting a fact only runs the constrained join
   :func:`repro.query.evaluation.iter_witnesses_using` — every witness
   of the new database either existed before or maps some atom to the
   new fact.  Deleting a fact removes exactly the full sets containing
   it.  The endogenous projections (the hitting-set family the solvers
   consume) are maintained with per-projection support counts, so the
   family only changes when a projection appears or loses its last
   supporting witness.

2. **Per-component preprocessing and solving, cached by content.**  The
   kernelization fixpoint of :mod:`repro.witness.structure` (superset
   elimination, unit forcing, domination) never acts across connected
   components of the witness incidence graph, so the session runs it
   per raw component and memoizes the result by the component's
   *content*.  Likewise each reduced component's minimum hitting set
   (or certified interval) is memoized — in memory and, when a
   ``cache_dir`` is given, in the persistent
   :class:`~repro.witness.cache.ResultCache` under
   :func:`~repro.witness.cache.component_cache_key`.  A single-tuple
   update touches one component; every other component hits the caches
   across database states.

3. **Warm-start certification from the single-tuple delta laws.**  For
   one endogenous tuple ``t``: witnesses only grow under insertion, so
   ``rho(D) <= rho(D + t)``; every witness created by the insertion
   uses ``t``, so ``Gamma ∪ {t}`` stays feasible and
   ``rho(D + t) <= rho(D) + 1``.  Dually
   ``rho(D) - 1 <= rho(D - t) <= rho(D)``.  Exogenous inserts only
   bound from below (``rho`` is monotone), and exogenous deletions only
   from above.  At solve time the session replays these laws over the
   updates applied since the last exact answer: if the surviving part
   of the previous minimum contingency set is still feasible and its
   size meets the accumulated lower bound, the new optimum is
   *certified without any search* (``method="warm-start"``).

All three solving tiers are supported (``mode="exact" | "approx" |
"anytime"``), with the contract that every answer equals what a
from-scratch :func:`repro.resilience.solver.solve` would return on the
current database: exact values exactly, certified intervals
identically for ``approx`` and for ``anytime`` with an unlimited
budget (a finite anytime budget is re-spent on the maintained
structure, exactly as a fresh solve would spend it).  Queries the
dispatcher solves with a proved polynomial algorithm (the bespoke
Propositions 12/13/33/36/41/44 solvers and the linear flow of
Proposition 31) are simply re-run — they are already update-cheap.

See ``docs/incremental.md`` for the full delta-bound contract and
cache interaction.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.analyzer import _default_workers
from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import (
    DatabaseIndex,
    iter_witnesses,
    iter_witnesses_using,
    witness_tuples,
)
from repro.query.parser import parse_query
from repro.resilience.approx import (
    _BudgetMeter,
    _budgeted_bnb,
    _component_interval,
    resilience_anytime,
)
from repro.resilience.exact import (
    _bnb_component,
    _ilp_component,
    choose_backend,
)
from repro.resilience.solver import dispatch_plan, solve as _dispatch_solve
from repro.resilience.types import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
)
from repro.witness import (
    ReductionStats,
    ResultCache,
    UnbreakableQueryError,
    WitnessStructure,
    component_cache_key,
)
from repro.witness.structure import _decompose, _reduce

__all__ = ["IncrementalSession", "SessionStats", "Update"]

# In-memory per-component memo size (reduction results and solved
# components share one LRU each); content-keyed entries are small.
_MEMO_MAX = 4096


@dataclass(frozen=True)
class Update:
    """One database update: ``op`` is ``"insert"`` or ``"delete"``."""

    op: str
    fact: DBTuple

    def __post_init__(self):
        if self.op not in ("insert", "delete"):
            raise ValueError(f"unknown update op {self.op!r}")

    def __repr__(self) -> str:
        sign = "+" if self.op == "insert" else "-"
        return f"{sign}{self.fact!r}"


@dataclass
class SessionStats:
    """Telemetry for one :class:`IncrementalSession`.

    ``delta_witnesses`` counts full witness sets discovered by the
    constrained delta join (vs. full re-enumeration); ``warm_certified``
    counts exact answers certified by the delta laws without any
    search; the component counters split cache reuse from fresh work.
    """

    updates: int = 0
    inserts: int = 0
    deletes: int = 0
    delta_witnesses: int = 0
    removed_witnesses: int = 0
    solves: int = 0
    warm_certified: int = 0
    structures_rebuilt: int = 0
    components_reduced: int = 0
    components_reduce_reused: int = 0
    components_solved: int = 0
    components_memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def summary_lines(self) -> List[str]:
        """Human-readable report (``repro bench --updates`` prints it)."""
        lines = [
            f"updates: {self.updates} ({self.inserts} inserts, "
            f"{self.deletes} deletes); witness delta "
            f"+{self.delta_witnesses}/-{self.removed_witnesses}",
            f"solves: {self.solves} ({self.warm_certified} warm-certified, "
            f"{self.structures_rebuilt} structure rebuilds)",
            f"components: {self.components_solved} solved, "
            f"{self.components_memo_hits} memo hits, "
            f"{self.components_reduced} reduced, "
            f"{self.components_reduce_reused} reductions reused",
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"result cache: {self.cache_hits} component hits, "
                f"{self.cache_misses} misses"
            )
        return lines


class _QueryState:
    """Incremental bookkeeping for one exact-dispatch query."""

    def __init__(self, query: ConjunctiveQuery, plan_kind: str, database: Database):
        self.query = query
        self.plan_kind = plan_kind
        self.relations = query.relation_names()
        # A relation is exogenous for this query if the query marks it
        # (R^x atoms) or the database instance declares it so — the
        # same rule witness_tuple_sets applies.  Flags are fixed at
        # session start; flipping them mid-session is not supported.
        flags = dict(query.relation_flags())
        for name, rel in database.relations.items():
            if rel.exogenous and name in flags:
                flags[name] = True
        self.exo_flags = flags
        self.full_sets: Set[FrozenSet[DBTuple]] = set()
        # Inverted index: fact -> full witness sets using it, so a
        # delete touches exactly its delta instead of scanning every
        # stored set.
        self.sets_by_fact: Dict[DBTuple, Set[FrozenSet[DBTuple]]] = {}
        self.proj_count: Dict[FrozenSet[DBTuple], int] = {}
        # The "family" is the set of endogenous projections; its version
        # bumps only when a projection appears or disappears, which is
        # the only way any solver answer can change.
        self.family_version = 0
        # Deltas accumulated since the last *exact* answer, for the
        # warm-start certification.
        self.added_projs: Set[FrozenSet[DBTuple]] = set()
        self.endo_removal_ops = 0
        self.exo_removed_sets = False
        self.last_exact: Optional[ResilienceResult] = None
        # (mode, budget) -> (family_version, result)
        self.last_results: Dict[tuple, Tuple[int, object]] = {}
        self.ws: Optional[WitnessStructure] = None
        self.ws_version = -1

    # -- projections ---------------------------------------------------
    def project(self, full: FrozenSet[DBTuple]) -> FrozenSet[DBTuple]:
        return frozenset(
            t for t in full if not self.exo_flags.get(t.relation, False)
        )

    @property
    def unbreakable(self) -> bool:
        return frozenset() in self.proj_count

    # -- maintenance ---------------------------------------------------
    def _track_full(self, full: FrozenSet[DBTuple]) -> None:
        self.full_sets.add(full)
        for fact in full:
            self.sets_by_fact.setdefault(fact, set()).add(full)

    def _untrack_full(self, full: FrozenSet[DBTuple]) -> None:
        self.full_sets.discard(full)
        for fact in full:
            bucket = self.sets_by_fact.get(fact)
            if bucket is not None:
                bucket.discard(full)
                if not bucket:
                    del self.sets_by_fact[fact]

    def rebuild(self, database: Database, index: DatabaseIndex) -> None:
        """Full enumeration (session start only)."""
        self.full_sets = set()
        self.sets_by_fact = {}
        self.proj_count = {}
        for valuation in iter_witnesses(database, self.query, index=index):
            full = frozenset(witness_tuples(self.query, valuation))
            if full in self.full_sets:
                continue
            self._track_full(full)
            proj = self.project(full)
            self.proj_count[proj] = self.proj_count.get(proj, 0) + 1

    def note_insert(
        self,
        database: Database,
        index: DatabaseIndex,
        fact: DBTuple,
        stats: SessionStats,
    ) -> None:
        if fact.relation not in self.relations:
            return
        appeared = False
        for valuation in iter_witnesses_using(
            database, self.query, fact, index=index
        ):
            full = frozenset(witness_tuples(self.query, valuation))
            if full in self.full_sets:
                continue
            self._track_full(full)
            stats.delta_witnesses += 1
            proj = self.project(full)
            count = self.proj_count.get(proj, 0)
            self.proj_count[proj] = count + 1
            if count == 0:
                self.added_projs.add(proj)
                appeared = True
        if appeared:
            self.family_version += 1

    def note_delete(self, fact: DBTuple, stats: SessionStats) -> None:
        if fact.relation not in self.relations:
            return
        removed = list(self.sets_by_fact.get(fact, ()))
        if not removed:
            return
        for full in removed:
            self._untrack_full(full)
        stats.removed_witnesses += len(removed)
        vanished = False
        for full in removed:
            proj = self.project(full)
            count = self.proj_count[proj] - 1
            if count:
                self.proj_count[proj] = count
            else:
                del self.proj_count[proj]
                self.added_projs.discard(proj)
                vanished = True
        if vanished:
            self.family_version += 1
            # The delta laws: one endogenous deletion lowers rho by at
            # most 1; an exogenous deletion that destroys witnesses can
            # lower it arbitrarily (no warm lower bound survives).
            if self.exo_flags.get(fact.relation, False):
                self.exo_removed_sets = True
            else:
                self.endo_removal_ops += 1

    def note_exact_answer(self, result: ResilienceResult) -> None:
        self.last_exact = result
        self.added_projs.clear()
        self.endo_removal_ops = 0
        self.exo_removed_sets = False


class IncrementalSession:
    """Maintain resilience of one or more queries under tuple updates.

    Parameters
    ----------
    database:
        The initial instance.  The session works on a private copy;
        mutate through :meth:`insert` / :meth:`delete` / :meth:`apply`.
    queries:
        One query (``ConjunctiveQuery`` or Datalog text) or a sequence.
    cache_dir:
        Optional path or :class:`~repro.witness.cache.ResultCache`:
        solved components persist across sessions under
        :func:`~repro.witness.cache.component_cache_key`.
    workers:
        Default worker count for exact component solving (``None``
        reads ``REPRO_WORKERS``; 1 = serial).  Only components missing
        from every cache are farmed out, via :mod:`repro.parallel`.
    warm_start:
        Enable the delta-law certification (on by default; switch off
        to force the full per-component path, e.g. when benchmarking).

    Every :meth:`solve` answer matches a from-scratch
    :func:`repro.resilience.solver.solve` on the current database —
    same values, same certified intervals — the session only changes
    *how much work* the answer costs.
    """

    def __init__(
        self,
        database: Database,
        queries: Union[str, ConjunctiveQuery, Sequence],
        cache_dir=None,
        workers: Optional[int] = None,
        warm_start: bool = True,
    ):
        if isinstance(queries, (str, ConjunctiveQuery)):
            queries = [queries]
        parsed = [
            parse_query(q) if isinstance(q, str) else q for q in queries
        ]
        if not parsed:
            raise ValueError("an IncrementalSession needs at least one query")
        self._db = database.copy()
        self._index = DatabaseIndex(self._db)
        self._workers = workers
        self._warm = warm_start
        self.stats = SessionStats()
        if cache_dir is None:
            self._cache: Optional[ResultCache] = None
        elif isinstance(cache_dir, ResultCache):
            self._cache = cache_dir
        else:
            self._cache = ResultCache(cache_dir)
        self._comp_memo: "OrderedDict[tuple, object]" = OrderedDict()
        self._reduce_memo: "OrderedDict[frozenset, tuple]" = OrderedDict()
        self._states: Dict[FrozenSet, _QueryState] = {}
        ordered: List[ConjunctiveQuery] = []
        for q in parsed:
            sig = q.canonical_signature()
            if sig in self._states:
                continue
            state = _QueryState(q, dispatch_plan(q).kind, self._db)
            if state.plan_kind == "exact":
                state.rebuild(self._db, self._index)
            self._states[sig] = state
            ordered.append(q)
        self._queries = tuple(ordered)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The session's current database.  Treat as read-only: mutate
        through :meth:`insert` / :meth:`delete` so the incremental
        state stays consistent."""
        return self._db

    @property
    def queries(self) -> Tuple[ConjunctiveQuery, ...]:
        return self._queries

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _coerce(self, fact, values) -> DBTuple:
        if isinstance(fact, DBTuple):
            if values:
                raise ValueError("pass either a DBTuple or name + values")
            return fact
        return DBTuple(fact, tuple(values))

    def insert(self, fact, *values, cost: Optional[int] = None) -> DBTuple:
        """Insert a fact (``insert(DBTuple)`` or ``insert("R", 1, 2)``).

        Re-inserting an existing fact is a no-op (set semantics), except
        that an explicit ``cost`` still takes effect (last writer wins,
        as in :meth:`Database.add`).  New witnesses are discovered by
        the constrained delta join only.
        """
        fact = self._coerce(fact, values)
        rel = self._db.relations.get(fact.relation)
        if rel is not None and fact in rel:
            if cost is not None:
                rel.set_cost(fact, cost)
            return fact
        self._db.add(fact.relation, *fact.values, cost=cost)
        self._index.observe_insert(fact)
        self.stats.updates += 1
        self.stats.inserts += 1
        for state in self._states.values():
            if state.plan_kind == "exact":
                state.note_insert(self._db, self._index, fact, self.stats)
        return fact

    def delete(self, fact, *values) -> DBTuple:
        """Delete a fact; raises ``ValueError`` if it is not present.

        This is a database *update*, not a contingency deletion, so
        exogenous facts may be deleted too (contrast
        :meth:`Database.minus`, which enforces Definition 1).
        """
        fact = self._coerce(fact, values)
        rel = self._db.relations.get(fact.relation)
        if rel is None or fact not in rel:
            raise ValueError(f"{fact!r} is not in the database")
        rel.discard(fact)
        self._index.observe_delete(fact)
        self.stats.updates += 1
        self.stats.deletes += 1
        for state in self._states.values():
            if state.plan_kind == "exact":
                state.note_delete(fact, self.stats)
        return fact

    def set_cost(self, fact, *values, cost: int) -> DBTuple:
        """Set a present fact's weighted-resilience cost.

        Costs never change the witness family — only weighted solves
        observe them — so no incremental state is invalidated; weighted
        answers always read the current costs (see :meth:`solve`).
        """
        fact = self._coerce(fact, values)
        self._db.set_cost(fact, cost)
        return fact

    def apply(self, updates: Iterable) -> int:
        """Apply a batch of updates in order; returns how many applied.

        Accepts :class:`Update` objects or ``(op, fact)`` pairs.
        Nothing is solved until :meth:`solve` is called, so a batch
        pays one structure refresh, not one per update.
        """
        count = 0
        for update in updates:
            if isinstance(update, Update):
                op, fact = update.op, update.fact
            else:
                op, fact = update
            if op == "insert":
                self.insert(fact)
            elif op == "delete":
                self.delete(fact)
            else:
                raise ValueError(f"unknown update op {op!r}")
            count += 1
        return count

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _state_for(self, query) -> _QueryState:
        if query is None:
            if len(self._queries) != 1:
                raise ValueError(
                    "session tracks several queries; pass the one to solve"
                )
            query = self._queries[0]
        if isinstance(query, str):
            query = parse_query(query)
        state = self._states.get(query.canonical_signature())
        if state is None:
            raise KeyError(f"query {query!r} is not tracked by this session")
        return state

    def solve(
        self,
        query=None,
        mode: str = "exact",
        budget=None,
        workers=None,
        weighted: bool = False,
    ):
        """Resilience of one tracked query over the current database.

        Returns exactly what :func:`repro.resilience.solver.solve`
        would on the current state: a :class:`ResilienceResult` for
        ``mode="exact"`` (``method="warm-start"`` when the delta laws
        certified the value without search), a certified
        :class:`BoundedResilienceResult` for the bounded modes.
        Raises :class:`UnbreakableQueryError` exactly when a
        from-scratch solve would.

        ``weighted=True`` over a database with non-unit endogenous
        costs dispatches a from-scratch weighted solve: the session's
        incremental machinery (warm-start delta laws, per-component
        memos) is cardinality-based and is not consulted.  With all
        costs at 1 the flag delegates to the incremental path,
        bit-identical to ``weighted=False``.
        """
        if mode not in ("exact", "approx", "anytime"):
            raise ValueError(f"unknown mode {mode!r}")
        state = self._state_for(query)
        self.stats.solves += 1
        if weighted and self._db.has_weighted_costs():
            # Correct by the session contract (answers equal a fresh
            # solve); weighted answers are simply never accelerated.
            return _dispatch_solve(
                self._db, state.query, mode=mode, budget=budget,
                index=self._index, weighted=True,
            )
        if state.plan_kind != "exact":
            return _dispatch_solve(
                self._db, state.query, mode=mode, budget=budget,
                index=self._index,
            )
        if state.unbreakable:
            raise UnbreakableQueryError(
                "a witness uses only exogenous tuples; the query cannot "
                "be falsified by endogenous deletions"
            )
        budget_obj = Budget.coerce(budget) if mode == "anytime" else None
        mode_key = (
            mode,
            None if budget_obj is None else budget_obj.time_limit,
            None if budget_obj is None else budget_obj.node_limit,
        )
        cached = state.last_results.get(mode_key)
        if cached is not None and cached[0] == state.family_version:
            return cached[1]

        if mode == "exact":
            result = self._solve_exact(state, workers)
        elif not state.proj_count:
            result = BoundedResilienceResult(
                0, 0, frozenset(), method="unsatisfied"
            )
        elif mode == "approx":
            result = self._solve_approx(self._structure(state))
        elif budget_obj is not None and not budget_obj.unlimited:
            # A finite anytime budget is spent across components in gap
            # order; re-running the stock driver on the maintained
            # structure reproduces a fresh solve's spending exactly.
            result = resilience_anytime(
                self._db, state.query, budget=budget_obj,
                structure=self._structure(state),
            )
        else:
            result = self._solve_anytime_unlimited(self._structure(state))
        state.last_results[mode_key] = (state.family_version, result)
        return result

    def solve_all(
        self, mode: str = "exact", budget=None, workers=None,
        weighted: bool = False,
    ) -> List:
        """Solve every tracked query; results in constructor order."""
        return [
            self.solve(
                q, mode=mode, budget=budget, workers=workers,
                weighted=weighted,
            )
            for q in self._queries
        ]

    # -- exact tier ----------------------------------------------------
    def _solve_exact(self, state: _QueryState, workers) -> ResilienceResult:
        if not state.proj_count:
            result = ResilienceResult(0, frozenset(), method="unsatisfied")
            state.note_exact_answer(result)
            return result
        warm = self._try_warm(state)
        if warm is not None:
            state.note_exact_answer(warm)
            return warm
        ws = self._structure(state)
        result = self._solve_exact_structure(ws, workers)
        state.note_exact_answer(result)
        return result

    def _try_warm(self, state: _QueryState) -> Optional[ResilienceResult]:
        """Certify the new optimum from the delta laws, if they pin it.

        Sound because, over the updates since the last exact answer:
        ``rho`` dropped by at most 1 per endogenous deletion and never
        otherwise (inserts are monotone), so
        ``rho_new >= rho_old - endo_removal_ops`` as long as no
        exogenous deletion destroyed a projection; and the surviving
        part of the old minimum contingency set hits every surviving
        old projection automatically (a projection containing a deleted
        fact cannot survive), so feasibility only needs checking
        against the projections that *appeared*.
        """
        if not self._warm:
            return None
        last = state.last_exact
        if last is None or state.exo_removed_sets:
            return None
        gamma = frozenset(
            t for t in last.contingency_set if t in self._db
        )
        if len(gamma) != last.value - state.endo_removal_ops:
            return None
        for proj in state.added_projs:
            if not (proj & gamma):
                return None
        self.stats.warm_certified += 1
        return ResilienceResult(len(gamma), gamma, method="warm-start")

    def _solve_exact_structure(
        self, ws: WitnessStructure, workers
    ) -> ResilienceResult:
        # resilience_exact(prefer="auto")'s backend rule, so the
        # assembled answer is the one a fresh solve would name.
        backend = choose_backend(ws)
        use_ilp = backend == "ilp"
        method = "ilp" if use_ilp else "branch-and-bound"
        chosen: Set[DBTuple] = set(ws.tuples(ws.forced_ids))
        missing: List[Tuple[frozenset, object]] = []
        for comp in ws.components:
            content = self._component_content(ws, comp)
            payload = self._component_lookup(content, "exact", backend)
            if payload is not None:
                chosen |= payload
            else:
                missing.append((content, comp))
        if missing:
            workers = self._effective_workers(workers)
            if workers > 1 and len(missing) > 1:
                solved = self._solve_components_pooled(ws, missing, backend, workers)
            else:
                solved = [
                    _ilp_component(comp) if use_ilp else _bnb_component(comp.sets)
                    for _content, comp in missing
                ]
            for (content, _comp), ids in zip(missing, solved):
                facts = frozenset(ws.tuples(ids))
                self._component_store(content, "exact", backend, facts)
                chosen |= facts
        return ResilienceResult(len(chosen), frozenset(chosen), method=method)

    def _solve_components_pooled(self, ws, missing, backend, workers):
        """Farm uncached components to the repro.parallel pool."""
        from repro.parallel import (
            ComponentTask,
            build_shards,
            execute_shards,
            group_by_database,
        )

        tasks = [
            ComponentTask(i, comp.tuple_ids, comp.sets, backend)
            for i, (_content, comp) in enumerate(missing)
        ]
        shards = build_shards(group_by_database(tasks), workers)
        outcomes, _telemetry = execute_shards(shards, workers)
        return [outcomes[i] for i in range(len(missing))]

    # -- bounded tiers -------------------------------------------------
    def _solve_approx(self, ws: WitnessStructure) -> BoundedResilienceResult:
        lower = len(ws.forced_ids)
        chosen: Set[DBTuple] = set(ws.tuples(ws.forced_ids))
        for comp in ws.components:
            content = self._component_content(ws, comp)
            payload = self._component_lookup(content, "approx", None)
            if payload is None:
                lb, ub_ids = _component_interval(comp)
                payload = (lb, frozenset(ws.tuples(ub_ids)))
                self._component_store(content, "approx", None, payload)
            lb, facts = payload
            lower += lb
            chosen |= facts
        return BoundedResilienceResult(
            lower, len(chosen), frozenset(chosen), method="lp+greedy"
        )

    def _solve_anytime_unlimited(
        self, ws: WitnessStructure
    ) -> BoundedResilienceResult:
        # With an unlimited budget every component's refinement runs to
        # completion, so per-component answers are independent of the
        # gap ordering the stock driver uses — cache-friendly, and
        # identical to resilience_anytime(budget=None) by construction.
        chosen: Set[DBTuple] = set(ws.tuples(ws.forced_ids))
        for comp in ws.components:
            content = self._component_content(ws, comp)
            payload = self._component_lookup(content, "anytime", None)
            if payload is None:
                lb, ub_ids = _component_interval(comp)
                if lb < len(ub_ids):
                    _lb, bnb_ids, completed = _budgeted_bnb(
                        comp.sets, ub_ids, _BudgetMeter(Budget())
                    )
                    if len(bnb_ids) < len(ub_ids):
                        ub_ids = bnb_ids
                payload = frozenset(ws.tuples(ub_ids))
                self._component_store(content, "anytime", None, payload)
            chosen |= payload
        value = len(chosen)
        return BoundedResilienceResult(
            value, value, frozenset(chosen), method="anytime"
        )

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _structure(self, state: _QueryState) -> WitnessStructure:
        """The current reduced witness structure, rebuilt lazily.

        Enumeration is never repeated (the projection family is already
        maintained); the kernelization fixpoint runs only on raw
        components whose content is new, everything else comes from the
        reduction memo.
        """
        if state.ws is not None and state.ws_version == state.family_version:
            return state.ws
        t0 = time.perf_counter()
        projections = list(state.proj_count)
        universe = tuple(sorted({t for p in projections for t in p}))
        index = {t: i for i, t in enumerate(universe)}
        raw = tuple(
            frozenset(index[t] for t in p) for p in projections
        )
        stats = ReductionStats(
            witnesses_raw=len(raw), tuples_raw=len(universe)
        )
        stats.witnesses_distinct = len(raw)
        reduced: List[FrozenSet[int]] = []
        forced: Set[int] = set()
        for comp in _decompose(raw):
            content = frozenset(
                frozenset(universe[i] for i in s) for s in comp.sets
            )
            cached = self._reduce_lookup(content)
            if cached is None:
                comp_stats = ReductionStats()
                sets_r, forced_r, dominated = _reduce(
                    list(comp.sets), comp_stats
                )
                cached = (
                    tuple(
                        frozenset(universe[i] for i in s) for s in sets_r
                    ),
                    frozenset(universe[i] for i in forced_r),
                    dominated,
                    comp_stats.rounds,
                )
                self._reduce_store(content, cached)
                self.stats.components_reduced += 1
            else:
                self.stats.components_reduce_reused += 1
            sets_facts, forced_facts, dominated, rounds = cached
            reduced.extend(
                frozenset(index[t] for t in s) for s in sets_facts
            )
            forced.update(index[t] for t in forced_facts)
            stats.dominated_tuples += dominated
            stats.rounds += rounds
        stats.forced_tuples = len(forced)
        # Incremental builds skip the global first-pass minimality count;
        # the final counts are set by WitnessStructure.__init__.
        stats.witnesses_minimal = len(reduced)
        stats.time_reduce = time.perf_counter() - t0
        ws = WitnessStructure(
            self._db,
            state.query,
            universe,
            raw,
            tuple(reduced),
            frozenset(forced),
            stats,
        )
        state.ws = ws
        state.ws_version = state.family_version
        self.stats.structures_rebuilt += 1
        return ws

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _effective_workers(self, workers) -> int:
        if workers is None:
            workers = self._workers
        if workers is None:
            workers = _default_workers()
        return max(1, int(workers))

    @staticmethod
    def _component_content(ws: WitnessStructure, comp) -> frozenset:
        return frozenset(
            frozenset(ws.universe[i] for i in s) for s in comp.sets
        )

    def _component_lookup(self, content, mode, backend):
        key = (content, mode, backend)
        payload = self._comp_memo.get(key)
        if payload is not None:
            self._comp_memo.move_to_end(key)
            self.stats.components_memo_hits += 1
            return payload
        if self._cache is not None:
            disk = self._cache.get(
                component_cache_key(content, mode=mode, backend=backend)
            )
            if disk is not None:
                self.stats.cache_hits += 1
                self._memo_put(self._comp_memo, key, disk)
                return disk
            self.stats.cache_misses += 1
        return None

    def _component_store(self, content, mode, backend, payload) -> None:
        self.stats.components_solved += 1
        self._memo_put(self._comp_memo, (content, mode, backend), payload)
        if self._cache is not None:
            self._cache.put(
                component_cache_key(content, mode=mode, backend=backend),
                payload,
            )

    def _reduce_lookup(self, content):
        payload = self._reduce_memo.get(content)
        if payload is not None:
            self._reduce_memo.move_to_end(content)
        return payload

    def _reduce_store(self, content, payload) -> None:
        self._memo_put(self._reduce_memo, content, payload)

    @staticmethod
    def _memo_put(memo: OrderedDict, key, payload) -> None:
        memo[key] = payload
        while len(memo) > _MEMO_MAX:
            memo.popitem(last=False)

    def __repr__(self) -> str:
        return (
            f"IncrementalSession(queries={len(self._queries)}, "
            f"n={len(self._db)}, updates={self.stats.updates}, "
            f"solves={self.stats.solves})"
        )
