"""Parallel sharded batch execution.

The paper's workloads are embarrassingly parallel at two granularities:
distinct (database, query) pairs are independent resilience instances
(Definition 1), and within one exact instance the kernelized witness
structure decomposes into connected components whose minimum hitting
sets are independent too (the Section 2 hitting-set view).  This
package exploits both:

* :mod:`repro.parallel.shards` — deterministic partitioning of a batch
  into :class:`PairTask` / :class:`ComponentTask` work units packed
  into :class:`Shard` s (LPT assignment, database-affinity grouping);
* :mod:`repro.parallel.executor` — a ``ProcessPoolExecutor`` pool that
  solves shards with per-worker structure caches and merges outcomes
  in shard order, so results and counters are reproducible.

The public entry point is one level up:
``repro.core.solve_batch(pairs, workers=N, cache_dir=...)`` builds the
shards, runs them here, and merges results back into input order; see
``docs/parallelism.md`` for the execution model and tuning guidance.
"""

from repro.parallel.executor import (
    ShardOutcome,
    WorkerPool,
    WorkerTelemetry,
    execute_shards,
    run_shard,
)
from repro.parallel.shards import (
    ComponentTask,
    PairTask,
    Shard,
    build_shards,
    group_by_database,
)

__all__ = [
    "ComponentTask",
    "PairTask",
    "Shard",
    "ShardOutcome",
    "WorkerPool",
    "WorkerTelemetry",
    "build_shards",
    "execute_shards",
    "group_by_database",
    "run_shard",
]
