"""Worker-pool execution of batch shards.

Executes the :class:`~repro.parallel.shards.Shard` layout produced by
:mod:`repro.parallel.shards` across a ``concurrent.futures``
process pool.  Each worker process solves its shard with the very same
code paths a serial batch uses — :func:`repro.resilience.solver.solve`
for pair tasks, the per-component hitting-set backends of
:mod:`repro.resilience.exact` (the Section 2 view: resilience is a
minimum hitting set over witness sets, solved per connected component
and summed) for component tasks — so parallel results are the serial
results, merely computed elsewhere.

Determinism contract (the batch merge relies on it):

* outcomes are keyed by ``task_id`` and collected **in shard order**,
  never in completion order;
* per-worker telemetry (:class:`WorkerTelemetry`) is likewise merged in
  shard order, so accumulated counters — and even float sums — are
  reproducible for a fixed worker count;
* workers inherit the parent's interpreter state via the ``fork`` start
  method where available (so hash seeds, and therefore every
  hash-order-sensitive tie-break, match the coordinator process
  exactly); elsewhere the default start method is used.

Each worker process keeps its own in-memory structure cache (the
module-global LRU of :mod:`repro.witness.cache` is per process), so
repeated structures within a shard are built once per worker.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.evaluation import DatabaseIndex
from repro.witness import ReductionStats, witness_cache_info, witness_structure
from repro.witness.structure import WitnessComponent
from repro.parallel.shards import ComponentTask, PairTask, Shard


@dataclass
class WorkerTelemetry:
    """What one worker (or the serial fallback) did to its shard."""

    structures: int = 0
    reductions: ReductionStats = field(default_factory=ReductionStats)

    def merge(self, other: "WorkerTelemetry") -> None:
        self.structures += other.structures
        self.reductions.merge(other.reductions)


@dataclass
class ShardOutcome:
    """One shard's results: ``task_id -> outcome`` plus telemetry.

    Pair-task outcomes are result objects
    (:class:`~repro.resilience.types.ResilienceResult` or
    :class:`~repro.resilience.types.BoundedResilienceResult`);
    component-task outcomes are frozensets of chosen global tuple ids.
    """

    shard_id: int
    outcomes: Dict[int, object]
    telemetry: WorkerTelemetry


def run_shard(shard: Shard) -> ShardOutcome:
    """Solve every task of one shard (runs inside a worker process).

    Also the ``workers=1`` in-process fallback, which is what makes the
    fast path bit-identical to pool execution by construction.
    """
    # Imported here (not at module top) to keep worker start-up lean and
    # to avoid an import cycle through repro.resilience.solver.
    from repro.planner import plan_instance, planner_enabled, use_plan
    from repro.resilience.exact import _bnb_component, _ilp_component
    from repro.resilience.solver import solve

    telemetry = WorkerTelemetry()
    outcomes: Dict[int, object] = {}
    indexes: Dict[int, DatabaseIndex] = {}
    for task in shard.tasks:
        if isinstance(task, ComponentTask):
            costs = dict(task.costs) if task.costs is not None else None
            if task.backend == "ilp":
                comp = WitnessComponent(task.tuple_ids, task.sets)
                outcomes[task.task_id] = frozenset(
                    _ilp_component(comp, costs=costs)
                )
            else:
                outcomes[task.task_id] = frozenset(
                    _bnb_component(task.sets, costs=costs)
                )
            continue
        index = indexes.get(id(task.database))
        if index is None:
            index = DatabaseIndex(task.database)
            indexes[id(task.database)] = index
        # A weighted task over an all-unit database is the unweighted
        # task — the same delegation solve() itself applies, done here
        # too so the structure prefetch keys match the solve.
        weighted = task.weighted and task.database.has_weighted_costs()
        # The plan is recomputed from the task's content — plans are
        # pure functions of it, so every worker (and the serial
        # fallback) lands on the same plan without pickling one.  It
        # must be installed *before* the structure prefetch: the
        # prefetch is where the plan's join/kernel choices execute.
        plan = (
            plan_instance(
                task.database,
                task.query,
                mode=task.mode,
                budget=task.budget,
                weighted=weighted,
            )
            if planner_enabled(task.planner)
            else None
        )
        with use_plan(plan):
            if task.method is None and _exact_dispatch(task.query, weighted):
                _, misses_before, _ = witness_cache_info()
                ws = witness_structure(
                    task.database, task.query, index=index, weighted=weighted
                )
                _, misses_after, _ = witness_cache_info()
                if misses_after > misses_before:
                    telemetry.structures += 1
                    telemetry.reductions.merge(ws.stats)
                outcomes[task.task_id] = solve(
                    task.database,
                    task.query,
                    structure=ws,
                    index=index,
                    mode=task.mode,
                    budget=task.budget,
                    weighted=weighted,
                    planner=task.planner,
                )
            else:
                outcomes[task.task_id] = solve(
                    task.database,
                    task.query,
                    method=task.method,
                    index=index,
                    mode=task.mode,
                    budget=task.budget,
                    weighted=weighted,
                    planner=task.planner,
                )
    return ShardOutcome(shard.shard_id, outcomes, telemetry)


def _exact_dispatch(query, weighted: bool = False) -> bool:
    from repro.resilience.solver import dispatch_plan

    return dispatch_plan(query, weighted=weighted).kind == "exact"


def _pool_context():
    """Prefer ``fork``: children inherit the parent's hash seed (so
    every sorted/hash-order tie-break matches the coordinator) and its
    warm caches.  Platforms without it use their default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerPool:
    """A reusable process pool for repeated :func:`execute_shards` calls.

    :func:`execute_shards` normally creates and tears down a
    ``ProcessPoolExecutor`` per batch — fine for one-shot CLI runs, but
    a long-lived serving tier (:mod:`repro.serving`) pays worker
    start-up (fork + module imports) on every request.  A ``WorkerPool``
    keeps one executor alive across calls; pass it to
    :func:`execute_shards` (or ``solve_batch(pool=...)``) to reuse it.

    The underlying executor is created lazily and replaced
    transparently if it breaks (a worker killed mid-task marks the pool
    broken): the *failing* call still raises — its results are gone —
    but the next call gets a fresh pool instead of inheriting a wedged
    one.  Thread-safe; per-worker warm caches (the witness-structure
    LRU) survive across calls, which is the second half of the reuse
    win.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, creating or replacing it as needed."""
        with self._lock:
            if self._executor is not None and getattr(
                self._executor, "_broken", False
            ):
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_pool_context()
                )
            return self._executor

    def reset(self) -> None:
        """Discard the current executor (the next use creates a new one)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    def shutdown(self) -> None:
        """Tear the pool down for good (idempotent)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"WorkerPool(workers={self.workers}, {state})"


def execute_shards(
    shards: Sequence[Shard], workers: int, pool: Optional[WorkerPool] = None
) -> Tuple[Dict[int, object], List[WorkerTelemetry]]:
    """Run shards on ``workers`` processes; merge deterministically.

    Returns the combined ``task_id -> outcome`` map and the per-shard
    telemetry **in shard order** (callers accumulate it in that order,
    which keeps merged counters independent of completion timing).
    With one shard or one worker the pool is skipped entirely and the
    shard runs in-process.

    ``pool`` substitutes a persistent :class:`WorkerPool` for the
    per-call executor; if the pool breaks mid-batch the error
    propagates (after marking the pool for replacement) — outcomes are
    all-or-nothing either way.
    """
    shards = list(shards)
    if not shards:
        return {}, []
    if workers <= 1 or len(shards) == 1:
        results = [run_shard(shard) for shard in shards]
    elif pool is not None:
        executor = pool.executor()
        try:
            futures = [executor.submit(run_shard, shard) for shard in shards]
            # Collect in submission (= shard) order, not completion order.
            results = [f.result() for f in futures]
        except BrokenExecutor:
            pool.reset()
            raise
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shards)), mp_context=_pool_context()
        ) as executor:
            futures = [executor.submit(run_shard, shard) for shard in shards]
            # Collect in submission (= shard) order, not completion order.
            results = [f.result() for f in futures]
    outcomes: Dict[int, object] = {}
    telemetry: List[WorkerTelemetry] = []
    for res in results:
        outcomes.update(res.outcomes)
        telemetry.append(res.telemetry)
    return outcomes, telemetry
