"""Deterministic shard partitioning for parallel batch solving.

A batch of (database, query) pairs decomposes into independent work
units twice over: distinct pairs share nothing but in-memory indexes
(resilience instances are independent, Definition 1), and within one
exact instance the kernelized witness structure splits into connected
components whose minimum hitting sets are solved separately and summed
(the Section 2 hitting-set view; see
:func:`repro.witness.structure._decompose`).  This module turns both
granularities into :class:`PairTask` / :class:`ComponentTask` objects
and packs them into :class:`Shard` s with a deterministic
longest-processing-time (LPT) assignment, so that

* the shard layout is a pure function of the task list and the shard
  count — re-running the same batch with the same ``workers`` produces
  the same shards, which is what makes the merge step (and therefore
  :class:`~repro.core.analyzer.BatchStats`) reproducible;
* tasks touching the same database stay in the same shard whenever
  balance allows (oversized groups are split so one hot database
  cannot serialize the batch), and each worker builds one
  :class:`~repro.query.evaluation.DatabaseIndex` per database it
  actually sees.

Nothing here executes anything: see :mod:`repro.parallel.executor` for
the worker pool that consumes the shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.resilience.types import Budget


@dataclass(frozen=True)
class PairTask:
    """Solve one whole (database, query) pair in a worker.

    ``task_id`` indexes the batch's task table (assignment of outcomes
    back to work units is by id, never by completion order).  The
    database and query are shipped to the worker by pickle; ``method``,
    ``mode`` and ``budget`` pass through to
    :func:`repro.resilience.solver.solve` unchanged.

    A snapshot-backed handle (:class:`repro.storage.StoredDatabase`)
    pickles as its snapshot *path* only — the worker reopens the
    snapshot and ``mmap``s the same on-disk columns, so out-of-core
    task payloads stay O(1) in the database size and the pool shares
    pages instead of holding per-worker fact copies.
    """

    task_id: int
    database: Database
    query: ConjunctiveQuery
    method: Optional[str] = None
    mode: str = "exact"
    budget: Optional[Budget] = None
    weighted: bool = False
    # The batch-level planner decision, resolved by the coordinator
    # (True/False, or None for the worker to read REPRO_PLANNER); the
    # worker recomputes the per-instance plan from the task content.
    planner: Optional[bool] = None
    # Planner-informed LPT weight (the instance's witness-count
    # estimate); None falls back to the tuple count.
    cost_hint: Optional[int] = None

    @property
    def cost_estimate(self) -> int:
        """Relative cost proxy for LPT packing, floor 1.

        The coordinator passes the planner's witness-count estimate as
        ``cost_hint`` when planning is on — witness count tracks
        structure-build and search cost far better than raw size; plain
        instance size (tuples) is the planner-off fallback.
        """
        if self.cost_hint is not None:
            return max(self.cost_hint, 1)
        return max(len(self.database), 1)


@dataclass(frozen=True)
class ComponentTask:
    """Solve one witness-structure component's minimum hitting set.

    Used for large exact instances whose structure was already built
    (and kernelized) by the coordinator: instead of shipping the whole
    database, only the component's witness sets — frozensets of global
    tuple ids — cross the process boundary, and only the chosen ids
    come back.  ``backend`` is ``"bnb"`` or ``"ilp"``, decided by the
    coordinator *per structure* (exactly as
    :func:`repro.resilience.exact.resilience_exact` would) so that the
    assembled result is identical to a serial solve.
    """

    task_id: int
    tuple_ids: Tuple[int, ...]
    sets: Tuple[FrozenSet[int], ...]
    backend: str = "bnb"
    # (global_id, cost) pairs for the weighted objective; None solves
    # the plain cardinality problem.
    costs: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def cost_estimate(self) -> int:
        """Relative cost proxy: incidence size of the component."""
        return max(sum(len(s) for s in self.sets), 1)


Task = Union[PairTask, ComponentTask]


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the batch: tasks in ascending task_id."""

    shard_id: int
    tasks: Tuple[Task, ...]

    @property
    def cost_estimate(self) -> int:
        return sum(t.cost_estimate for t in self.tasks)


def build_shards(
    groups: Sequence[Sequence[Task]], n_shards: int
) -> List[Shard]:
    """Pack task groups into ``n_shards`` deterministic shards.

    ``groups`` are affinity bundles — the caller groups pair tasks by
    their database so a shard shares one evaluation index per database;
    component tasks arrive as singleton groups.  Affinity yields to
    balance: a group heavier than an even share of the batch is first
    split into contiguous chunks no heavier than that share (the
    workers on the extra shards rebuild the database index, a cost that
    is tiny next to the solving the split buys parallelism for), so a
    batch of many queries over one shared database still fans out.
    Assignment is then the classic LPT heuristic made deterministic:
    groups are ordered by descending cost with the first task id as
    tie-break, and each goes to the currently lightest shard (lowest
    shard id on ties).  Empty shards are dropped, and tasks inside a
    shard are sorted by task id.

    The result is a pure function of ``(groups, n_shards)``: no
    randomness, no dict-iteration-order dependence, no timing.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups = [list(g) for g in groups if g]
    if n_shards > 1 and groups:
        total = sum(t.cost_estimate for g in groups for t in g)
        share = max(1, -(-total // n_shards))  # ceil(total / n_shards)
        split: List[List[Task]] = []
        for g in groups:
            if len(g) > 1 and sum(t.cost_estimate for t in g) > share:
                chunk: List[Task] = []
                load = 0
                for t in g:
                    if chunk and load + t.cost_estimate > share:
                        split.append(chunk)
                        chunk, load = [], 0
                    chunk.append(t)
                    load += t.cost_estimate
                split.append(chunk)
            else:
                split.append(g)
        groups = split
    ordered = sorted(
        groups,
        key=lambda g: (-sum(t.cost_estimate for t in g), g[0].task_id),
    )
    loads = [0] * n_shards
    buckets: List[List[Task]] = [[] for _ in range(n_shards)]
    for group in ordered:
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        buckets[target].extend(group)
        loads[target] += sum(t.cost_estimate for t in group)
    return [
        Shard(shard_id=i, tasks=tuple(sorted(b, key=lambda t: t.task_id)))
        for i, b in enumerate(buckets)
        if b
    ]


def group_by_database(tasks: Sequence[Task]) -> List[List[Task]]:
    """Bundle tasks for sharding: pair tasks by database object,
    component tasks as singletons (they carry no database at all).

    Grouping is by object identity, matching the evaluation-index
    sharing of :func:`repro.core.analyzer.solve_batch`; iteration order
    follows first appearance in ``tasks``, keeping the output
    deterministic for a given task list.
    """
    groups: List[List[Task]] = []
    by_db: Dict[int, List[Task]] = {}
    for task in tasks:
        if isinstance(task, PairTask):
            bucket = by_db.get(id(task.database))
            if bucket is None:
                bucket = []
                by_db[id(task.database)] = bucket
                groups.append(bucket)
            bucket.append(task)
        else:
            groups.append([task])
    return groups
