"""Per-instance cost-based planning of engine backends.

The engine keeps two or three interchangeable implementations of every
layer it runs — witness enumeration (Section 2), kernel reduction,
min-cut flow (Proposition 31), exact hitting-set search (Theorem 24),
parallel sharding — historically selected by global environment
variables and fixed size thresholds.  This package replaces that
patchwork with a *planner*: :func:`plan_instance` extracts cheap
features from one (query, database, mode, budget) pair
(:mod:`repro.planner.features`), prices every backend with a
calibrated cost model (:mod:`repro.planner.model`), and emits one
frozen :class:`Plan` naming the backend for every layer.

Three contracts make the planner safe to leave on by default:

* **output-invisible** — every backend pair it chooses between is
  answer-equivalent by construction (the differential suites pin it),
  so a plan changes wall-clock, never values, certificates, or
  intervals;
* **deterministic** — plans are pure functions of (instance content,
  mode, budget, weighted flag, model); repeated calls, worker
  processes, and serial-vs-parallel batches all compute the same plan;
* **overridable** — explicit kwargs beat environment variables beat
  the planner beat the static defaults.  The ``REPRO_*_BACKEND``
  variables keep working exactly as before; the planner only decides
  where they are silent.  ``REPRO_PLANNER=off`` disables planning
  wholesale.

Plans travel through :func:`repro.resilience.solver.solve` via a
context variable (:func:`use_plan` / :func:`active_plan`): the solver
computes the plan once per solve and every layer consults it at its
existing decision point — no plan plumbing through intermediate
signatures, and worker processes recompute identical plans from the
same content instead of pickling them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.planner.features import (
    DEFAULT_MAX_EXACT_TUPLES,
    PlanFeatures,
    WITNESS_ESTIMATE_CAP,
    extract_features,
    is_large_instance,
)
from repro.planner.model import (
    DEFAULT_MODEL,
    MODEL_SCHEMA,
    CostModel,
    active_model,
    calibrate,
    clear_model_cache,
    load_model,
)

__all__ = [
    "CostModel",
    "DEFAULT_MAX_EXACT_TUPLES",
    "DEFAULT_MODEL",
    "MODEL_SCHEMA",
    "Plan",
    "PlanFeatures",
    "WITNESS_ESTIMATE_CAP",
    "active_model",
    "active_plan",
    "calibrate",
    "clear_model_cache",
    "extract_features",
    "is_large_instance",
    "load_model",
    "plan_instance",
    "planner_enabled",
    "use_plan",
]


@dataclass(frozen=True)
class Plan:
    """One instance's backend decisions, every layer in one place.

    ``solver`` is ``"bnb"``/``"ilp"`` when the post-kernelization shape
    was known at planning time, else ``"auto"`` (defer to
    :func:`repro.resilience.exact.choose_backend` once the structure
    exists — the same rule the model reproduces, so the deferred and
    planned decisions agree).  ``split`` is the shard-layer choice:
    whether a parallel batch should decompose this instance into
    per-component hitting-set tasks.  ``size_class`` mirrors the
    serving tier's admission sizing (``"small"``/``"large"``), with
    ``"out-of-core"`` for snapshot-backed instances
    (:mod:`repro.storage`), which always join columnar.
    """

    join: str
    kernel: str
    flow: str
    solver: str
    split: bool
    size_class: str
    model_version: str
    features: PlanFeatures

    def signature(self) -> str:
        """A compact, stable label for stats counters and metrics."""
        return (
            f"join={self.join},kernel={self.kernel},flow={self.flow},"
            f"solver={self.solver},split={'yes' if self.split else 'no'},"
            f"size={self.size_class}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``repro planner explain``, bench records)."""
        return {
            "join": self.join,
            "kernel": self.kernel,
            "flow": self.flow,
            "solver": self.solver,
            "split": self.split,
            "size_class": self.size_class,
            "model_version": self.model_version,
            "features": self.features.as_dict(),
        }


def plan_instance(
    database: Database,
    query: ConjunctiveQuery,
    mode: str = "exact",
    budget=None,
    weighted: bool = False,
    model: Optional[CostModel] = None,
) -> Plan:
    """Compute the :class:`Plan` for one instance.

    Pure in the planner sense: same instance content + same model →
    same plan, on every process and every call (the witness-cache peek
    inside feature extraction only *adds* kernel features when a
    structure is already cached, and the model reproduces the deferred
    rule on exactly those features, so cache state never flips an
    output-visible decision).
    """
    if model is None:
        model = active_model()
    features = extract_features(
        database, query, mode=mode, budget=budget, weighted=weighted
    )
    kernel_size = features.kernel_size
    solver = (
        "auto"
        if kernel_size is None
        else model.choose("solver", kernel_size)
    )
    if features.storage:
        # Snapshot-backed instances: the data already lives as on-disk
        # code matrices, so only the columnar join avoids a full decode
        # pass, and the sizing label records the out-of-core regime.
        join = "columnar"
        size_class = "out-of-core"
    else:
        join = model.choose("join", features.total_tuples)
        size_class = "large" if is_large_instance(features) else "small"
    return Plan(
        join=join,
        kernel=model.choose("kernel", features.witness_estimate),
        flow=model.choose("flow", features.endogenous_tuples),
        solver=solver,
        split=model.choose("shard", features.endogenous_tuples) == "split",
        size_class=size_class,
        model_version=model.version,
        features=features,
    )


# ---------------------------------------------------------------------------
# The active plan (consulted by the engine layers' decision points)
# ---------------------------------------------------------------------------

_ACTIVE_PLAN: ContextVar[Optional[Plan]] = ContextVar(
    "repro_planner_active_plan", default=None
)


def active_plan() -> Optional[Plan]:
    """The plan governing the current solve, if any.

    Engine layers call this at their existing decision points; the
    environment variables are checked *first* at every such point (env
    beats planner), so an active plan only fills silence.
    """
    return _ACTIVE_PLAN.get()


@contextmanager
def use_plan(plan: Optional[Plan]):
    """Install ``plan`` as the active plan for the enclosed solve."""
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def planner_enabled(explicit: Optional[bool] = None) -> bool:
    """Is per-instance planning on?

    ``explicit`` (a caller's kwarg, e.g. ``solve_batch(planner=True)``)
    wins outright; otherwise ``REPRO_PLANNER`` decides (``off``/``0``/
    ``false`` disable, anything else — including unset — enables).
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("REPRO_PLANNER", "on").strip().lower()
    if raw in ("off", "0", "false", "no"):
        return False
    if raw in ("", "on", "1", "true", "yes"):
        return True
    raise ValueError(
        f"REPRO_PLANNER={raw!r} (expected 'on' or 'off')"
    )
