"""Cheap per-instance features for the cost-based planner.

Every backend decision the engine makes — join enumeration, kernel
pipeline, flow backend, exact solver, shard layout — ultimately hinges
on *how large* the hitting-set instance behind a (query, database) pair
is.  The quantities that predict that size are exactly the ones the
paper's complexity analysis is phrased in: the number of endogenous
tuples bounds the hitting-set variable count (exogenous tuples can
never enter a contingency set, Definition 1), the witness count of
``D |= q`` (Section 2) bounds the constraint count — and is itself
bounded by the product of the per-atom relation cardinalities — and
the dichotomy (Theorem 24 / Theorem 37) decides whether the instance
is solved by a polynomial flow construction or by exponential search.

:func:`extract_features` computes those quantities *without* building
anything: relation cardinalities are O(#relations), the PTIME verdict
is the cached :func:`repro.resilience.solver.dispatch_plan`, and the
post-kernelization shape (component count/size/width) is read from the
in-memory witness-structure cache only when a build already happened —
a cache *peek*, never a build.  Features are therefore pure functions
of the instance content plus the current cache state, invariant under
domain renaming and relation declaration order, and monotone in the
obvious directions (adding endogenous tuples never shrinks
``total_tuples``, ``endogenous_tuples``, or ``witness_estimate``);
``tests/test_planner.py`` pins all three claims.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery

#: Cap on the witness-count estimate: the product of relation
#: cardinalities overflows usefulness long before it overflows Python
#: ints, and every cost curve treats "at least this" as "huge".
WITNESS_ESTIMATE_CAP = 10**9

#: Endogenous-tuple count above which an instance is classified
#: ``"large"`` — the single sizing threshold shared by the serving
#: tier's admission policy (:mod:`repro.serving.admission`) and the
#: planner's ``size_class``, so the two can never disagree about which
#: instances are too big for the interactive exact tier.
DEFAULT_MAX_EXACT_TUPLES = 2000


@dataclass(frozen=True)
class PlanFeatures:
    """The feature vector one plan is computed from.

    The first block is always available; the ``kernel_*`` block is
    ``None`` unless a witness structure for the pair was already cached
    when the features were extracted (post-kernelization shape is only
    known after a build, and the planner never triggers one).
    ``storage`` marks a snapshot-backed instance
    (:class:`repro.storage.StoredDatabase`) — out-of-core data is
    already dictionary-encoded on disk, so the columnar join is the
    only enumeration path that avoids a full decode.
    """

    total_tuples: int
    endogenous_tuples: int
    witness_estimate: int
    ptime: bool
    weighted: bool
    mode: str
    bounded_budget: bool
    kernel_components: Optional[int] = None
    kernel_largest: Optional[int] = None
    kernel_tuples: Optional[int] = None
    kernel_width: Optional[int] = None
    storage: bool = False

    def as_dict(self) -> Dict[str, object]:
        """Field name → value, in declaration order (CLI ``explain``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def kernel_size(self) -> Optional[float]:
        """The exact-solver sizing feature, when the kernel is known.

        ``max(largest component, 1.5 * surviving tuples)`` — the same
        two quantities :func:`repro.resilience.exact.choose_backend`
        thresholds (largest component set count, post-reduction tuple
        count), collapsed into one scalar so a single cost curve can
        reproduce the rule.
        """
        if self.kernel_largest is None or self.kernel_tuples is None:
            return None
        return float(max(self.kernel_largest, 1.5 * self.kernel_tuples))


def _witness_estimate(database: Database, query: ConjunctiveQuery) -> int:
    """Upper estimate of the witness count: product of atom cardinalities.

    Every witness of ``D |= q`` picks one fact per atom, so the witness
    count is at most ``prod_a |R_a|`` over the query's atoms (Section 2).
    The estimate is capped at :data:`WITNESS_ESTIMATE_CAP`, uses only
    relation cardinalities (hence renaming/declaration-order invariant),
    and is monotone under insertions (cardinalities only grow).
    """
    estimate = 1
    for atom in query.atoms:
        rel = database.relations.get(atom.relation)
        size = len(rel) if rel is not None else 0
        estimate *= size
        if estimate == 0:
            return 0
        if estimate >= WITNESS_ESTIMATE_CAP:
            return WITNESS_ESTIMATE_CAP
    return estimate


def extract_features(
    database: Database,
    query: ConjunctiveQuery,
    mode: str = "exact",
    budget=None,
    weighted: bool = False,
) -> PlanFeatures:
    """Extract the planner's feature vector for one instance.

    Cheap by construction: O(#relations) counting, one cached dispatch
    classification, one witness-cache peek.  Never builds a structure,
    never enumerates a witness.  ``weighted`` is normalized the way the
    solvers normalize it — an all-unit database is not weighted.
    """
    # Imported lazily: the solver stack imports repro.planner for its
    # hook points, so the top-level import must stay one-way.
    from repro.resilience.solver import dispatch_plan
    from repro.witness.cache import peek_witness_structure

    effective = bool(weighted) and database.has_weighted_costs()
    endogenous = sum(
        len(rel)
        for rel in database.relations.values()
        if not rel.exogenous
    )
    kind = dispatch_plan(query, weighted=effective).kind
    kernel_components = kernel_largest = kernel_tuples = kernel_width = None
    ws = peek_witness_structure(database, query, weighted=effective)
    if ws is not None and ws.satisfied:
        kernel_components = len(ws.components)
        kernel_largest = max(
            (len(c.sets) for c in ws.components), default=0
        )
        kernel_tuples = ws.stats.tuples_final
        kernel_width = max(
            (len(s) for c in ws.components for s in c.sets), default=0
        )
    return PlanFeatures(
        total_tuples=len(database),
        endogenous_tuples=endogenous,
        witness_estimate=_witness_estimate(database, query),
        ptime=kind != "exact",
        weighted=effective,
        mode=mode,
        bounded_budget=budget is not None,
        kernel_components=kernel_components,
        kernel_largest=kernel_largest,
        kernel_tuples=kernel_tuples,
        kernel_width=kernel_width,
        storage=getattr(database, "storage_snapshot", None) is not None,
    )


def is_large_instance(
    features: PlanFeatures, max_exact_tuples: Optional[int] = None
) -> bool:
    """The shared sizing predicate: too big for the interactive exact
    tier?

    One definition serves both consumers — the serving tier's
    :class:`~repro.serving.admission.AdmissionPolicy` (which reroutes
    large exact/approx requests to anytime) and the planner's
    ``size_class`` — so an admission-rerouted pair is, by construction,
    also planner-classified large (``tests/test_planner.py`` pins the
    equivalence).
    """
    ceiling = (
        DEFAULT_MAX_EXACT_TUPLES if max_exact_tuples is None else max_exact_tuples
    )
    return features.endogenous_tuples > ceiling
