"""The calibrated cost model behind the planner.

The planner reduces every backend choice to the same question: given a
feature value ``x`` (a size proxy from
:mod:`repro.planner.features`), which backend's predicted cost
``c0 + c1 * x`` is smallest?  A :class:`CostModel` is therefore a
small, deterministic, versioned table of per-backend affine cost
curves, one row per decision layer:

======== ===================== ==========================================
layer    feature               backends
======== ===================== ==========================================
join     ``total_tuples``      ``columnar`` / ``reference`` enumeration
kernel   ``witness_estimate``  ``bitset`` / ``reference`` reduction
flow     ``endogenous_tuples`` ``csgraph`` / ``networkx`` min cut
solver   ``kernel_size``       ``bnb`` / ``ilp`` exact hitting set
shard    ``endogenous_tuples`` ``split`` / ``whole`` parallel layout
======== ===================== ==========================================

:data:`DEFAULT_MODEL` encodes exactly the static thresholds the engine
shipped with (columnar at ≥128 tuples, bitset and csgraph always, ILP
when the kernelized instance outgrows branch and bound per
:func:`repro.resilience.exact.choose_backend`, component splitting at
≥400 endogenous tuples), so the planner's default decisions are the
historical decisions — the differential harness in
``tests/test_planner.py`` leans on that.  :func:`calibrate` refits the
curve slopes offline from the committed ``BENCH_*.json`` trajectory
records (the measured engine-vs-reference layer speedups of E18, with
E19/E20 contributing provenance), keeping every crossover point
consistent with the measured costs; the result round-trips through
JSON bit-for-bit (``repro planner calibrate``).

Affine curves suffice here because each layer's two implementations
compute the *same* function (the witness enumeration of Section 2, the
kernel fixpoint, the Proposition 31 flow constructions, the Theorem 24
exact search) and differ only in constant factors and per-call
overhead — a fixed cost plus a size-proportional cost is the whole
story the E18 measurements tell.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

#: Bumped whenever the on-disk model layout changes; loaders reject
#: other schemas outright (falling back to :data:`DEFAULT_MODEL`).
MODEL_SCHEMA = 1

#: Decision layer → the feature its curves are evaluated on.
LAYER_FEATURES: Dict[str, str] = {
    "join": "total_tuples",
    "kernel": "witness_estimate",
    "flow": "endogenous_tuples",
    "solver": "kernel_size",
    "shard": "endogenous_tuples",
}

#: Decision layer → the backends a model must price (and may choose).
LAYER_BACKENDS: Dict[str, Tuple[str, ...]] = {
    "join": ("columnar", "reference"),
    "kernel": ("bitset", "reference"),
    "flow": ("csgraph", "networkx"),
    "solver": ("bnb", "ilp"),
    "shard": ("split", "whole"),
}

Curve = Tuple[float, float]


@dataclass(frozen=True, eq=True)
class CostModel:
    """A versioned table of per-backend affine cost curves.

    ``curves[layer][backend] == (c0, c1)`` prices the backend at
    ``c0 + c1 * x``; :meth:`choose` picks the argmin with a
    deterministic alphabetical tie-break (so equal-cost points — the
    crossover values themselves — resolve the same way on every
    machine, run, and worker).
    """

    version: str
    curves: Mapping[str, Mapping[str, Curve]]
    source: Tuple[str, ...] = ()

    def predict(self, layer: str, backend: str, x: float) -> float:
        c0, c1 = self.curves[layer][backend]
        return c0 + c1 * float(x)

    def choose(self, layer: str, x: float) -> str:
        """The cheapest backend for ``layer`` at feature value ``x``."""
        return min(
            self.curves[layer],
            key=lambda backend: (self.predict(layer, backend, x), backend),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """The canonical JSON payload (sorted, round-trip exact)."""
        return {
            "schema": MODEL_SCHEMA,
            "kind": "planner-cost-model",
            "version": self.version,
            "source": list(self.source),
            "features": {layer: LAYER_FEATURES[layer] for layer in sorted(self.curves)},
            "curves": {
                layer: {
                    backend: [float(c0), float(c1)]
                    for backend, (c0, c1) in sorted(self.curves[layer].items())
                }
                for layer in sorted(self.curves)
            },
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "CostModel":
        """Validate and load a model payload; ``ValueError`` on any drift."""
        if not isinstance(payload, Mapping):
            raise ValueError("model payload is not an object")
        if payload.get("schema") != MODEL_SCHEMA:
            raise ValueError(
                f"model schema {payload.get('schema')!r} != {MODEL_SCHEMA}"
            )
        if payload.get("kind") != "planner-cost-model":
            raise ValueError("payload is not a planner cost model")
        version = payload.get("version")
        if not isinstance(version, str) or not version:
            raise ValueError("model has no version string")
        raw_curves = payload.get("curves")
        if not isinstance(raw_curves, Mapping):
            raise ValueError("model has no curve table")
        curves: Dict[str, Dict[str, Curve]] = {}
        for layer, backends in LAYER_BACKENDS.items():
            layer_curves = raw_curves.get(layer)
            if not isinstance(layer_curves, Mapping):
                raise ValueError(f"model is missing the {layer!r} layer")
            table: Dict[str, Curve] = {}
            for backend in backends:
                curve = layer_curves.get(backend)
                if (
                    not isinstance(curve, Sequence)
                    or len(curve) != 2
                    or not all(isinstance(c, (int, float)) for c in curve)
                ):
                    raise ValueError(
                        f"model curve {layer}/{backend} is not a [c0, c1] pair"
                    )
                table[backend] = (float(curve[0]), float(curve[1]))
            curves[layer] = table
        source = tuple(str(s) for s in payload.get("source", ()))
        return cls(version=version, curves=curves, source=source)


#: The static default table: every decision matches the thresholds the
#: engine used before the planner existed (see the module docstring),
#: so "planner on, no model file" is behaviorally the status quo.
DEFAULT_MODEL = CostModel(
    version="default-1",
    curves={
        # columnar pays fixed numpy overhead, reference pays per tuple:
        # crossover at exactly MIN_TUPLES_DEFAULT = 128 (ties break to
        # "columnar" alphabetically, matching the historical >= gate).
        "join": {"columnar": (128.0, 0.0), "reference": (0.0, 1.0)},
        # bitset and csgraph dominate at every size their guards admit
        # (their small-input fast paths live inside the kernels and are
        # output-invisible), so their curves never cross.
        "kernel": {"bitset": (0.0, 0.25), "reference": (0.0, 1.0)},
        "flow": {"csgraph": (0.0, 0.4), "networkx": (0.0, 1.0)},
        # ILP's fixed setup cost loses below kernel_size 60 and wins
        # above: exactly choose_backend's `largest > 60 or
        # tuples_final > 40` rule under kernel_size =
        # max(largest, 1.5 * tuples_final).
        "solver": {"bnb": (0.0, 1.0), "ilp": (60.0, 0.0)},
        # Component splitting amortizes from 400 endogenous tuples
        # (COMPONENT_SPLIT_THRESHOLD, now sized on the tuples that
        # actually grow the search — exogenous ones never did).
        "shard": {"split": (400.0, 0.0), "whole": (0.0, 1.0)},
    },
)


# ---------------------------------------------------------------------------
# Offline calibration from BENCH_*.json trajectory records
# ---------------------------------------------------------------------------

#: The E18 layer measurements and the planner layer each one calibrates.
_E18_LAYER_OF = {
    "a_structure_build": "join",
    "b_bnb_solve": "kernel",
    "c_flow_min_cut": "flow",
}


def calibrate(
    records: Sequence[Tuple[str, Mapping[str, object]]],
    version: Optional[str] = None,
) -> CostModel:
    """Fit a cost model from ``BENCH_*.json`` trajectory records.

    ``records`` is a sequence of ``(name, payload)`` pairs — the parsed
    JSON of the committed benchmark records.  The E18 hot-path record
    is required: its per-layer engine-vs-reference speedups become the
    slope ratios of the join, kernel, and flow curves (the reference
    slope is normalized to 1, the engine slope to ``1/speedup``, and
    the engine intercept is chosen so each crossover point stays at the
    default table's value — the measurements say how *steep* the curves
    are, the shipped thresholds say where tiny-instance overhead wins).
    The solver and shard layers keep the default crossovers (E18
    measures no bnb-vs-ilp sweep); E19/E20 records contribute
    provenance only, recorded in ``source``.

    Deterministic end to end: the same records produce the same model,
    including the version string (a content hash of the inputs) when
    ``version`` is not given.  Raises ``ValueError`` on missing or
    malformed records.
    """
    by_bench: Dict[str, Mapping[str, object]] = {}
    names = []
    for name, payload in records:
        if not isinstance(payload, Mapping) or "bench" not in payload:
            raise ValueError(f"record {name!r} is not a bench trajectory record")
        by_bench[str(payload["bench"])] = payload
        names.append(str(name))

    e18 = by_bench.get("e18_hotpaths")
    if e18 is None:
        raise ValueError(
            "calibration requires the e18_hotpaths record "
            "(the per-layer engine-vs-reference measurements)"
        )
    layers = e18.get("layers")
    if not isinstance(layers, Mapping):
        raise ValueError("e18_hotpaths record has no layers table")

    curves: Dict[str, Dict[str, Curve]] = {
        layer: dict(table) for layer, table in DEFAULT_MODEL.curves.items()
    }
    for e18_layer, planner_layer in _E18_LAYER_OF.items():
        entry = layers.get(e18_layer)
        if not isinstance(entry, Mapping):
            raise ValueError(f"e18_hotpaths record is missing layer {e18_layer!r}")
        try:
            speedup = float(entry["speedup"])
        except (KeyError, TypeError, ValueError):
            raise ValueError(f"layer {e18_layer!r} has no numeric speedup")
        if speedup <= 0:
            raise ValueError(f"layer {e18_layer!r} speedup {speedup!r} <= 0")
        engine_backend, reference_backend = LAYER_BACKENDS[planner_layer]
        engine_slope = 1.0 / speedup
        # Keep the crossover where the default table puts it: with the
        # reference curve at slope 1 through the origin, an engine
        # intercept of crossover * (1 - slope) makes both curves meet
        # at exactly the historical threshold.
        default_c0, _ = DEFAULT_MODEL.curves[planner_layer][engine_backend]
        default_ref_c0, default_ref_c1 = DEFAULT_MODEL.curves[planner_layer][
            reference_backend
        ]
        crossover = (
            default_c0 / (default_ref_c1 - 0.0) if default_c0 else 0.0
        )
        curves[planner_layer] = {
            engine_backend: (crossover * (1.0 - engine_slope), engine_slope),
            reference_backend: (default_ref_c0, default_ref_c1),
        }

    if version is None:
        material = json.dumps(
            [[name, dict(payload)] for name, payload in records],
            sort_keys=True,
            default=str,
        )
        digest = hashlib.sha256(material.encode()).hexdigest()[:12]
        version = f"cal-{digest}"
    return CostModel(version=version, curves=curves, source=tuple(names))


# ---------------------------------------------------------------------------
# Model resolution (REPRO_PLANNER_MODEL)
# ---------------------------------------------------------------------------

def load_model(path: Union[str, Path]) -> CostModel:
    """Load a model file strictly — any problem raises ``ValueError``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(f"planner model file {path} does not exist")
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"planner model file {path} is unreadable: {exc}")
    return CostModel.from_json(payload)


# path → (mtime_ns, model); re-reads only when the file changes.
_model_cache: Dict[str, Tuple[int, CostModel]] = {}


def clear_model_cache() -> None:
    """Forget memoized model files (tests flip model paths this way)."""
    _model_cache.clear()


def active_model() -> CostModel:
    """The model plans are computed with, per ``REPRO_PLANNER_MODEL``.

    Unset → :data:`DEFAULT_MODEL`.  Set → the file is loaded (and
    memoized by mtime); a missing or corrupted file falls back to the
    default table with a ``UserWarning`` — a bad model must degrade the
    planner to the static thresholds, never break a solve.
    """
    raw = os.environ.get("REPRO_PLANNER_MODEL")
    if not raw:
        return DEFAULT_MODEL
    try:
        mtime = os.stat(raw).st_mtime_ns
        cached = _model_cache.get(raw)
        if cached is not None and cached[0] == mtime:
            return cached[1]
        model = load_model(raw)
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"REPRO_PLANNER_MODEL={raw!r} could not be loaded ({exc}); "
            f"falling back to the static default cost table",
            UserWarning,
            stacklevel=2,
        )
        return DEFAULT_MODEL
    _model_cache[raw] = (mtime, model)
    return model
