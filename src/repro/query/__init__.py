"""Conjunctive query representation and reasoning.

This subpackage implements the query-side machinery of the paper:

* :mod:`repro.query.atom` / :mod:`repro.query.cq` — Boolean conjunctive
  queries with per-atom exogenous markers and positional variable lists;
* :mod:`repro.query.parser` — a Datalog-style surface syntax, e.g.
  ``parse_query("q() :- R(x,y), R(y,z)")`` with ``Sx(...)``/``S^x(...)``
  denoting exogenous atoms;
* :mod:`repro.query.evaluation` — witness enumeration by backtracking
  join (Section 2, "witnesses");
* :mod:`repro.query.homomorphism` — homomorphisms, containment and the
  Chandra–Merlin core/minimization (Section 4.1);
* :mod:`repro.query.hypergraph` — the dual hypergraph H(q) (Section 2.1);
* :mod:`repro.query.binary_graph` — the binary graph of Definition 8;
* :mod:`repro.query.zoo` — every named query from the paper.
"""

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.evaluation import (
    DatabaseIndex,
    iter_witnesses_using,
    satisfies,
    witnesses,
    witness_tuple_sets,
)
from repro.query.homomorphism import (
    find_homomorphism,
    is_contained_in,
    are_equivalent,
    minimize,
    is_minimal,
)
from repro.query.hypergraph import DualHypergraph
from repro.query.binary_graph import BinaryGraph

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "DatabaseIndex",
    "iter_witnesses_using",
    "satisfies",
    "witnesses",
    "witness_tuple_sets",
    "find_homomorphism",
    "is_contained_in",
    "are_equivalent",
    "minimize",
    "is_minimal",
    "DualHypergraph",
    "BinaryGraph",
]
