"""Query atoms (subgoals).

An :class:`Atom` is an occurrence ``R(z1, ..., zk)`` of a relation symbol
in a query body.  With self-joins the *same* relation may occur in several
atoms, so atoms carry a per-occurrence index and the query tracks
positions; two atoms over the same relation with the same variable vector
are the same subgoal (conjunction is idempotent).

The paper's queries use only variables in atoms (constants are pushed
into the database, footnote 3), so arguments here are variable names
(strings).
"""

from __future__ import annotations

from typing import Tuple


class Atom:
    """An atom ``relation(args...)`` with an exogenous marker.

    Parameters
    ----------
    relation:
        Relation symbol, e.g. ``"R"``.
    args:
        Variable names, positionally.  Repeated variables are allowed
        (the paper's REP patterns, e.g. ``R(x, x)``).
    exogenous:
        If ``True`` this atom's relation is exogenous (superscript ``x``
        in the paper).  The flag is per *relation* semantically; the
        query constructor enforces consistency across occurrences.
    """

    __slots__ = ("relation", "args", "exogenous")

    def __init__(self, relation: str, args: Tuple[str, ...], exogenous: bool = False):
        self.relation = relation
        self.args = tuple(args)
        self.exogenous = exogenous
        if not self.args:
            raise ValueError("atoms must have at least one argument")

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> frozenset:
        """``var(g)``: the set of variables occurring in this atom."""
        return frozenset(self.args)

    def has_repeated_variable(self) -> bool:
        """True iff some variable occurs twice (a REP atom, Section 7.4)."""
        return len(set(self.args)) < len(self.args)

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """Identity of the subgoal: relation plus positional variables."""
        return (self.relation, self.args)

    def with_exogenous(self, exogenous: bool) -> "Atom":
        """A copy of this atom with the exogenous flag set to ``exogenous``."""
        return Atom(self.relation, self.args, exogenous=exogenous)

    def rename(self, mapping) -> "Atom":
        """A copy with variables substituted via ``mapping`` (dict-like).

        Variables absent from the mapping are kept.
        """
        new_args = tuple(mapping.get(a, a) for a in self.args)
        return Atom(self.relation, new_args, exogenous=self.exogenous)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.args == other.args
            and self.exogenous == other.exogenous
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.args, self.exogenous))

    def __repr__(self) -> str:
        sup = "^x" if self.exogenous else ""
        return f"{self.relation}{sup}({', '.join(self.args)})"
