"""The binary graph of a binary CQ (Definition 8).

For binary queries the dual hypergraph loses the *positions* at which
variables appear — but positions drive complexity with self-joins
(Section 3: ``R(x, y), R(y, y)`` differs from ``R(x, y), R(y, z)``).
Definition 8 therefore represents a binary CQ as a labelled directed
graph: vertices are variables, a binary atom ``A(x, y)`` is a labelled
edge ``x --A--> y``, and a unary atom ``A(x)`` is a labelled loop at
``x``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.query.cq import ConjunctiveQuery


class BinaryGraph:
    """Labelled directed graph of a binary CQ (Definition 8).

    Edges are stored as ``(source, target, label, exogenous)`` tuples;
    unary atoms appear as ``(x, x, label, exogenous)`` loops flagged in
    :attr:`unary_loops`.
    """

    def __init__(self, query: ConjunctiveQuery):
        if not query.is_binary():
            raise ValueError("binary graphs are defined for binary queries only")
        self.query = query
        self.vertices: FrozenSet[str] = query.variables()
        self.edges: List[Tuple[str, str, str, bool]] = []
        self.unary_loops: Set[Tuple[str, str]] = set()
        for atom in query.atoms:
            if atom.arity == 1:
                x = atom.args[0]
                self.edges.append((x, x, atom.relation, atom.exogenous))
                self.unary_loops.add((x, atom.relation))
            else:
                x, y = atom.args
                self.edges.append((x, y, atom.relation, atom.exogenous))

    # ------------------------------------------------------------------
    def out_edges(self, vertex: str) -> List[Tuple[str, str, str, bool]]:
        """Edges leaving ``vertex`` (loops included)."""
        return [e for e in self.edges if e[0] == vertex]

    def in_edges(self, vertex: str) -> List[Tuple[str, str, str, bool]]:
        """Edges entering ``vertex`` (loops included)."""
        return [e for e in self.edges if e[1] == vertex]

    def edges_labeled(self, label: str) -> List[Tuple[str, str, str, bool]]:
        """All edges carrying relation ``label``."""
        return [e for e in self.edges if e[2] == label]

    def to_networkx(self):
        """A networkx MultiDiGraph with edge attribute ``label``."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self.vertices)
        for src, dst, label, exo in self.edges:
            graph.add_edge(src, dst, label=label + ("^x" if exo else ""))
        return graph

    def degree_profile(self) -> Dict[str, Tuple[int, int]]:
        """Per-variable (in-degree, out-degree) over binary atoms only."""
        profile: Dict[str, Tuple[int, int]] = {}
        for v in self.vertices:
            indeg = sum(
                1 for e in self.edges if e[1] == v and (e[0], e[2]) not in self.unary_loops
            )
            outdeg = sum(
                1 for e in self.edges if e[0] == v and (e[0], e[2]) not in self.unary_loops
            )
            profile[v] = (indeg, outdeg)
        return profile

    def ascii_render(self) -> str:
        """A small textual rendering, e.g. ``x -R-> y -R-> z``.

        Used by the examples and benchmark reports to echo the paper's
        binary-graph figures.
        """
        lines = []
        for src, dst, label, exo in self.edges:
            sup = "^x" if exo else ""
            if (src, label) in self.unary_loops and src == dst:
                lines.append(f"{src} [{label}{sup}]")
            else:
                lines.append(f"{src} -{label}{sup}-> {dst}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"BinaryGraph({self.query.name or 'q'}: {len(self.vertices)} vars, {len(self.edges)} edges)"
