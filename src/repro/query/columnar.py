"""Columnar (vectorized) witness enumeration.

The reference evaluator of :mod:`repro.query.evaluation` enumerates the
witnesses of ``D |= q`` (Section 2) with a Python backtracking join:
per-valuation dict copies, per-fact index probes, per-atom loops.  That
is the dominant cost of building a
:class:`~repro.witness.structure.WitnessStructure` on the scaling
workloads, so this module re-implements the *same* enumeration as a
vectorized hash/sort-merge join over dictionary-encoded relations:

1. :class:`ColumnarDatabase` interns every constant of the database
   into a dense integer code and stores each relation as a
   ``(n, arity)`` numpy int64 code matrix plus a parallel vector of
   global tuple ids (positions into one flat fact list);
2. the join processes atoms in the exact order the reference evaluator
   uses (:func:`repro.query.evaluation._order_atoms`), keeping the
   frontier of partial valuations as numpy columns — one array per
   bound variable, one array of matched tuple ids per processed atom —
   and extends it per atom with a sort/searchsorted equi-join on the
   composite key of already-bound positions;
3. the result is the witness → tuple-id incidence *directly*: a
   ``(witnesses, atoms)`` matrix of global tuple ids, from which the
   endogenous witness tuple sets of Section 2 / Definition 1 (the input
   of every resilience solver) are produced by columnwise filtering,
   rowwise sorting, and row deduplication — no Python valuation dicts
   on the hot path.

The enumerations are equivalent: both realize exactly the set of
valuations ``w`` with ``D |= q[w/x]``, and the property suite in
``tests/test_columnar.py`` checks multiset equality of the valuations
themselves against the reference evaluator on random databases and
queries.

Backend selection
-----------------
``REPRO_JOIN_BACKEND`` chooses the enumeration backend for
:func:`repro.query.evaluation.witness_tuple_sets`:

* ``columnar`` (default) — use this module when the database has at
  least ``REPRO_COLUMNAR_MIN_TUPLES`` tuples (default
  :data:`MIN_TUPLES_DEFAULT`; tiny instances stay on the reference path
  where numpy call overhead would dominate);
* ``reference`` — always use the backtracking evaluator.

When neither ``REPRO_JOIN_BACKEND`` nor ``REPRO_COLUMNAR_MIN_TUPLES``
is set and a solve runs under a planner plan
(:func:`repro.planner.active_plan`), the plan's ``join`` choice is
used instead of the static threshold — its cost model encodes the same
crossover by default, calibrated from the measured E18 layer costs.
Environment variables always override the planner (precedence:
explicit kwarg > env var > planner > static default).

:func:`backend_counters` reports how often each path actually ran —
``columnar`` (vectorized), ``reference`` (disabled or below the size
threshold), ``fallback`` (eligible but unsupported, e.g. an
atom/relation arity mismatch or a frontier larger than
:data:`MAX_FRONTIER_ROWS`).  The CI perf-smoke job fails when an
eligible workload silently falls back.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery

#: Databases smaller than this (in tuples) stay on the reference
#: evaluator by default: the vectorized join pays fixed numpy call
#: overhead per atom that only amortizes on non-trivial instances.
MIN_TUPLES_DEFAULT = 128

#: Hard cap on the join frontier (partial valuations held at once).
#: Above it the enumeration falls back to the constant-memory reference
#: evaluator instead of materializing an enormous intermediate.
MAX_FRONTIER_ROWS = 4_000_000

_counters = {"columnar": 0, "reference": 0, "fallback": 0}


def join_backend() -> str:
    """The enumeration backend selected by ``REPRO_JOIN_BACKEND``."""
    backend = os.environ.get("REPRO_JOIN_BACKEND", "columnar")
    if backend not in ("columnar", "reference"):
        raise ValueError(
            f"REPRO_JOIN_BACKEND={backend!r} (expected 'columnar' or 'reference')"
        )
    return backend


def min_columnar_tuples() -> int:
    """The size threshold selected by ``REPRO_COLUMNAR_MIN_TUPLES``."""
    raw = os.environ.get("REPRO_COLUMNAR_MIN_TUPLES")
    if raw is None:
        return MIN_TUPLES_DEFAULT
    try:
        return int(raw)
    except ValueError:
        return MIN_TUPLES_DEFAULT


def _use_columnar(database: Database) -> bool:
    """The enumeration gate shared by both ``try_*`` dispatchers.

    Environment variables win when present (either of them pins the
    historical semantics: explicit backend plus size threshold);
    otherwise an active planner plan decides directly — its cost model
    already priced the per-tuple costs against the fixed numpy
    overhead, so no second threshold is applied on top.  With neither,
    the static default gate runs unchanged.
    """
    env_backend = os.environ.get("REPRO_JOIN_BACKEND")
    if env_backend is None and os.environ.get("REPRO_COLUMNAR_MIN_TUPLES") is None:
        # Imported lazily: repro.planner reaches back into the solver
        # stack for feature extraction, so the import stays one-way.
        from repro.planner import active_plan

        plan = active_plan()
        if plan is not None:
            return plan.join == "columnar"
    return join_backend() == "columnar" and len(database) >= min_columnar_tuples()


def backend_counters() -> Dict[str, int]:
    """``{"columnar": runs, "reference": runs, "fallback": runs}`` so far."""
    return dict(_counters)


def reset_backend_counters() -> None:
    """Zero the run counters (benchmarks isolate phases this way)."""
    for key in _counters:
        _counters[key] = 0


class ColumnarDatabase:
    """A dictionary-encoded snapshot of one :class:`Database`.

    ``facts`` is the flat, deterministic (sorted per relation, relations
    in sorted name order) list of all facts; a *global tuple id* is a
    position into it.  ``relations`` maps each relation name to a
    ``(codes, ids)`` pair: an ``(n, arity)`` int64 matrix of interned
    constant codes and the parallel ``(n,)`` vector of global tuple
    ids.  ``constants`` is the reverse intern table (code → constant).
    """

    def __init__(self, database: Database):
        self.database = database
        self.facts: List[DBTuple] = []
        self.relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._ranges: List[Tuple[str, int, np.ndarray]] = []
        self._const_reprs: Optional[List[str]] = None
        intern: Dict[Hashable, int] = {}
        for name in sorted(database.relations):
            rel = database.relations[name]
            # Relation iteration order (a set) is process-dependent, like
            # the reference evaluator's probe order; every consumer is
            # order-insensitive past the deterministic kernelization.
            facts = list(rel)
            codes = np.empty((len(facts), rel.arity), dtype=np.int64)
            ids = np.arange(
                len(self.facts), len(self.facts) + len(facts), dtype=np.int64
            )
            for i, fact in enumerate(facts):
                for j, value in enumerate(fact.values):
                    code = intern.get(value)
                    if code is None:
                        code = len(intern)
                        intern[value] = code
                    codes[i, j] = code
            self._ranges.append((name, len(self.facts), codes))
            self.facts.extend(facts)
            self.relations[name] = (codes, ids)
        self.constants: List[Hashable] = list(intern)
        self.n_constants = max(1, len(intern))

    def sort_keys_for(self, gids: np.ndarray) -> List[Tuple[str, Tuple[str, ...]]]:
        """:meth:`DBTuple.sort_key` for each (ascending) global tuple id.

        Built from per-constant ``repr`` strings cached once, instead of
        re-``repr``-ing every value of every fact per comparison.
        """
        if self._const_reprs is None:
            self._const_reprs = [repr(c) for c in self.constants]
        reprs = self._const_reprs
        keys: List[Tuple[str, Tuple[str, ...]]] = []
        for name, start, codes in self._ranges:
            lo, hi = np.searchsorted(gids, [start, start + len(codes)])
            if lo == hi:
                continue
            rows = codes[gids[lo:hi] - start]
            keys.extend(
                (name, tuple(reprs[c] for c in row)) for row in rows.tolist()
            )
        return keys


# ---------------------------------------------------------------------------
# The vectorized join
# ---------------------------------------------------------------------------

def _combine_keys(
    rel_cols: List[np.ndarray], probe_cols: List[np.ndarray], base: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold multi-column join keys into single int64 keys on both sides.

    Codes are dense (< ``base``), so columns combine positionally as
    digits base-``base``; when the running magnitude would overflow
    int64, both sides are re-compressed to dense codes first (one
    ``np.unique`` over the concatenation keeps the two sides aligned).
    """
    limit = 1 << 62
    key_a = rel_cols[0].astype(np.int64, copy=True)
    key_b = probe_cols[0].astype(np.int64, copy=True)
    cur_max = base
    for col_a, col_b in zip(rel_cols[1:], probe_cols[1:]):
        if cur_max >= limit // base:
            both = np.concatenate([key_a, key_b])
            _, inverse = np.unique(both, return_inverse=True)
            key_a = inverse[: len(key_a)].astype(np.int64)
            key_b = inverse[len(key_a):].astype(np.int64)
            cur_max = len(both) + 1
        key_a = key_a * base + col_a
        key_b = key_b * base + col_b
        cur_max *= base
    return key_a, key_b


def _match_runs(
    rel_key: np.ndarray, probe_key: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort-merge match: all (probe row, rel row) pairs with equal keys.

    Returns ``(probe_idx, rel_idx)`` — parallel arrays enumerating every
    match, probe-major (ascending probe row, then ascending sorted rel
    position), which keeps the expansion deterministic.
    """
    order = np.argsort(rel_key, kind="stable")
    sorted_rel = rel_key[order]
    starts = np.searchsorted(sorted_rel, probe_key, side="left")
    ends = np.searchsorted(sorted_rel, probe_key, side="right")
    counts = ends - starts
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_key), dtype=np.int64), counts)
    if total:
        run_offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(run_offsets, counts)
        rel_idx = order[np.repeat(starts, counts) + within]
    else:
        rel_idx = np.empty(0, dtype=np.int64)
    return probe_idx, rel_idx


def _enumerate_fact_matrix(
    cdb: ColumnarDatabase, query: ConjunctiveQuery
) -> Optional[np.ndarray]:
    """The witness → tuple-id incidence of ``D |= q``.

    Returns a ``(witnesses, len(query.atoms))`` int64 matrix whose entry
    ``[w, a]`` is the global tuple id the witness ``w`` uses at atom
    ``a`` (columns in ``query.atoms`` order), or ``None`` when the
    instance is unsupported (arity mismatch, frontier overflow) and the
    caller must fall back to the reference evaluator.
    """
    from repro.query.evaluation import _order_atoms

    ordered = _order_atoms(query)
    var_slot: Dict[str, int] = {}
    var_cols: List[np.ndarray] = []
    fact_cols: List[np.ndarray] = []
    n_rows: Optional[int] = None  # None = one empty valuation (no atom yet)

    for atom in ordered:
        entry = cdb.relations.get(atom.relation)
        if entry is None:
            codes = np.empty((0, atom.arity), dtype=np.int64)
            ids = np.empty(0, dtype=np.int64)
        else:
            codes, ids = entry
            if codes.shape[1] != atom.arity:
                return None
        # Within-atom repeated variables constrain facts before joining.
        first_pos: Dict[str, int] = {}
        mask = None
        for j, var in enumerate(atom.args):
            if var in first_pos:
                agree = codes[:, first_pos[var]] == codes[:, j]
                mask = agree if mask is None else (mask & agree)
            else:
                first_pos[var] = j
        if mask is not None:
            codes = codes[mask]
            ids = ids[mask]

        bound = [(var, j) for var, j in first_pos.items() if var in var_slot]
        free = [(var, j) for var, j in first_pos.items() if var not in var_slot]

        if n_rows is None:
            for var, j in free:
                var_slot[var] = len(var_cols)
                var_cols.append(codes[:, j].copy())
            fact_cols.append(ids.copy())
        elif not bound:
            n_new = len(ids)
            if n_rows * n_new > MAX_FRONTIER_ROWS:
                return None
            old_idx = np.repeat(np.arange(n_rows, dtype=np.int64), n_new)
            new_idx = np.tile(np.arange(n_new, dtype=np.int64), n_rows)
            var_cols = [col[old_idx] for col in var_cols]
            fact_cols = [col[old_idx] for col in fact_cols]
            for var, j in free:
                var_slot[var] = len(var_cols)
                var_cols.append(codes[new_idx, j])
            fact_cols.append(ids[new_idx])
        else:
            rel_cols = [codes[:, j] for _var, j in bound]
            probe_cols = [var_cols[var_slot[var]] for var, _j in bound]
            rel_key, probe_key = _combine_keys(
                rel_cols, probe_cols, cdb.n_constants
            )
            probe_idx, rel_idx = _match_runs(rel_key, probe_key)
            if len(probe_idx) > MAX_FRONTIER_ROWS:
                return None
            var_cols = [col[probe_idx] for col in var_cols]
            fact_cols = [col[probe_idx] for col in fact_cols]
            for var, j in free:
                var_slot[var] = len(var_cols)
                var_cols.append(codes[rel_idx, j])
            fact_cols.append(ids[rel_idx])
        n_rows = len(fact_cols[0])
        if n_rows == 0:
            break

    n_rows = n_rows or 0
    out = np.empty((n_rows, len(query.atoms)), dtype=np.int64)
    positions = {atom.signature(): i for i, atom in enumerate(query.atoms)}
    for atom, col in zip(ordered, fact_cols):
        out[:, positions[atom.signature()]] = col
    return out


def columnar_valuations(
    database: Database, query: ConjunctiveQuery
) -> Optional[List[Dict[str, Hashable]]]:
    """Every witness of ``D |= q`` as a variable valuation (decoded).

    The vectorized counterpart of
    :func:`repro.query.evaluation.witnesses` — same valuations, possibly
    in a different order.  Returns ``None`` when the instance is
    unsupported.  Exposed for the equivalence property suite; the hot
    path feeds solvers through :func:`columnar_witness_tuple_sets`
    without ever building these dicts.
    """
    cdb = ColumnarDatabase(database)
    matrix = _enumerate_fact_matrix(cdb, query)
    if matrix is None:
        return None
    out: List[Dict[str, Hashable]] = []
    facts = cdb.facts
    for row in matrix:
        valuation: Dict[str, Hashable] = {}
        for atom, tid in zip(query.atoms, row):
            fact = facts[tid]
            for var, value in zip(atom.args, fact.values):
                valuation[var] = value
        out.append(valuation)
    return out


def _distinct_witness_rows(
    cdb: ColumnarDatabase, query: ConjunctiveQuery, endogenous_only: bool
) -> Optional[np.ndarray]:
    """Deduplicated witness rows of global tuple ids (or ``None``).

    Rows are ascending with ``-1`` padding in *front* (within-row
    duplicates — one fact matched by several atoms — and exogenous
    columns are normalized away), one row per distinct witness tuple
    set.  A width-0 row set encodes the all-exogenous-atoms case.
    """
    matrix = _enumerate_fact_matrix(cdb, query)
    if matrix is None:
        return None
    flags = dict(query.relation_flags())
    for name, rel in cdb.database.relations.items():
        if rel.exogenous:
            flags[name] = True
    if endogenous_only:
        keep_cols = [
            i
            for i, atom in enumerate(query.atoms)
            if not flags.get(atom.relation, False)
        ]
    else:
        keep_cols = list(range(len(query.atoms)))
    if matrix.shape[0] == 0:
        return np.empty((0, len(keep_cols)), dtype=np.int64)
    if not keep_cols:
        # Every atom is exogenous: each witness restricts to the empty
        # set (the unbreakable case the structure builder rejects).
        return np.empty((1, 0), dtype=np.int64)
    sub = np.sort(matrix[:, keep_cols], axis=1)
    if sub.shape[1] > 1:
        # Normalize within-row duplicates (the same fact matched by
        # several atoms) to -1 so set-equal rows become array-equal.
        dup = np.zeros(sub.shape, dtype=bool)
        dup[:, 1:] = sub[:, 1:] == sub[:, :-1]
        sub = np.where(dup, np.int64(-1), sub)
        sub = np.sort(sub, axis=1)
    return np.unique(sub, axis=0)


def _columnar_snapshot(database: Database, index) -> ColumnarDatabase:
    """The database's columnar encoding, reused from ``index`` when a
    :class:`~repro.query.evaluation.DatabaseIndex` was provided."""
    if index is not None:
        return index.columnar()
    return ColumnarDatabase(database)


def columnar_witness_tuple_sets(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index=None,
) -> Optional[List[FrozenSet[DBTuple]]]:
    """The deduplicated witness tuple sets, enumerated vectorized.

    Produces exactly the sets
    :func:`repro.query.evaluation.witness_tuple_sets` produces (order
    may differ; every consumer is order-insensitive past the
    deterministic kernelization), or ``None`` when the instance is
    unsupported and the caller must fall back.
    """
    cdb = _columnar_snapshot(database, index)
    rows = _distinct_witness_rows(cdb, query, endogenous_only)
    if rows is None:
        return None
    facts = cdb.facts
    return [
        frozenset(facts[tid] for tid in row if tid >= 0)
        for row in rows.tolist()
    ]


def columnar_witness_incidence(
    database: Database, query: ConjunctiveQuery, index=None
) -> Optional[Tuple[Tuple[DBTuple, ...], np.ndarray]]:
    """The witness structure's raw input, fully vectorized.

    Returns ``(universe, matrix)``: the endogenous tuples appearing in
    any witness sorted by :meth:`DBTuple.sort_key` (a tuple's id is its
    position, exactly as ``WitnessStructure`` assigns ids), and one row
    per distinct witness tuple set over those local ids — ascending,
    right-padded with ``len(universe)``.  A ``(1, 0)`` matrix encodes
    an all-exogenous witness (the unbreakable case); ``None`` means the
    instance is unsupported and the caller must enumerate via the
    reference evaluator.
    """
    cdb = _columnar_snapshot(database, index)
    rows = _distinct_witness_rows(cdb, query, endogenous_only=True)
    if rows is None:
        return None
    if rows.shape[0] == 0 or rows.shape[1] == 0:
        return (), rows
    used = np.unique(rows)
    used = used[used >= 0]
    facts = cdb.facts
    keys = cdb.sort_keys_for(used)
    order = sorted(range(len(used)), key=keys.__getitem__)
    universe = tuple(facts[used[i]] for i in order)
    local_of = np.empty(len(used), dtype=np.int64)
    for local, i in enumerate(order):
        local_of[i] = local
    pad = len(universe)
    pos = np.searchsorted(used, np.clip(rows, 0, None))
    local = np.where(rows < 0, np.int64(pad), local_of[pos])
    local.sort(axis=1)
    return universe, local


def try_witness_incidence(
    database: Database, query: ConjunctiveQuery, index=None
) -> Optional[Tuple[Tuple[DBTuple, ...], np.ndarray]]:
    """Backend dispatcher for :meth:`WitnessStructure.build`.

    Same gating and counter accounting as
    :func:`try_witness_tuple_sets`, returning the
    :func:`columnar_witness_incidence` payload instead of fact sets.
    """
    if not _use_columnar(database):
        _counters["reference"] += 1
        return None
    result = columnar_witness_incidence(database, query, index=index)
    if result is None:
        _counters["fallback"] += 1
        return None
    _counters["columnar"] += 1
    return result


def try_witness_tuple_sets(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index=None,
) -> Optional[List[FrozenSet[DBTuple]]]:
    """The backend dispatcher used by ``witness_tuple_sets``.

    Returns the columnar result when the backend is enabled — by the
    environment gate or by an active planner plan (see
    :func:`_use_columnar`) — and the instance is supported; ``None``
    otherwise (the caller runs the reference evaluator).  Every
    outcome is tallied in :func:`backend_counters`.
    """
    if not _use_columnar(database):
        _counters["reference"] += 1
        return None
    result = columnar_witness_tuple_sets(
        database, query, endogenous_only=endogenous_only, index=index
    )
    if result is None:
        _counters["fallback"] += 1
        return None
    _counters["columnar"] += 1
    return result
