"""Columnar (vectorized) witness enumeration.

The reference evaluator of :mod:`repro.query.evaluation` enumerates the
witnesses of ``D |= q`` (Section 2) with a Python backtracking join:
per-valuation dict copies, per-fact index probes, per-atom loops.  That
is the dominant cost of building a
:class:`~repro.witness.structure.WitnessStructure` on the scaling
workloads, so this module re-implements the *same* enumeration as a
vectorized hash/sort-merge join over dictionary-encoded relations:

1. :class:`ColumnarDatabase` interns every constant of the database
   into a dense integer code and stores each relation as a
   ``(n, arity)`` numpy int64 code matrix plus a parallel vector of
   global tuple ids (positions into one flat fact list);
2. the join processes atoms in the exact order the reference evaluator
   uses (:func:`repro.query.evaluation._order_atoms`), keeping the
   frontier of partial valuations as numpy columns — one array per
   bound variable, one array of matched tuple ids per processed atom —
   and extends it per atom with a sort/searchsorted equi-join on the
   composite key of already-bound positions;
3. the result is the witness → tuple-id incidence *directly*: a
   ``(witnesses, atoms)`` matrix of global tuple ids, from which the
   endogenous witness tuple sets of Section 2 / Definition 1 (the input
   of every resilience solver) are produced by columnwise filtering,
   rowwise sorting, and row deduplication — no Python valuation dicts
   on the hot path.

The enumerations are equivalent: both realize exactly the set of
valuations ``w`` with ``D |= q[w/x]``, and the property suite in
``tests/test_columnar.py`` checks multiset equality of the valuations
themselves against the reference evaluator on random databases and
queries.

Backend selection
-----------------
``REPRO_JOIN_BACKEND`` chooses the enumeration backend for
:func:`repro.query.evaluation.witness_tuple_sets`:

* ``columnar`` (default) — use this module when the database has at
  least ``REPRO_COLUMNAR_MIN_TUPLES`` tuples (default
  :data:`MIN_TUPLES_DEFAULT`; tiny instances stay on the reference path
  where numpy call overhead would dominate);
* ``reference`` — always use the backtracking evaluator.

When neither ``REPRO_JOIN_BACKEND`` nor ``REPRO_COLUMNAR_MIN_TUPLES``
is set and a solve runs under a planner plan
(:func:`repro.planner.active_plan`), the plan's ``join`` choice is
used instead of the static threshold — its cost model encodes the same
crossover by default, calibrated from the measured E18 layer costs.
Environment variables always override the planner (precedence:
explicit kwarg > env var > planner > static default).

:func:`backend_counters` reports how often each path actually ran —
``columnar`` (vectorized), ``reference`` (disabled or below the size
threshold), ``fallback`` (eligible but unsupported: an atom/relation
arity mismatch).  Join frontiers larger than
:func:`frontier_chunk_rows` no longer fall back — the enumeration
streams bounded blocks (at most that many rows live at once) and
merges per-block deduplicated results, so memory stays bounded at any
scale.  The CI perf-smoke job fails when an eligible workload silently
falls back.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery

#: Databases smaller than this (in tuples) stay on the reference
#: evaluator by default: the vectorized join pays fixed numpy call
#: overhead per atom that only amortizes on non-trivial instances.
MIN_TUPLES_DEFAULT = 128

#: Default bound on the join frontier (partial valuations materialized
#: at once).  The enumeration streams the join in blocks of at most
#: this many rows — an expansion that would exceed it is split into
#: bounded segments, never handed to the O(n^k) reference evaluator.
MAX_FRONTIER_ROWS = 4_000_000


def frontier_chunk_rows() -> int:
    """The frontier block bound, ``REPRO_COLUMNAR_CHUNK_ROWS`` or the
    :data:`MAX_FRONTIER_ROWS` default (clamped to at least 1).

    Tests and the out-of-core benchmarks force tiny chunks through the
    environment variable to exercise the splitting paths at small
    scale; chunking never changes results — only peak memory."""
    raw = os.environ.get("REPRO_COLUMNAR_CHUNK_ROWS")
    if raw is None:
        return MAX_FRONTIER_ROWS
    try:
        value = int(raw)
    except ValueError:
        return MAX_FRONTIER_ROWS
    return max(1, value)

_counters = {"columnar": 0, "reference": 0, "fallback": 0}


def join_backend() -> str:
    """The enumeration backend selected by ``REPRO_JOIN_BACKEND``."""
    backend = os.environ.get("REPRO_JOIN_BACKEND", "columnar")
    if backend not in ("columnar", "reference"):
        raise ValueError(
            f"REPRO_JOIN_BACKEND={backend!r} (expected 'columnar' or 'reference')"
        )
    return backend


def min_columnar_tuples() -> int:
    """The size threshold selected by ``REPRO_COLUMNAR_MIN_TUPLES``."""
    raw = os.environ.get("REPRO_COLUMNAR_MIN_TUPLES")
    if raw is None:
        return MIN_TUPLES_DEFAULT
    try:
        return int(raw)
    except ValueError:
        return MIN_TUPLES_DEFAULT


def _use_columnar(database: Database) -> bool:
    """The enumeration gate shared by both ``try_*`` dispatchers.

    Environment variables win when present (either of them pins the
    historical semantics: explicit backend plus size threshold);
    otherwise an active planner plan decides directly — its cost model
    already priced the per-tuple costs against the fixed numpy
    overhead, so no second threshold is applied on top.  With neither,
    the static default gate runs unchanged.
    """
    env_backend = os.environ.get("REPRO_JOIN_BACKEND")
    if env_backend is None and os.environ.get("REPRO_COLUMNAR_MIN_TUPLES") is None:
        # Imported lazily: repro.planner reaches back into the solver
        # stack for feature extraction, so the import stays one-way.
        from repro.planner import active_plan

        plan = active_plan()
        if plan is not None:
            return plan.join == "columnar"
    return join_backend() == "columnar" and len(database) >= min_columnar_tuples()


def backend_counters() -> Dict[str, int]:
    """``{"columnar": runs, "reference": runs, "fallback": runs}`` so far."""
    return dict(_counters)


def reset_backend_counters() -> None:
    """Zero the run counters (benchmarks isolate phases this way)."""
    for key in _counters:
        _counters[key] = 0


class ColumnarDatabase:
    """A dictionary-encoded snapshot of one :class:`Database`.

    ``facts`` is the flat, deterministic (sorted per relation, relations
    in sorted name order) list of all facts; a *global tuple id* is a
    position into it.  ``relations`` maps each relation name to a
    ``(codes, ids)`` pair: an ``(n, arity)`` int64 matrix of interned
    constant codes and the parallel ``(n,)`` vector of global tuple
    ids.  ``constants`` is the reverse intern table (code → constant).

    A snapshot-backed handle (:class:`repro.storage.StoredDatabase`,
    detected through its ``storage_snapshot`` attribute) skips the
    encoding pass entirely: the code matrices are the snapshot's own
    ``numpy.memmap`` views, and ``facts``/``constants`` become lazy
    decoders that touch Python objects only for tuples a witness
    actually emits.
    """

    def __init__(self, database: Database):
        self.database = database
        self._repr_cache: Dict[int, str] = {}
        self._const_reprs: Optional[List[str]] = None
        snapshot = getattr(database, "storage_snapshot", None)
        if snapshot is not None:
            from repro.storage.stored import columnar_parts

            (
                self.facts,
                self.relations,
                self._ranges,
                self.constants,
                self.n_constants,
            ) = columnar_parts(snapshot)
            self._lazy_constants = True
            return
        self._lazy_constants = False
        self.facts: List[DBTuple] = []
        self.relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._ranges: List[Tuple[str, int, np.ndarray]] = []
        intern: Dict[Hashable, int] = {}
        for name in sorted(database.relations):
            rel = database.relations[name]
            # Relation iteration order (a set) is process-dependent, like
            # the reference evaluator's probe order; every consumer is
            # order-insensitive past the deterministic kernelization.
            facts = list(rel)
            codes = np.empty((len(facts), rel.arity), dtype=np.int64)
            ids = np.arange(
                len(self.facts), len(self.facts) + len(facts), dtype=np.int64
            )
            for i, fact in enumerate(facts):
                for j, value in enumerate(fact.values):
                    code = intern.get(value)
                    if code is None:
                        code = len(intern)
                        intern[value] = code
                    codes[i, j] = code
            self._ranges.append((name, len(self.facts), codes))
            self.facts.extend(facts)
            self.relations[name] = (codes, ids)
        self.constants: List[Hashable] = list(intern)
        self.n_constants = max(1, len(intern))

    def sort_keys_for(self, gids: np.ndarray) -> List[Tuple[str, Tuple[str, ...]]]:
        """:meth:`DBTuple.sort_key` for each (ascending) global tuple id.

        Built from per-constant ``repr`` strings cached once, instead of
        re-``repr``-ing every value of every fact per comparison.  On a
        snapshot-backed encoding the cache fills lazily per code — a
        million-constant snapshot pays for exactly the constants that
        appear in witness universes, not the whole table.
        """
        if self._lazy_constants:
            cache = self._repr_cache
            constants = self.constants

            def repr_of(code: int) -> str:
                text = cache.get(code)
                if text is None:
                    text = repr(constants[code])
                    cache[code] = text
                return text
        else:
            if self._const_reprs is None:
                self._const_reprs = [repr(c) for c in self.constants]
            repr_of = self._const_reprs.__getitem__
        keys: List[Tuple[str, Tuple[str, ...]]] = []
        for name, start, codes in self._ranges:
            lo, hi = np.searchsorted(gids, [start, start + len(codes)])
            if lo == hi:
                continue
            rows = np.asarray(codes)[gids[lo:hi] - start]
            keys.extend(
                (name, tuple(repr_of(c) for c in row)) for row in rows.tolist()
            )
        return keys


# ---------------------------------------------------------------------------
# The vectorized join
# ---------------------------------------------------------------------------

def _combine_keys(
    rel_cols: List[np.ndarray], probe_cols: List[np.ndarray], base: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold multi-column join keys into single int64 keys on both sides.

    Codes are dense (< ``base``), so columns combine positionally as
    digits base-``base``; when the running magnitude would overflow
    int64, both sides are re-compressed to dense codes first (one
    ``np.unique`` over the concatenation keeps the two sides aligned).
    """
    limit = 1 << 62
    key_a = rel_cols[0].astype(np.int64, copy=True)
    key_b = probe_cols[0].astype(np.int64, copy=True)
    cur_max = base
    for col_a, col_b in zip(rel_cols[1:], probe_cols[1:]):
        if cur_max >= limit // base:
            both = np.concatenate([key_a, key_b])
            _, inverse = np.unique(both, return_inverse=True)
            key_a = inverse[: len(key_a)].astype(np.int64)
            key_b = inverse[len(key_a):].astype(np.int64)
            cur_max = len(both) + 1
        key_a = key_a * base + col_a
        key_b = key_b * base + col_b
        cur_max *= base
    return key_a, key_b


def _match_runs(
    rel_key: np.ndarray, probe_key: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort-merge match: all (probe row, rel row) pairs with equal keys.

    Returns ``(probe_idx, rel_idx)`` — parallel arrays enumerating every
    match, probe-major (ascending probe row, then ascending sorted rel
    position), which keeps the expansion deterministic.
    """
    order = np.argsort(rel_key, kind="stable")
    sorted_rel = rel_key[order]
    starts = np.searchsorted(sorted_rel, probe_key, side="left")
    ends = np.searchsorted(sorted_rel, probe_key, side="right")
    counts = ends - starts
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_key), dtype=np.int64), counts)
    if total:
        run_offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(run_offsets, counts)
        rel_idx = order[np.repeat(starts, counts) + within]
    else:
        rel_idx = np.empty(0, dtype=np.int64)
    return probe_idx, rel_idx


def _atom_join_plan(cdb: ColumnarDatabase, query: ConjunctiveQuery):
    """Validate and prepare the join: one step per ordered atom.

    Returns ``None`` when some atom's arity disagrees with the stored
    relation (the only remaining unsupported case — the caller falls
    back to the reference evaluator), else a list of
    ``(atom, codes, ids, bound, free)`` steps where ``bound``/``free``
    are ``(slot, column)`` pairs over the shared variable-slot layout
    (slot = order of first binding across the ordered atoms).
    Within-atom repeated variables are filtered here, once.
    """
    from repro.query.evaluation import _order_atoms

    ordered = _order_atoms(query)
    var_slot: Dict[str, int] = {}
    steps = []
    for atom in ordered:
        entry = cdb.relations.get(atom.relation)
        if entry is None:
            codes = np.empty((0, atom.arity), dtype=np.int64)
            ids = np.empty(0, dtype=np.int64)
        else:
            codes, ids = entry
            if codes.shape[1] != atom.arity:
                return None
        first_pos: Dict[str, int] = {}
        mask = None
        for j, var in enumerate(atom.args):
            if var in first_pos:
                agree = codes[:, first_pos[var]] == codes[:, j]
                mask = agree if mask is None else (mask & agree)
            else:
                first_pos[var] = j
        if mask is not None:
            codes = codes[mask]
            ids = np.asarray(ids)[mask]
        bound = []
        free = []
        for var, j in first_pos.items():
            slot = var_slot.get(var)
            if slot is not None:
                bound.append((slot, j))
            else:
                var_slot[var] = len(var_slot)
                free.append((var_slot[var], j))
        steps.append((atom, codes, ids, bound, free))
    return steps


def _cartesian_pairs(n_rows: int, n_new: int, chunk: int):
    """Lazy ``(old_idx, new_idx)`` segments of the ``n_rows x n_new``
    cross product, each segment at most ``chunk`` pairs."""
    if n_rows == 0 or n_new == 0:
        return
    if n_new > chunk:
        for lo in range(0, n_new, chunk):
            hi = min(lo + chunk, n_new)
            new_idx = np.arange(lo, hi, dtype=np.int64)
            for row in range(n_rows):
                yield np.full(hi - lo, row, dtype=np.int64), new_idx
        return
    rows_per = max(1, chunk // n_new)
    for lo in range(0, n_rows, rows_per):
        hi = min(lo + rows_per, n_rows)
        old_idx = np.repeat(np.arange(lo, hi, dtype=np.int64), n_new)
        new_idx = np.tile(np.arange(n_new, dtype=np.int64), hi - lo)
        yield old_idx, new_idx


def _materialize_matches(starts, counts, order, a: int, b: int):
    """The ``(probe_idx, rel_idx)`` expansion restricted to probe rows
    ``[a, b)`` — the per-segment core of :func:`_match_runs`."""
    cseg = counts[a:b]
    total = int(cseg.sum())
    probe_idx = np.repeat(np.arange(a, b, dtype=np.int64), cseg)
    run_offsets = np.cumsum(cseg) - cseg
    within = np.arange(total, dtype=np.int64) - np.repeat(run_offsets, cseg)
    rel_idx = order[np.repeat(starts[a:b], cseg) + within]
    return probe_idx, rel_idx


def _match_pairs(rel_key: np.ndarray, probe_key: np.ndarray, chunk: int):
    """Lazy sort-merge match: ``(probe_idx, rel_idx)`` segments, probe-
    major, each at most ``chunk`` pairs.

    A probe row whose own match run exceeds ``chunk`` is emitted as
    slices of its contiguous sorted-relation run; concatenated in
    order, the segments are exactly :func:`_match_runs`'s expansion.
    """
    order = np.argsort(rel_key, kind="stable")
    sorted_rel = rel_key[order]
    starts = np.searchsorted(sorted_rel, probe_key, side="left")
    ends = np.searchsorted(sorted_rel, probe_key, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return
    n = len(probe_key)
    if total <= chunk:
        yield _materialize_matches(starts, counts, order, 0, n)
        return
    cum = np.cumsum(counts)
    big_rows = np.flatnonzero(counts > chunk)
    a = 0
    big_pos = 0
    while a < n:
        if big_pos < len(big_rows) and big_rows[big_pos] == a:
            s, e = int(starts[a]), int(ends[a])
            row = np.int64(a)
            for off in range(s, e, chunk):
                hi = min(off + chunk, e)
                yield np.full(hi - off, row, dtype=np.int64), order[off:hi]
            a += 1
            big_pos += 1
            continue
        base = int(cum[a - 1]) if a else 0
        b = int(np.searchsorted(cum, base + chunk, side="right"))
        b = max(b, a + 1)
        if big_pos < len(big_rows):
            b = min(b, int(big_rows[big_pos]))
            b = max(b, a + 1)
        b = min(b, n)
        if int(cum[b - 1]) - base > 0:
            yield _materialize_matches(starts, counts, order, a, b)
        a = b


def _assemble_block(
    query: ConjunctiveQuery, ordered, fact_cols: List[np.ndarray], n_rows: int
) -> np.ndarray:
    """One output block: join-ordered fact columns mapped back to body
    positions.

    Map each join-ordered column back to a *distinct* body position.
    Keyed by signature alone this collapsed duplicate atoms onto one
    column, leaving another as uninitialized np.empty garbage; the
    per-signature position queues below give every occurrence its own
    column (duplicate atoms match identical facts, so which occurrence
    gets which column is immaterial — that each gets one is not).
    """
    out = np.empty((n_rows, len(query.atoms)), dtype=np.int64)
    positions: Dict[str, List[int]] = {}
    for i, atom in enumerate(query.atoms):
        positions.setdefault(atom.signature(), []).append(i)
    for atom, col in zip(ordered, fact_cols):
        out[:, positions[atom.signature()].pop(0)] = col
    return out


def _fact_matrix_blocks(cdb: ColumnarDatabase, query: ConjunctiveQuery):
    """The witness → tuple-id incidence of ``D |= q``, streamed.

    Returns ``None`` when the instance is unsupported (atom/relation
    arity mismatch) and the caller must fall back to the reference
    evaluator; otherwise an iterator of ``(rows, len(query.atoms))``
    int64 blocks whose entry ``[w, a]`` is the global tuple id witness
    ``w`` uses at atom ``a`` (columns in ``query.atoms`` order).  Each
    block holds at most :func:`frontier_chunk_rows` rows, and no
    intermediate frontier larger than that is ever materialized — the
    depth-first expansion keeps at most one live segment per join
    level.  Concatenated, the blocks equal the unchunked enumeration
    row for row.
    """
    steps = _atom_join_plan(cdb, query)
    if steps is None:
        return None
    return _iter_fact_blocks(cdb, query, steps, frontier_chunk_rows())


def _iter_fact_blocks(
    cdb: ColumnarDatabase, query: ConjunctiveQuery, steps, chunk: int
):
    ordered = [atom for atom, *_rest in steps]

    def expand(ai: int, var_cols: List[np.ndarray], fact_cols: List[np.ndarray]):
        if ai == len(steps):
            n_rows = len(fact_cols[0]) if fact_cols else 0
            yield _assemble_block(query, ordered, fact_cols, n_rows)
            return
        _atom, codes, ids, bound, free = steps[ai]
        if ai == 0:
            for lo in range(0, len(ids), chunk):
                hi = min(lo + chunk, len(ids))
                new_vars = [codes[lo:hi, j].copy() for _slot, j in free]
                yield from expand(ai + 1, new_vars, [np.asarray(ids[lo:hi])])
            return
        n_rows = len(fact_cols[0])
        if n_rows == 0:
            return
        if not bound:
            segments = _cartesian_pairs(n_rows, len(ids), chunk)
        else:
            rel_cols = [codes[:, j] for _slot, j in bound]
            probe_cols = [var_cols[slot] for slot, _j in bound]
            rel_key, probe_key = _combine_keys(
                rel_cols, probe_cols, cdb.n_constants
            )
            segments = _match_pairs(rel_key, probe_key, chunk)
        for old_idx, new_idx in segments:
            new_vars = [col[old_idx] for col in var_cols]
            new_vars.extend(codes[new_idx, j] for _slot, j in free)
            new_facts = [col[old_idx] for col in fact_cols]
            new_facts.append(np.asarray(ids)[new_idx])
            yield from expand(ai + 1, new_vars, new_facts)

    if not steps:
        return iter(())
    return expand(0, [], [])


def _enumerate_fact_matrix(
    cdb: ColumnarDatabase, query: ConjunctiveQuery
) -> Optional[np.ndarray]:
    """The full witness → tuple-id incidence matrix of ``D |= q``.

    The concatenation of :func:`_fact_matrix_blocks` (``None`` on arity
    mismatch).  Row order is identical to the historical unchunked
    enumeration.  Hot paths stream the blocks instead; this
    materializing form serves :func:`columnar_valuations` and the
    equivalence suites.
    """
    blocks = _fact_matrix_blocks(cdb, query)
    if blocks is None:
        return None
    collected = [b for b in blocks if b.shape[0]]
    if not collected:
        return np.empty((0, len(query.atoms)), dtype=np.int64)
    if len(collected) == 1:
        return collected[0]
    return np.concatenate(collected, axis=0)


def columnar_valuations(
    database: Database, query: ConjunctiveQuery
) -> Optional[List[Dict[str, Hashable]]]:
    """Every witness of ``D |= q`` as a variable valuation (decoded).

    The vectorized counterpart of
    :func:`repro.query.evaluation.witnesses` — same valuations, possibly
    in a different order.  Returns ``None`` when the instance is
    unsupported.  Exposed for the equivalence property suite; the hot
    path feeds solvers through :func:`columnar_witness_tuple_sets`
    without ever building these dicts.
    """
    cdb = ColumnarDatabase(database)
    matrix = _enumerate_fact_matrix(cdb, query)
    if matrix is None:
        return None
    out: List[Dict[str, Hashable]] = []
    facts = cdb.facts
    for row in matrix:
        valuation: Dict[str, Hashable] = {}
        for atom, tid in zip(query.atoms, row):
            fact = facts[tid]
            for var, value in zip(atom.args, fact.values):
                valuation[var] = value
        out.append(valuation)
    return out


def _distinct_witness_rows(
    cdb: ColumnarDatabase, query: ConjunctiveQuery, endogenous_only: bool
) -> Optional[np.ndarray]:
    """Deduplicated witness rows of global tuple ids (or ``None``).

    Rows are ascending with ``-1`` padding in *front* (within-row
    duplicates — one fact matched by several atoms — and exogenous
    columns are normalized away), one row per distinct witness tuple
    set.  A width-0 row set encodes the all-exogenous-atoms case.

    Streams the enumeration block by block: each frontier block (at
    most :func:`frontier_chunk_rows` rows) is normalized and
    deduplicated on its own, then merged into the accumulated distinct
    rows — peak memory is one block plus the distinct result, never
    the full witness multiset.
    """
    blocks = _fact_matrix_blocks(cdb, query)
    if blocks is None:
        return None
    flags = dict(query.relation_flags())
    for name, rel in cdb.database.relations.items():
        if rel.exogenous:
            flags[name] = True
    if endogenous_only:
        keep_cols = [
            i
            for i, atom in enumerate(query.atoms)
            if not flags.get(atom.relation, False)
        ]
    else:
        keep_cols = list(range(len(query.atoms)))
    acc: Optional[np.ndarray] = None
    saw_rows = False
    for matrix in blocks:
        if matrix.shape[0] == 0:
            continue
        saw_rows = True
        if not keep_cols:
            # Every atom is exogenous: each witness restricts to the
            # empty set (the unbreakable case the structure builder
            # rejects); one nonempty block settles the answer.
            break
        sub = np.sort(matrix[:, keep_cols], axis=1)
        if sub.shape[1] > 1:
            # Normalize within-row duplicates (the same fact matched by
            # several atoms) to -1 so set-equal rows become array-equal.
            dup = np.zeros(sub.shape, dtype=bool)
            dup[:, 1:] = sub[:, 1:] == sub[:, :-1]
            sub = np.where(dup, np.int64(-1), sub)
            sub = np.sort(sub, axis=1)
        distinct = np.unique(sub, axis=0)
        acc = (
            distinct
            if acc is None
            else np.unique(np.concatenate([acc, distinct], axis=0), axis=0)
        )
    if not saw_rows:
        return np.empty((0, len(keep_cols)), dtype=np.int64)
    if not keep_cols:
        return np.empty((1, 0), dtype=np.int64)
    return acc


def _columnar_snapshot(database: Database, index) -> ColumnarDatabase:
    """The database's columnar encoding, reused from ``index`` when a
    :class:`~repro.query.evaluation.DatabaseIndex` was provided."""
    if index is not None:
        return index.columnar()
    return ColumnarDatabase(database)


def columnar_witness_tuple_sets(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index=None,
) -> Optional[List[FrozenSet[DBTuple]]]:
    """The deduplicated witness tuple sets, enumerated vectorized.

    Produces exactly the sets
    :func:`repro.query.evaluation.witness_tuple_sets` produces (order
    may differ; every consumer is order-insensitive past the
    deterministic kernelization), or ``None`` when the instance is
    unsupported and the caller must fall back.
    """
    cdb = _columnar_snapshot(database, index)
    rows = _distinct_witness_rows(cdb, query, endogenous_only)
    if rows is None:
        return None
    facts = cdb.facts
    return [
        frozenset(facts[tid] for tid in row if tid >= 0)
        for row in rows.tolist()
    ]


def columnar_witness_incidence(
    database: Database, query: ConjunctiveQuery, index=None
) -> Optional[Tuple[Tuple[DBTuple, ...], np.ndarray]]:
    """The witness structure's raw input, fully vectorized.

    Returns ``(universe, matrix)``: the endogenous tuples appearing in
    any witness sorted by :meth:`DBTuple.sort_key` (a tuple's id is its
    position, exactly as ``WitnessStructure`` assigns ids), and one row
    per distinct witness tuple set over those local ids — ascending,
    right-padded with ``len(universe)``.  A ``(1, 0)`` matrix encodes
    an all-exogenous witness (the unbreakable case); ``None`` means the
    instance is unsupported and the caller must enumerate via the
    reference evaluator.
    """
    cdb = _columnar_snapshot(database, index)
    rows = _distinct_witness_rows(cdb, query, endogenous_only=True)
    if rows is None:
        return None
    if rows.shape[0] == 0 or rows.shape[1] == 0:
        return (), rows
    used = np.unique(rows)
    used = used[used >= 0]
    facts = cdb.facts
    keys = cdb.sort_keys_for(used)
    order = sorted(range(len(used)), key=keys.__getitem__)
    universe = tuple(facts[used[i]] for i in order)
    local_of = np.empty(len(used), dtype=np.int64)
    for local, i in enumerate(order):
        local_of[i] = local
    pad = len(universe)
    pos = np.searchsorted(used, np.clip(rows, 0, None))
    local = np.where(rows < 0, np.int64(pad), local_of[pos])
    local.sort(axis=1)
    return universe, local


def try_witness_incidence(
    database: Database, query: ConjunctiveQuery, index=None
) -> Optional[Tuple[Tuple[DBTuple, ...], np.ndarray]]:
    """Backend dispatcher for :meth:`WitnessStructure.build`.

    Same gating and counter accounting as
    :func:`try_witness_tuple_sets`, returning the
    :func:`columnar_witness_incidence` payload instead of fact sets.
    """
    if not _use_columnar(database):
        _counters["reference"] += 1
        return None
    result = columnar_witness_incidence(database, query, index=index)
    if result is None:
        _counters["fallback"] += 1
        return None
    _counters["columnar"] += 1
    return result


def try_witness_tuple_sets(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index=None,
) -> Optional[List[FrozenSet[DBTuple]]]:
    """The backend dispatcher used by ``witness_tuple_sets``.

    Returns the columnar result when the backend is enabled — by the
    environment gate or by an active planner plan (see
    :func:`_use_columnar`) — and the instance is supported; ``None``
    otherwise (the caller runs the reference evaluator).  Every
    outcome is tallied in :func:`backend_counters`.
    """
    if not _use_columnar(database):
        _counters["reference"] += 1
        return None
    result = columnar_witness_tuple_sets(
        database, query, endogenous_only=endogenous_only, index=index
    )
    if result is None:
        _counters["fallback"] += 1
        return None
    _counters["columnar"] += 1
    return result
