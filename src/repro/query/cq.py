"""Boolean conjunctive queries.

A :class:`ConjunctiveQuery` is a Boolean CQ ``q :- g1, ..., gm`` (all
variables existentially quantified; the paper restricts attention to
Boolean queries, Section 2).  The class records the ordered list of atoms
— order matters for the paper's linear-arrangement arguments — and
provides the structural vocabulary used throughout: occurrences per
relation, self-join detection, the single-self-join (ssj) and binary
restrictions, and connectivity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.query.atom import Atom


class ConjunctiveQuery:
    """A Boolean conjunctive query.

    Parameters
    ----------
    atoms:
        The body, in order.  Exogenous flags must be consistent per
        relation symbol (an atom's relation is exogenous or not as a
        whole); the constructor harmonises flags and raises on conflict
        only if both values were given explicitly for the same relation.
    name:
        Optional display name (e.g. ``"qchain"``).
    """

    def __init__(self, atoms: Sequence[Atom], name: Optional[str] = None):
        if not atoms:
            raise ValueError("a query needs at least one atom")
        flags: Dict[str, bool] = {}
        for atom in atoms:
            prev = flags.get(atom.relation)
            if prev is None:
                flags[atom.relation] = atom.exogenous
            elif prev != atom.exogenous:
                raise ValueError(
                    f"inconsistent exogenous flag for relation {atom.relation!r}"
                )
        arities: Dict[str, int] = {}
        for atom in atoms:
            prev_ar = arities.get(atom.relation)
            if prev_ar is None:
                arities[atom.relation] = atom.arity
            elif prev_ar != atom.arity:
                raise ValueError(
                    f"relation {atom.relation!r} used with arities {prev_ar} and {atom.arity}"
                )
        # Conjunction is idempotent: drop duplicate subgoals, keep order.
        seen: Set[Tuple[str, Tuple[str, ...]]] = set()
        unique: List[Atom] = []
        for atom in atoms:
            sig = atom.signature()
            if sig not in seen:
                seen.add(sig)
                unique.append(atom)
        self.atoms: Tuple[Atom, ...] = tuple(unique)
        self.name = name

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[str]:
        """``var(q)``: all variables of the query."""
        out: Set[str] = set()
        for atom in self.atoms:
            out.update(atom.args)
        return frozenset(out)

    def relation_names(self) -> FrozenSet[str]:
        """All relation symbols occurring in the body."""
        return frozenset(a.relation for a in self.atoms)

    def relation_arities(self) -> Dict[str, int]:
        """Arity of each relation symbol."""
        return {a.relation: a.arity for a in self.atoms}

    def relation_flags(self) -> Dict[str, bool]:
        """Exogenous flag of each relation symbol."""
        return {a.relation: a.exogenous for a in self.atoms}

    def occurrences(self, relation: str) -> List[Atom]:
        """The atoms over ``relation``, in body order."""
        return [a for a in self.atoms if a.relation == relation]

    def occurrence_counts(self) -> Dict[str, int]:
        """Number of atoms per relation symbol."""
        counts: Dict[str, int] = defaultdict(int)
        for atom in self.atoms:
            counts[atom.relation] += 1
        return dict(counts)

    def endogenous_atoms(self) -> List[Atom]:
        """Atoms whose relation is endogenous."""
        return [a for a in self.atoms if not a.exogenous]

    def exogenous_atoms(self) -> List[Atom]:
        """Atoms whose relation is exogenous."""
        return [a for a in self.atoms if a.exogenous]

    # ------------------------------------------------------------------
    # Classification predicates (paper vocabulary)
    # ------------------------------------------------------------------
    def is_self_join_free(self) -> bool:
        """True iff no relation symbol occurs in two distinct atoms."""
        return all(c == 1 for c in self.occurrence_counts().values())

    def self_join_relations(self) -> List[str]:
        """Relations occurring in >= 2 atoms, sorted."""
        return sorted(r for r, c in self.occurrence_counts().items() if c >= 2)

    def is_single_self_join(self) -> bool:
        """True iff at most one relation symbol is repeated (ssj, Section 1)."""
        return len(self.self_join_relations()) <= 1

    def is_binary(self) -> bool:
        """True iff every relation is unary or binary ("binary query")."""
        return all(a.arity <= 2 for a in self.atoms)

    def self_join_relation(self) -> Optional[str]:
        """The unique repeated relation of an ssj query, or ``None``."""
        sj = self.self_join_relations()
        if len(sj) == 1:
            return sj[0]
        return None

    # ------------------------------------------------------------------
    # Connectivity (Section 4.2)
    # ------------------------------------------------------------------
    def components(self) -> List["ConjunctiveQuery"]:
        """The connected components of the query.

        Atoms are connected when they share a variable; a component is a
        maximal connected set of atoms (Section 4.2).  Components are
        returned as queries, preserving body order within each.
        """
        n = len(self.atoms)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[ri] = rj

        var_to_atoms: Dict[str, List[int]] = defaultdict(list)
        for i, atom in enumerate(self.atoms):
            for v in atom.args:
                var_to_atoms[v].append(i)
        for idxs in var_to_atoms.values():
            for j in idxs[1:]:
                union(idxs[0], j)

        groups: Dict[int, List[Atom]] = defaultdict(list)
        for i, atom in enumerate(self.atoms):
            groups[find(i)].append(atom)
        comps = [
            ConjunctiveQuery(atoms, name=None)
            for _, atoms in sorted(groups.items(), key=lambda kv: kv[0])
        ]
        return comps

    def is_connected(self) -> bool:
        """True iff the query has a single connected component."""
        return len(self.components()) == 1

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_atoms_exogenous(self, relations: Iterable[str]) -> "ConjunctiveQuery":
        """A copy where the given relations are marked exogenous."""
        targets = set(relations)
        new_atoms = [
            a.with_exogenous(True) if a.relation in targets else a
            for a in self.atoms
        ]
        return ConjunctiveQuery(new_atoms, name=self.name)

    def drop_atoms(self, indices: Iterable[int]) -> "ConjunctiveQuery":
        """A copy without the atoms at the given body positions."""
        drop = set(indices)
        kept = [a for i, a in enumerate(self.atoms) if i not in drop]
        return ConjunctiveQuery(kept, name=self.name)

    def rename_variables(self, mapping: Dict[str, str]) -> "ConjunctiveQuery":
        """A copy with variables substituted via ``mapping``."""
        return ConjunctiveQuery(
            [a.rename(mapping) for a in self.atoms], name=self.name
        )

    def canonical_signature(self) -> FrozenSet:
        """Hashable identity: the set of atom signatures plus flags."""
        return frozenset(
            (a.relation, a.args, a.exogenous) for a in self.atoms
        )

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.canonical_signature() == other.canonical_signature()

    def __hash__(self) -> int:
        return hash(self.canonical_signature())

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.atoms)
        head = self.name or "q"
        return f"{head}() :- {body}"
