"""Witness enumeration: evaluating Boolean CQs over databases.

The paper's notion of a *witness* (Section 2) is a valuation ``w`` of all
existential variables with ``D |= q[w/x]``.  Every witness determines the
set of at most ``m`` tuples it uses; contingency sets must intersect the
endogenous part of every witness, which is exactly what the resilience
solvers consume.

The evaluator is a backtracking join with a greedy bound-variable-first
atom ordering and per-atom indexes.  This is worst-case exponential in
``|q|`` (CQ evaluation is NP-complete in combined complexity) but the
query is fixed in all our uses (data complexity), so enumeration runs in
polynomial time ``O(n^{|var(q)|})``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery

Valuation = Dict[str, Hashable]


class _AtomIndex:
    """Hash indexes over one relation, keyed by argument-position subsets.

    For an atom ``R(z1,...,zk)`` evaluated when positions ``B`` are
    already bound, we probe the index keyed by ``B`` with the bound
    values and iterate only matching facts.
    """

    def __init__(self, facts: Sequence[DBTuple]):
        self.facts = list(facts)
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[DBTuple]]] = {}

    def probe(self, positions: Tuple[int, ...], key: Tuple) -> List[DBTuple]:
        index = self._indexes.get(positions)
        if index is None:
            index = defaultdict(list)
            for fact in self.facts:
                index[tuple(fact.values[p] for p in positions)].append(fact)
            self._indexes[positions] = dict(index)
        return index.get(key, [])

    def add_fact(self, fact: DBTuple) -> None:
        """Extend the snapshot (and every built position index) by one fact."""
        self.facts.append(fact)
        for positions, index in self._indexes.items():
            key = tuple(fact.values[p] for p in positions)
            index.setdefault(key, []).append(fact)

    def remove_fact(self, fact: DBTuple) -> None:
        """Drop one fact from the snapshot and every built position index."""
        try:
            self.facts.remove(fact)
        except ValueError:
            return
        for positions, index in self._indexes.items():
            key = tuple(fact.values[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(fact)
                except ValueError:
                    pass


class DatabaseIndex:
    """Reusable per-relation :class:`_AtomIndex` caches for one database.

    Every evaluation entry point (:func:`iter_witnesses`,
    :func:`satisfies`, :func:`witness_tuple_sets`) builds these indexes
    internally and throws them away; when the same database is queried
    many times — batch solving, cross-checking solvers, repeated
    ``satisfies`` probes — pass one ``DatabaseIndex`` to amortize index
    construction across calls.

    The index snapshots relation contents lazily at first use per
    relation; it does **not** observe later mutations of the database.
    Build a fresh index after mutating.
    """

    def __init__(self, database):
        self.database = database
        self._by_relation: Dict[str, _AtomIndex] = {}
        self._columnar = None

    def for_relation(self, name: str) -> _AtomIndex:
        """The (lazily built) atom index for relation ``name``."""
        index = self._by_relation.get(name)
        if index is None:
            rel = self.database.relations.get(name)
            facts = list(rel) if rel is not None else []
            index = _AtomIndex(facts)
            self._by_relation[name] = index
        return index

    def columnar(self):
        """The (lazily built) columnar encoding of the database.

        Shared by every columnar enumeration through this index, so a
        batch of queries over one database dictionary-encodes it once.
        Dropped (and rebuilt on next use) when a mutation is observed.
        """
        if self._columnar is None:
            from repro.query.columnar import ColumnarDatabase

            self._columnar = ColumnarDatabase(self.database)
        return self._columnar

    def observe_insert(self, fact: DBTuple) -> None:
        """Keep already-built indexes valid after inserting ``fact``.

        Relations whose index has not been built yet need nothing: their
        index snapshots the relation at first use.  Callers must apply
        the database mutation first and notify exactly once per fact
        actually added (:mod:`repro.incremental` does).
        """
        self._columnar = None
        index = self._by_relation.get(fact.relation)
        if index is not None:
            index.add_fact(fact)

    def observe_delete(self, fact: DBTuple) -> None:
        """Keep already-built indexes valid after deleting ``fact``."""
        self._columnar = None
        index = self._by_relation.get(fact.relation)
        if index is not None:
            index.remove_fact(fact)


def _order_atoms(query: ConjunctiveQuery, bound=()) -> List[Atom]:
    """Greedy join order: repeatedly pick the atom sharing most variables
    with those already bound (ties: fewer new variables, then body order).
    ``bound`` lists variables a seed valuation has already fixed."""
    remaining = list(query.atoms)
    ordered: List[Atom] = []
    bound: Set[str] = set(bound)
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            vs = set(atom.args)
            return (-len(vs & bound), len(vs - bound))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.args)
    return ordered


def witnesses(
    database: Database,
    query: ConjunctiveQuery,
    index: Optional[DatabaseIndex] = None,
) -> List[Valuation]:
    """All witnesses of ``D |= q``, as variable valuations.

    Returns a list of dicts mapping every variable of ``q`` to a domain
    constant.  The list is empty iff ``D`` does not satisfy ``q``.
    """
    return list(iter_witnesses(database, query, index=index))


def iter_witnesses(
    database: Database,
    query: ConjunctiveQuery,
    index: Optional[DatabaseIndex] = None,
    seed: Optional[Valuation] = None,
) -> Iterator[Valuation]:
    """Lazily enumerate witnesses of ``D |= q``.

    Pass a :class:`DatabaseIndex` to reuse atom indexes across calls on
    the same (unmutated) database.  A ``seed`` valuation restricts the
    enumeration to witnesses extending it — every atom is still checked
    against the database, so the yielded valuations are exactly the
    witnesses of ``D |= q`` that agree with the seed (the workhorse of
    :func:`iter_witnesses_using` and incremental maintenance).
    """
    ordered = _order_atoms(query, bound=seed or ())
    if index is None:
        index = DatabaseIndex(database)
    indexes: Dict[str, _AtomIndex] = {
        atom.relation: index.for_relation(atom.relation) for atom in ordered
    }

    valuation: Valuation = dict(seed) if seed else {}

    def extend(depth: int) -> Iterator[Valuation]:
        if depth == len(ordered):
            yield dict(valuation)
            return
        atom = ordered[depth]
        index = indexes[atom.relation]
        bound_positions = tuple(
            i for i, v in enumerate(atom.args) if v in valuation
        )
        key = tuple(valuation[atom.args[i]] for i in bound_positions)
        for fact in index.probe(bound_positions, key):
            # Check consistency for repeated variables within the atom
            # and bind the free ones.
            newly_bound: List[str] = []
            ok = True
            for i, var in enumerate(atom.args):
                val = fact.values[i]
                if var in valuation:
                    if valuation[var] != val:
                        ok = False
                        break
                else:
                    valuation[var] = val
                    newly_bound.append(var)
            if ok:
                yield from extend(depth + 1)
            for var in newly_bound:
                del valuation[var]

    yield from extend(0)


def iter_witnesses_using(
    database: Database,
    query: ConjunctiveQuery,
    fact: DBTuple,
    index: Optional[DatabaseIndex] = None,
) -> Iterator[Valuation]:
    """Witnesses of ``D |= q`` that map at least one atom to ``fact``.

    After inserting ``fact`` into ``D``, the witnesses of the new
    database are exactly the old ones plus the valuations yielded here
    (a valuation using the new fact could not have existed before), so
    incremental maintenance only ever runs this constrained join.  For
    each atom over the fact's relation, the atom is unified with the
    fact (repeated variables must agree) and the remaining join runs
    from that seed; a witness using the fact in several atoms is
    yielded once.
    """
    seen: Set[FrozenSet] = set()
    for atom in query.atoms:
        if atom.relation != fact.relation or len(atom.args) != len(fact.values):
            continue
        seed: Valuation = {}
        consistent = True
        for var, value in zip(atom.args, fact.values):
            if seed.setdefault(var, value) != value:
                consistent = False
                break
        if not consistent:
            continue
        for valuation in iter_witnesses(database, query, index=index, seed=seed):
            key = frozenset(valuation.items())
            if key not in seen:
                seen.add(key)
                yield valuation


def satisfies(
    database: Database,
    query: ConjunctiveQuery,
    index: Optional[DatabaseIndex] = None,
) -> bool:
    """``D |= q``: does at least one witness exist?"""
    for _ in iter_witnesses(database, query, index=index):
        return True
    return False


def witness_tuples(
    query: ConjunctiveQuery, valuation: Valuation
) -> Set[DBTuple]:
    """The set of facts a witness uses (at most ``m``, Section 2)."""
    out: Set[DBTuple] = set()
    for atom in query.atoms:
        out.add(DBTuple(atom.relation, tuple(valuation[v] for v in atom.args)))
    return out


def witness_tuple_sets(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index: Optional[DatabaseIndex] = None,
) -> List[FrozenSet[DBTuple]]:
    """The witness structure consumed by resilience solvers.

    For each witness, the frozenset of tuples it uses — restricted to
    endogenous relations when ``endogenous_only`` (the default), since
    only those may enter contingency sets.  A relation counts as
    exogenous if either the query marks it so (``R^x`` atoms) or the
    database instance does.  A witness whose tuple set is *empty* under
    the restriction is unbreakable: the query cannot be made false and
    resilience is undefined (the solvers raise).

    Duplicate tuple sets are collapsed (several valuations may use the
    same facts, e.g. ``(3, 3, 3)`` for ``qchain``).

    Large instances run on the vectorized columnar join of
    :mod:`repro.query.columnar` (same sets, enumerated as numpy
    incidence instead of Python valuations; ``REPRO_JOIN_BACKEND``
    selects, see that module); everything else uses the backtracking
    evaluator of :func:`_witness_tuple_sets_reference`.
    """
    from repro.query.columnar import try_witness_tuple_sets

    columnar = try_witness_tuple_sets(
        database, query, endogenous_only=endogenous_only, index=index
    )
    if columnar is not None:
        return columnar
    return _witness_tuple_sets_reference(
        database, query, endogenous_only=endogenous_only, index=index
    )


def _witness_tuple_sets_reference(
    database: Database,
    query: ConjunctiveQuery,
    endogenous_only: bool = True,
    index: Optional[DatabaseIndex] = None,
) -> List[FrozenSet[DBTuple]]:
    """The backtracking-evaluator witness sets (no columnar dispatch).

    Callers that already attempted the columnar join (and fell back)
    use this entry point directly so the vectorized attempt is not
    repeated — and not double-counted in the backend counters.
    """
    flags = dict(query.relation_flags())
    for name, rel in database.relations.items():
        if rel.exogenous:
            flags[name] = True
    seen: Set[FrozenSet[DBTuple]] = set()
    out: List[FrozenSet[DBTuple]] = []
    for valuation in iter_witnesses(database, query, index=index):
        facts = witness_tuples(query, valuation)
        if endogenous_only:
            facts = {f for f in facts if not flags.get(f.relation, False)}
        frozen = frozenset(facts)
        if frozen not in seen:
            seen.add(frozen)
            out.append(frozen)
    return out
