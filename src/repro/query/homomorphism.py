"""Homomorphisms, containment, and Chandra–Merlin minimization.

Section 4.1 of the paper restricts attention to *minimal* queries: a CQ
is minimal iff no equivalent CQ has fewer atoms, and every CQ can be
minimized by removing atoms (Chandra & Merlin 1977).  Minimization
matters because hardness patterns hiding in removable atoms are
irrelevant (Example 22: a self-join variation of a triad query collapses
to ``R(x, y)``).

Containment ``q1 ⊆ q2`` holds iff there is a homomorphism from ``q2`` to
``q1`` (a variable mapping sending every atom of ``q2`` onto an atom of
``q1`` over the same relation).  The *core* of ``q`` — its canonical
minimal equivalent — is computed by repeatedly removing an atom whose
deletion preserves equivalence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Dict[str, str]]:
    """A homomorphism from ``source`` to ``target``, or ``None``.

    A homomorphism is a map ``h`` on variables such that for every atom
    ``R(z1,...,zk)`` of ``source``, ``R(h(z1),...,h(zk))`` is an atom of
    ``target``.  Exogenous flags are ignored for the mapping itself (they
    are a property of relations, not of logical structure); callers that
    care about flags should compare them separately.
    """
    # Index target atoms by relation for quick candidate lookup.
    by_relation: Dict[str, List[Atom]] = defaultdict(list)
    for atom in target.atoms:
        by_relation[atom.relation].append(atom)

    # Order source atoms to bind many variables early.
    source_atoms = sorted(
        source.atoms, key=lambda a: -len(a.args)
    )

    mapping: Dict[str, str] = {}

    def assign(depth: int) -> bool:
        if depth == len(source_atoms):
            return True
        atom = source_atoms[depth]
        for candidate in by_relation.get(atom.relation, []):
            if len(candidate.args) != len(atom.args):
                continue
            added: List[str] = []
            ok = True
            for src_var, dst_var in zip(atom.args, candidate.args):
                bound = mapping.get(src_var)
                if bound is None:
                    mapping[src_var] = dst_var
                    added.append(src_var)
                elif bound != dst_var:
                    ok = False
                    break
            if ok and assign(depth + 1):
                return True
            for var in added:
                del mapping[var]
        return False

    if assign(0):
        return dict(mapping)
    return None


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q1 ⊆ q2``: every database satisfying q1 satisfies q2.

    By the Chandra–Merlin theorem this holds iff there is a homomorphism
    ``q2 -> q1``.
    """
    return find_homomorphism(q2, q1) is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q1 ≡ q2``: mutual containment."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query``: a minimal equivalent subquery.

    Implements the classic fixpoint: while some atom can be dropped with
    the remainder still equivalent to the original (equivalently: there
    is a homomorphism from the query into the remainder), drop it.  The
    result is unique up to isomorphism; we return an actual subquery so
    exogenous flags and variable names are preserved.
    """
    atoms = list(query.atoms)
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for i in range(len(atoms)):
            candidate_atoms = atoms[:i] + atoms[i + 1:]
            candidate = ConjunctiveQuery(candidate_atoms, name=query.name)
            full = ConjunctiveQuery(atoms, name=query.name)
            # candidate ⊆ full always fails? No: dropping an atom weakens
            # the query, so full ⊆ candidate holds trivially.  Equivalence
            # needs candidate ⊆ full, i.e. a homomorphism full -> candidate.
            if find_homomorphism(full, candidate) is not None:
                atoms = candidate_atoms
                changed = True
                break
    return ConjunctiveQuery(atoms, name=query.name)


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True iff ``query`` equals its core (no atom is redundant)."""
    return len(minimize(query).atoms) == len(query.atoms)
