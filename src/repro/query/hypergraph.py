"""The dual hypergraph H(q) of a conjunctive query.

Section 2.1: the dual hypergraph has the *atoms* as vertices; each
variable ``x`` determines the hyperedge consisting of all atoms in which
``x`` occurs.  Triads, paths-avoiding-variables, and linearity are all
phrased over H(q).

Vertices here are atom *positions* (indices into ``query.atoms``), since
self-joins make distinct atoms over the same relation common.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.query.cq import ConjunctiveQuery


class DualHypergraph:
    """Dual hypergraph of a CQ: vertices are atoms, hyperedges are variables."""

    def __init__(self, query: ConjunctiveQuery):
        self.query = query
        self.vertices: List[int] = list(range(len(query.atoms)))
        # variable -> set of atom indices containing it
        self.hyperedges: Dict[str, FrozenSet[int]] = {}
        edge_map: Dict[str, Set[int]] = defaultdict(set)
        for i, atom in enumerate(query.atoms):
            for v in atom.args:
                edge_map[v].add(i)
        for var, members in edge_map.items():
            self.hyperedges[var] = frozenset(members)

    # ------------------------------------------------------------------
    def neighbors(
        self, vertex: int, forbidden_vars: Iterable[str] = ()
    ) -> Set[int]:
        """Atoms sharing a variable with ``vertex``, skipping forbidden vars."""
        forbidden = set(forbidden_vars)
        out: Set[int] = set()
        for var in self.query.atoms[vertex].args:
            if var in forbidden:
                continue
            out.update(self.hyperedges[var])
        out.discard(vertex)
        return out

    def path_avoiding(
        self, start: int, goal: int, forbidden_vars: Iterable[str]
    ) -> Optional[List[int]]:
        """A path in H(q) from ``start`` to ``goal`` using no forbidden variable.

        This is the connectivity notion of Definition 5 (triads): the
        path may pass through any atoms, but every hyperedge traversed
        must be a variable not occurring in the forbidden set.  Returns
        the atom-index path, or ``None``.
        """
        forbidden = set(forbidden_vars)
        if start == goal:
            return [start]
        prev: Dict[int, int] = {start: start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for nxt in self.neighbors(current, forbidden):
                if nxt in prev:
                    continue
                prev[nxt] = current
                if nxt == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None

    def connected(self, start: int, goal: int) -> bool:
        """Plain connectivity between two atoms in H(q)."""
        return self.path_avoiding(start, goal, ()) is not None

    # ------------------------------------------------------------------
    def shared_variables(self, a: int, b: int) -> FrozenSet[str]:
        """Variables occurring in both atoms ``a`` and ``b``."""
        return (
            self.query.atoms[a].variables() & self.query.atoms[b].variables()
        )

    def vertex_label(self, vertex: int) -> str:
        """Human-readable label for an atom vertex."""
        return repr(self.query.atoms[vertex])

    def to_networkx(self):
        """A bipartite networkx graph (atoms vs variables) for display."""
        import networkx as nx

        graph = nx.Graph()
        for i in self.vertices:
            graph.add_node(("atom", i), label=self.vertex_label(i))
        for var, members in self.hyperedges.items():
            graph.add_node(("var", var), label=var)
            for i in members:
                graph.add_edge(("var", var), ("atom", i))
        return graph

    def __repr__(self) -> str:
        edges = {v: sorted(m) for v, m in sorted(self.hyperedges.items())}
        return f"DualHypergraph(atoms={len(self.vertices)}, hyperedges={edges})"
