"""Datalog-style surface syntax for Boolean CQs.

The grammar is the one the paper uses informally::

    q() :- R(x, y), R(y, z)
    qrats() :- Rx(x, y), A(x), Tx(z, x), S(y, z)

* The head is optional (``R(x,y), R(y,z)`` alone is accepted).
* An atom is exogenous when its relation name carries a trailing ``x``
  marker written as ``R^x(...)`` or, following the paper's typography,
  as a lowercase ``x`` suffix on an otherwise-capitalised name
  (``Tx(...)``, ``Sx(...)``).  To avoid ambiguity with relations whose
  name genuinely ends in ``x``, prefer the explicit ``^x`` form.
* Variables are bare identifiers; there are no constants (footnote 3).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery

_ATOM_RE = re.compile(
    r"""
    (?P<rel>[A-Za-z_][A-Za-z0-9_]*?)        # relation name (lazy)
    (?P<exo>\^x|x)?                         # optional exogenous marker
    \s*\(\s*
    (?P<args>[^()]*?)
    \s*\)
    """,
    re.VERBOSE,
)


def _split_head_body(text: str) -> Tuple[Optional[str], str]:
    """Split ``"q() :- body"`` into head name and body text."""
    if ":-" in text:
        head, body = text.split(":-", 1)
        head = head.strip()
        name = head.split("(", 1)[0].strip() or None
        return name, body.strip()
    return None, text.strip()


def parse_query(text: str, name: Optional[str] = None) -> ConjunctiveQuery:
    """Parse a Boolean conjunctive query from Datalog-ish text.

    Examples
    --------
    >>> q = parse_query("qchain() :- R(x,y), R(y,z)")
    >>> len(q.atoms)
    2
    >>> q = parse_query("A(x), W^x(x,y,z)")
    >>> q.atoms[1].exogenous
    True

    The lowercase-``x`` suffix convention of the paper is honoured when
    the prefix before the suffix is non-empty and starts uppercase, e.g.
    ``Tx(z,x)`` parses as exogenous relation ``T``.  Single-letter names
    like ``x(...)`` are never treated as markers.
    """
    head_name, body = _split_head_body(text)
    if name is None:
        name = head_name

    atoms: List[Atom] = []
    pos = 0
    while pos < len(body):
        match = _ATOM_RE.search(body, pos)
        if match is None:
            rest = body[pos:].strip(" ,\t\n")
            if rest:
                raise ValueError(f"cannot parse query fragment: {rest!r}")
            break
        rel = match.group("rel")
        exo_marker = match.group("exo")
        exogenous = False
        if exo_marker == "^x":
            exogenous = True
        elif exo_marker == "x":
            # Heuristic for the paper's Tx/Sx typography: treat the
            # trailing x as a marker only when the remaining name is a
            # plausible relation name (non-empty, starts uppercase).
            if rel and rel[0].isupper():
                exogenous = True
            else:
                rel = rel + "x"
        args_text = match.group("args").strip()
        if not args_text:
            raise ValueError(f"atom {rel!r} has no arguments")
        args = tuple(a.strip() for a in args_text.split(","))
        if any(not a for a in args):
            raise ValueError(f"bad argument list in atom {rel!r}: {args_text!r}")
        atoms.append(Atom(rel, args, exogenous=exogenous))
        pos = match.end()

    if not atoms:
        raise ValueError(f"no atoms found in query text: {text!r}")
    return ConjunctiveQuery(atoms, name=name)
