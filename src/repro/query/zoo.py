"""The query zoo: every named query from the paper.

Each query appears under the paper's name, built via the parser so the
definitions here read exactly like the paper's Datalog notation.
Exogenous atoms use the ``^x`` marker.

The zoo is the workhorse of the test-suite and of the benchmark
harnesses: experiment code never re-types query bodies.
"""

from __future__ import annotations

from typing import Dict

from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query


def _q(name: str, body: str) -> ConjunctiveQuery:
    return parse_query(body, name=name)


# ---------------------------------------------------------------------------
# Section 2 — background queries (Example 2, Figure 1)
# ---------------------------------------------------------------------------
q_triangle = _q("q_triangle", "R(x,y), S(y,z), T(z,x)")
q_tripod = _q("q_tripod", "A(x), B(y), C(z), W(x,y,z)")
q_rats = _q("q_rats", "R(x,y), A(x), T(z,x), S(y,z)")
q_lin = _q("q_lin", "A(x), R(x,y,z), S(y,z)")
q_brats = _q("q_brats", "B(y), R(x,y), A(x), T(z,x), S(y,z)")

# Normal forms after sj-free domination (Section 2.2)
q_tripod_norm = _q("q_tripod_norm", "A(x), B(y), C(z), W^x(x,y,z)")
q_rats_norm = _q("q_rats_norm", "R^x(x,y), A(x), T^x(z,x), S(y,z)")

# ---------------------------------------------------------------------------
# Section 3 — basic hard self-join queries (Figure 2) and tricky-flow queries
# ---------------------------------------------------------------------------
q_vc = _q("q_vc", "R(x), S(x,y), R(y)")
q_chain = _q("q_chain", "R(x,y), R(y,z)")
q_ACconf = _q("q_ACconf", "A(x), R(x,y), R(z,y), C(z)")
q_A3perm_R = _q("q_A3perm_R", "A(x), R(x,y), R(y,z), R(z,y)")

# Example 11 — self-join variation of qrats where domination fails
q_sj1_rats = _q("q_sj1_rats", "A(x), R(x,y), R(y,z), R(z,x)")

# Example 17 — SJ-domination illustration
q_dom_ex17_1 = _q("q_dom_ex17_1", "R(x,y), A(y), R(y,z), S(y,z)")
q_dom_ex17_2 = _q("q_dom_ex17_2", "R(x,y), A(y), R(z,y), S(y,z)")

# ---------------------------------------------------------------------------
# Section 5 — self-join variations (Example 20, Section 5.1)
# ---------------------------------------------------------------------------
q_triangle_sj1 = _q("q_triangle_sj1", "R(x,y), R(y,z), R(z,x)")
q_triangle_sj2 = _q("q_triangle_sj2", "R(x,y), R(y,z), T(z,x)")
q_triangle_sj3 = _q("q_triangle_sj3", "R(x,y), S(y,z), R(z,x)")
q_sj1_brats = _q("q_sj1_brats", "B(y), R(x,y), A(x), R(z,x), R(y,z)")

# Example 22 — a non-minimal self-join variation that collapses
q_ex22_sjfree = _q("q_ex22_sjfree", "R(x,y), S(z,y), T(z,w), A(x,w)")
q_ex22_sj = _q("q_ex22_sj", "R(x,y), R(z,y), R(z,w), R(x,w)")

# ---------------------------------------------------------------------------
# Section 7 — two R-atom patterns (Figure 5, Figure 6)
# ---------------------------------------------------------------------------
q_conf = _q("q_conf", "R(x,y), R(z,y)")  # not minimal stand-alone
q_perm = _q("q_perm", "R(x,y), R(y,x)")
q_Aperm = _q("q_Aperm", "A(x), R(x,y), R(y,x)")
q_ABperm = _q("q_ABperm", "A(x), R(x,y), R(y,x), B(y)")

# qconf with an exogenous path (Section 7.2, "cfp")
q_cfp = _q("q_cfp", "R(x,y), H^x(x,z), R(z,y)")

# Expansions of qchain with unary relations (Section 7.1)
q_a_chain = _q("q_a_chain", "A(x), R(x,y), R(y,z)")
q_b_chain = _q("q_b_chain", "R(x,y), B(y), R(y,z)")
q_c_chain = _q("q_c_chain", "R(x,y), R(y,z), C(z)")
q_ab_chain = _q("q_ab_chain", "A(x), R(x,y), B(y), R(y,z)")
q_bc_chain = _q("q_bc_chain", "R(x,y), B(y), R(y,z), C(z)")
q_ac_chain = _q("q_ac_chain", "A(x), R(x,y), R(y,z), C(z)")
q_abc_chain = _q("q_abc_chain", "A(x), R(x,y), B(y), R(y,z), C(z)")

# REP queries (Section 7.4)
q_z1 = _q("q_z1", "R(x,x), S(x,y), R(y,y)")
q_z2 = _q("q_z2", "R(x,x), S(x,y), R(y,z)")
q_z3 = _q("q_z3", "R(x,x), R(x,y), A(y)")

# ---------------------------------------------------------------------------
# Section 8 — three R-atom families
# ---------------------------------------------------------------------------
q_3chain = _q("q_3chain", "R(x,y), R(y,z), R(z,w)")
q_3conf = _q("q_3conf", "R(x,y), R(z,y), R(z,w)")  # not minimal stand-alone
q_AC3conf = _q("q_AC3conf", "A(x), R(x,y), R(z,y), R(z,w), C(w)")
q_TS3conf = _q("q_TS3conf", "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)")
q_AS3conf = _q("q_AS3conf", "A(x), R(x,y), R(z,y), R(z,w), S^x(z,w)")  # OPEN

q_AC3cc = _q("q_AC3cc", "A(x), R(x,y), R(y,z), R(w,z), C(w)")
q_AS3cc = _q("q_AS3cc", "A(x), R(x,y), R(y,z), R(w,z), S(w,z)")
q_C3cc = _q("q_C3cc", "R(x,y), R(y,z), R(w,z), C(w)")
q_S3cc = _q("q_S3cc", "R(x,y), R(y,z), R(w,z), S(w,z)")  # OPEN

q_3perm_R = _q("q_3perm_R", "R(x,y), R(y,z), R(z,y)")  # not minimal stand-alone
q_Swx3perm_R = _q("q_Swx3perm_R", "S(w,x), R(x,y), R(y,z), R(z,y)")
q_Sxy3perm_R = _q("q_Sxy3perm_R", "S^x(x,y), R(x,y), R(y,z), R(z,y)")
q_AC3perm_R = _q("q_AC3perm_R", "A(x), R(x,y), R(y,z), R(z,y), C(z)")
q_AB3perm_R = _q("q_AB3perm_R", "A(x), R(x,y), B(y), R(y,z), R(z,y)")
q_SxyBC3perm_R = _q(
    "q_SxyBC3perm_R", "S(x,y), R(x,y), B(y), R(y,z), R(z,y), C(z)"
)
q_ASxy3perm_R = _q("q_ASxy3perm_R", "A(x), S(x,y), R(x,y), R(y,z), R(z,y)")  # OPEN
q_SxyB3perm_R = _q("q_SxyB3perm_R", "S(x,y), R(x,y), B(y), R(y,z), R(z,y)")  # OPEN
q_SxyC3perm_R = _q("q_SxyC3perm_R", "S(x,y), R(x,y), R(y,z), R(z,y), C(z)")  # OPEN

# Three R-atom REP queries (Section 8.5)
q_z4 = _q("q_z4", "R(x,x), R(x,y), S(x,y), R(y,y)")
q_z5 = _q("q_z5", "A(x), R(x,y), R(y,z), R(z,z)")
q_z6 = _q("q_z6", "A(x), R(x,y), R(y,y), R(y,z), C(z)")  # OPEN
q_z7 = _q("q_z7", "A(x), R(x,y), R(y,x), R(y,y)")  # OPEN

# ---------------------------------------------------------------------------
# Section 4.2 — disconnected example
# ---------------------------------------------------------------------------
q_comp = _q("q_comp", "A(x), R(x,y), R(z,w), B(w)")

# Appendix C, Example 61 — two repeated relations, fails to form an IJP
q_ex61 = _q("q_ex61", "A^x(x), R(x), S(x,y), S(z,y), R(z), B^x(z)")


ALL_QUERIES: Dict[str, ConjunctiveQuery] = {
    q.name: q
    for q in [
        q_triangle, q_tripod, q_rats, q_lin, q_brats,
        q_tripod_norm, q_rats_norm,
        q_vc, q_chain, q_ACconf, q_A3perm_R, q_sj1_rats,
        q_dom_ex17_1, q_dom_ex17_2,
        q_triangle_sj1, q_triangle_sj2, q_triangle_sj3, q_sj1_brats,
        q_ex22_sjfree, q_ex22_sj,
        q_conf, q_perm, q_Aperm, q_ABperm, q_cfp,
        q_a_chain, q_b_chain, q_c_chain, q_ab_chain, q_bc_chain,
        q_ac_chain, q_abc_chain,
        q_z1, q_z2, q_z3,
        q_3chain, q_3conf, q_AC3conf, q_TS3conf, q_AS3conf,
        q_AC3cc, q_AS3cc, q_C3cc, q_S3cc,
        q_3perm_R, q_Swx3perm_R, q_Sxy3perm_R, q_AC3perm_R, q_AB3perm_R,
        q_SxyBC3perm_R, q_ASxy3perm_R, q_SxyB3perm_R, q_SxyC3perm_R,
        q_z4, q_z5, q_z6, q_z7,
        q_comp, q_ex61,
    ]
}

# Paper-claimed complexity verdicts, used by tests and the benchmark
# harness.  Values: "P", "NPC", or "OPEN".
PAPER_VERDICTS: Dict[str, str] = {
    "q_triangle": "NPC",      # Prop 56 / triad
    "q_tripod": "NPC",        # Prop 57 / triad
    "q_rats": "P",            # Fig 1 caption
    "q_lin": "P",             # linear sj-free
    "q_brats": "P",           # Section 5.1
    "q_vc": "NPC",            # Prop 9
    "q_chain": "NPC",         # Prop 10
    "q_ACconf": "P",          # Prop 12
    "q_A3perm_R": "P",        # Prop 13
    "q_sj1_rats": "NPC",      # Prop 23 (triad survives)
    "q_triangle_sj1": "NPC",  # Lemma 21
    "q_triangle_sj2": "NPC",
    "q_triangle_sj3": "NPC",
    "q_sj1_brats": "NPC",     # Lemma 51
    "q_perm": "P",            # Prop 33
    "q_Aperm": "P",           # Prop 33
    "q_ABperm": "NPC",        # Prop 34
    "q_cfp": "NPC",           # Section 7.2 (== q_vc)
    "q_a_chain": "NPC",       # Lemmas 52-54
    "q_b_chain": "NPC",
    "q_c_chain": "NPC",
    "q_ab_chain": "NPC",
    "q_bc_chain": "NPC",
    "q_ac_chain": "NPC",
    "q_abc_chain": "NPC",
    "q_z1": "NPC",            # binary path (Thm 28)
    "q_z2": "NPC",            # binary path (Thm 28)
    "q_z3": "P",              # Prop 36
    "q_3chain": "NPC",        # Prop 38
    "q_AC3conf": "NPC",       # Prop 39
    "q_TS3conf": "P",         # Prop 41
    "q_AS3conf": "OPEN",
    "q_AC3cc": "NPC",         # Prop 42
    "q_AS3cc": "NPC",         # Prop 42
    "q_C3cc": "NPC",          # Prop 43
    "q_S3cc": "OPEN",
    "q_Swx3perm_R": "P",      # Prop 44
    "q_Sxy3perm_R": "NPC",    # Prop 45
    "q_AC3perm_R": "NPC",     # Prop 46
    "q_AB3perm_R": "NPC",     # Prop 46
    "q_SxyBC3perm_R": "NPC",  # Prop 46
    "q_ASxy3perm_R": "OPEN",
    "q_SxyB3perm_R": "OPEN",
    "q_SxyC3perm_R": "OPEN",
    "q_z4": "NPC",            # Prop 47
    "q_z5": "NPC",            # Prop 47
    "q_z6": "OPEN",
    "q_z7": "OPEN",
}
