"""Executable hardness reductions.

Every NP-completeness proof in the paper is a reduction that maps an
instance of a known-hard problem to a (database, k) pair for the query
at hand.  This package makes those reductions executable so the
benchmark harness can machine-check them:

* :mod:`repro.reductions.vertex_cover` — VC -> RES(q_vc) (Prop 9);
* :mod:`repro.reductions.chain_gadgets` — 3SAT -> RES(q_chain) and its
  seven unary expansions (Prop 10, Lemmas 52-54);
* :mod:`repro.reductions.triangle` — 3SAT -> RES(q_triangle) (Prop 56),
  RES(q_triangle) -> RES(q_tripod) (Prop 57), and the generic triad
  reduction of Lemma 6 / Theorem 24;
* :mod:`repro.reductions.sj_variation` — the Lemma 21 lifting of a
  database for an sj-free query to its self-join variation;
* :mod:`repro.reductions.paths` — the generic path reductions
  RES(q_vc) -> RES(q) of Theorems 27/28;
* :mod:`repro.reductions.chain_expansion` — RES(q_chain) -> RES(q) for
  chain expansions (Prop 30);
* :mod:`repro.reductions.perm_gadgets` — 3SAT -> RES(q_ABperm)
  (Prop 34) and the bounded-permutation lifting (Prop 35 case 2);
* :mod:`repro.reductions.rats_gadgets` — the self-join-variation
  gadgets for q_rats / q_brats (Lemmas 50/51).

Each module's ``*_instance`` function returns a
:class:`~repro.reductions.base.ReductionInstance` carrying the database,
the threshold ``k``, and enough metadata to verify the biconditional
"source instance is a YES iff (D, k) in RES(q)".
"""

from repro.reductions.base import ReductionInstance

__all__ = ["ReductionInstance"]
