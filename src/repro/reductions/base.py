"""Shared plumbing for executable reductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery


@dataclass
class ReductionInstance:
    """The output of a reduction: a (query, database, threshold) triple.

    Attributes
    ----------
    query:
        The target query ``q`` of ``RES(q)``.
    database:
        The constructed database ``D``.
    k:
        The threshold: the source instance is a YES instance iff
        ``(D, k) in RES(q)``, i.e. iff ``rho(q, D) <= k``.
    source:
        The source problem instance (a formula, graph, or another
        :class:`ReductionInstance`), kept for verification.
    notes:
        Free-form metadata (gadget sizes, per-gadget thresholds, ...).
    """

    query: ConjunctiveQuery
    database: Database
    k: int
    source: Any = None
    notes: Dict[str, Any] = field(default_factory=dict)

    def verify(self, expected_yes: bool) -> bool:
        """Machine-check the biconditional against the exact solver.

        Returns True iff ``rho(q, D) <= k`` equals ``expected_yes``.
        Uses the exact solver — only run on small instances.
        """
        from repro.resilience.exact import resilience_exact

        rho = resilience_exact(self.database, self.query).value
        return (rho <= self.k) == expected_yes
