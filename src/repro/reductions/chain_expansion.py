"""Proposition 30: RES(q_chain-expansion) -> RES(q) for chain queries.

If a (pseudo-linear, minimal, connected) query ``q`` contains the
2-chain ``R(x,y), R(y,z)`` as its only self-join, resilience of the
matching unary expansion of ``q_chain`` reduces to RES(q): map each
witness ``(a, b, c)`` of the source database to the valuation
``x -> a, y -> b, z -> c`` and every other variable ``v`` to the
witness-tagged constant ``<abc>_v``, then add every atom's tuple under
that valuation.

Pseudo-linearity guarantees no endogenous atom of ``q`` contains both
``x`` and ``z``, so the mapping preserves minimum contingency sets
exactly: ``rho(q, D') = rho(q_exp, D)``.
"""

from __future__ import annotations

from typing import Dict

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.zoo import ALL_QUERIES
from repro.reductions.base import ReductionInstance
from repro.structure.patterns import CHAIN, two_atom_pattern


def chain_endpoint_variables(query: ConjunctiveQuery):
    """The (x, y, z) variables of the query's 2-chain."""
    rel = query.self_join_relation()
    if rel is None:
        raise ValueError("query has no self-join")
    first, second = query.occurrences(rel)
    shared = first.variables() & second.variables()
    if len(shared) != 1:
        raise ValueError("self-join is not a 2-chain")
    (y,) = shared
    # Orient: the chain goes tail -> y -> head.
    if first.args[1] == y and second.args[0] == y:
        x, z = first.args[0], second.args[1]
    elif second.args[1] == y and first.args[0] == y:
        x, z = second.args[0], first.args[1]
    else:
        raise ValueError("R-atoms join in the same attribute (confluence)")
    return x, y, z


def chain_expansion_instance(
    query: ConjunctiveQuery,
    source_db: Database,
    k: int,
    source_query: ConjunctiveQuery = None,
) -> ReductionInstance:
    """Proposition 30's database ``D'`` for ``query`` from a chain DB.

    ``source_query`` defaults to the unary expansion of ``q_chain``
    matching the unary relations ``A(x), B(y), C(z)`` present in
    ``query``.  Resilience is preserved exactly.
    """
    if two_atom_pattern(query) != CHAIN:
        raise ValueError("query's self-join is not a 2-chain")
    x, y, z = chain_endpoint_variables(query)

    if source_query is None:
        unaries = ""
        for atom in query.atoms:
            if atom.exogenous or atom.arity != 1:
                continue
            if atom.args[0] == x:
                unaries += "a"
            elif atom.args[0] == y:
                unaries += "b"
            elif atom.args[0] == z:
                unaries += "c"
        order = {"a": 0, "b": 1, "c": 2}
        unaries = "".join(sorted(set(unaries), key=order.get))
        source_query = ALL_QUERIES[f"q_{unaries}_chain" if unaries else "q_chain"]

    out = Database()
    flags = query.relation_flags()
    for rel_name, arity in query.relation_arities().items():
        out.declare(rel_name, arity, exogenous=flags[rel_name])

    for valuation in iter_witnesses(source_db, source_query):
        # Source chain queries use variables named x, y, z.
        a, b, c = valuation["x"], valuation["y"], valuation["z"]
        assignment: Dict[str, object] = {}
        for v in query.variables():
            if v == x:
                assignment[v] = a
            elif v == y:
                assignment[v] = b
            elif v == z:
                assignment[v] = c
            else:
                assignment[v] = ("w", a, b, c, v)
        for atom in query.atoms:
            out.add(atom.relation, *(assignment[v] for v in atom.args))
    return ReductionInstance(
        query=query,
        database=out,
        k=k,
        source=(source_query, source_db),
        notes={"endpoints": (x, y, z)},
    )
