"""Proposition 10 / Lemmas 52-54: 3SAT -> RES(q_chain) and expansions.

The constructions (Figures 10-12) map a 3CNF formula ``psi`` with ``n``
variables and ``m`` clauses to a database of ``R``-tuples; nodes are
domain constants and each consecutive pair of R-tuples is a witness of
the chain query.

Common skeleton:

* **variable gadget** — per variable a directed cycle of ``2m`` tuples
  alternating *blue* ``R(v^j, ~v^j)`` (deleted when the variable is
  TRUE) and *red* ``R(~v^j, v^{j+1})`` (deleted when FALSE); the two
  minimum hitting sets of the cycle's 2m consecutive-pair witnesses are
  exactly the blue set and the red set (m tuples each);

* **clause gadget** — a triangle ``R(a,b), R(b,c), R(c,a)`` with one
  spoke per literal position; destroying the clause's witnesses costs 5
  tuples when some literal is true and 6 otherwise;

* **connectors** — link each literal's variable gadget to its spoke so
  that a *true* literal pre-breaks one connector witness.

The connector shape depends on which unary atoms the expansion has
(this is the content of Lemmas 52-54):

* no ``A``/``C`` (``q_chain``, ``q_b_chain``): direct connectors from
  the variable-cycle node entered by the deleted-when-true tuple
  (Figure 10);
* ``A`` but no ``C`` (``q_a_chain``, ``q_ab_chain``): a fresh connector
  node ``u`` with two out-edges — into the spoke tail and into the
  cycle node *left* by the deleted-when-true tuple (Figure 11); the
  unary tuple ``A(u)`` is the cheap way to break both connector
  witnesses of a false literal;
* ``C`` but no ``A`` (``q_c_chain``, ``q_bc_chain``): the mirror image
  (all connector edges reversed, hooks on in-tuples);
* both ``A`` and ``C`` (``q_ac_chain``, ``q_abc_chain``): Figure 12's
  double-buffered connectors ``R(a', *), R(*, u)`` plus ``R(hook, u)``,
  where ``C(u)`` breaks both connector witnesses of a false literal.

Unary facts (``A``/``B``/``C`` as the expansion requires) are added for
every node so no intended witness is lost.

Threshold: ``k = n*m + 5*m`` for every expansion.  (Proposition 10's
prose states ``(2n+5)m``; the Figure 10 construction as drawn yields
``(n+5)m``.  We implement the figure and machine-verify the
biconditional ``psi in 3SAT <=> rho(D) <= k``, which is what the proof
needs; EXPERIMENTS.md records the constant we measure.)
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.zoo import (
    q_a_chain,
    q_ab_chain,
    q_abc_chain,
    q_ac_chain,
    q_b_chain,
    q_bc_chain,
    q_c_chain,
    q_chain,
)
from repro.reductions.base import ReductionInstance
from repro.workloads.formulas import CNFFormula

CHAIN_EXPANSIONS: Dict[str, ConjunctiveQuery] = {
    "": q_chain,
    "a": q_a_chain,
    "b": q_b_chain,
    "c": q_c_chain,
    "ab": q_ab_chain,
    "bc": q_bc_chain,
    "ac": q_ac_chain,
    "abc": q_abc_chain,
}


class _Builder:
    """Accumulates R-edges and node set."""

    def __init__(self):
        self.db = Database()
        self.db.declare("R", 2)
        self.nodes: Set[str] = set()

    def edge(self, u: str, v: str) -> None:
        self.db.add("R", u, v)
        self.nodes.add(u)
        self.nodes.add(v)


def _pos(var: int, j: int) -> str:
    return f"v{var}_{j}"


def _neg(var: int, j: int) -> str:
    return f"nv{var}_{j}"


def _variable_gadgets(b: _Builder, n: int, m: int) -> None:
    for var in range(1, n + 1):
        for j in range(m):
            b.edge(_pos(var, j), _neg(var, j))                 # blue: TRUE
            b.edge(_neg(var, j), _pos(var, (j + 1) % m))       # red: FALSE


def _clause_triangle(b: _Builder, j: int) -> Tuple[List[str], List[str]]:
    corners = [f"a{j}", f"b{j}", f"c{j}"]
    b.edge(corners[0], corners[1])
    b.edge(corners[1], corners[2])
    b.edge(corners[2], corners[0])
    return corners, [f"ap{j}", f"bp{j}", f"cp{j}"]


def _hook_out(lit: int, j: int, m: int) -> str:
    """Cycle node *left* by the tuple deleted when ``lit`` is true."""
    var = abs(lit)
    return _pos(var, j) if lit > 0 else _neg(var, j)


def _hook_in(lit: int, j: int, m: int) -> str:
    """Cycle node *entered* by the tuple deleted when ``lit`` is true."""
    var = abs(lit)
    return _neg(var, j) if lit > 0 else _pos(var, (j + 1) % m)


def _build_plain(b: _Builder, formula: CNFFormula) -> None:
    """Figure 10 connectors: hook-node -> spoke-tail -> corner."""
    m = formula.num_clauses
    for j, clause in enumerate(formula.clauses):
        corners, spokes = _clause_triangle(b, j)
        for corner, spoke in zip(corners, spokes):
            b.edge(spoke, corner)
        for p, lit in enumerate(clause):
            b.edge(_hook_in(lit, j, m), spokes[p])


def _build_a_side(b: _Builder, formula: CNFFormula) -> None:
    """Figure 11 connectors: fresh node u with u -> spoke-tail, u -> hook."""
    m = formula.num_clauses
    for j, clause in enumerate(formula.clauses):
        corners, spokes = _clause_triangle(b, j)
        for corner, spoke in zip(corners, spokes):
            b.edge(spoke, corner)
        for p, lit in enumerate(clause):
            u = f"{spokes[p]}u"
            b.edge(u, spokes[p])
            b.edge(u, _hook_out(lit, j, m))


def _build_c_side(b: _Builder, formula: CNFFormula) -> None:
    """Mirror of Figure 11: corner -> spoke-head, hook -> u <- spoke-head."""
    m = formula.num_clauses
    for j, clause in enumerate(formula.clauses):
        corners, spokes = _clause_triangle(b, j)
        for corner, spoke in zip(corners, spokes):
            b.edge(corner, spoke)
        for p, lit in enumerate(clause):
            u = f"{spokes[p]}u"
            b.edge(spokes[p], u)
            b.edge(_hook_in(lit, j, m), u)


def _build_ac(b: _Builder, formula: CNFFormula) -> None:
    """Figure 12: spoke-tail -> buffer -> u, hook -> u."""
    m = formula.num_clauses
    for j, clause in enumerate(formula.clauses):
        corners, spokes = _clause_triangle(b, j)
        for corner, spoke in zip(corners, spokes):
            b.edge(spoke, corner)
        for p, lit in enumerate(clause):
            star = f"{spokes[p]}s"
            u = f"{spokes[p]}u"
            b.edge(spokes[p], star)
            b.edge(star, u)
            b.edge(_hook_in(lit, j, m), u)


def chain_instance(formula: CNFFormula, unaries: str = "") -> ReductionInstance:
    """Build the gadget database for ``formula`` and expansion ``unaries``.

    ``unaries`` is a subset of ``"abc"`` naming the unary relations of
    the target expansion (``""`` for plain ``q_chain``).  The instance
    satisfies ``formula in 3SAT <=> rho(q, D) <= k`` with
    ``k = n*m + 5*m`` — machine-verified in the test suite.
    """
    if unaries not in CHAIN_EXPANSIONS:
        raise ValueError(f"unknown expansion {unaries!r}")
    query = CHAIN_EXPANSIONS[unaries]
    n, m = formula.num_vars, formula.num_clauses
    if m == 0:
        raise ValueError("need at least one clause")

    b = _Builder()
    _variable_gadgets(b, n, m)

    has_a = "a" in unaries
    has_c = "c" in unaries
    if has_a and has_c:
        _build_ac(b, formula)
    elif has_a:
        _build_a_side(b, formula)
    elif has_c:
        _build_c_side(b, formula)
    else:
        _build_plain(b, formula)

    for flag, rel in (("a", "A"), ("b", "B"), ("c", "C")):
        if flag in unaries:
            b.db.declare(rel, 1)
            for node in sorted(b.nodes):
                b.db.add(rel, node)

    k = n * m + 5 * m
    return ReductionInstance(
        query=query,
        database=b.db,
        k=k,
        source=formula,
        notes={"n": n, "m": m, "k_formula": "n*m + 5*m", "construction": (
            "ac" if has_a and has_c else "a" if has_a else "c" if has_c else "plain"
        )},
    )
