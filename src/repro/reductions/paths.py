"""Theorems 27/28: the generic path reductions RES(q_vc) -> RES(q).

Both theorems reduce vertex cover (via ``q_vc``) to RES(q) for any
minimal connected ssj binary query ``q`` containing a *path*:

* **unary path** (Theorem 27): two distinct unary atoms ``R(x), R(y)``;
* **binary path** (Theorem 28): two binary atoms ``R(x,y), R(z,w)``
  with disjoint variables and no all-R path between them.

Construction, for a source graph ``G``: the endpoint variables of the
path map to graph vertices (``x -> a``, ``y``/``z`` ``-> b`` per edge
``(a,b)``); in the binary case whole *R-path equivalence classes* of
variables collapse to ``a`` or ``b``, making every R-tuple diagonal
``(a, a)`` — R plays the role of q_vc's vertex relation.  Interior
variables of the connecting path get per-edge constants, and every
other variable gets per-edge-per-replica fresh constants, with
``n + 1`` replicas so off-path tuples are never worth deleting.

The result satisfies ``(G, k) in VC <=> (D', k) in RES(q)`` — verified
against exhaustive vertex cover in the tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.reductions.base import ReductionInstance
from repro.structure.patterns import find_binary_path, find_unary_path
from repro.workloads.graphs import Graph


def _atom_graph_path(
    query: ConjunctiveQuery, start: Atom, goal: Atom, avoid_relation: str
) -> List[int]:
    """Indices of atoms on a path from ``start`` to ``goal`` whose
    interior atoms avoid ``avoid_relation``."""
    atoms = query.atoms
    start_i = next(i for i, a in enumerate(atoms) if a == start)
    goal_i = next(i for i, a in enumerate(atoms) if a == goal)
    prev: Dict[int, int] = {start_i: start_i}
    queue = deque([start_i])
    while queue:
        cur = queue.popleft()
        for i, atom in enumerate(atoms):
            if i in prev:
                continue
            if not (atoms[cur].variables() & atom.variables()):
                continue
            if i != goal_i and atom.relation == avoid_relation:
                continue
            prev[i] = cur
            if i == goal_i:
                path = [i]
                while path[-1] != start_i:
                    path.append(prev[path[-1]])
                return list(reversed(path))
            queue.append(i)
    raise ValueError("no connecting path found; query is not connected")


def _r_equivalence_classes(query: ConjunctiveQuery, rel: str) -> Dict[str, int]:
    """Variable partition under "joined by an R-path" (Theorem 28)."""
    parent: Dict[str, str] = {v: v for v in query.variables()}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for atom in query.occurrences(rel):
        vs = list(atom.variables())
        for other in vs[1:]:
            ra, rb = find(vs[0]), find(other)
            if ra != rb:
                parent[ra] = rb
    classes: Dict[str, int] = {}
    roots: Dict[str, int] = {}
    for v in query.variables():
        root = find(v)
        if root not in roots:
            roots[root] = len(roots)
        classes[v] = roots[root]
    return classes


def _build(
    query: ConjunctiveQuery,
    graph: Graph,
    k: int,
    value_of,
    replicated_vars: Set[str],
) -> ReductionInstance:
    """Shared emitter: per graph edge, one core valuation plus replicas."""
    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in query.relation_arities().items():
        db.declare(rel_name, arity, exogenous=flags[rel_name])

    n_replicas = len(graph.vertices) + 1
    for (a, b) in sorted(graph.edges):
        for r in range(n_replicas):
            valuation = {}
            for v in query.variables():
                if v in replicated_vars:
                    valuation[v] = ("f", a, b, v, r)
                else:
                    valuation[v] = value_of(v, a, b)
            for atom in query.atoms:
                db.add(atom.relation, *(valuation[v] for v in atom.args))
    return ReductionInstance(
        query=query,
        database=db,
        k=k,
        source=graph,
        notes={"replicas": n_replicas, "edges": len(graph.edges)},
    )


def unary_path_instance(
    query: ConjunctiveQuery, graph: Graph, k: int
) -> ReductionInstance:
    """Theorem 27's reduction for a query with a unary path.

    ``(G, k) in VC <=> (D', k) in RES(query)``.
    """
    witness = find_unary_path(query)
    if witness is None:
        raise ValueError("query has no unary path")
    first, second = witness
    rel = first.relation
    path = _atom_graph_path(query, first, second, avoid_relation=rel)
    core_vars: Set[str] = set()
    for i in path:
        core_vars.update(query.atoms[i].args)
    x_var = first.args[0]
    y_var = second.args[0]

    def value_of(v: str, a, b):
        if v == x_var:
            return a
        if v == y_var:
            return b
        return ("i", a, b, v)

    replicated = set(query.variables()) - core_vars
    return _build(query, graph, k, value_of, replicated)


def binary_path_instance(
    query: ConjunctiveQuery, graph: Graph, k: int
) -> ReductionInstance:
    """Theorem 28's reduction for a query with a binary path.

    All variables R-equivalent to ``x`` map to ``a`` and those
    R-equivalent to ``z`` map to ``b``, so every R-tuple is diagonal and
    stands for a graph vertex.  ``(G, k) in VC <=> (D', k) in RES(q)``.
    """
    witness = find_binary_path(query)
    if witness is None:
        raise ValueError("query has no binary path")
    first, second = witness
    rel = first.relation
    classes = _r_equivalence_classes(query, rel)
    x_class = classes[first.args[0]]
    z_class = classes[second.args[0]]
    if x_class == z_class:  # pragma: no cover - find_binary_path prevents this
        raise ValueError("path endpoints are R-equivalent")
    path = _atom_graph_path(query, first, second, avoid_relation=rel)
    core_vars: Set[str] = set()
    for i in path:
        core_vars.update(query.atoms[i].args)
    # Variables in the endpoint classes are always core-valued.
    class_vars = {
        v for v in query.variables() if classes[v] in (x_class, z_class)
    }

    def value_of(v: str, a, b):
        if classes[v] == x_class:
            return a
        if classes[v] == z_class:
            return b
        return ("i", a, b, v)

    replicated = set(query.variables()) - core_vars - class_vars
    return _build(query, graph, k, value_of, replicated)


def path_instance(
    query: ConjunctiveQuery, graph: Graph, k: int
) -> ReductionInstance:
    """Dispatch to the unary or binary construction as appropriate."""
    if find_unary_path(query) is not None:
        return unary_path_instance(query, graph, k)
    return binary_path_instance(query, graph, k)
