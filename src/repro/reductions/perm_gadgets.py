"""Proposition 34/35: bounded permutations are hard.

* :func:`abperm_instance` — the 3SAT -> RES(q_ABperm) gadget of
  Proposition 34 (Figure 14).  Witnesses of
  ``q_ABperm :- A(x), R(x,y), R(y,x), B(y)`` are 2-way R-pairs flanked
  by ``A`` on one side and ``B`` on the other; the gadget builds, per
  variable, a ring of pairs whose two minimum covers (3m tuples each)
  encode TRUE and FALSE, and per clause a triangle of pairs costing 5
  when satisfied and 6 otherwise.  ``k = (3n + 5) m``.

* :func:`bounded_permutation_instance` — Proposition 35 case 2: the
  generic lifting RES(q_ABperm) -> RES(q) for any pseudo-linear query
  ``q`` whose only self-join is a *bound* permutation ``R(x,y), R(y,x)``:
  every variable is "like x" or "like y" (which side of the permutation
  it lives on), and each q_ABperm witness ``(a, b)`` stamps out one
  tuple per atom with x-like variables valued ``a`` and y-like ``b``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.zoo import q_ABperm
from repro.reductions.base import ReductionInstance
from repro.workloads.formulas import CNFFormula


def _pair(db: Database, u, v) -> None:
    db.add("R", u, v)
    db.add("R", v, u)


def abperm_instance(formula: CNFFormula) -> ReductionInstance:
    """Proposition 34: ``psi in 3SAT <=> rho(q_ABperm, D) <= (3n+5)m``."""
    n, m = formula.num_vars, formula.num_clauses
    if m == 0:
        raise ValueError("need at least one clause")
    db = Database()
    db.declare("A", 1)
    db.declare("B", 1)
    db.declare("R", 2)

    def node(tag: str, var: int, j: int) -> str:
        return f"{tag}{var}_{j}"

    def ab(value: str) -> None:
        db.add("A", value)
        db.add("B", value)

    # Variable gadgets (Figure 14): a ring of 2-way pairs
    #   {v^j, ~v^j} and {~v^j, v^(j+1)}
    # plus per-slot helper pairs {*^j, v^j} and {~*^j, ~v^j}.  The two
    # minimum covers are "all positive A/B-tuples + one R per negative
    # helper pair" (TRUE) and the mirror (FALSE): 3m tuples either way.
    for var in range(1, n + 1):
        for j in range(m):
            pos, neg = node("v", var, j), node("nv", var, j)
            nxt = node("v", var, (j + 1) % m)
            star, nstar = node("s", var, j), node("ns", var, j)
            for value in (pos, neg, star, nstar):
                ab(value)
            _pair(db, pos, neg)
            _pair(db, neg, nxt)
            _pair(db, star, pos)
            _pair(db, nstar, neg)

    # Clause gadgets: a triangle of pairs {a,b}, {b,c}, {c,a} with
    # pendant pairs {a,a'}, {b,b'}, {c,c'}; satisfied costs 5, else 6.
    for j, clause in enumerate(formula.clauses):
        corners = [f"ca{j}", f"cb{j}", f"cc{j}"]
        pendants = [f"ca{j}p", f"cb{j}p", f"cc{j}p"]
        for value in corners + pendants:
            ab(value)
        _pair(db, corners[0], corners[1])
        _pair(db, corners[1], corners[2])
        _pair(db, corners[2], corners[0])
        for corner, pendant in zip(corners, pendants):
            _pair(db, corner, pendant)
        # Connections: a 2-way pair between the literal's gadget node
        # (positive node if the literal is positive) and the corner.
        for p, lit in enumerate(clause):
            var = abs(lit)
            lit_node = node("v" if lit > 0 else "nv", var, j)
            _pair(db, lit_node, corners[p])

    k = (3 * n + 5) * m
    return ReductionInstance(
        query=q_ABperm,
        database=db,
        k=k,
        source=formula,
        notes={"n": n, "m": m, "k_formula": "(3n+5)m"},
    )


def _sides(query: ConjunctiveQuery) -> Dict[str, str]:
    """Classify each variable as "x"-like or "y"-like (Prop 35 case 2).

    ``z isLike x`` iff ``z`` occurs in the part of the query reachable
    from ``x`` without crossing the permutation variable ``y``.
    """
    rel = query.self_join_relation()
    first, _second = query.occurrences(rel)
    x, y = first.args
    sides: Dict[str, str] = {x: "x", y: "y"}
    # BFS over non-R atoms from x, blocking y.
    frontier = deque([x])
    seen = {x, y}
    while frontier:
        v = frontier.popleft()
        for atom in query.atoms:
            if atom.relation == rel:
                continue
            vs = atom.variables()
            if v in vs:
                for w in vs:
                    if w not in seen:
                        seen.add(w)
                        sides[w] = "x"
                        frontier.append(w)
    for v in query.variables():
        sides.setdefault(v, "y")
    return sides


def bounded_permutation_instance(
    query: ConjunctiveQuery, abperm_db: Database, k: int
) -> ReductionInstance:
    """Proposition 35 case 2: lift a q_ABperm database to ``query``.

    Resilience is preserved exactly; tests verify the equality.
    """
    sides = _sides(query)
    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in query.relation_arities().items():
        db.declare(rel_name, arity, exogenous=flags[rel_name])
    for w in iter_witnesses(abperm_db, q_ABperm):
        a, b = w["x"], w["y"]
        for atom in query.atoms:
            db.add(
                atom.relation,
                *((a if sides[v] == "x" else b) for v in atom.args),
            )
    return ReductionInstance(
        query=query,
        database=db,
        k=k,
        source=abperm_db,
        notes={"sides": sides},
    )
