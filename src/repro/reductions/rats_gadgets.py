"""Lemmas 50/51: hardness gadgets for self-join variations of q_rats/q_brats.

These queries (e.g. ``q_sj1_rats :- A(x), R(x,y), R(y,z), R(z,x)``)
contain triads made of three occurrences of the *same* relation, so the
generic Lemma 6 reduction does not apply; instead the triangle gadget of
Proposition 56 is replayed with all three edge relations collapsed into
``R`` and unary ``A`` (and ``B``) facts on every constant:

* for each witness ``<a,b,c>`` of the triangle database, add
  ``R(a,b), R(b,c), R(c,a)`` and ``A(a), A(b), A(c)``
  (plus ``B(...)`` for the brats variant);
* A-tuples participate in at most 2 witnesses while gadget R-tuples
  participate in 3 or 6, so minimum contingency sets stay R-only and
  mirror the triangle gadget's: ``k = 6*m*n`` as in Proposition 56.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.zoo import q_sj1_brats, q_sj1_rats, q_triangle
from repro.reductions.base import ReductionInstance
from repro.reductions.triangle import triangle_instance
from repro.workloads.formulas import CNFFormula


def _collapsed_db(triangle_db: Database, with_b: bool) -> Database:
    db = Database()
    db.declare("R", 2)
    db.declare("A", 1)
    if with_b:
        db.declare("B", 1)
    for w in iter_witnesses(triangle_db, q_triangle):
        a, b, c = w["x"], w["y"], w["z"]
        db.add("R", a, b)
        db.add("R", b, c)
        db.add("R", c, a)
        for v in (a, b, c):
            db.add("A", v)
            if with_b:
                db.add("B", v)
    return db


def sj1_rats_instance(formula: CNFFormula) -> ReductionInstance:
    """Lemma 50: 3SAT -> RES(q_sj1_rats) via the collapsed triangle gadget.

    ``psi in 3SAT <=> rho(q_sj1_rats, D) <= 6*m*n``.
    """
    tri = triangle_instance(formula)
    db = _collapsed_db(tri.database, with_b=False)
    return ReductionInstance(
        query=q_sj1_rats,
        database=db,
        k=tri.k,
        source=formula,
        notes={"base": "triangle gadget", "k_formula": "6*m*n"},
    )


def sj1_brats_instance(formula: CNFFormula) -> ReductionInstance:
    """Lemma 51: 3SAT -> RES(q_sj1_brats), adding B-facts everywhere.

    ``psi in 3SAT <=> rho(q_sj1_brats, D) <= 6*m*n``.
    """
    tri = triangle_instance(formula)
    db = _collapsed_db(tri.database, with_b=True)
    return ReductionInstance(
        query=q_sj1_brats,
        database=db,
        k=tri.k,
        source=formula,
        notes={"base": "triangle gadget", "k_formula": "6*m*n"},
    )
