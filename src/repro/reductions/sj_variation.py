"""Lemma 21: self-join variations can only be harder.

Given an sj-free query ``q``, a *self-join variation* ``q_sj``
(Definition 19) replaces some atoms ``S_i(v)`` by ``R_i(v)`` where
``R_i`` occurs elsewhere.  Lemma 21 reduces RES(q) to RES(q_sj) when
``q_sj`` is minimal, by tagging every constant with the variable it
instantiates: the witness ``j`` contributes the tuple
``T(j(v1)^{v1}, ..., j(vk)^{vk})`` for each atom ``T(v)`` of ``q_sj``.
Tagging makes the new self-joins inert — a tagged tuple "remembers"
which atom it came from — giving a 1:1 correspondence of contingency
sets, hence ``rho(q, D) = rho(q_sj, D')``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.homomorphism import is_minimal
from repro.reductions.base import ReductionInstance


def variation_atom_map(
    sjfree: ConjunctiveQuery, variation: ConjunctiveQuery
) -> List[int]:
    """Sanity check that ``variation`` has the same atom argument lists.

    A self-join variation keeps each atom's argument vector and only
    renames relations, so the i-th atoms must agree on args.
    """
    if len(sjfree.atoms) != len(variation.atoms):
        raise ValueError("variation must have the same number of atoms")
    for a, b in zip(sjfree.atoms, variation.atoms):
        if a.args != b.args:
            raise ValueError(
                f"atom mismatch: {a!r} vs {b!r} (args must be identical)"
            )
    return list(range(len(sjfree.atoms)))


def sj_variation_instance(
    sjfree: ConjunctiveQuery,
    variation: ConjunctiveQuery,
    database: Database,
    k: int,
    check_minimality: bool = True,
) -> ReductionInstance:
    """The Lemma 21 database ``D'`` for ``variation`` from ``(D, q)``.

    ``(D, k) in RES(q) <=> (D', k) in RES(q_sj)`` — in fact resilience
    values are equal; tests verify that equality.
    """
    variation_atom_map(sjfree, variation)
    if check_minimality and not is_minimal(variation):
        raise ValueError(
            "Lemma 21 requires the self-join variation to be minimal "
            "(see Example 22 for why)"
        )
    out = Database()
    flags = variation.relation_flags()
    for rel_name, arity in variation.relation_arities().items():
        out.declare(rel_name, arity, exogenous=flags[rel_name])
    for valuation in iter_witnesses(database, sjfree):
        for atom in variation.atoms:
            out.add(
                atom.relation,
                *((valuation[v], v) for v in atom.args),
            )
    return ReductionInstance(
        query=variation,
        database=out,
        k=k,
        source=(sjfree, database),
        notes={"tagging": "value tagged with variable name"},
    )
