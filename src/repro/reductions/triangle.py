"""Triangle and triad reductions (Propositions 56/57, Lemma 6).

* :func:`triangle_instance` — the 3SAT -> RES(q_triangle) gadget of
  Proposition 56 (Figure 16): per variable a ring of ``2m`` six-node
  segments whose 12m RGB triangles admit exactly two minimum hitting
  sets (the ``v``-marked and ``~v``-marked solid edges, 6m each); per
  clause one extra RGB triangle formed by *identifying vertices* so it
  borrows one suitably-marked edge from each literal's ring.
  ``k = 6*m*n``.

* :func:`tripod_instance` — RES(q_triangle) -> RES(q_tripod)
  (Proposition 57): pair constants ``<ab>`` become unary facts and an
  all-triples ``W`` glues them.

* :func:`triad_instance` — the generic Lemma 6 reduction
  RES(q_triangle) -> RES(q) for any query with a triad whose atoms have
  pairwise-distinct relations (the self-join case is covered separately
  by :mod:`repro.reductions.rats_gadgets`): variables are partitioned
  into the seven groups of Eqn. 6 and every witness of the triangle
  database stamps out one tuple per atom.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import iter_witnesses
from repro.query.zoo import q_triangle, q_tripod
from repro.reductions.base import ReductionInstance
from repro.structure.triads import find_triad
from repro.workloads.formulas import CNFFormula

_RELS = ("R", "S", "T")


class _UnionFind:
    def __init__(self):
        self.parent: Dict[Hashable, Hashable] = {}

    def find(self, x: Hashable) -> Hashable:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, x: Hashable, y: Hashable) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[rx] = ry


def _ring_edges(var: int, m: int):
    """The ring of gadget ``G_var``: 12m directed, labelled solid edges.

    Nodes are ``(var, p)`` for positions ``p`` around a 12m-node cycle.
    Edge ``j`` runs position ``j -> j+1`` with relation R/S/T by
    ``j mod 3`` and mark "true" (delete when the variable is TRUE) for
    even ``j``, "false" for odd ``j``.  The dotted closing edges (one
    per adjacent solid pair) complete the 12m RGB triangles.
    """
    size = 12 * m
    solid = []
    for j in range(size):
        u, v = (var, j), (var, (j + 1) % size)
        solid.append((_RELS[j % 3], u, v, j % 2 == 0))
    dotted = []
    for j in range(size):
        # Pair (edge j, edge j+1) covers nodes j, j+1, j+2; the closing
        # edge is the remaining relation from node j+2 back to node j.
        rel = _RELS[(j + 2) % 3]
        dotted.append((rel, (var, (j + 2) % size), (var, j)))
    return solid, dotted


def triangle_instance(formula: CNFFormula) -> ReductionInstance:
    """Proposition 56: ``psi in 3SAT <=> rho(q_triangle, D) <= 6*m*n``.

    Clause ``j`` borrows edges from the dedicated segment starting at
    position ``12*j`` of each of its literals' rings: an R-edge for
    literal 1, S-edge for literal 2, T-edge for literal 3, marked
    "true" for positive literals and "false" for negative ones, glued
    into one RGB triangle by vertex identification.
    """
    n, m = formula.num_vars, formula.num_clauses
    if m == 0:
        raise ValueError("need at least one clause")
    uf = _UnionFind()
    all_solid = {}
    all_dotted = {}
    for var in range(1, n + 1):
        solid, dotted = _ring_edges(var, m)
        all_solid[var] = solid
        all_dotted[var] = dotted

    for j, clause in enumerate(formula.clauses):
        if len(set(abs(l) for l in clause)) != 3:
            raise ValueError("clause variables must be distinct")
        # Segment for clause j spans edge indices 12j .. 12j+5 (the
        # first trio pair of the segment); within it, both marks are
        # available for each relation:
        #   R at 12j (true) / 12j+3 (false)
        #   S at 12j+4 (true) / 12j+1 (false)
        #   T at 12j+2 (true) / 12j+5 (false)
        offsets = {
            ("R", True): 0, ("R", False): 3,
            ("S", True): 4, ("S", False): 1,
            ("T", True): 2, ("T", False): 5,
        }
        chosen = []
        for p, lit in enumerate(clause):
            rel = _RELS[p]
            want_true_mark = lit > 0
            idx = 12 * j + offsets[(rel, want_true_mark)]
            edge = all_solid[abs(lit)][idx]
            assert edge[0] == rel and edge[3] == want_true_mark
            chosen.append(edge)
        # Glue: R(a,b), S(b',c'), T(c'',a'') -> identify b=b', c'=c'', a''=a.
        (_, ra, rb, _), (_, sb, sc, _), (_, tc, ta, _) = chosen
        uf.union(rb, sb)
        uf.union(sc, tc)
        uf.union(ta, ra)

    db = Database()
    for rel in _RELS:
        db.declare(rel, 2)
    true_marked: Dict[int, Set] = {var: set() for var in range(1, n + 1)}
    false_marked: Dict[int, Set] = {var: set() for var in range(1, n + 1)}
    for var in range(1, n + 1):
        for rel, u, v, is_true in all_solid[var]:
            fact = db.add(rel, uf.find(u), uf.find(v))
            (true_marked if is_true else false_marked)[var].add(fact)
        for rel, u, v in all_dotted[var]:
            db.add(rel, uf.find(u), uf.find(v))

    k = 6 * m * n
    return ReductionInstance(
        query=q_triangle,
        database=db,
        k=k,
        source=formula,
        notes={
            "n": n,
            "m": m,
            "k_formula": "6*m*n",
            "true_marked": true_marked,
            "false_marked": false_marked,
        },
    )


def tripod_instance(
    triangle_db: Database, k: int
) -> ReductionInstance:
    """Proposition 57: RES(q_triangle) -> RES(q_tripod).

    ``A = {<ab> : R(a,b)}``, ``B = {<bc> : S(b,c)}``,
    ``C = {<ca> : T(c,a)}``, and ``W`` contains
    ``(<ab>, <bc>, <ac>)`` for *all* constant triples, so witnesses
    correspond 1:1 and ``rho`` is preserved (W is dominated by A and
    never chosen).
    """
    db = Database()
    db.declare("A", 1)
    db.declare("B", 1)
    db.declare("C", 1)
    db.declare("W", 3)
    dom = sorted(triangle_db.active_domain(), key=repr)
    for fact in triangle_db.relations["R"]:
        db.add("A", ("ab",) + fact.values)
    for fact in triangle_db.relations["S"]:
        db.add("B", ("bc",) + fact.values)
    for fact in triangle_db.relations["T"]:
        db.add("C", ("ca",) + fact.values)
    for a in dom:
        for b in dom:
            for c in dom:
                db.add("W", ("ab", a, b), ("bc", b, c), ("ca", c, a))
    return ReductionInstance(
        query=q_tripod,
        database=db,
        k=k,
        source=triangle_db,
        notes={"domain": len(dom)},
    )


def _seven_groups(
    query: ConjunctiveQuery, triad: Tuple[int, int, int]
) -> Dict[str, str]:
    """Eqn. 6: assign each variable its group tag.

    Tags: ``ab``, ``bc``, ``ca`` (unshared triad variables), ``abc``
    (outside the triad), ``a``/``b``/``c`` (pairwise intersections).
    Variables shared by all three triad atoms are disallowed (the proof
    sets them to a constant first).
    """
    s0, s1, s2 = (query.atoms[i].variables() for i in triad)
    if s0 & s1 & s2:
        raise ValueError("triad atoms share a common variable; substitute it first")
    groups: Dict[str, str] = {}
    for v in query.variables():
        in0, in1, in2 = v in s0, v in s1, v in s2
        if in0 and in1:
            groups[v] = "b"
        elif in1 and in2:
            groups[v] = "c"
        elif in2 and in0:
            groups[v] = "a"
        elif in0:
            groups[v] = "ab"
        elif in1:
            groups[v] = "bc"
        elif in2:
            groups[v] = "ca"
        else:
            groups[v] = "abc"
    return groups


def triad_instance(
    query: ConjunctiveQuery,
    triad: Optional[Tuple[int, int, int]],
    triangle_db: Database,
    k: int,
) -> ReductionInstance:
    """Lemma 6 (generalised in Theorem 24): RES(q_triangle) -> RES(q).

    For every witness ``(a, b, c)`` of the triangle database, each atom
    of ``q`` contributes the tuple obtained by valuating its variables
    through the seven-group partition — e.g. group ``ab`` maps to the
    pair constant ``<ab>``, group ``a`` maps to ``a`` itself.
    Resilience is preserved exactly when the triad atoms carry three
    distinct relations; tests verify the equality.
    """
    if triad is None:
        triad = find_triad(query)
        if triad is None:
            raise ValueError("query has no triad")
    groups = _seven_groups(query, triad)

    def value(group: str, a, b, c):
        return {
            "ab": ("ab", a, b),
            "bc": ("bc", b, c),
            "ca": ("ca", c, a),
            "abc": ("abc", a, b, c),
            "a": a,
            "b": b,
            "c": c,
        }[group]

    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in query.relation_arities().items():
        db.declare(rel_name, arity, exogenous=flags[rel_name])
    for w in iter_witnesses(triangle_db, q_triangle):
        a, b, c = w["x"], w["y"], w["z"]
        for atom in query.atoms:
            db.add(
                atom.relation,
                *(value(groups[v], a, b, c) for v in atom.args),
            )
    return ReductionInstance(
        query=query,
        database=db,
        k=k,
        source=triangle_db,
        notes={"triad": triad, "groups": groups},
    )
