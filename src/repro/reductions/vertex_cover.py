"""Proposition 9: VERTEX COVER -> RES(q_vc).

A directed-graph database over unary ``R`` (vertices) and binary ``S``
(edges) satisfies ``q_vc :- R(x), S(x,y), R(y)`` exactly when the graph
has an edge, and contingency sets restricted to ``R`` are vertex covers:
``(G, k) in VC  <=>  (D_G, k) in RES(q_vc)``.

The reduction in the paper deletes only ``R``-tuples conceptually, but
``S`` is also endogenous; deleting ``S(u, v)`` breaks only that edge's
witness while ``R``-tuples can break many, and a contingency set that
uses ``S(u,v)`` can be exchanged for ``R(u)`` — so minimum contingency
sets equal minimum vertex covers either way.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.query.zoo import q_vc
from repro.reductions.base import ReductionInstance
from repro.workloads.graphs import Graph


def vc_instance(graph: Graph, k: int) -> ReductionInstance:
    """The database ``D_G`` of Proposition 9 with threshold ``k``.

    ``(G, k) in VC <=> (D_G, k) in RES(q_vc)``.
    """
    db = Database()
    db.declare("R", 1)
    db.declare("S", 2)
    for v in graph.vertices:
        db.add("R", v)
    for (u, v) in graph.edges:
        db.add("S", u, v)
    return ReductionInstance(
        query=q_vc,
        database=db,
        k=k,
        source=graph,
        notes={"vertices": len(graph.vertices), "edges": len(graph.edges)},
    )
