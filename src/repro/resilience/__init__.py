"""Resilience solvers.

Resilience (Definition 1): ``rho(q, D)`` is the size of a minimum set of
endogenous tuples whose deletion makes ``D`` falsify ``q``.  This package
provides:

* :mod:`repro.resilience.exact` — exact minimum hitting set over the
  witness structure, via branch-and-bound and via scipy's ILP solver;
* :mod:`repro.resilience.flow_linear` — the network-flow algorithm for
  linear queries ([31]; extended to duplicated relations per
  Proposition 31);
* :mod:`repro.resilience.flow_special` — the paper's bespoke
  polynomial-time algorithms: ``q_perm``/``q_Aperm`` (Proposition 33),
  ``q_ACconf`` (Proposition 12), ``q_A3perm_R`` (Proposition 13),
  ``q_Swx3perm_R`` (Proposition 44), ``q_TS3conf`` (Proposition 41), and
  ``q_z3`` (Proposition 36);
* :mod:`repro.resilience.solver` — a dispatcher that routes a query to
  the appropriate algorithm (flow when the classifier says P, exact
  search otherwise) and can cross-check.
"""

from repro.resilience.types import (
    ResilienceResult,
    UnbreakableQueryError,
)
from repro.resilience.exact import (
    resilience_exact,
    resilience_ilp,
    resilience_branch_and_bound,
    is_contingency_set,
)
from repro.resilience.flow_linear import LinearFlowSolver, resilience_linear_flow
from repro.resilience.solver import (
    DispatchPlan,
    dispatch_plan,
    in_res,
    resilience,
    solve,
)

__all__ = [
    "DispatchPlan",
    "dispatch_plan",
    "in_res",
    "ResilienceResult",
    "UnbreakableQueryError",
    "resilience_exact",
    "resilience_ilp",
    "resilience_branch_and_bound",
    "is_contingency_set",
    "LinearFlowSolver",
    "resilience_linear_flow",
    "solve",
    "resilience",
]
