"""Resilience solvers.

Resilience (Definition 1): ``rho(q, D)`` is the size of a minimum set of
endogenous tuples whose deletion makes ``D`` falsify ``q``.  This package
provides:

* :mod:`repro.resilience.exact` — exact minimum hitting set over the
  witness structure, via branch-and-bound and via scipy's ILP solver;
* :mod:`repro.resilience.flow_linear` — the network-flow algorithm for
  linear queries ([31]; extended to duplicated relations per
  Proposition 31);
* :mod:`repro.resilience.flow_special` — the paper's bespoke
  polynomial-time algorithms: ``q_perm``/``q_Aperm`` (Proposition 33),
  ``q_ACconf`` (Proposition 12), ``q_A3perm_R`` (Proposition 13),
  ``q_Swx3perm_R`` (Proposition 44), ``q_TS3conf`` (Proposition 41), and
  ``q_z3`` (Proposition 36);
* :mod:`repro.resilience.approx` — the certified approximate / anytime
  tier for instances beyond exact reach (the NP-complete side of
  Theorem 24): LP-relaxation lower bounds, greedy / LP-rounding upper
  bounds, local search, and a budgeted anytime driver returning
  intervals ``lb <= rho(q, D) <= ub``;
* :mod:`repro.resilience.solver` — a dispatcher that routes a query to
  the appropriate algorithm (flow when the classifier says P, exact
  search otherwise) and can cross-check; ``mode="approx"/"anytime"``
  selects the bounded tier.
"""

from repro.resilience.types import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
    UnbreakableQueryError,
)
from repro.resilience.approx import (
    disjoint_witness_lower_bound,
    greedy_hitting_set,
    greedy_ratio_bound,
    resilience_anytime,
    resilience_bounds,
)
from repro.resilience.exact import (
    resilience_exact,
    resilience_ilp,
    resilience_branch_and_bound,
    is_contingency_set,
)
from repro.resilience.flow_linear import LinearFlowSolver, resilience_linear_flow
from repro.resilience.solver import (
    DispatchPlan,
    dispatch_plan,
    in_res,
    resilience,
    solve,
)

__all__ = [
    "DispatchPlan",
    "dispatch_plan",
    "in_res",
    "Budget",
    "BoundedResilienceResult",
    "ResilienceResult",
    "UnbreakableQueryError",
    "resilience_exact",
    "resilience_ilp",
    "resilience_branch_and_bound",
    "resilience_bounds",
    "resilience_anytime",
    "greedy_hitting_set",
    "greedy_ratio_bound",
    "disjoint_witness_lower_bound",
    "is_contingency_set",
    "LinearFlowSolver",
    "resilience_linear_flow",
    "solve",
    "resilience",
]
