"""Certified approximate and anytime resilience solving.

Exact resilience is NP-complete for most self-join queries
(Theorem 24 / Figure 5), so beyond a few hundred witnesses the exact
hitting-set solvers of :mod:`repro.resilience.exact` hit a wall.  This
module trades exactness for a *certified interval*
``lb <= rho(q, D) <= ub`` computed in polynomial time from the same
preprocessed :class:`~repro.witness.WitnessStructure` (the hitting-set
view of resilience from Section 2), component by component:

**Lower bounds** (never exceed the optimum):

* *LP relaxation* — ``min 1.x  s.t.  A x >= 1, 0 <= x <= 1`` over the
  component's CSR incidence matrix, solved by
  :func:`scipy.optimize.linprog` (HiGHS); ``ceil(LP - eps)`` is a valid
  integral lower bound because the LP relaxes the hitting-set IP.
* *Disjoint-witness packing* — a greedy matching of pairwise-disjoint
  witness sets; any hitting set spends one tuple per packed witness
  (weak LP duality: the packing is a feasible dual solution).

**Upper bounds** (witnessed by a feasible contingency set):

* *Greedy hitting set* (:func:`greedy_hitting_set`, promoted out of
  ``exact.py`` and shared with the branch-and-bound seeding there) —
  the classic set-cover greedy with the ``H(d)`` harmonic-ratio
  guarantee, where ``d`` is the largest number of witnesses any single
  tuple hits;
* *LP rounding* — take every tuple with LP weight ``>= 1/f`` (``f`` =
  the largest witness-set size), a feasible ``f``-approximation, then
  prune redundant tuples;
* *Local search* — redundancy elimination plus 2-for-1 swap moves on
  the incumbent.

The **anytime driver** (:func:`resilience_anytime`) starts from that
interval and, within a :class:`~repro.resilience.types.Budget` of
wall-clock time and/or branch-and-bound nodes, refines the open
components — smallest gap first, so a tight budget closes as many
intervals as possible — using a *budgeted* branch and bound whose
abandoned-subtree bounds still certify a lower bound.  With an
unlimited budget the refinement runs to completion and the interval
closes on the exact value — anytime solving subsumes exact solving.

All bounds are per-component and summed (plus the forced tuples), which
both tightens them and lets the budget focus on the hard components.

**Weighted instances.**  Every primitive accepts an optional ``costs``
map (tuple id -> positive int) and then optimizes the *weighted*
hitting-set objective ``min sum cost(t)``: the greedy picks by
witnesses-hit-per-cost ratio (Chvátal's weighted set-cover greedy, same
``H(d)`` guarantee), the packing bound charges each packed witness its
cheapest member, the LP/ILP objective vector carries the costs, local
search swaps only when they lower total cost, and the budgeted branch
and bound bounds by cost sums.  ``costs=None`` is exactly the
historical unit-cost behavior — the weighted generalizations all
degenerate to it when every cost is 1.
"""

from __future__ import annotations

import math
import time
from functools import lru_cache
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.resilience.types import BoundedResilienceResult, Budget
from repro.witness import WitnessComponent, WitnessStructure, witness_structure

T = TypeVar("T")

# Safety margin when turning a floating-point LP optimum into an
# integral lower bound: ceil(LP - eps) can only *under*-claim.  The
# margin is *relative* to the objective (see _lp_floor) because solver
# tolerances scale with the objective value — an absolute 1e-6 would
# not cover an overshoot on an optimum of order 1000.
_LP_EPS = 1e-6


def _lp_floor(lp_value: float) -> int:
    """A certified integral lower bound from a floating-point LP optimum."""
    return math.ceil(lp_value - _LP_EPS * max(1.0, abs(lp_value)))


def _ids_cost(ids, costs) -> int:
    """The cost of a set of ids: its size unweighted, the cost sum weighted."""
    if costs is None:
        return len(ids)
    return sum(costs[t] for t in ids)


# ---------------------------------------------------------------------------
# Shared combinatorial bounds (consumed by exact.py as well)
# ---------------------------------------------------------------------------

def greedy_hitting_set(
    sets: Sequence[FrozenSet[T]], costs=None
) -> Set[T]:
    """Greedy upper bound: repeatedly take the element hitting most sets.

    This is the set-cover greedy in hitting-set form (tuples cover the
    witnesses they appear in), so the classic harmonic guarantee
    applies: the result is at most ``H(d) = 1 + 1/2 + ... + 1/d`` times
    the optimum, where ``d`` is the largest number of sets any single
    element hits.

    With ``costs`` the pick maximizes the *ratio* — witnesses hit per
    unit cost — which is Chvátal's weighted set-cover greedy; the same
    ``H(d)`` guarantee holds for the weighted optimum.  Ratios are
    compared by integer cross-multiplication (no floats), so the pick
    order is exact; with all costs at 1 the ratio order *is* the count
    order and the weighted pick coincides with the unweighted one.

    Determinism guarantee: among elements of equal count (unweighted)
    or equal ratio (weighted), the *smallest* under the elements' own
    total order wins — integer tuple-ids ascending, or
    :meth:`DBTuple.sort_key` when called on raw fact sets — the same
    order used for branching and for sorted contingency-set output.
    The result is therefore a pure function of the input sets (and
    costs), independent of set/dict iteration order.

    Counts are maintained incrementally (each set is retired exactly
    once), so the cost is one max-scan per pick plus the incidence size
    — not the quadratic rebuild a naive greedy pays.
    """
    set_list = list(sets)
    counts: Dict[T, int] = {}
    rows_of: Dict[T, List[int]] = {}
    for r, s in enumerate(set_list):
        for t in s:
            counts[t] = counts.get(t, 0) + 1
            rows_of.setdefault(t, []).append(r)
    alive = [True] * len(set_list)
    alive_count = len(set_list)
    chosen: Set[T] = set()
    while alive_count:
        if costs is None:
            top = max(counts.values())
            best = min(t for t, c in counts.items() if c == top)
        else:
            # Highest count/cost ratio wins; cross-multiplied integer
            # comparison keeps the order exact, ties go to the smallest
            # element (the deterministic tie-break the satellite fix
            # pins: cost-ratio first, then the element order).
            best = None
            best_c = 0
            best_w = 1
            for t, c in counts.items():
                if c <= 0:
                    continue
                w = costs[t]
                diff = c * best_w - best_c * w
                if best is None or diff > 0 or (diff == 0 and t < best):
                    best, best_c, best_w = t, c, w
        chosen.add(best)
        for r in rows_of[best]:
            if alive[r]:
                alive[r] = False
                alive_count -= 1
                for t in set_list[r]:
                    counts[t] -= 1
    return chosen


def disjoint_witness_lower_bound(
    sets: Sequence[FrozenSet[T]], costs=None
) -> int:
    """Greedy packing of pairwise-disjoint witnesses: a hitting-set lower bound.

    Every hitting set must spend a distinct tuple on each packed
    witness; with ``costs`` that tuple costs at least the witness's
    cheapest member, so the packed minima sum to a *weighted* lower
    bound (and each unweighted minimum is 1, recovering the count).
    ``key=len`` with Python's stable sort keeps the packing
    deterministic (the input order is itself deterministic) without
    materializing per-set sort keys.  Also runs at every
    branch-and-bound node in ``exact.py``.
    """
    used: Set[T] = set()
    total = 0
    for s in sorted(sets, key=len):
        if not (s & used):
            used.update(s)
            total += 1 if costs is None else min(costs[t] for t in s)
    return total


def greedy_ratio_bound(sets: Sequence[FrozenSet[T]]) -> float:
    """``H(d)``: the proven approximation ratio of :func:`greedy_hitting_set`
    on ``sets``, where ``d`` is the largest number of sets hit by one
    element."""
    counts: Dict[T, int] = {}
    for s in sets:
        for t in s:
            counts[t] = counts.get(t, 0) + 1
    d = max(counts.values(), default=0)
    return sum(1.0 / k for k in range(1, d + 1)) if d else 1.0


# ---------------------------------------------------------------------------
# LP relaxation (lower bound + rounding)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def _linprog():
    """scipy's ``linprog``, imported once on first use (not per call,
    not at module import)."""
    from scipy.optimize import linprog

    return linprog


def _lp_component(component: WitnessComponent, costs=None):
    """Solve the LP relaxation of one component's hitting-set IP.

    With ``costs`` the objective vector carries the per-tuple costs, so
    the optimum lower-bounds the *weighted* hitting-set IP.  Returns
    ``(optimum, x)`` with ``x`` indexed by local column (the sorted
    position within ``component.tuple_ids``), or ``(None, None)`` if
    the LP solver fails (the caller falls back to the packing bound).
    """
    linprog = _linprog()

    A = component.incidence_matrix()
    m, n = A.shape
    if costs is None:
        c = np.ones(n)
    else:
        c = np.array([costs[t] for t in component.tuple_ids], dtype=float)
    result = linprog(
        c=c,
        A_ub=-A,
        b_ub=-np.ones(m),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:  # pragma: no cover - HiGHS is reliable here
        return None, None
    return float(result.fun), result.x


def _lp_rounding(component: WitnessComponent, x, costs=None) -> Set[int]:
    """Round an LP solution to a feasible hitting set (global tuple ids).

    Taking every tuple with weight ``>= 1/f`` (``f`` = largest witness
    size) is feasible — each witness has at most ``f`` tuples, so at
    least one carries weight ``>= 1/f`` — and costs at most ``f`` times
    the LP optimum (the argument is objective-agnostic, so it holds for
    the weighted LP too).  Redundant tuples are pruned afterwards.
    """
    f = max((len(s) for s in component.sets), default=1)
    threshold = 1.0 / f - 1e-9
    chosen = {
        component.tuple_ids[j] for j in range(len(component.tuple_ids))
        if x[j] >= threshold
    }
    # Guard against LP solver tolerance leaving a row unhit: repair with
    # the smallest tuple of each missed witness (deterministic, and the
    # theoretical guarantee is unaffected when the LP is clean).
    for s in component.sets:
        if not (s & chosen):
            chosen.add(min(s))
    return _prune_redundant(component.sets, chosen, costs=costs)


# ---------------------------------------------------------------------------
# Local search
# ---------------------------------------------------------------------------

def _prune_redundant(
    sets: Sequence[FrozenSet[int]], chosen: Set[int], costs=None
) -> Set[int]:
    """Drop tuples every one of whose witnesses is hit by another choice.

    Scans in descending tuple-id order (deterministic; keeps the small
    ids the greedy/branching orders prefer) maintaining per-witness hit
    counts, so the whole pass is linear in the incidence size.  With
    ``costs`` the scan visits expensive tuples first, so when two
    redundant tuples shadow each other the pricier one is dropped.
    """
    cover: List[int] = [len(s & chosen) for s in sets]
    rows_of: Dict[int, List[int]] = {}
    for r, s in enumerate(sets):
        for t in s:
            if t in chosen:
                rows_of.setdefault(t, []).append(r)
    kept = set(chosen)
    if costs is None:
        order = sorted(kept, reverse=True)
    else:
        order = sorted(kept, key=lambda t: (costs[t], t), reverse=True)
    for t in order:
        rows = rows_of.get(t, [])
        if all(cover[r] >= 2 for r in rows):
            kept.discard(t)
            for r in rows:
                cover[r] -= 1
    return kept


# Local-search effort caps: both are *count*-based, never clock-based,
# so results stay deterministic across machines.
_SWAP_PASSES = 4
_SWAP_PAIRS_PER_PASS = 4000


def _local_search(
    sets: Sequence[FrozenSet[int]], chosen: Set[int], costs=None
) -> Set[int]:
    """Improve a feasible hitting set by redundancy pruning and 2-for-1 swaps.

    A swap replaces two chosen tuples ``a < b`` with one unchosen tuple
    ``t`` that hits every witness only ``a`` or ``b`` were hitting
    (computed from per-tuple row lists and hit counts, so a pair check
    costs the two tuples' degrees, not a scan of all witnesses).
    Passes repeat until a fixpoint or the deterministic effort caps are
    reached; the output is always feasible and never costlier than the
    input.  With ``costs`` a swap is applied only when the replacement
    is strictly cheaper than the pair it evicts, so the cost objective
    (not the cardinality) monotonically improves.
    """
    chosen = _prune_redundant(sets, chosen, costs=costs)
    for _ in range(_SWAP_PASSES):
        improved = False
        cover = [len(s & chosen) for s in sets]
        rows_of: Dict[int, List[int]] = {}
        for r, s in enumerate(sets):
            for t in s:
                if t in chosen:
                    rows_of.setdefault(t, []).append(r)
        ordered = sorted(chosen)
        pairs = 0
        for i, a in enumerate(ordered):
            if improved:
                break
            rows_a = rows_of.get(a, [])
            for b in ordered[i + 1:]:
                pairs += 1
                if pairs > _SWAP_PAIRS_PER_PASS:
                    break
                rows_b = rows_of.get(b, [])
                # Witness rows left unhit if both a and b are removed:
                # singly-covered rows of either, plus doubly-covered
                # rows containing both.
                b_rows = set(rows_b)
                must_hit = (
                    [r for r in rows_a if cover[r] == 1]
                    + [r for r in rows_b if cover[r] == 1]
                    + [r for r in rows_a if r in b_rows and cover[r] == 2]
                )
                if not must_hit:
                    # a and b are jointly redundant — drop both.
                    chosen = _prune_redundant(sets, chosen - {a, b}, costs=costs)
                    improved = True
                    break
                candidates = set(sets[must_hit[0]]) - chosen
                for r in must_hit[1:]:
                    candidates &= sets[r]
                    if not candidates:
                        break
                if candidates:
                    if costs is None:
                        pick = min(candidates)
                    else:
                        pick = min(candidates, key=lambda t: (costs[t], t))
                        if costs[pick] >= costs[a] + costs[b]:
                            continue
                    chosen = _prune_redundant(
                        sets, (chosen - {a, b}) | {pick}, costs=costs
                    )
                    improved = True
                    break
            else:
                continue
        if not improved:
            break
    return chosen


# ---------------------------------------------------------------------------
# Budgeted branch and bound (the anytime refinement)
# ---------------------------------------------------------------------------

class _BudgetMeter:
    """Shared node/time accounting across all components of one solve."""

    def __init__(self, budget: Budget):
        self.deadline = (
            time.perf_counter() + budget.time_limit
            if budget.time_limit is not None
            else None
        )
        self.nodes_left = (
            budget.node_limit if budget.node_limit is not None else None
        )

    def spend_node(self) -> bool:
        """Charge one branch-and-bound node; False when exhausted."""
        if self.nodes_left is not None:
            if self.nodes_left <= 0:
                return False
            self.nodes_left -= 1
        if self.deadline is not None and time.perf_counter() > self.deadline:
            return False
        return True


# Above this many distinct tuples per component the bitmask search
# falls back to the frozenset reference (masks would span many machine
# words while witness sets stay tiny).  Both paths explore identically.
_BNB_BITSET_MAX_TUPLES = 4096

# Below this many witness sets the search is trivial and the per-call
# mask conversion costs more than it saves; the dispatch is
# output-invisible (both paths return identical results).
_BNB_BITSET_MIN_SETS = 12


def _budgeted_bnb(
    sets: Sequence[FrozenSet[int]],
    seed: Set[int],
    meter: _BudgetMeter,
    costs=None,
) -> Tuple[int, Set[int], bool]:
    """Branch and bound that certifies a lower bound even when cut short.

    Explores exactly like ``exact._bnb_component`` (smallest unhit
    witness, sorted branching, disjoint-packing pruning) but charges
    every expanded node to ``meter``.  When the budget runs out, the
    bound of each abandoned subtree is recorded: the true optimum is
    either the incumbent or lies in an abandoned subtree, so
    ``min(incumbent, min abandoned bound)`` is a certified lower bound.

    Returns ``(lower_bound, incumbent_set, completed)``; when
    ``completed`` is True the incumbent is exactly optimal.

    The search runs on Python-int bitmasks over the component's tuple
    universe (AND/OR/popcount per node) unless ``REPRO_KERNEL_BACKEND``
    selects the frozenset reference; exploration order, node
    accounting, incumbents, and bounds are identical either way.

    With ``costs`` the objective is the cost sum and the search runs a
    dedicated weighted reference (a bitmask variant would buy nothing:
    the bound and branch arithmetic is cost lookups either way, and the
    unit-cost case never reaches here — it delegates to the unweighted
    path upstream).
    """
    if costs is not None:
        return _budgeted_bnb_weighted(sets, seed, meter, costs)

    from repro.witness.structure import _kernel_backend

    if len(sets) >= _BNB_BITSET_MIN_SETS and _kernel_backend() == "bitset":
        universe = sorted({t for s in sets for t in s})
        if len(universe) <= _BNB_BITSET_MAX_TUPLES:
            return _budgeted_bnb_bitset(sets, seed, meter, universe)
    return _budgeted_bnb_reference(sets, seed, meter)


def _budgeted_bnb_weighted(
    sets: Sequence[FrozenSet[int]],
    seed: Set[int],
    meter: _BudgetMeter,
    costs,
) -> Tuple[int, Set[int], bool]:
    """The weighted-objective search: same shape as the reference, with
    cost sums in place of cardinalities for incumbents and bounds."""
    best: List = [_ids_cost(seed, costs), set(seed)]
    abandoned: List[int] = [best[0] + 1]  # sentinel above any real bound

    def search(
        remaining: List[FrozenSet[int]], chosen: Set[int], chosen_cost: int
    ) -> None:
        if not remaining:
            if chosen_cost < best[0]:
                best[0] = chosen_cost
                best[1] = set(chosen)
            return
        bound = chosen_cost + disjoint_witness_lower_bound(
            remaining, costs=costs
        )
        if bound >= best[0]:
            return
        if not meter.spend_node():
            abandoned[0] = min(abandoned[0], bound)
            return
        target = min(remaining, key=len)
        for t in sorted(target):
            chosen.add(t)
            search(
                [s for s in remaining if t not in s],
                chosen,
                chosen_cost + costs[t],
            )
            chosen.remove(t)

    search(list(sets), set(), 0)
    completed = abandoned[0] > best[0]
    lower = best[0] if completed else min(best[0], abandoned[0])
    return lower, best[1], completed


def _budgeted_bnb_reference(
    sets: Sequence[FrozenSet[int]], seed: Set[int], meter: _BudgetMeter
) -> Tuple[int, Set[int], bool]:
    """The frozenset search (the oracle the bitmask path must match)."""
    best: List = [len(seed), set(seed)]
    abandoned: List[int] = [len(seed) + 1]  # sentinel above any real bound

    def search(remaining: List[FrozenSet[int]], chosen: Set[int]) -> None:
        if not remaining:
            if len(chosen) < best[0]:
                best[0] = len(chosen)
                best[1] = set(chosen)
            return
        bound = len(chosen) + disjoint_witness_lower_bound(remaining)
        if bound >= best[0]:
            return
        if not meter.spend_node():
            abandoned[0] = min(abandoned[0], bound)
            return
        target = min(remaining, key=len)
        for t in sorted(target):
            chosen.add(t)
            search([s for s in remaining if t not in s], chosen)
            chosen.remove(t)

    search(list(sets), set())
    completed = abandoned[0] > best[0]
    lower = best[0] if completed else min(best[0], abandoned[0])
    return lower, best[1], completed


def _budgeted_bnb_bitset(
    sets: Sequence[FrozenSet[int]],
    seed: Set[int],
    meter: _BudgetMeter,
    universe: List[int],
) -> Tuple[int, Set[int], bool]:
    """The bitmask mirror of :func:`_budgeted_bnb_reference`.

    Tuple ids are remapped to dense local bits (ascending, so every
    ordering tie-break coincides with the reference), witness sets
    become int masks, and each node's work — filtering hit witnesses,
    the disjoint-packing bound, branching on the smallest unhit witness
    — reduces to AND/OR/popcount.
    """
    local = {t: i for i, t in enumerate(universe)}
    popcount = int.bit_count
    # Holding the witness list sorted by (popcount, input position) —
    # an invariant filtering preserves, since masks never shrink —
    # makes the reference's two order-sensitive steps free: its packing
    # bound iterates exactly this order (stable sort by size), and its
    # branch target (first smallest witness in input order) is simply
    # the head of the list.
    masks = sorted(
        (_mask_from_ids(local[t] for t in s) for s in sets), key=popcount
    )
    best_count = [len(seed)]
    best_set: List[Set[int]] = [set(seed)]
    abandoned = [len(seed) + 1]  # sentinel above any real bound

    def packing_bound(remaining: List[int]) -> int:
        used = 0
        count = 0
        for mask in remaining:
            if not (mask & used):
                used |= mask
                count += 1
        return count

    def search(
        remaining: List[int], packing: int, chosen: int, n_chosen: int
    ) -> None:
        # ``packing`` is packing_bound(remaining), computed by the
        # parent in the same pass that filtered the list.
        if not remaining:
            if n_chosen < best_count[0]:
                best_count[0] = n_chosen
                best_set[0] = {universe[i] for i in _iter_bits(chosen)}
            return
        bound = n_chosen + packing
        if bound >= best_count[0]:
            return
        if not meter.spend_node():
            abandoned[0] = min(abandoned[0], bound)
            return
        target = remaining[0]
        for i in _iter_bits(target):
            # A child node prunes (before spending a node or touching
            # the incumbent/abandoned state) as soon as its packing
            # bound reaches best - (n_chosen + 1); the partial packing
            # count only grows, so the moment it crosses the threshold
            # the recursion can be skipped without building the rest of
            # the child — outcomes and node accounting are unchanged.
            threshold = best_count[0] - n_chosen - 1
            if threshold <= 0:
                break
            bit = 1 << i
            child: List[int] = []
            append = child.append
            used = 0
            count = 0
            for mask in remaining:
                if mask & bit:
                    continue
                append(mask)
                if not (mask & used):
                    used |= mask
                    count += 1
                    if count >= threshold:
                        break
            else:
                search(child, count, chosen | bit, n_chosen + 1)

    search(masks, packing_bound(masks), 0, 0)
    completed = abandoned[0] > best_count[0]
    lower = best_count[0] if completed else min(best_count[0], abandoned[0])
    return lower, best_set[0], completed


def _mask_from_ids(ids) -> int:
    """OR together ``1 << i`` for every local id."""
    mask = 0
    for i in ids:
        mask |= 1 << i
    return mask


def _iter_bits(mask: int):
    """The set bits of ``mask``, ascending (= sorted local ids)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ---------------------------------------------------------------------------
# Per-component interval assembly
# ---------------------------------------------------------------------------

def _component_interval(
    component: WitnessComponent, use_lp: bool = True, costs=None
) -> Tuple[int, Set[int]]:
    """Certified ``(lower_bound, upper_bound_set)`` for one component.

    With ``costs`` every bound is on the weighted objective: the packing
    bound sums cheapest-per-witness costs, the greedy maximizes the
    coverage/cost ratio, and the LP relaxation carries the cost vector.
    """
    lower = disjoint_witness_lower_bound(component.sets, costs=costs)
    upper = _local_search(
        component.sets,
        greedy_hitting_set(component.sets, costs=costs),
        costs=costs,
    )
    if use_lp and lower < _ids_cost(upper, costs):
        lp_value, x = _lp_component(component, costs=costs)
        if lp_value is not None:
            lower = max(lower, _lp_floor(lp_value))
            rounded = _local_search(
                component.sets,
                _lp_rounding(component, x, costs=costs),
                costs=costs,
            )
            if _ids_cost(rounded, costs) < _ids_cost(upper, costs):
                upper = rounded
    return lower, upper


def resilience_bounds(
    database: Database,
    query: ConjunctiveQuery,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    weighted: bool = False,
) -> BoundedResilienceResult:
    """Certified interval ``lb <= rho(q, D) <= ub`` in polynomial time.

    Runs the LP relaxation, greedy, LP rounding, and local search per
    component of the preprocessed witness structure and sums the
    per-component intervals (plus the forced tuples).  No search is
    performed — see :func:`resilience_anytime` for budgeted refinement.
    With ``weighted=True`` every bound certifies the weighted optimum
    (cost sums replace cardinalities throughout).
    """
    if structure is None:
        structure = witness_structure(
            database, query, index=index, weighted=weighted
        )
    if not structure.satisfied:
        return BoundedResilienceResult(0, 0, frozenset(), method="unsatisfied")
    costs = structure.costs if weighted else None
    lower = _ids_cost(structure.forced_ids, costs)
    chosen: Set[int] = set(structure.forced_ids)
    upper = lower
    for component in structure.components:
        lb_c, ub_set = _component_interval(component, costs=costs)
        lower += lb_c
        upper += _ids_cost(ub_set, costs)
        chosen |= ub_set
    return BoundedResilienceResult(
        lower, upper, structure.tuples(chosen), method="lp+greedy"
    )


def resilience_anytime(
    database: Database,
    query: ConjunctiveQuery,
    budget: Optional[Budget] = None,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    on_interval: Optional[Callable[[int, int], None]] = None,
    weighted: bool = False,
) -> BoundedResilienceResult:
    """Anytime resilience: certified interval, refined within a budget.

    Starts from the polynomial bounds of :func:`resilience_bounds`,
    then spends the :class:`~repro.resilience.types.Budget` on a
    budgeted branch and bound over the components whose interval has
    not closed, hardest (largest gap) last so easy components close
    first.  Abandoned subtrees still certify a lower bound, so the
    returned interval is valid whatever the budget.  With an unlimited
    budget (the default) the search completes and the result is exact —
    equal to :func:`repro.resilience.exact.resilience_exact`.

    ``on_interval`` streams progress: it is called with the *global*
    certified interval ``(lb, ub)`` once after the polynomial bounds
    and again whenever refinement tightens it — each published interval
    is itself certified, ``lb`` never decreases, ``ub`` never
    increases, and the final call matches the returned result (the
    serving tier's streaming responses are exactly this sequence).  The
    callback must not raise; it observes the solve, never steers it.
    """
    budget = Budget.coerce(budget)
    if structure is None:
        structure = witness_structure(
            database, query, index=index, weighted=weighted
        )
    if not structure.satisfied:
        if on_interval is not None:
            on_interval(0, 0)
        return BoundedResilienceResult(0, 0, frozenset(), method="unsatisfied")

    costs = structure.costs if weighted else None
    meter = _BudgetMeter(budget)
    intervals: List[Tuple[int, Set[int]]] = []
    for component in structure.components:
        intervals.append(_component_interval(component, costs=costs))

    forced = _ids_cost(structure.forced_ids, costs)

    def _global_interval() -> Tuple[int, int]:
        # Components partition the tuple universe (and exclude forced
        # tuples), so the global interval is a plain sum.
        lo = forced + sum(lb_c for lb_c, _ in intervals)
        hi = forced + sum(_ids_cost(ub_set, costs) for _, ub_set in intervals)
        return lo, hi

    last_published: Optional[Tuple[int, int]] = None

    def _publish() -> None:
        nonlocal last_published
        if on_interval is None:
            return
        current = _global_interval()
        if current != last_published:
            last_published = current
            on_interval(*current)

    _publish()

    # Refine smallest-gap components first: their searches finish
    # fastest, so a tight budget closes as many intervals as possible.
    order = sorted(
        range(len(intervals)),
        key=lambda i: (_ids_cost(intervals[i][1], costs) - intervals[i][0], i),
    )
    for i in order:
        lb_c, ub_set = intervals[i]
        if lb_c >= _ids_cost(ub_set, costs):
            continue
        component = structure.components[i]
        bnb_lb, bnb_set, completed = _budgeted_bnb(
            component.sets, ub_set, meter, costs=costs
        )
        if _ids_cost(bnb_set, costs) < _ids_cost(ub_set, costs):
            ub_set = bnb_set
        lb_c = _ids_cost(ub_set, costs) if completed else max(lb_c, bnb_lb)
        intervals[i] = (lb_c, ub_set)
        _publish()

    lower = forced
    upper = forced
    chosen: Set[int] = set(structure.forced_ids)
    for lb_c, ub_set in intervals:
        lower += lb_c
        upper += _ids_cost(ub_set, costs)
        chosen |= ub_set
    return BoundedResilienceResult(
        lower, upper, structure.tuples(chosen), method="anytime"
    )
