"""Exact resilience via minimum hitting set.

Resilience equals minimum hitting set over the witness structure: every
witness of ``D |= q`` contributes the set of endogenous tuples it uses,
and a contingency set is exactly a set of endogenous tuples intersecting
every witness (deleting them destroys all witnesses, and destroying all
witnesses is the only way to falsify the query).

Both solvers consume a preprocessed
:class:`~repro.witness.structure.WitnessStructure` — witnesses are
enumerated once per (query, database) pair, kernelized (superset
elimination, unit-witness forcing, dominated-tuple elimination), and
decomposed into connected components that are solved independently and
summed:

* :func:`resilience_branch_and_bound` — pure-Python branch and bound
  with greedy seeding and lower-bound pruning via disjoint witnesses;
* :func:`resilience_ilp` — an integer program built directly from the
  structure's CSR incidence matrix and solved by scipy's ``milp``
  (HiGHS), which scales further.

Both are exponential in the worst case (minimum hitting set is NP-hard
— Theorem 24 maps exactly which queries force this), but comfortably
handle the gadget databases used to *verify* the reductions.  For
instances beyond their reach, :mod:`repro.resilience.approx` computes
certified intervals from the same structure.

The greedy seeding and the disjoint-witness pruning bound used here are
shared with the approximate tier: see
:func:`repro.resilience.approx.greedy_hitting_set` and
:func:`repro.resilience.approx.disjoint_witness_lower_bound` (their
historical private aliases below keep old imports working).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import FrozenSet, Optional, Sequence, Set, TypeVar

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex, satisfies
from repro.resilience.approx import (
    _BudgetMeter,
    _budgeted_bnb,
    disjoint_witness_lower_bound as _disjoint_lower_bound,
    greedy_hitting_set as _greedy_hitting_set,
)
from repro.resilience.types import Budget, ResilienceResult
from repro.witness import WitnessComponent, WitnessStructure, witness_structure

T = TypeVar("T")


def is_contingency_set(
    database: Database, query: ConjunctiveQuery, gamma: Set[DBTuple]
) -> bool:
    """Is ``gamma`` a contingency set — ``D - gamma`` falsifies ``q``?"""
    return not satisfies(database.minus(gamma), query)


# ---------------------------------------------------------------------------
# Branch and bound
# ---------------------------------------------------------------------------

def _bnb_component(sets: Sequence[FrozenSet[int]], costs=None) -> Set[int]:
    """Minimum(-cost) hitting set of one component by branch and bound.

    Branches on the tuples of a smallest currently-unhit witness
    (deterministic sorted order); prunes with a disjoint-witness lower
    bound and the greedy incumbent.  The search itself is
    :func:`repro.resilience.approx._budgeted_bnb` run with an unlimited
    budget — one shared implementation guarantees the anytime tier's
    "unlimited budget equals exact" contract by construction.  With
    ``costs`` the objective (and the shared search) is the cost sum.
    """
    _, best_set, completed = _budgeted_bnb(
        sets,
        _greedy_hitting_set(sets, costs=costs),
        _BudgetMeter(Budget()),
        costs=costs,
    )
    assert completed  # unlimited budget always finishes
    return best_set


@lru_cache(maxsize=1)
def _milp_tools():
    """The scipy.optimize symbols the ILP backend needs, resolved once.

    Import-time safe: ``repro.resilience.exact`` stays importable
    without paying the scipy.optimize import, but per-call solves no
    longer re-execute the import machinery either (the old code
    imported inside ``_ilp_component`` on every component).
    """
    from scipy.optimize import Bounds, LinearConstraint, milp

    return Bounds, LinearConstraint, milp


def _ilp_component(component: WitnessComponent, costs=None) -> Set[int]:
    """Minimum(-cost) hitting set of one component as a 0/1 integer program.

    ``min sum(c_t x_t)`` subject to ``A x >= 1`` where ``A`` is the
    component's CSR incidence matrix (``c_t = 1`` unweighted); solved
    by scipy's HiGHS-backed ``milp``.
    """
    Bounds, LinearConstraint, milp = _milp_tools()

    A = component.incidence_matrix()
    m, n = A.shape
    if costs is None:
        c = np.ones(n)
    else:
        c = np.array([costs[t] for t in component.tuple_ids], dtype=float)
    constraint = LinearConstraint(A, lb=np.ones(m), ub=np.full(m, np.inf))
    result = milp(
        c=c,
        constraints=[constraint],
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
    )
    if not result.success:  # pragma: no cover - HiGHS is reliable here
        raise RuntimeError(f"ILP solver failed: {result.message}")
    return {
        component.tuple_ids[j] for j in range(n) if result.x[j] > 0.5
    }


def _solve_structure(
    ws: WitnessStructure, backend, method: str, weighted: bool = False
) -> ResilienceResult:
    """Sum per-component optima plus the forced tuples."""
    chosen: Set[int] = set(ws.forced_ids)
    for component in ws.components:
        chosen |= backend(component)
    value = ws.cost_of(chosen) if weighted else len(chosen)
    return ResilienceResult(value, ws.tuples(chosen), method=method)


def resilience_branch_and_bound(
    database: Database,
    query: ConjunctiveQuery,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    weighted: bool = False,
) -> ResilienceResult:
    """Exact resilience via branch and bound on the hitting-set problem.

    Consumes the preprocessed witness structure (built, or fetched from
    the cache, when ``structure`` is not supplied; ``index`` is used
    for enumeration on a cache miss) and solves each connected
    component independently.  With ``weighted=True`` the structure is
    built cost-aware and the search minimizes the cost sum.
    """
    if structure is None:
        structure = witness_structure(
            database, query, index=index, weighted=weighted
        )
    costs = structure.costs if weighted else None
    return _solve_structure(
        structure,
        lambda comp: _bnb_component(comp.sets, costs=costs),
        "branch-and-bound",
        weighted=weighted,
    )


# ---------------------------------------------------------------------------
# Integer programming (scipy / HiGHS)
# ---------------------------------------------------------------------------

def resilience_ilp(
    database: Database,
    query: ConjunctiveQuery,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    weighted: bool = False,
) -> ResilienceResult:
    """Exact resilience as per-component 0/1 integer programs.

    Each connected component of the preprocessed witness structure
    yields one ILP over its CSR incidence matrix; optima are summed
    together with the forced tuples.  With ``weighted=True`` the
    objective carries the per-tuple costs.
    """
    if structure is None:
        structure = witness_structure(
            database, query, index=index, weighted=weighted
        )
    costs = structure.costs if weighted else None
    return _solve_structure(
        structure,
        lambda comp: _ilp_component(comp, costs=costs),
        "ilp",
        weighted=weighted,
    )


def choose_backend(structure: WitnessStructure) -> str:
    """The ``prefer="auto"`` rule: ``"ilp"`` or ``"bnb"``.

    ILP for larger *reduced* witness structures, branch and bound for
    small — decided per structure after preprocessing, so instances
    that kernelize well stay on the cheap pure-Python path.  The single
    source of truth for every caller that must replicate the automatic
    choice (the parallel coordinator and the incremental session both
    assemble per-component results under this rule); the planner's
    default cost model reproduces exactly this threshold from its
    ``kernel_size`` feature.
    """
    largest = max((len(c.sets) for c in structure.components), default=0)
    if largest > 60 or structure.stats.tuples_final > 40:
        return "ilp"
    return "bnb"


def solver_backend_override() -> Optional[str]:
    """A forced exact backend, or ``None`` for the per-structure rule.

    Precedence mirrors every other layer: ``REPRO_SOLVER_BACKEND``
    (``bnb``/``ilp``) wins when set, then an active planner plan whose
    ``solver`` is not ``"auto"`` (the plan only pins a backend when the
    kernelized shape was already known at planning time), then ``None``
    — callers fall through to :func:`choose_backend`.  Both backends
    return optima of equal value (sets may differ), so the override is
    value-invisible.
    """
    backend = os.environ.get("REPRO_SOLVER_BACKEND")
    if backend is not None:
        if backend not in ("bnb", "ilp"):
            raise ValueError(
                f"REPRO_SOLVER_BACKEND={backend!r} (expected 'bnb' or 'ilp')"
            )
        return backend
    from repro.planner import active_plan

    plan = active_plan()
    if plan is not None and plan.solver in ("bnb", "ilp"):
        return plan.solver
    return None


def effective_backend(structure: WitnessStructure) -> str:
    """The backend an automatic exact solve will actually run.

    :func:`solver_backend_override` when present, else
    :func:`choose_backend` — used by :func:`resilience_exact` and by
    the parallel coordinator, so serial solves, component tasks, and
    forced configurations always agree.
    """
    forced = solver_backend_override()
    return forced if forced is not None else choose_backend(structure)


def resilience_exact(
    database: Database,
    query: ConjunctiveQuery,
    prefer: str = "auto",
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    weighted: bool = False,
) -> ResilienceResult:
    """Exact resilience, choosing a backend.

    ``prefer`` is ``"auto"`` (the :func:`choose_backend` rule),
    ``"ilp"``, or ``"bnb"``.  ``weighted=True`` minimizes the summed
    tuple costs instead of the cardinality.
    """
    ws = (
        structure
        if structure is not None
        else witness_structure(database, query, index=index, weighted=weighted)
    )
    if prefer == "ilp":
        return resilience_ilp(database, query, structure=ws, weighted=weighted)
    if prefer == "bnb":
        return resilience_branch_and_bound(
            database, query, structure=ws, weighted=weighted
        )
    if prefer != "auto":
        raise ValueError(f"unknown backend preference {prefer!r}")
    if effective_backend(ws) == "ilp":
        return resilience_ilp(database, query, structure=ws, weighted=weighted)
    return resilience_branch_and_bound(
        database, query, structure=ws, weighted=weighted
    )
