"""Exact resilience via minimum hitting set.

Resilience equals minimum hitting set over the witness structure: every
witness of ``D |= q`` contributes the set of endogenous tuples it uses,
and a contingency set is exactly a set of endogenous tuples intersecting
every witness (deleting them destroys all witnesses, and destroying all
witnesses is the only way to falsify the query).

Two exact solvers are provided and cross-checked in tests:

* :func:`resilience_branch_and_bound` — pure-Python branch and bound
  with greedy seeding and lower-bound pruning via disjoint witnesses;
* :func:`resilience_ilp` — an integer program solved by scipy's
  ``milp`` (HiGHS), which scales further.

Both are exponential in the worst case (minimum hitting set is NP-hard,
which is the point of the paper), but comfortably handle the gadget
databases used to *verify* the reductions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import satisfies, witness_tuple_sets
from repro.resilience.types import ResilienceResult, UnbreakableQueryError


def _witness_sets(
    database: Database, query: ConjunctiveQuery
) -> List[FrozenSet[DBTuple]]:
    sets = witness_tuple_sets(database, query, endogenous_only=True)
    for s in sets:
        if not s:
            raise UnbreakableQueryError(
                "a witness uses only exogenous tuples; the query cannot be "
                "falsified by endogenous deletions"
            )
    return sets


def _reduce_witnesses(
    sets: List[FrozenSet[DBTuple]],
) -> List[FrozenSet[DBTuple]]:
    """Drop witnesses that are supersets of others.

    Hitting a subset hits all its supersets, so only inclusion-minimal
    witness sets matter.  This reduction is crucial for gadget databases
    where e.g. a single tuple forms a witness on its own.
    """
    sets_sorted = sorted(set(sets), key=len)
    kept: List[FrozenSet[DBTuple]] = []
    for s in sets_sorted:
        if not any(k <= s for k in kept):
            kept.append(s)
    return kept


def is_contingency_set(
    database: Database, query: ConjunctiveQuery, gamma: Set[DBTuple]
) -> bool:
    """Is ``gamma`` a contingency set — ``D - gamma`` falsifies ``q``?"""
    return not satisfies(database.minus(gamma), query)


# ---------------------------------------------------------------------------
# Branch and bound
# ---------------------------------------------------------------------------

def _greedy_hitting_set(sets: Sequence[FrozenSet[DBTuple]]) -> Set[DBTuple]:
    """Greedy upper bound: repeatedly take the tuple hitting most sets."""
    remaining = list(sets)
    chosen: Set[DBTuple] = set()
    while remaining:
        counts: Dict[DBTuple, int] = {}
        for s in remaining:
            for t in s:
                counts[t] = counts.get(t, 0) + 1
        best = max(counts, key=lambda t: (counts[t], repr(t)))
        chosen.add(best)
        remaining = [s for s in remaining if best not in s]
    return chosen


def _disjoint_lower_bound(sets: Sequence[FrozenSet[DBTuple]]) -> int:
    """Greedy packing of pairwise-disjoint witnesses: a hitting-set lower bound."""
    used: Set[DBTuple] = set()
    count = 0
    for s in sorted(sets, key=len):
        if not (s & used):
            used.update(s)
            count += 1
    return count


def resilience_branch_and_bound(
    database: Database, query: ConjunctiveQuery
) -> ResilienceResult:
    """Exact resilience via branch and bound on the hitting-set problem.

    Branches on the tuples of a smallest currently-unhit witness; prunes
    with a disjoint-witness lower bound and the greedy incumbent.
    """
    sets = _reduce_witnesses(_witness_sets(database, query))
    if not sets:
        return ResilienceResult(0, frozenset(), method="branch-and-bound")

    best_set = _greedy_hitting_set(sets)
    best = [len(best_set), frozenset(best_set)]

    def search(remaining: List[FrozenSet[DBTuple]], chosen: Set[DBTuple]) -> None:
        if not remaining:
            if len(chosen) < best[0]:
                best[0] = len(chosen)
                best[1] = frozenset(chosen)
            return
        if len(chosen) + _disjoint_lower_bound(remaining) >= best[0]:
            return
        target = min(remaining, key=len)
        # Deterministic branching order for reproducibility.
        for t in sorted(target):
            chosen.add(t)
            nxt = [s for s in remaining if t not in s]
            search(nxt, chosen)
            chosen.remove(t)

    search(sets, set())
    return ResilienceResult(best[0], best[1], method="branch-and-bound")


# ---------------------------------------------------------------------------
# Integer programming (scipy / HiGHS)
# ---------------------------------------------------------------------------

def resilience_ilp(database: Database, query: ConjunctiveQuery) -> ResilienceResult:
    """Exact resilience as a 0/1 integer program.

    ``min sum(x_t)`` subject to ``sum_{t in w} x_t >= 1`` for every
    witness ``w``; solved by scipy's HiGHS-backed ``milp``.
    """
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import lil_matrix

    sets = _reduce_witnesses(_witness_sets(database, query))
    if not sets:
        return ResilienceResult(0, frozenset(), method="ilp")

    universe = sorted({t for s in sets for t in s})
    index = {t: i for i, t in enumerate(universe)}
    n = len(universe)
    m = len(sets)
    A = lil_matrix((m, n))
    for row, s in enumerate(sets):
        for t in s:
            A[row, index[t]] = 1.0
    constraint = LinearConstraint(A.tocsr(), lb=np.ones(m), ub=np.full(m, np.inf))
    result = milp(
        c=np.ones(n),
        constraints=[constraint],
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
    )
    if not result.success:  # pragma: no cover - HiGHS is reliable here
        raise RuntimeError(f"ILP solver failed: {result.message}")
    chosen = frozenset(
        universe[i] for i in range(n) if result.x[i] > 0.5
    )
    return ResilienceResult(int(round(result.fun)), chosen, method="ilp")


def resilience_exact(
    database: Database,
    query: ConjunctiveQuery,
    prefer: str = "auto",
) -> ResilienceResult:
    """Exact resilience, choosing a backend.

    ``prefer`` is ``"auto"`` (ILP for larger witness structures, branch
    and bound for small), ``"ilp"``, or ``"bnb"``.
    """
    if prefer == "ilp":
        return resilience_ilp(database, query)
    if prefer == "bnb":
        return resilience_branch_and_bound(database, query)
    sets = witness_tuple_sets(database, query, endogenous_only=True)
    n_tuples = len({t for s in sets for t in s})
    if len(sets) > 60 or n_tuples > 40:
        return resilience_ilp(database, query)
    return resilience_branch_and_bound(database, query)
