"""Network flow for linear queries.

For a linear sj-free CQ, resilience equals min cut in the natural flow
network: atoms sit along the linear order, every tuple of an endogenous
atom is a unit-capacity element, exogenous tuples have infinite capacity,
and edges connect compatible tuples of consecutive atoms (Meliou et al.
[31]; summarised in Section 2.4 of the paper).

Correctness hinges on the interval property of linear orders: variables
occupy contiguous atom blocks, so *pairwise* compatibility of consecutive
facts implies a globally consistent valuation — s-t paths coincide with
witnesses.

Proposition 31 extends the same construction to linear queries whose
only self-join is a 2-confluence: the repeated relation's occurrences
become *independent* parallel layers (the same tuple appears as one unit
edge per occurrence), and Lemma 55 shows minimal min cuts never pay for
the same tuple twice — so the flow value still equals resilience.  The
solver accepts any linear query and exposes the per-occurrence layering;
the dispatcher decides when using it is sound.

**Weighted instances** (``weighted=True``): each endogenous tuple edge
carries the tuple's cost as its capacity, so the min cut minimizes the
summed deletion cost directly.  This is sound only when no endogenous
relation repeats across layers — a tuple appearing as several parallel
edges would be charged once per layer, and (unlike the unit case)
Lemma 55's never-pay-twice argument does not transfer to weighted
minimal cuts.  The dispatcher only routes weighted instances here when
the query is linear with *no* endogenous self-join after normalization;
the solver additionally verifies the cost accounting on the way out.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import satisfies
from repro.resilience.flownet import FlowNetwork
from repro.resilience.types import ResilienceResult, UnbreakableQueryError
from repro.structure.linearity import find_linear_order


class LinearFlowSolver:
    """Resilience via s-t min cut for a linear query.

    Parameters
    ----------
    query:
        A linear CQ.  ``ValueError`` if no linear atom order exists.
    order:
        Optional explicit atom order (indices into ``query.atoms``);
        validated for the interval property when given.
    """

    def __init__(self, query: ConjunctiveQuery, order: Optional[Sequence[int]] = None):
        self.query = query
        if order is None:
            found = find_linear_order(query)
            if found is None:
                raise ValueError(f"query {query!r} is not linear")
            self.order = list(found)
        else:
            self.order = list(order)
            if sorted(self.order) != list(range(len(query.atoms))):
                raise ValueError("order must be a permutation of atom indices")

    # ------------------------------------------------------------------
    def _facts_at(self, database: Database, atom) -> List[DBTuple]:
        rel = database.relations.get(atom.relation)
        if rel is None:
            return []
        out = []
        for fact in rel:
            # Repeated variables inside the atom constrain facts.
            ok = True
            seen: Dict[str, Hashable] = {}
            for var, val in zip(atom.args, fact.values):
                if var in seen and seen[var] != val:
                    ok = False
                    break
                seen[var] = val
            if ok:
                out.append(fact)
        return out

    @staticmethod
    def _compatible(atom_a, fact_a: DBTuple, atom_b, fact_b: DBTuple) -> bool:
        """Do two facts agree on the variables their atoms share?"""
        values: Dict[str, Hashable] = {}
        for var, val in zip(atom_a.args, fact_a.values):
            values[var] = val
        for var, val in zip(atom_b.args, fact_b.values):
            if var in values and values[var] != val:
                return False
        return True

    def _exogenous(self, database: Database, atom) -> bool:
        if atom.exogenous:
            return True
        rel = database.relations.get(atom.relation)
        return rel is not None and rel.exogenous

    # ------------------------------------------------------------------
    def build_network(
        self, database: Database, weighted: bool = False
    ) -> FlowNetwork:
        """The flow network for ``database`` (exposed for inspection)."""
        net = FlowNetwork()
        atoms = [self.query.atoms[i] for i in self.order]
        layers: List[List[DBTuple]] = [self._facts_at(database, a) for a in atoms]

        # Node-split every (position, fact): in -> out carries the
        # capacity (cost if weighted endogenous, 1 if endogenous,
        # inf otherwise).
        for pos, (atom, facts) in enumerate(zip(atoms, layers)):
            exo = self._exogenous(database, atom)
            for fact in facts:
                u = ("in", pos, fact)
                v = ("out", pos, fact)
                if exo:
                    net.add_inf_edge(u, v)
                else:
                    cap = database.cost(fact) if weighted else 1
                    net.add_unit_edge(u, v, payload=fact, capacity=cap)

        for fact in layers[0]:
            net.source_edge(("in", 0, fact))
        last = len(atoms) - 1
        for fact in layers[last]:
            net.sink_edge(("out", last, fact))
        for pos in range(last):
            a, b = atoms[pos], atoms[pos + 1]
            for fa in layers[pos]:
                for fb in layers[pos + 1]:
                    if self._compatible(a, fa, b, fb):
                        net.add_inf_edge(("out", pos, fa), ("in", pos + 1, fb))
        return net

    def solve(
        self, database: Database, weighted: bool = False
    ) -> ResilienceResult:
        """Resilience of the query over ``database`` via min cut.

        With ``weighted=True`` the cut minimizes the summed tuple costs
        (see the module docstring for the soundness precondition the
        dispatcher enforces).
        """
        method = "weighted-linear-flow" if weighted else "linear-flow"
        if not satisfies(database, self.query):
            return ResilienceResult(0, frozenset(), method=method)
        net = self.build_network(database, weighted=weighted)
        try:
            value, payloads = net.min_cut()
        except RuntimeError as exc:
            raise UnbreakableQueryError(
                "an all-exogenous witness makes the min cut infinite"
            ) from exc
        gamma = frozenset(payloads)
        # The same tuple may appear at several positions (Proposition 31
        # layering); Lemma 55 guarantees minimal cuts pay once, so the
        # deduplicated payload cost must equal the flow value.  (The
        # weighted path never sees layered tuples — the dispatcher
        # requires no endogenous self-join — so the check there is a
        # plain cost-accounting audit.)
        paid = database.total_cost(gamma) if weighted else len(gamma)
        if paid != value:
            raise RuntimeError(
                "min cut double-charged a tuple; Lemma 55 precondition violated"
            )
        if satisfies(database.minus(gamma), self.query):
            raise RuntimeError("flow cut is not a contingency set; solver bug")
        return ResilienceResult(value, gamma, method=method)


def resilience_linear_flow(
    database: Database,
    query: ConjunctiveQuery,
    order: Optional[Sequence[int]] = None,
    weighted: bool = False,
) -> ResilienceResult:
    """Convenience wrapper around :class:`LinearFlowSolver`."""
    return LinearFlowSolver(query, order=order).solve(
        database, weighted=weighted
    )
