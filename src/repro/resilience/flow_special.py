"""The paper's bespoke polynomial-time resilience algorithms.

Each function implements one of the paper's "trickier" flow/matching
arguments, for the query shape named in its docstring:
``q_ACconf`` (Proposition 12), ``q_A3perm_R`` (Proposition 13),
``q_perm`` / ``q_Aperm`` (Proposition 33), ``q_z3`` (Proposition 36),
``q_TS3conf`` (Proposition 41), and ``q_Swx3perm_R``
(Proposition 44).  All of them take
the database with the *paper's* relation names (``A``, ``R``, ``B``,
``C``, ``S``, ``T``) and return a :class:`ResilienceResult`; the solver
dispatcher maps an isomorphic user query onto these names first.

Every algorithm here is validated against the exact solvers in the test
suite on randomized databases.

**Weighted instances**: only :func:`solve_qperm` and :func:`solve_qAperm`
accept ``weighted=True`` — their arguments (tuple-disjoint pairs;
bipartite vertex cover) transfer to arbitrary positive costs by putting
each element's cost on its arc.  The other bespoke algorithms rest on
*domination* arguments ("an R-tuple is never better than the A-tuple
behind it", Prop 12/13/36/44) or on Lemma 55's unit-cost never-pay-twice
property (Prop 41's confluence layering), none of which survive non-unit
costs — a cheap dominated tuple can strictly beat its expensive
dominator.  The dispatcher sends weighted instances of those shapes to
the exact weighted hitting-set tier instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import satisfies
from repro.resilience.flownet import FlowNetwork
from repro.resilience.flow_linear import LinearFlowSolver
from repro.resilience.types import ResilienceResult


def _r_pairs(database: Database) -> Tuple[Set[FrozenSet], Set[Tuple]]:
    """Split R-tuples into 2-way pairs and 1-way tuples (Prop 13 lingo).

    A 2-way pair is ``{a, b}`` with both ``R(a,b)`` and ``R(b,a)`` in the
    database; a loop ``R(a,a)`` is the pair ``{a}``.  A 1-way tuple is an
    ``R(a,b)`` without its inverse.
    """
    rel = database.relations.get("R")
    vectors = rel.value_vectors() if rel is not None else set()
    two_way: Set[FrozenSet] = set()
    one_way: Set[Tuple] = set()
    for (a, b) in vectors:
        if (b, a) in vectors:
            two_way.add(frozenset((a, b)))
        else:
            one_way.add((a, b))
    return two_way, one_way


# ---------------------------------------------------------------------------
# Proposition 33 — q_perm and q_Aperm
# ---------------------------------------------------------------------------

def _pair_tuples(pair: FrozenSet) -> List[DBTuple]:
    """The R-tuples forming a 2-way pair, in the deterministic order the
    unweighted solvers delete from (loops yield a single tuple)."""
    items = sorted(pair, key=repr)
    if len(items) == 1:
        return [DBTuple("R", (items[0], items[0]))]
    return [DBTuple("R", (items[0], items[1])), DBTuple("R", (items[1], items[0]))]


def _cheapest_pair_tuple(database: Database, pair: FrozenSet, weighted: bool) -> DBTuple:
    """The pair member to delete: the first in deterministic order
    unweighted, the cheapest (first on ties) weighted."""
    candidates = _pair_tuples(pair)
    if not weighted:
        return candidates[0]
    return min(candidates, key=lambda t: (database.cost(t), candidates.index(t)))


def _pair_cost(database: Database, pair: FrozenSet, weighted: bool) -> int:
    """What breaking a 2-way pair costs: 1 unweighted, the cheapest
    member's cost weighted."""
    if not weighted:
        return 1
    return min(database.cost(t) for t in _pair_tuples(pair))


def solve_qperm(database: Database, weighted: bool = False) -> ResilienceResult:
    """``q_perm :- R(x,y), R(y,x)`` — count witness pairs.

    Each tuple participating in a witness participates in exactly one
    unordered pair ``{R(a,b), R(b,a)}`` (or the loop ``R(a,a)`` alone),
    and distinct pairs are tuple-disjoint, so resilience is exactly the
    number of pairs: one (arbitrary) tuple must go from each.  Weighted,
    the pairs stay disjoint, so the optimum is the sum over pairs of the
    cheaper member's cost — and that member is deleted.
    """
    two_way, _ = _r_pairs(database)
    gamma = set()
    value = 0
    for pair in two_way:
        gamma.add(_cheapest_pair_tuple(database, pair, weighted))
        value += _pair_cost(database, pair, weighted)
    return ResilienceResult(value, frozenset(gamma), method="flow:q_perm")


def solve_qAperm(database: Database, weighted: bool = False) -> ResilienceResult:
    """``q_Aperm :- A(x), R(x,y), R(y,x)`` — bipartite vertex cover.

    A witness is ``A(a)`` plus a 2-way pair containing ``a``.  Break it
    by deleting ``A(a)`` or one tuple of the pair (never both tuples —
    one suffices and the other breaks nothing more).  This is vertex
    cover in the bipartite graph (A-tuples) x (pairs), solved by flow.
    Weighted, the A-arc carries the A-tuple's cost and the pair-arc the
    cheaper pair member's cost — a weighted vertex cover, still exactly
    a min cut.
    """
    two_way, _ = _r_pairs(database)
    rel_a = database.relations.get("A")
    a_values = {t.values[0] for t in rel_a} if rel_a is not None else set()

    net = FlowNetwork()
    pair_nodes = set()
    for pair in two_way:
        members = set(pair)
        touching = members & a_values
        if not touching:
            continue
        pnode = ("pair", pair)
        if pnode not in pair_nodes:
            pair_nodes.add(pnode)
            net.add_unit_edge(
                pnode,
                ("pair_out", pair),
                payload=("pair", pair),
                capacity=_pair_cost(database, pair, weighted),
            )
            net.sink_edge(("pair_out", pair))
        for a in touching:
            anode = ("A", a)
            if not net.graph.has_node(anode):
                a_fact = DBTuple("A", (a,))
                net.add_unit_edge(
                    anode,
                    ("A_out", a),
                    payload=a_fact,
                    capacity=database.cost(a_fact) if weighted else 1,
                )
                net.source_edge(anode)
            net.add_inf_edge(("A_out", a), pnode)
    value, payloads = net.min_cut()
    gamma: Set[DBTuple] = set()
    for p in payloads:
        if isinstance(p, DBTuple):
            gamma.add(p)
        else:
            _, pair = p
            gamma.add(_cheapest_pair_tuple(database, pair, weighted))
    return ResilienceResult(value, frozenset(gamma), method="flow:q_Aperm")


# ---------------------------------------------------------------------------
# Proposition 12 — q_ACconf :- A(x), R(x,y), R(z,y), C(z)
# ---------------------------------------------------------------------------

def solve_qACconf(database: Database) -> ResilienceResult:
    """``q_ACconf`` — R-tuples are never optimal; bipartite vertex cover.

    Proposition 12 shows any contingency set using an R-tuple can be
    rewritten to use ``A``/``C`` tuples instead, so resilience equals
    minimum vertex cover between A-tuples and C-tuples with an edge
    whenever they join through R.
    """
    rel_a = database.relations.get("A")
    rel_c = database.relations.get("C")
    rel_r = database.relations.get("R")
    a_vals = {t.values[0] for t in rel_a} if rel_a is not None else set()
    c_vals = {t.values[0] for t in rel_c} if rel_c is not None else set()
    r_vecs = rel_r.value_vectors() if rel_r is not None else set()

    by_second: Dict[Hashable, Set[Hashable]] = {}
    for (u, v) in r_vecs:
        by_second.setdefault(v, set()).add(u)

    net = FlowNetwork()
    for firsts in by_second.values():
        for a in firsts & a_vals:
            for c in firsts & c_vals:
                anode = ("A", a)
                cnode = ("C", c)
                if not net.graph.has_node(anode):
                    net.add_unit_edge(anode, ("A_out", a), payload=DBTuple("A", (a,)))
                    net.source_edge(anode)
                if not net.graph.has_node(cnode):
                    net.add_unit_edge(cnode, ("C_out", c), payload=DBTuple("C", (c,)))
                    net.sink_edge(("C_out", c))
                net.add_inf_edge(("A_out", a), cnode)
    value, payloads = net.min_cut()
    return ResilienceResult(value, frozenset(payloads), method="flow:q_ACconf")


# ---------------------------------------------------------------------------
# Proposition 13 — q_A3perm_R :- A(x), R(x,y), R(y,z), R(z,y)
# ---------------------------------------------------------------------------

def _perm_r_flow(
    database: Database,
    left_nodes: List[Tuple[Hashable, DBTuple, Hashable]],
    method: str,
    one_way_deletable: bool,
) -> ResilienceResult:
    """Shared network for Propositions 13 and 44.

    ``left_nodes`` lists ``(node_key, payload_tuple, connecting_value)``
    triples: the left layer (``A(a)`` tuples for Prop 13, ``S(e,a)``
    tuples for Prop 44), each connecting onward from value ``a``.  The
    right layer is the 2-way pairs.  An infinite edge joins a left node
    to pair ``{u,v}`` when ``a in {u,v}``; a 1-way tuple ``R(a,u)``
    joins it to every pair containing ``u`` — at infinite capacity for
    Prop 13 (A dominates 1-way tuples) or unit capacity for Prop 44
    (S does not dominate them).
    """
    two_way, one_way = _r_pairs(database)

    net = FlowNetwork()
    pair_node: Dict[FrozenSet, Tuple] = {}
    for pair in two_way:
        u = ("pair_in", pair)
        v = ("pair_out", pair)
        net.add_unit_edge(u, v, payload=("pair", pair))
        net.sink_edge(v)
        pair_node[pair] = u

    pairs_containing: Dict[Hashable, List[FrozenSet]] = {}
    for pair in two_way:
        for member in pair:
            pairs_containing.setdefault(member, []).append(pair)

    one_way_node: Dict[Tuple, Tuple] = {}

    for key, payload, a in left_nodes:
        lin = ("left_in", key)
        lout = ("left_out", key)
        if not net.graph.has_node(lin):
            net.add_unit_edge(lin, lout, payload=payload)
            net.source_edge(lin)
        for pair in pairs_containing.get(a, ()):  # a ∈ {u, v}
            net.add_inf_edge(lout, pair_node[pair])
        for (x, u) in one_way:
            if x != a:
                continue
            targets = pairs_containing.get(u, ())
            if not targets:
                continue
            if one_way_deletable:
                onode = (x, u)
                if onode not in one_way_node:
                    oin = ("ow_in", onode)
                    oout = ("ow_out", onode)
                    net.add_unit_edge(oin, oout, payload=DBTuple("R", (x, u)))
                    one_way_node[onode] = oin
                    for pair in targets:
                        net.add_inf_edge(oout, pair_node[pair])
                net.add_inf_edge(lout, one_way_node[onode])
            else:
                for pair in targets:
                    net.add_inf_edge(lout, pair_node[pair])

    value, payloads = net.min_cut()

    # Translate cut pairs into concrete R-tuples per the papers' rule:
    # keep the tuple pointing away from a surviving left endpoint.
    cut_left_values: Set[Hashable] = set()
    gamma: Set[DBTuple] = set()
    cut_pairs: List[FrozenSet] = []
    for p in payloads:
        if isinstance(p, DBTuple):
            gamma.add(p)
        else:
            cut_pairs.append(p[1])
    surviving_left = {
        a for (_key, payload, a) in left_nodes if payload not in gamma
    }
    for pair in cut_pairs:
        items = sorted(pair, key=repr)
        if len(items) == 1:
            gamma.add(DBTuple("R", (items[0], items[0])))
            continue
        a, b = items
        a_live = a in surviving_left
        b_live = b in surviving_left
        if a_live and not b_live:
            gamma.add(DBTuple("R", (a, b)))
        elif b_live and not a_live:
            gamma.add(DBTuple("R", (b, a)))
        else:
            gamma.add(DBTuple("R", (a, b)))
    return ResilienceResult(value, frozenset(gamma), method=method)


def solve_qA3perm_R(database: Database) -> ResilienceResult:
    """``q_A3perm_R`` — the Proposition 13 flow.

    1-way tuples are never optimal (the A-tuple behind them is at least
    as good), so they appear as infinite connections; the cut chooses
    among A-tuples and 2-way pairs.
    """
    rel_a = database.relations.get("A")
    left = []
    if rel_a is not None:
        for t in rel_a:
            a = t.values[0]
            left.append((("A", a), t, a))
    return _perm_r_flow(database, left, "flow:q_A3perm_R", one_way_deletable=False)


# ---------------------------------------------------------------------------
# Proposition 44 — q_Swx3perm_R :- S(w,x), R(x,y), R(y,z), R(z,y)
# ---------------------------------------------------------------------------

def solve_qSwx3perm_R(database: Database) -> ResilienceResult:
    """``q_Swx3perm_R`` — Proposition 44's modified flow.

    Unlike Prop 13, ``S(e,a)`` does not dominate the 1-way tuple
    ``R(a,b)`` (many ``S(e_i,a)`` may sit behind one ``R(a,b)``), so
    1-way tuples become their own unit-capacity elements.
    """
    rel_s = database.relations.get("S")
    left = []
    if rel_s is not None:
        for t in rel_s:
            e, a = t.values
            left.append((("S", e, a), t, a))
    return _perm_r_flow(database, left, "flow:q_Swx3perm_R", one_way_deletable=True)


# ---------------------------------------------------------------------------
# Proposition 36 — q_z3 :- R(x,x), R(x,y), A(y)
# ---------------------------------------------------------------------------

def solve_qz3(database: Database) -> ResilienceResult:
    """``q_z3`` — off-diagonal R-tuples are never optimal.

    Witnesses are ``{R(a,a), A(a)}`` and ``{R(a,a), R(a,b), A(b)}``;
    any ``R(a,b)`` with ``a != b`` can be swapped for ``R(a,a)`` or
    ``A(b)``, leaving a bipartite vertex cover between loop tuples
    ``R(a,a)`` and ``A``-tuples.
    """
    rel_r = database.relations.get("R")
    rel_a = database.relations.get("A")
    r_vecs = rel_r.value_vectors() if rel_r is not None else set()
    a_vals = {t.values[0] for t in rel_a} if rel_a is not None else set()

    loops = {a for (a, b) in r_vecs if a == b}
    out_edges: Dict[Hashable, Set[Hashable]] = {}
    for (a, b) in r_vecs:
        out_edges.setdefault(a, set()).add(b)

    net = FlowNetwork()
    for a in loops:
        # targets joining R(a,a) to A(b): b = a itself, or b with R(a,b).
        targets = ({a} | out_edges.get(a, set())) & a_vals
        if not targets:
            continue
        lnode = ("loop", a)
        net.add_unit_edge(lnode, ("loop_out", a), payload=DBTuple("R", (a, a)))
        net.source_edge(lnode)
        for b in targets:
            anode = ("A", b)
            if not net.graph.has_node(anode):
                net.add_unit_edge(anode, ("A_out", b), payload=DBTuple("A", (b,)))
                net.sink_edge(("A_out", b))
            net.add_inf_edge(("loop_out", a), anode)
    value, payloads = net.min_cut()
    return ResilienceResult(value, frozenset(payloads), method="flow:q_z3")


# ---------------------------------------------------------------------------
# Proposition 41 — q_TS3conf :- T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)
# ---------------------------------------------------------------------------

def solve_qTS3conf(database: Database, query: ConjunctiveQuery) -> ResilienceResult:
    """``q_TS3conf`` — forced tuples plus a linear flow.

    Any ``R(a,b)`` with both ``T(a,b)`` and ``S(a,b)`` present forms a
    one-tuple witness (set ``x=z=a, y=w=b``) and is forced into every
    contingency set.  After deleting those, the remaining problem is the
    standard flow over the linear order ``T/R(x,y), R(z,y), R(z,w)/S``
    with the three R-occurrences as independent layers (Prop 31 style).
    """
    rel_r = database.relations.get("R")
    rel_t = database.relations.get("T")
    rel_s = database.relations.get("S")
    r_facts = set(rel_r) if rel_r is not None else set()
    t_vecs = rel_t.value_vectors() if rel_t is not None else set()
    s_vecs = rel_s.value_vectors() if rel_s is not None else set()

    forced = {
        f for f in r_facts if f.values in t_vecs and f.values in s_vecs
    }
    reduced = database.minus(forced) if forced else database
    if not satisfies(reduced, query):
        return ResilienceResult(
            len(forced), frozenset(forced), method="flow:q_TS3conf"
        )
    flow = LinearFlowSolver(query).solve(reduced)
    return ResilienceResult(
        len(forced) + flow.value,
        frozenset(forced) | flow.contingency_set,
        method="flow:q_TS3conf",
    )
