"""A small capacitated-network helper on top of networkx.

The paper's PTIME algorithms — the linear-flow construction of
Section 2.4 / Proposition 31 and the bespoke algorithms of
Propositions 12, 13, 33, 36, 41, and 44 — all reduce resilience to s-t
minimum cut in networks where *tuples* are unit-capacity elements and
everything else has infinite capacity.  :class:`FlowNetwork` wraps
networkx's max-flow with the two idioms every construction here needs:

* **element edges**: a deletable tuple is modelled as an edge
  ``u -> v`` of capacity 1 carrying a payload (the tuple);
* **infinite edges**: structural connections that may never be cut,
  modelled with a capacity strictly larger than the sum of all unit
  capacities (so any finite min cut avoids them).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx


class FlowNetwork:
    """A directed flow network with payload-carrying unit edges."""

    SOURCE = "__source__"
    SINK = "__sink__"

    def __init__(self):
        self.graph = nx.DiGraph()
        self.graph.add_node(self.SOURCE)
        self.graph.add_node(self.SINK)
        self._unit_edges: List[Tuple[Hashable, Hashable]] = []

    # ------------------------------------------------------------------
    def add_unit_edge(self, u: Hashable, v: Hashable, payload) -> None:
        """An edge of capacity 1 representing a deletable tuple.

        Parallel unit edges between the same node pair are merged by
        capacity addition in networkx, which would corrupt payload
        bookkeeping — constructions must use distinct intermediate nodes
        for distinct payloads (they all do).
        """
        if self.graph.has_edge(u, v):
            raise ValueError(f"duplicate edge {u!r} -> {v!r}")
        self.graph.add_edge(u, v, capacity=1.0, payload=payload)
        self._unit_edges.append((u, v))

    def add_inf_edge(self, u: Hashable, v: Hashable) -> None:
        """A structural edge that no finite cut uses."""
        if self.graph.has_edge(u, v):
            return
        self.graph.add_edge(u, v, capacity=float("inf"), payload=None)

    def source_edge(self, v: Hashable) -> None:
        """Infinite edge from the source."""
        self.add_inf_edge(self.SOURCE, v)

    def sink_edge(self, u: Hashable) -> None:
        """Infinite edge to the sink."""
        self.add_inf_edge(u, self.SINK)

    # ------------------------------------------------------------------
    def min_cut(self) -> Tuple[int, List]:
        """(cut value, payloads of cut unit edges).

        The cut is the one induced by networkx's max-flow residual
        partition; like every *minimum* cut it is inclusion-minimal,
        which is the property Lemma 55 needs when the same tuple
        appears as several parallel unit edges (callers additionally
        verify that payload deduplication does not shrink the cut).
        """
        if self.graph.out_degree(self.SOURCE) == 0 or self.graph.in_degree(self.SINK) == 0:
            return 0, []
        try:
            value, partition = nx.minimum_cut(
                self.graph, self.SOURCE, self.SINK, capacity="capacity"
            )
        except nx.NetworkXUnbounded as exc:
            raise RuntimeError("min cut is infinite (all-infinite s-t path)") from exc
        if value == float("inf"):  # pragma: no cover - constructions forbid this
            raise RuntimeError("min cut is infinite; construction bug")
        reachable, _ = partition
        payloads = []
        for u, v in self._unit_edges:
            if u in reachable and v not in reachable:
                payloads.append(self.graph.edges[u, v]["payload"])
        # Cut value counts capacities; all cut unit edges have capacity 1.
        return int(round(value)), payloads
