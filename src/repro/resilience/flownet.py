"""A small capacitated-network helper with a C-backed min-cut core.

The paper's PTIME algorithms — the linear-flow construction of
Section 2.4 / Proposition 31 and the bespoke algorithms of
Propositions 12, 13, 33, 36, 41, and 44 — all reduce resilience to s-t
minimum cut in networks where *tuples* are unit-capacity elements and
everything else has effectively infinite capacity.  :class:`FlowNetwork`
wraps that pattern with the two idioms every construction here needs:

* **element edges**: a deletable tuple is modelled as an edge
  ``u -> v`` of integer capacity 1 carrying a payload (the tuple); in
  the *weighted* problem the capacity is the tuple's cost instead, so
  the min cut directly minimizes the summed deletion cost;
* **infinite edges**: structural connections that may never be cut,
  modelled with an integer big-M capacity strictly larger than the sum
  of all unit capacities (so any finite min cut avoids them; a computed
  cut of value >= M means an all-infinite s-t path, which the
  constructions forbid).

All capacities are integers — no ``float("inf")``, no float arithmetic,
no rounding repair on the way out.

Backend selection (``REPRO_FLOW_BACKEND``)
------------------------------------------
``csgraph`` (default)
    Max flow via :func:`scipy.sparse.csgraph.maximum_flow` over interned
    integer nodes, with the cut extracted by a residual-graph BFS.  This
    is the hot path: the flow core runs in C.
``networkx``
    The original :func:`networkx.minimum_cut` path, kept as the
    reference oracle.

Both backends return a minimum cut of the *same value* whose cut is
induced by a residual partition of a maximum flow — hence
inclusion-minimal, which is exactly the property Lemma 55 needs when
one tuple appears as several parallel unit edges (callers additionally
verify that payload deduplication does not shrink the cut).  The
concrete cut *sets* may differ: ``csgraph`` extracts the source side
reachable in the residual graph (the unique minimum cut closest to the
source), while networkx's partition yields the cut closest to the
sink.  Each backend is individually deterministic; the property suite
in ``tests/test_flow_backends.py`` checks value equality and cut
validity/minimality across backends on the full special-solver zoo.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, List, Set, Tuple

import networkx as nx


def flow_backend() -> str:
    """The min-cut backend: ``REPRO_FLOW_BACKEND``, planner plan, or
    the ``csgraph`` default.

    The environment variable wins when set; otherwise a solve running
    under a planner plan (:func:`repro.planner.active_plan`) uses the
    plan's ``flow`` choice.  Both backends return min cuts of equal
    value (the certificates may differ — see the module docstring), so
    the choice is value-invisible either way.
    """
    backend = os.environ.get("REPRO_FLOW_BACKEND")
    if backend is None:
        from repro.planner import active_plan

        plan = active_plan()
        backend = plan.flow if plan is not None else "csgraph"
    if backend not in ("csgraph", "networkx"):
        raise ValueError(
            f"REPRO_FLOW_BACKEND={backend!r} (expected 'csgraph' or 'networkx')"
        )
    return backend


class FlowNetwork:
    """A directed flow network with payload-carrying unit edges."""

    SOURCE = "__source__"
    SINK = "__sink__"

    def __init__(self):
        self.graph = nx.DiGraph()
        self.graph.add_node(self.SOURCE)
        self.graph.add_node(self.SINK)
        self._unit_edges: List[Tuple[Hashable, Hashable]] = []

    # ------------------------------------------------------------------
    def add_unit_edge(
        self, u: Hashable, v: Hashable, payload, capacity: int = 1
    ) -> None:
        """An edge of finite capacity representing a deletable tuple.

        ``capacity`` defaults to 1 (the unweighted construction); the
        weighted constructions pass the tuple's cost, so cutting the
        edge charges exactly that cost to the min cut.

        Parallel unit edges between the same node pair are merged by
        capacity addition in networkx, which would corrupt payload
        bookkeeping — constructions must use distinct intermediate nodes
        for distinct payloads (they all do).
        """
        if self.graph.has_edge(u, v):
            raise ValueError(f"duplicate edge {u!r} -> {v!r}")
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"unit-edge capacity must be a positive int, got {capacity!r}")
        self.graph.add_edge(u, v, capacity=capacity, payload=payload)
        self._unit_edges.append((u, v))

    def add_inf_edge(self, u: Hashable, v: Hashable) -> None:
        """A structural edge that no finite cut uses.

        The concrete big-M capacity is materialized at solve time (it
        must exceed the number of unit edges, which is only known then).
        """
        if self.graph.has_edge(u, v):
            return
        self.graph.add_edge(u, v, capacity=None, payload=None)

    def source_edge(self, v: Hashable) -> None:
        """Infinite edge from the source."""
        self.add_inf_edge(self.SOURCE, v)

    def sink_edge(self, u: Hashable) -> None:
        """Infinite edge to the sink."""
        self.add_inf_edge(u, self.SINK)

    # ------------------------------------------------------------------
    def min_cut(self) -> Tuple[int, List]:
        """(cut value, payloads of cut unit edges).

        The returned cut is the one induced by the residual-graph
        source partition of a maximum flow — the unique
        inclusion-minimal min cut (the property Lemma 55 needs).  The
        value is an exact integer: element edges carry their integer
        capacity (1 unweighted, the tuple cost weighted), and a value
        reaching the big-M bound (an all-infinite s-t path, which the
        constructions forbid) raises ``RuntimeError``.
        """
        if self.graph.out_degree(self.SOURCE) == 0 or self.graph.in_degree(self.SINK) == 0:
            return 0, []
        # Strictly above the sum of all finite capacities, so no finite
        # cut ever prefers an infinite edge — weighted or not.
        big_m = sum(
            self.graph.edges[u, v]["capacity"] for u, v in self._unit_edges
        ) + 1
        if flow_backend() == "networkx":
            value, reachable = self._min_cut_networkx(big_m)
        else:
            value, reachable = self._min_cut_csgraph(big_m)
        if value >= big_m:
            raise RuntimeError("min cut is infinite (all-infinite s-t path)")
        payloads = []
        for u, v in self._unit_edges:
            if u in reachable and v not in reachable:
                payloads.append(self.graph.edges[u, v]["payload"])
        # Cut value sums the capacities (= costs) of the cut element edges.
        return value, payloads

    # ------------------------------------------------------------------
    def _min_cut_networkx(self, big_m: int) -> Tuple[int, Set[Hashable]]:
        """The reference backend: networkx ``minimum_cut``."""
        for _u, _v, data in self.graph.edges(data=True):
            if data["payload"] is None:
                data["capacity"] = big_m
        value, partition = nx.minimum_cut(
            self.graph, self.SOURCE, self.SINK, capacity="capacity"
        )
        reachable, _ = partition
        return int(value), set(reachable)

    def _min_cut_csgraph(self, big_m: int) -> Tuple[int, Set[Hashable]]:
        """The C-backed backend: scipy csgraph max flow + residual BFS.

        Nodes are interned to dense integers, capacities go into one
        int64 CSR matrix, and the source side is recovered as the nodes
        reachable in the residual matrix ``capacity - flow`` (scipy
        materializes reverse-flow entries, so positive residuals cover
        both unsaturated forward edges and undoable flow).
        """
        import numpy as np
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import breadth_first_order, maximum_flow

        nodes = list(self.graph.nodes)
        index: Dict[Hashable, int] = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        rows = np.empty(self.graph.number_of_edges(), dtype=np.int64)
        cols = np.empty_like(rows)
        caps = np.empty_like(rows)
        for k, (u, v, data) in enumerate(self.graph.edges(data=True)):
            rows[k] = index[u]
            cols[k] = index[v]
            caps[k] = data["capacity"] if data["payload"] is not None else big_m
        capacity = csr_matrix((caps, (rows, cols)), shape=(n, n))
        result = maximum_flow(
            capacity, index[self.SOURCE], index[self.SINK]
        )
        residual = capacity - result.flow
        residual.eliminate_zeros()
        order = breadth_first_order(
            residual, index[self.SOURCE], directed=True,
            return_predecessors=False,
        )
        return int(result.flow_value), {nodes[i] for i in order}
