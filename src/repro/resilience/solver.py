"""Dispatching resilience solver.

:func:`solve` routes a (query, database) pair to the best available
algorithm:

1. databases not satisfying the query have resilience 0;
2. queries that are *signature-identical* to one of the paper's named
   PTIME queries use the bespoke algorithm proved for them
   (Propositions 12, 13, 33, 36, 41, 44);
3. queries the classifier proves in P via flow — linear queries that are
   self-join-free after normalization, have only exogenous repeats, or
   whose single self-join is a flow-safe confluence (Proposition 31) —
   use the linear flow solver;
4. everything else (NP-complete or open cases, and P cases whose
   polynomial algorithm the paper only sketches) falls back to the
   exact hitting-set solvers.

The returned :class:`ResilienceResult` carries the method used, so
benchmarks can report which algorithm produced each number.

Since exact solving is NP-complete in general (Theorem 24), ``solve``
also exposes the approximate tier: ``mode="approx"`` returns a
certified interval in polynomial time and ``mode="anytime"`` refines it
within a :class:`~repro.resilience.types.Budget`; both return a
:class:`~repro.resilience.types.BoundedResilienceResult`.  Pairs the
dispatcher can solve exactly in polynomial time (cases 1–3 above) come
back as already-closed intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex, satisfies
from repro.query.zoo import ALL_QUERIES
from repro.witness import WitnessStructure
from repro.resilience.exact import resilience_exact
from repro.resilience.flow_linear import LinearFlowSolver
from repro.resilience.flow_special import (
    solve_qACconf,
    solve_qAperm,
    solve_qA3perm_R,
    solve_qSwx3perm_R,
    solve_qTS3conf,
    solve_qperm,
    solve_qz3,
)
from repro.resilience.approx import resilience_anytime, resilience_bounds
from repro.resilience.types import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
)
from repro.structure.classifier import Verdict, classify
from repro.structure.domination import normalize
from repro.structure.linearity import find_linear_order
from repro.structure.patterns import CONFLUENCE, two_atom_pattern


def _special_solvers() -> Dict[frozenset, Callable]:
    """Map canonical query signatures to their bespoke algorithms."""
    table = {}

    def register(name: str, fn: Callable) -> None:
        table[ALL_QUERIES[name].canonical_signature()] = fn

    register("q_perm", lambda db, q: solve_qperm(db))
    register("q_Aperm", lambda db, q: solve_qAperm(db))
    register("q_ACconf", lambda db, q: solve_qACconf(db))
    register("q_A3perm_R", lambda db, q: solve_qA3perm_R(db))
    register("q_Swx3perm_R", lambda db, q: solve_qSwx3perm_R(db))
    register("q_TS3conf", solve_qTS3conf)
    register("q_z3", lambda db, q: solve_qz3(db))
    return table


_SPECIALS = _special_solvers()


def _weighted_special_solvers() -> Dict[frozenset, Callable]:
    """The bespoke algorithms that stay exact under arbitrary costs.

    Only ``q_perm`` (tuple-disjoint pairs) and ``q_Aperm`` (bipartite
    vertex cover) qualify; the other specials rest on domination or
    Lemma 55 arguments that break for non-unit costs — see the
    ``flow_special`` module docstring.
    """
    table = {}
    table[ALL_QUERIES["q_perm"].canonical_signature()] = (
        lambda db, q: solve_qperm(db, weighted=True)
    )
    table[ALL_QUERIES["q_Aperm"].canonical_signature()] = (
        lambda db, q: solve_qAperm(db, weighted=True)
    )
    return table


_WEIGHTED_SPECIALS = _weighted_special_solvers()


def _flow_safe(query: ConjunctiveQuery) -> bool:
    """May the linear flow solver be used for this query?

    True when the query is linear and its endogenous self-join structure
    is one the paper proves flow-correct: none at all (sj-free /
    exogenous repeats), or a single 2-confluence (Proposition 31).
    """
    if find_linear_order(query) is None:
        return False
    normalized = normalize(query)
    endo_counts: Dict[str, int] = {}
    for atom in normalized.endogenous_atoms():
        endo_counts[atom.relation] = endo_counts.get(atom.relation, 0) + 1
    repeated = [r for r, c in endo_counts.items() if c >= 2]
    if not repeated:
        return True
    if len(repeated) > 1:
        return False
    pattern = two_atom_pattern(normalized)
    return pattern == CONFLUENCE


def _weighted_flow_safe(query: ConjunctiveQuery) -> bool:
    """May the linear flow solver be used for a *weighted* instance?

    Stricter than :func:`_flow_safe` in two ways.  First, the
    Proposition 31 confluence layering is excluded: its correctness
    rests on Lemma 55's never-pay-twice property of unit-capacity
    minimal cuts, which does not transfer to weighted cuts — a tuple
    appearing in two layers would be charged its cost per layer, and
    the cheapest weighted cut may genuinely differ from any cut the
    layered network can price correctly.  Second, the judgement is made
    on the query *as written*, never on :func:`normalize`'s output:
    normalization re-marks dominated atoms exogenous (sound when every
    deletion costs 1 — a dominating tuple is never a worse pick), but
    under costs a dominated relation may hold the *cheapest* valid
    deletion, so the flow network must keep every endogenous atom of
    the original query chargeable.  Weighted flow is sound exactly when
    every endogenous tuple maps to a single finite-capacity arc: the
    query itself is linear with no endogenous repeats.
    """
    if find_linear_order(query) is None:
        return False
    endo_counts: Dict[str, int] = {}
    for atom in query.endogenous_atoms():
        endo_counts[atom.relation] = endo_counts.get(atom.relation, 0) + 1
    return all(c == 1 for c in endo_counts.values())


@dataclass(frozen=True)
class DispatchPlan:
    """The dispatch decision for one query, computed once and reused.

    ``kind`` is ``"special"``, ``"flow"``, or ``"exact"``; for the
    first two, ``run`` executes the corresponding solver on a
    database.  Exact plans carry ``run=None``: :func:`solve` (and
    :func:`repro.core.solve_batch`) execute them through
    :func:`resilience_exact` so the witness structure and evaluation
    index can be threaded in.  Plans are pure functions of the query's
    canonical signature, so they are cached (:func:`dispatch_plan`) and
    shared across every database the query is solved over — batch
    solving amortizes the classifier, the flow-safety analysis, and
    flow-network setup this way.
    """

    kind: str
    run: Optional[Callable[[Database], ResilienceResult]] = None


@lru_cache(maxsize=256)
def dispatch_plan(query: ConjunctiveQuery, weighted: bool = False) -> DispatchPlan:
    """Decide (and cache) how to solve ``query``, per the module doc.

    The cache key is the query object itself; ``ConjunctiveQuery``
    hashes by canonical signature, so structurally identical queries
    share one plan.  ``weighted=True`` yields the plan for genuinely
    weighted databases: only the cost-sound specials (``q_perm``,
    ``q_Aperm``) and the repeat-free linear flow stay polynomial; every
    other shape routes to the exact weighted hitting-set tier.
    """
    if weighted:
        special = _WEIGHTED_SPECIALS.get(query.canonical_signature())
        if special is not None:
            return DispatchPlan("special", lambda db: special(db, query))
        verdict = classify(query)
        if verdict.verdict == Verdict.P and _weighted_flow_safe(query):
            # The flow always runs on the query as written: the
            # classifier's normalized form may have re-marked dominated
            # atoms exogenous, which is cost-unsound (see
            # _weighted_flow_safe).
            flow = LinearFlowSolver(query)
            return DispatchPlan(
                "flow", lambda db: flow.solve(db, weighted=True)
            )
        return DispatchPlan("exact")

    special = _SPECIALS.get(query.canonical_signature())
    if special is not None:
        return DispatchPlan("special", lambda db: special(db, query))

    verdict = classify(query)
    if verdict.verdict == Verdict.P and _flow_safe(query):
        target = verdict.normalized or query
        if find_linear_order(target) is None:
            target = query
        flow = LinearFlowSolver(target)
        return DispatchPlan("flow", flow.solve)

    return DispatchPlan("exact")


def solve(
    database: Database,
    query: ConjunctiveQuery,
    method: Optional[str] = None,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    mode: str = "exact",
    budget=None,
    on_interval=None,
    weighted: bool = False,
    planner: Optional[bool] = None,
):
    """Compute resilience, dispatching to the appropriate algorithm.

    ``mode`` selects the solving tier:

    * ``"exact"`` (default) — the exact value, as a
      :class:`ResilienceResult`;
    * ``"approx"`` — a certified interval ``lb <= rho <= ub`` in
      polynomial time (LP relaxation + greedy/LP rounding + local
      search), as a :class:`~repro.resilience.types.BoundedResilienceResult`;
    * ``"anytime"`` — the approx interval refined by budgeted branch
      and bound; ``budget`` (a
      :class:`~repro.resilience.types.Budget`, or a number of seconds)
      caps the refinement, and an unlimited budget closes the interval
      on the exact value.

    Pairs the dispatcher solves with a proved polynomial algorithm
    (bespoke or flow) are exact in every mode — the bounded modes wrap
    them as already-closed intervals.

    ``method`` forces a backend on the exact tier: ``"exact"``,
    ``"flow"`` (linear flow), or ``None`` for automatic dispatch; it is
    incompatible with the bounded modes.  A prebuilt
    :class:`~repro.witness.WitnessStructure` for this exact pair may be
    passed to skip re-enumeration on the exact path, and a
    :class:`~repro.query.evaluation.DatabaseIndex` to reuse evaluation
    indexes for the satisfiability probe.

    ``on_interval`` (bounded modes only) streams certified ``(lb, ub)``
    intervals as the solve tightens them — see
    :func:`~repro.resilience.approx.resilience_anytime`; instances
    dispatch solves exactly report their closed interval once.

    ``weighted=True`` minimizes the summed tuple costs
    (:meth:`~repro.db.database.Database.cost`) instead of the
    cardinality.  A weighted solve over a database whose endogenous
    costs are all 1 delegates to the unweighted path — results are
    bit-identical to ``weighted=False``, including methods and
    certificates.

    ``planner`` controls per-instance backend planning
    (:mod:`repro.planner`): ``None`` (default) follows
    ``REPRO_PLANNER`` (on unless set to ``off``), ``True``/``False``
    force it.  When planning is on, a :class:`~repro.planner.Plan` is
    computed from the instance's features and installed for the
    duration of the solve; every engine layer whose backend is not
    pinned by its environment variable then follows the plan.  Plans
    are output-invisible — values, certificates, and intervals are
    bit-identical to the same solve with planning off.
    """
    if mode not in ("exact", "approx", "anytime"):
        raise ValueError(f"unknown mode {mode!r}")
    if on_interval is not None and mode == "exact":
        raise ValueError("on_interval requires a bounded mode")
    # Imported lazily: repro.planner's feature extraction reaches back
    # into this module (dispatch_plan), so the import stays one-way.
    from repro.planner import plan_instance, planner_enabled, use_plan

    # All-unit databases delegate to the unweighted path: same
    # algorithms, same results, bit for bit.
    effective = weighted and database.has_weighted_costs()
    if effective and structure is not None and not structure.weighted:
        # A cost-oblivious prebuilt structure may have kernelized away
        # exactly the cheap tuples a weighted optimum needs; rebuild.
        structure = None
    plan = (
        plan_instance(
            database, query, mode=mode, budget=budget, weighted=effective
        )
        if planner_enabled(planner)
        else None
    )
    with use_plan(plan):
        return _solve_planned(
            database,
            query,
            method=method,
            structure=structure,
            index=index,
            mode=mode,
            budget=budget,
            on_interval=on_interval,
            effective=effective,
        )


def _solve_planned(
    database: Database,
    query: ConjunctiveQuery,
    method: Optional[str],
    structure: Optional[WitnessStructure],
    index: Optional[DatabaseIndex],
    mode: str,
    budget,
    on_interval,
    effective: bool,
):
    """The body of :func:`solve`, run under the (possibly ``None``)
    active plan installed by its caller."""
    if mode != "exact":
        if method is not None:
            raise ValueError("method forcing requires mode='exact'")
        return _solve_bounded(
            database,
            query,
            mode,
            budget,
            structure=structure,
            index=index,
            on_interval=on_interval,
            weighted=effective,
        )
    if method == "exact":
        return resilience_exact(
            database, query, structure=structure, index=index, weighted=effective
        )
    if method == "flow":
        if effective and not _weighted_flow_safe(query):
            raise ValueError(
                "method='flow' is not cost-sound for this query on a "
                "weighted database (confluence layering charges per "
                "occurrence); use automatic dispatch"
            )
        return LinearFlowSolver(query).solve(database, weighted=effective)
    if method is not None:
        raise ValueError(f"unknown method {method!r}")

    if structure is not None:
        satisfied = structure.satisfied
    else:
        satisfied = satisfies(database, query, index=index)
    if not satisfied:
        return ResilienceResult(0, frozenset(), method="unsatisfied")

    plan = dispatch_plan(query, weighted=effective)
    if plan.kind == "exact":
        return resilience_exact(
            database, query, structure=structure, index=index, weighted=effective
        )
    return plan.run(database)


def _solve_bounded(
    database: Database,
    query: ConjunctiveQuery,
    mode: str,
    budget,
    structure: Optional[WitnessStructure] = None,
    index: Optional[DatabaseIndex] = None,
    on_interval=None,
    weighted: bool = False,
) -> BoundedResilienceResult:
    """The ``mode="approx"`` / ``mode="anytime"`` paths of :func:`solve`.

    Polynomial-time dispatch targets (bespoke specials and linear flow,
    cases 1–3 of the module doc) stay exact and come back as closed
    intervals; only the exact-search fallback is approximated.
    ``on_interval`` observes the certified interval: anytime solves
    stream every tightening, while the other paths report their final
    (for dispatch-exact instances: closed) interval once.
    """
    budget = Budget.coerce(budget)
    if structure is not None:
        satisfied = structure.satisfied
    else:
        satisfied = satisfies(database, query, index=index)
    if not satisfied:
        if on_interval is not None:
            on_interval(0, 0)
        return BoundedResilienceResult(0, 0, frozenset(), method="unsatisfied")

    plan = dispatch_plan(query, weighted=weighted)
    if plan.kind != "exact":
        exact = plan.run(database)
        if on_interval is not None:
            on_interval(exact.value, exact.value)
        return BoundedResilienceResult(
            exact.value, exact.value, exact.contingency_set, method=exact.method
        )
    if mode == "approx":
        result = resilience_bounds(
            database, query, structure=structure, index=index, weighted=weighted
        )
        if on_interval is not None:
            on_interval(result.lower_bound, result.upper_bound)
        return result
    return resilience_anytime(
        database,
        query,
        budget=budget,
        structure=structure,
        index=index,
        on_interval=on_interval,
        weighted=weighted,
    )


def resilience(
    database: Database, query: ConjunctiveQuery, weighted: bool = False
) -> int:
    """``rho(q, D)``: just the minimum contingency-set size (or cost)."""
    return solve(database, query, weighted=weighted).value


def in_res(database: Database, query: ConjunctiveQuery, k: int) -> bool:
    """The decision problem: ``(D, k) ∈ RES(q)`` (Definition 1).

    True iff ``D |= q`` and some contingency set of size <= k exists.
    """
    if not satisfies(database, query):
        return False
    return solve(database, query).value <= k
