"""Shared result types and errors for resilience solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.db.tuples import DBTuple


class UnbreakableQueryError(ValueError):
    """Raised when no contingency set exists.

    This happens when some witness uses only exogenous tuples: no
    deletion of endogenous tuples can falsify the query, so resilience
    is undefined (the decision problem answers "no" for every k, and
    the optimization problem has no finite optimum).
    """


@dataclass(frozen=True)
class ResilienceResult:
    """Outcome of a resilience computation.

    Attributes
    ----------
    value:
        ``rho(q, D)`` — the minimum contingency-set size.  Zero when the
        database does not satisfy the query.
    contingency_set:
        A witnessing minimum contingency set (one of possibly many).
    method:
        Name of the algorithm that produced the answer, e.g.
        ``"ilp"``, ``"branch-and-bound"``, ``"linear-flow"``,
        ``"flow:q_A3perm_R"``.
    """

    value: int
    contingency_set: FrozenSet[DBTuple] = field(default_factory=frozenset)
    method: str = ""

    def __repr__(self) -> str:
        gamma = "{" + ", ".join(repr(t) for t in sorted(self.contingency_set)) + "}"
        return f"ResilienceResult(value={self.value}, method={self.method!r}, gamma={gamma})"
