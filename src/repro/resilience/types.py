"""Shared result types and errors for resilience solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.db.tuples import DBTuple

# Detected (and therefore defined) where witnesses are materialized;
# re-exported here, its historical home, so solver-side imports keep
# working: ``from repro.resilience.types import UnbreakableQueryError``.
from repro.witness.structure import UnbreakableQueryError

__all__ = ["ResilienceResult", "UnbreakableQueryError"]


@dataclass(frozen=True)
class ResilienceResult:
    """Outcome of a resilience computation.

    Attributes
    ----------
    value:
        ``rho(q, D)`` — the minimum contingency-set size.  Zero when the
        database does not satisfy the query.
    contingency_set:
        A witnessing minimum contingency set (one of possibly many).
    method:
        Name of the algorithm that produced the answer, e.g.
        ``"ilp"``, ``"branch-and-bound"``, ``"linear-flow"``,
        ``"flow:q_A3perm_R"``.
    """

    value: int
    contingency_set: FrozenSet[DBTuple] = field(default_factory=frozenset)
    method: str = ""

    def __repr__(self) -> str:
        gamma = "{" + ", ".join(repr(t) for t in sorted(self.contingency_set)) + "}"
        return f"ResilienceResult(value={self.value}, method={self.method!r}, gamma={gamma})"
