"""Shared result types and errors for resilience solvers.

``ResilienceResult`` is the outcome of an *exact* computation of
``rho(q, D)`` (Definition 1); ``BoundedResilienceResult`` is the outcome
of an approximate or anytime computation — a certified interval
``lb <= rho(q, D) <= ub`` with a feasible contingency set witnessing the
upper bound.  The interval form exists because exact resilience is
NP-complete for most self-join queries (Theorem 24), so beyond small
instances the solvers of :mod:`repro.resilience.approx` trade exactness
for certified bounds under a :class:`Budget`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Union

from repro.db.tuples import DBTuple

# Detected (and therefore defined) where witnesses are materialized;
# re-exported here, its historical home, so solver-side imports keep
# working: ``from repro.resilience.types import UnbreakableQueryError``.
from repro.witness.structure import UnbreakableQueryError

__all__ = [
    "Budget",
    "BoundedResilienceResult",
    "ResilienceResult",
    "UnbreakableQueryError",
]


@dataclass(frozen=True)
class ResilienceResult:
    """Outcome of a resilience computation.

    Attributes
    ----------
    value:
        ``rho(q, D)`` — the minimum contingency-set size.  Zero when the
        database does not satisfy the query.
    contingency_set:
        A witnessing minimum contingency set (one of possibly many).
    method:
        Name of the algorithm that produced the answer, e.g.
        ``"ilp"``, ``"branch-and-bound"``, ``"linear-flow"``,
        ``"flow:q_A3perm_R"``.
    """

    value: int
    contingency_set: FrozenSet[DBTuple] = field(default_factory=frozenset)
    method: str = ""

    def __repr__(self) -> str:
        gamma = "{" + ", ".join(repr(t) for t in sorted(self.contingency_set)) + "}"
        return f"ResilienceResult(value={self.value}, method={self.method!r}, gamma={gamma})"


@dataclass(frozen=True)
class Budget:
    """Resource limits for the anytime solver.

    ``None`` for a field means unlimited.  An entirely-unlimited budget
    makes ``mode="anytime"`` equivalent to exact solving (the
    branch-and-bound refinement runs to completion and closes the
    interval).

    Attributes
    ----------
    time_limit:
        Wall-clock seconds for the refinement phase.  Checked between
        branch-and-bound nodes, so the limit is soft by one node's work.
    node_limit:
        Maximum number of branch-and-bound nodes expanded across all
        components during refinement.
    """

    time_limit: Optional[float] = None
    node_limit: Optional[int] = None

    @classmethod
    def coerce(cls, value: Union["Budget", float, int, None]) -> "Budget":
        """Accept ``None`` (unlimited), a number (seconds), or a Budget."""
        if value is None:
            return cls()
        if isinstance(value, Budget):
            return value
        if isinstance(value, (int, float)):
            return cls(time_limit=float(value))
        raise TypeError(f"cannot interpret {value!r} as a Budget")

    @property
    def unlimited(self) -> bool:
        return self.time_limit is None and self.node_limit is None


@dataclass(frozen=True)
class BoundedResilienceResult:
    """Outcome of an approximate / anytime resilience computation.

    The contract is a *certified interval*:
    ``lower_bound <= rho(q, D) <= upper_bound``, where the upper bound
    is witnessed by ``contingency_set`` (a feasible, not necessarily
    minimum, contingency set of exactly ``upper_bound`` tuples) and the
    lower bound comes from an LP relaxation, a disjoint-witness packing,
    or an exhausted branch-and-bound frontier — all of which only ever
    under-estimate the optimum.

    Attributes
    ----------
    lower_bound / upper_bound:
        The certified interval endpoints.
    contingency_set:
        A feasible contingency set of size ``upper_bound``.
    method:
        Which pipeline produced the interval, e.g. ``"lp+greedy"``,
        ``"anytime"``, or an exact method name when dispatch solved the
        instance exactly (interval already closed).
    """

    lower_bound: int
    upper_bound: int
    contingency_set: FrozenSet[DBTuple] = field(default_factory=frozenset)
    method: str = ""

    def __post_init__(self):
        if self.lower_bound > self.upper_bound:
            raise ValueError(
                f"invalid interval [{self.lower_bound}, {self.upper_bound}]"
            )

    @property
    def value(self) -> int:
        """The certified feasible value (the upper bound); equals
        ``rho(q, D)`` exactly when :attr:`is_exact`."""
        return self.upper_bound

    @property
    def is_exact(self) -> bool:
        """Did the interval close (``lower_bound == upper_bound``)?"""
        return self.lower_bound == self.upper_bound

    @property
    def gap(self) -> int:
        """``upper_bound - lower_bound`` — zero iff exact."""
        return self.upper_bound - self.lower_bound

    @property
    def interval(self):
        """The ``(lower_bound, upper_bound)`` pair."""
        return (self.lower_bound, self.upper_bound)

    def __repr__(self) -> str:
        return (
            f"BoundedResilienceResult([{self.lower_bound}, {self.upper_bound}], "
            f"method={self.method!r}, exact={self.is_exact})"
        )
