"""Resilience-as-a-service: the async serving tier.

This package serves the paper's central primitive — resilience
``rho(q, D)``, the minimum number of endogenous tuples whose deletion
makes ``D`` stop satisfying ``q`` (Definition 1, and the Section 2
hitting-set view the solvers compute with) — over HTTP to many
concurrent clients.  The daemon exposes ``POST /solve``,
``POST /solve_batch``, ``GET /health``, and ``GET /metrics``, and
rests on three determinism-backed mechanisms:

* **request coalescing** — concurrent identical instances (equal
  :func:`~repro.witness.cache.pair_cache_key`) share one solve;
* **admission control** — exact solving is NP-complete in general
  (Theorem 24), so oversized exact requests are rerouted to certified
  anytime intervals under server-owned budgets instead of being
  allowed to monopolize the host;
* **streaming** — anytime solves can emit their certified ``[lb, ub]``
  intervals as branch and bound tightens them.

Everything is stdlib (``http.server`` / ``http.client`` / threads):
the serving tier adds no dependencies to the solver stack.  Start a
daemon with ``repro serve`` or programmatically::

    from repro.serving import ResilienceServer, ServingClient

    with ResilienceServer(port=0, workers=2) as server:
        client = ServingClient(server.address)
        result, meta = client.solve(db, query)

See ``docs/serving.md`` for the protocol and operational guidance.
"""

from repro.serving.admission import AdmissionDecision, AdmissionPolicy
from repro.serving.client import ServingClient, ServingClientError
from repro.serving.server import (
    BatchTooLargeError,
    CapacityError,
    CoalesceTimeoutError,
    ResilienceServer,
    ServerMetrics,
    ServingApp,
    ServingError,
    SolveFailedError,
)
from repro.serving.wire import (
    WIRE_SCHEMA,
    SolveRequest,
    WireError,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "BatchTooLargeError",
    "CapacityError",
    "CoalesceTimeoutError",
    "ResilienceServer",
    "ServerMetrics",
    "ServingApp",
    "ServingClient",
    "ServingClientError",
    "ServingError",
    "SolveFailedError",
    "SolveRequest",
    "WIRE_SCHEMA",
    "WireError",
    "decode_request",
    "decode_result",
    "encode_request",
    "encode_result",
]
