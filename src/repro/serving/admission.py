"""Admission control for the serving tier.

Exact resilience is NP-complete in general (Theorem 24), so a shared
server cannot let arbitrary clients run unbounded exact solves: one
oversized instance would head-of-line-block every well-behaved request
behind it.  The policy here makes the latency envelope a *property of
the server*, not of its clients:

* requests are sized by a cheap feature — the number of **endogenous**
  tuples, which bounds the hitting-set variable count (exogenous
  tuples can never enter a contingency set, Definition 1) — and
  oversized ``exact``/``approx`` requests are rerouted to
  ``mode="anytime"`` under a server-owned
  :class:`~repro.resilience.types.Budget`, so they still return a
  certified interval instead of an unbounded search;
* anytime requests may not smuggle in an unlimited budget when they
  are oversized — the budget is clamped to the reroute tier's;
* a concurrency gate rejects work beyond ``max_concurrent_solves``
  with HTTP 429 (clients retry after backoff) rather than queueing
  unboundedly, and batches beyond ``max_batch_items`` are refused with
  413.

Every decision is reported back to the client (``tier``, ``rerouted``,
``reason`` response fields), so a rerouted answer is never mistaken
for an exact one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.planner import (
    DEFAULT_MAX_EXACT_TUPLES,
    extract_features,
    is_large_instance,
)
from repro.resilience.types import Budget
from repro.serving.wire import SolveRequest

# Defaults; overridable per-server or via REPRO_SERVING_* (from_env).
# The sizing threshold itself lives in repro.planner.features — one
# number shared by admission and the planner's size classifier, so a
# request this tier reroutes is exactly one the planner calls "large".
DEFAULT_REROUTE_TIME_LIMIT = 2.0
DEFAULT_REROUTE_NODE_LIMIT = 200_000
DEFAULT_MAX_CONCURRENT_SOLVES = 32
DEFAULT_MAX_BATCH_ITEMS = 256


@dataclass(frozen=True)
class AdmissionDecision:
    """What the server will actually run for one request.

    ``accepted`` is False only for the 429 path (``retryable`` True) —
    size problems never reject, they reroute.  When ``rerouted`` is
    True the solve runs with this decision's ``mode``/``budget``
    instead of the request's, and ``reason`` says why.
    """

    accepted: bool
    mode: str = "exact"
    method: Optional[str] = None
    budget: Optional[Budget] = None
    tier: str = "interactive"
    rerouted: bool = False
    reason: str = ""
    retryable: bool = False


@dataclass(frozen=True)
class AdmissionPolicy:
    """Sizing thresholds and concurrency limits for one server."""

    max_exact_tuples: int = DEFAULT_MAX_EXACT_TUPLES
    reroute_time_limit: float = DEFAULT_REROUTE_TIME_LIMIT
    reroute_node_limit: int = DEFAULT_REROUTE_NODE_LIMIT
    max_concurrent_solves: int = DEFAULT_MAX_CONCURRENT_SOLVES
    max_batch_items: int = DEFAULT_MAX_BATCH_ITEMS

    @classmethod
    def from_env(cls, env=None) -> "AdmissionPolicy":
        """Build a policy from ``REPRO_SERVING_*`` environment variables.

        Recognized: ``REPRO_SERVING_MAX_EXACT_TUPLES``,
        ``REPRO_SERVING_REROUTE_TIME_LIMIT`` (seconds),
        ``REPRO_SERVING_REROUTE_NODE_LIMIT``,
        ``REPRO_SERVING_MAX_CONCURRENT`` and
        ``REPRO_SERVING_MAX_BATCH_ITEMS``; unset variables keep the
        defaults.
        """
        env = os.environ if env is None else env

        def _int(name: str, default: int) -> int:
            raw = env.get(name)
            return default if raw in (None, "") else int(raw)

        def _float(name: str, default: float) -> float:
            raw = env.get(name)
            return default if raw in (None, "") else float(raw)

        return cls(
            max_exact_tuples=_int(
                "REPRO_SERVING_MAX_EXACT_TUPLES", DEFAULT_MAX_EXACT_TUPLES
            ),
            reroute_time_limit=_float(
                "REPRO_SERVING_REROUTE_TIME_LIMIT", DEFAULT_REROUTE_TIME_LIMIT
            ),
            reroute_node_limit=_int(
                "REPRO_SERVING_REROUTE_NODE_LIMIT", DEFAULT_REROUTE_NODE_LIMIT
            ),
            max_concurrent_solves=_int(
                "REPRO_SERVING_MAX_CONCURRENT", DEFAULT_MAX_CONCURRENT_SOLVES
            ),
            max_batch_items=_int(
                "REPRO_SERVING_MAX_BATCH_ITEMS", DEFAULT_MAX_BATCH_ITEMS
            ),
        )

    @property
    def reroute_budget(self) -> Budget:
        """The server-owned budget oversized requests run under."""
        return Budget(
            time_limit=self.reroute_time_limit,
            node_limit=self.reroute_node_limit,
        )

    def instance_size(self, request: SolveRequest) -> int:
        """The admission feature: endogenous tuple count.

        Exogenous tuples are free (they cannot be deleted, so they add
        no hitting-set variables); only endogenous tuples grow the
        search space the exact solvers explore.  Computed through
        :func:`repro.planner.extract_features` — the same feature (and
        the same ``max_exact_tuples`` default) the planner's
        ``size_class`` uses, so admission and planning can never
        disagree about what "large" means.
        """
        return self.features(request).endogenous_tuples

    def features(self, request: SolveRequest):
        """The request's :class:`~repro.planner.PlanFeatures`."""
        return extract_features(
            request.database,
            request.query,
            mode=request.mode,
            budget=request.budget,
            weighted=request.weighted,
        )

    def admit(self, request: SolveRequest, active_solves: int) -> AdmissionDecision:
        """Decide how (whether) to run ``request``.

        ``active_solves`` is the server's current in-flight solve gauge
        (coalesced followers do not count — they run no solver).
        """
        if active_solves >= self.max_concurrent_solves:
            return AdmissionDecision(
                accepted=False,
                retryable=True,
                reason=(
                    f"server at capacity ({active_solves} active solves, "
                    f"limit {self.max_concurrent_solves})"
                ),
            )
        features = self.features(request)
        size = features.endogenous_tuples
        oversized = is_large_instance(
            features, max_exact_tuples=self.max_exact_tuples
        )
        if not oversized:
            return AdmissionDecision(
                accepted=True,
                mode=request.mode,
                method=request.method,
                budget=request.budget,
                tier="interactive",
            )
        if request.mode == "anytime":
            # Oversized anytime solves keep their mode but may not run
            # with a looser budget than the batch tier allows.
            budget = Budget.coerce(request.budget)
            clamped = Budget(
                time_limit=_tighter(budget.time_limit, self.reroute_time_limit),
                node_limit=_tighter(budget.node_limit, self.reroute_node_limit),
            )
            changed = clamped != budget
            return AdmissionDecision(
                accepted=True,
                mode="anytime",
                budget=clamped,
                tier="batch",
                rerouted=changed,
                reason=(
                    f"instance has {size} endogenous tuples "
                    f"(> {self.max_exact_tuples}); budget clamped"
                    if changed
                    else ""
                ),
            )
        return AdmissionDecision(
            accepted=True,
            mode="anytime",
            budget=self.reroute_budget,
            tier="batch",
            rerouted=True,
            reason=(
                f"instance has {size} endogenous tuples "
                f"(> {self.max_exact_tuples}); exact tier refused, "
                f"serving a certified anytime interval instead"
            ),
        )


def _tighter(requested: Optional[float], ceiling: Optional[float]):
    """The stricter of a requested limit and the tier ceiling."""
    if requested is None:
        return ceiling
    if ceiling is None:
        return requested
    return min(requested, ceiling)
