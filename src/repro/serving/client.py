"""A minimal blocking client for the serving tier.

Pure :mod:`http.client` — the same no-third-party-deps constraint as
the server.  One :class:`ServingClient` wraps one base URL; each call
opens a fresh connection (the serving protocol is stateless, and the
fault-injection tests need connections they can sever independently).

The solve helpers return *decoded* results
(:class:`~repro.resilience.types.ResilienceResult` /
:class:`~repro.resilience.types.BoundedResilienceResult`) plus the
response metadata, so callers can compare served answers — resilience
values and witnessing contingency sets per Definition 1 — against
direct :func:`repro.resilience.solver.solve` calls bit-for-bit; that
equality is what the test suite and the E19 benchmark are built on.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.serving.wire import (
    SolveRequest,
    decode_result,
    encode_request,
)


class ServingClientError(Exception):
    """A non-2xx response, with the server's status and error payload."""

    def __init__(self, status: int, payload: Any, retry_after: Optional[str] = None):
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServingClient:
    """Blocking client for one :class:`~repro.serving.server.ResilienceServer`."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        netloc = parts.netloc or parts.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    # ------------------------------------------------------------------
    # raw access (fault-injection tests post malformed bodies here)
    # ------------------------------------------------------------------
    def post(
        self, path: str, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Any, Dict[str, str]]:
        """POST raw bytes; returns ``(status, json-or-text, headers)``."""
        conn = self._connect()
        try:
            all_headers = {"Content-Type": "application/json"}
            if headers:
                all_headers.update(headers)
            conn.request("POST", path, body=body, headers=all_headers)
            resp = conn.getresponse()
            data = resp.read()
            try:
                payload = json.loads(data)
            except ValueError:
                payload = data.decode("utf-8", "replace")
            return resp.status, payload, dict(resp.getheaders())
        finally:
            conn.close()

    def get(self, path: str) -> Tuple[int, Any]:
        conn = self._connect()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def _post_json(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        status, body, headers = self.post(
            path, json.dumps(payload).encode("utf-8")
        )
        if status != 200:
            raise ServingClientError(
                status, body, retry_after=headers.get("Retry-After")
            )
        return body

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        status, payload = self.get("/health")
        if status != 200:
            raise ServingClientError(status, payload)
        return payload

    def metrics(self) -> Dict[str, Any]:
        status, payload = self.get("/metrics")
        if status != 200:
            raise ServingClientError(status, payload)
        return payload

    def solve(
        self,
        database: Database,
        query: ConjunctiveQuery,
        mode: str = "exact",
        method: Optional[str] = None,
        budget=None,
        weighted: bool = False,
    ) -> Tuple[Any, Dict[str, Any]]:
        """Solve one instance; returns ``(result, response_metadata)``.

        ``result`` is the decoded
        :class:`~repro.resilience.types.ResilienceResult` or
        :class:`~repro.resilience.types.BoundedResilienceResult`;
        the metadata dict carries ``coalesced`` / ``cache`` / ``tier``
        / ``rerouted`` / ``mode``.  ``weighted=True`` requests the
        min-cost objective (tuple costs travel in the database spec).
        """
        from repro.resilience.types import Budget

        request = SolveRequest(
            database=database,
            query=query,
            mode=mode,
            method=method,
            budget=Budget.coerce(budget) if budget is not None else None,
            weighted=weighted,
        )
        body = self._post_json("/solve", encode_request(request))
        result = decode_result(body["result"])
        meta = {k: v for k, v in body.items() if k != "result"}
        return result, meta

    def solve_batch(
        self,
        pairs,
        mode: str = "exact",
        method: Optional[str] = None,
        budget=None,
        weighted: bool = False,
    ) -> Tuple[list, Dict[str, Any]]:
        """Solve many (database, query) pairs in one round trip."""
        from repro.serving.wire import (
            WIRE_SCHEMA,
            budget_to_spec,
            database_to_spec,
            query_to_spec,
        )
        from repro.resilience.types import Budget

        payload: Dict[str, Any] = {
            "wire_schema": WIRE_SCHEMA,
            "pairs": [
                {"database": database_to_spec(db), "query": query_to_spec(q)}
                for db, q in pairs
            ],
            "mode": mode,
        }
        if method is not None:
            payload["method"] = method
        if budget is not None:
            payload["budget"] = budget_to_spec(Budget.coerce(budget))
        if weighted:
            payload["weighted"] = True
        body = self._post_json("/solve_batch", payload)
        results = [decode_result(r) for r in body["results"]]
        meta = {k: v for k, v in body.items() if k != "results"}
        return results, meta

    def stream_solve(
        self,
        database: Database,
        query: ConjunctiveQuery,
        budget=None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream an anytime solve's certified intervals.

        Yields the ndjson frames as dicts: ``interval`` frames with
        monotone ``lower_bound``/``upper_bound``, then one terminal
        ``result`` (with ``"result"`` decoded in place) or ``error``
        frame.  Raises :class:`ServingClientError` if the server
        refuses the stream outright.
        """
        from repro.resilience.types import Budget

        request = SolveRequest(
            database=database,
            query=query,
            mode="anytime",
            budget=Budget.coerce(budget) if budget is not None else None,
            stream=True,
        )
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/solve",
                body=json.dumps(encode_request(request)).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                data = resp.read()
                try:
                    payload = json.loads(data)
                except ValueError:
                    payload = data.decode("utf-8", "replace")
                raise ServingClientError(resp.status, payload)
            # http.client undoes the chunked framing; frames arrive as
            # newline-delimited JSON.
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                frame = json.loads(line)
                if frame.get("event") == "result":
                    frame["result"] = decode_result(frame["result"])
                yield frame
                if frame.get("event") in ("result", "error"):
                    return
        finally:
            conn.close()
