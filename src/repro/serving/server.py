"""Resilience-as-a-service: the HTTP daemon.

The server turns the deterministic solver stack into a shared
primitive: many clients POST resilience instances (Definition 1's
``(D, q, k)`` inputs, generalized to the three solving tiers) and the
daemon answers them with exactly the bytes a direct
:func:`repro.resilience.solver.solve` call would produce.  Three
mechanisms make that safe and fast under concurrency:

* **Request coalescing** — identical in-flight requests (equal
  :func:`~repro.witness.cache.pair_cache_key`, which covers database
  contents, query signature, tier, backend, and budget) share one
  solve through an :class:`~repro.witness.cache.InFlightRegistry`;
  followers wait on the leader's published result.  Determinism of
  every tier is what licenses this: equal keys imply equal answers.
* **Admission control** — oversized exact requests are rerouted to
  certified anytime intervals under server-owned budgets, and load
  beyond the concurrency gate is rejected with 429 + ``Retry-After``
  (see :mod:`repro.serving.admission`).
* **Result caching** — an optional persistent
  :class:`~repro.witness.cache.ResultCache` serves repeat instances
  across server restarts; the in-flight registry handles the window
  *before* a result lands in the cache.

Transport is pure-stdlib :class:`http.server.ThreadingHTTPServer`
(one thread per connection) — no third-party event loop is required
anywhere in the serving path.  Anytime solves may opt into a chunked
``application/x-ndjson`` stream of certified ``[lb, ub]`` intervals as
the branch-and-bound tightens them, terminated by the final result
frame.

The request/solve logic lives in :class:`ServingApp`, independent of
the transport, so the test suite can drive coalescing and fault paths
deterministically in-process; :class:`ResilienceServer` binds it to a
socket.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.analyzer import solve_batch
from repro.parallel.executor import WorkerPool
from repro.resilience.solver import solve
from repro.serving.admission import AdmissionDecision, AdmissionPolicy
from repro.serving.wire import (
    WIRE_SCHEMA,
    SolveRequest,
    WireError,
    budget_to_spec,
    database_from_spec,
    encode_result,
    query_from_spec,
)
from repro.witness.cache import InFlightRegistry, ResultCache, pair_cache_key

# Default request-body ceiling: large enough for every benchmark
# database, small enough that a hostile body cannot exhaust memory.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

# How long a coalesced follower waits for its leader before giving up
# with 504.  Generous: the leader runs the same instance the follower
# would have, so a timeout here means the solve itself is stuck.
DEFAULT_COALESCE_TIMEOUT = 300.0


class ServingError(Exception):
    """Base for errors that map to a specific HTTP status."""

    status = 500

    def __init__(self, message: str, **extra: Any):
        super().__init__(message)
        self.extra = extra


class CapacityError(ServingError):
    """Admission gate refused the request (HTTP 429, retryable)."""

    status = 429


class BatchTooLargeError(ServingError):
    """Batch exceeds ``max_batch_items`` (HTTP 413)."""

    status = 413


class CoalesceTimeoutError(ServingError):
    """A follower's leader did not publish in time (HTTP 504)."""

    status = 504


class SolveFailedError(ServingError):
    """The solver raised; reported to every coalesced waiter (HTTP 500)."""

    status = 500


class ServerMetrics:
    """Thread-safe counters and gauges exposed at ``GET /metrics``.

    ``active_solves`` counts solves actually *running* (coalesced
    followers and cache hits run nothing, so they never touch it);
    it is the gauge admission control gates on.  ``plans`` histograms
    the planner's chosen backend combinations by plan signature, so an
    operator can see *how* the server is solving, not just how often.
    """

    _COUNTERS = (
        "requests_total",
        "solves_total",
        "coalesced_total",
        "cache_hits_total",
        "cache_misses_total",
        "rerouted_total",
        "rejected_total",
        "errors_total",
        "streams_total",
        "batch_requests_total",
        "batch_pairs_total",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._COUNTERS}
        self._plans: Dict[str, int] = {}
        self._active = 0

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] += n

    def record_plan(self, signature: str, n: int = 1) -> None:
        """Count one (or ``n``) solve(s) run under a plan signature."""
        with self._lock:
            self._plans[signature] = self._plans.get(signature, 0) + n

    def solve_started(self) -> None:
        with self._lock:
            self._active += 1
            self._counts["solves_total"] += 1

    def solve_finished(self) -> None:
        with self._lock:
            self._active -= 1

    def active_solves(self) -> int:
        with self._lock:
            return self._active

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = dict(self._counts)
            out["active_solves"] = self._active
            out["plans"] = dict(sorted(self._plans.items()))
            return out


class ServingApp:
    """Transport-independent request handling: decode, admit, coalesce,
    solve, encode.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent :class:`ResultCache`; ``None``
        disables cross-restart caching (coalescing still applies).
    policy:
        :class:`AdmissionPolicy`; defaults to
        :meth:`AdmissionPolicy.from_env`.
    workers:
        Process-pool size for ``/solve_batch``.  The pool is created
        lazily and reused across batches (:class:`WorkerPool`);
        ``workers <= 1`` solves batches in the request thread.
    solve_fn:
        Override for the single-instance solver — signature
        ``(database, query, mode=..., method=..., budget=...,
        on_interval=...)``.  The test suite injects gated/exploding
        solvers here to drive coalescing and fault paths
        deterministically; production servers keep the default
        (:func:`repro.resilience.solver.solve`).
    coalesce:
        Disable to measure the uncoalesced baseline (benchmarks only).
    """

    def __init__(
        self,
        cache_dir=None,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 1,
        solve_fn=None,
        coalesce: bool = True,
        coalesce_timeout: float = DEFAULT_COALESCE_TIMEOUT,
    ):
        self.cache_dir = cache_dir
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.registry = InFlightRegistry()
        self.metrics = ServerMetrics()
        self.policy = policy if policy is not None else AdmissionPolicy.from_env()
        self.workers = max(1, int(workers))
        self.pool = WorkerPool(self.workers) if self.workers > 1 else None
        self.coalesce = coalesce
        self.coalesce_timeout = coalesce_timeout
        self._solve_fn = solve_fn if solve_fn is not None else solve

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self.pool is not None:
            self.pool.shutdown()

    @staticmethod
    def decode(payload: Any) -> SolveRequest:
        """Decode one ``/solve`` payload (:func:`~repro.serving.wire.decode_request`)."""
        from repro.serving.wire import decode_request

        return decode_request(payload)

    # ------------------------------------------------------------------
    # /solve
    # ------------------------------------------------------------------
    def handle_solve(self, request: SolveRequest) -> Dict[str, Any]:
        """Admit, (maybe) coalesce, solve, and encode one request."""
        decision = self._admit(request)
        key = pair_cache_key(
            request.database,
            request.query,
            mode=decision.mode,
            method=decision.method,
            budget=decision.budget,
            weighted=request.weighted,
        )
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.metrics.incr("cache_hits_total")
                return self._respond(hit, decision, coalesced=False, cache="hit")
            self.metrics.incr("cache_misses_total")

        if not self.coalesce:
            result = self._run_solve(request, decision)
            self._store(key, result)
            return self._respond(result, decision, coalesced=False, cache="miss")

        leader, group = self.registry.lease(key)
        if leader:
            try:
                result = self._run_solve(request, decision)
            except BaseException as exc:
                # Pop the group before anything else: a failure must
                # never poison the key for the next arrival.
                self.registry.fail(key, exc)
                raise
            self.registry.resolve(key, result)
            self._store(key, result)
            return self._respond(result, decision, coalesced=False, cache="miss")

        self.metrics.incr("coalesced_total")
        try:
            result = self.registry.result(group, timeout=self.coalesce_timeout)
        except TimeoutError:
            raise CoalesceTimeoutError(
                "coalesced solve did not complete within "
                f"{self.coalesce_timeout:.0f}s"
            )
        except Exception as exc:
            raise SolveFailedError(f"coalesced solve failed: {exc}")
        return self._respond(result, decision, coalesced=True, cache="coalesced")

    # ------------------------------------------------------------------
    # /solve with stream=true
    # ------------------------------------------------------------------
    def stream_solve(self, request: SolveRequest) -> Iterator[Dict[str, Any]]:
        """Yield ndjson frames for a streaming anytime solve.

        Frames are ``{"event": "interval", "seq", "lower_bound",
        "upper_bound"}`` — each a certified enclosure of the true
        resilience, monotonically tightening — followed by one
        ``{"event": "result", ...}`` (or ``{"event": "error", ...}``)
        terminal frame.  Streaming solves bypass coalescing and the
        result cache: the point of the stream is to watch *this*
        solve's trajectory.
        """
        # Validation and admission run eagerly — before the transport
        # commits a 200 and starts the chunked body — so a refused
        # stream still gets its clean 400/429.  Only the generator
        # below is lazy.
        if request.mode != "anytime":
            raise WireError("streaming requires mode='anytime'")
        decision = self._admit(request)
        self.metrics.incr("streams_total")
        return self._stream_frames(request, decision)

    def _stream_frames(
        self, request: SolveRequest, decision: AdmissionDecision
    ) -> Iterator[Dict[str, Any]]:
        frames: "queue.Queue[Tuple[str, Any]]" = queue.Queue()

        def on_interval(lb: int, ub: int) -> None:
            frames.put(("interval", (lb, ub)))

        def run() -> None:
            try:
                result = self._run_solve(request, decision, on_interval=on_interval)
            except BaseException as exc:  # delivered as the error frame
                frames.put(("error", exc))
            else:
                frames.put(("result", result))

        worker = threading.Thread(target=run, name="repro-stream-solve", daemon=True)
        worker.start()
        seq = 0
        while True:
            kind, payload = frames.get()
            if kind == "interval":
                seq += 1
                lb, ub = payload
                yield {
                    "event": "interval",
                    "seq": seq,
                    "lower_bound": lb,
                    "upper_bound": ub,
                }
            elif kind == "result":
                frame = self._respond(payload, decision, coalesced=False, cache="stream")
                frame["event"] = "result"
                yield frame
                return
            else:
                self.metrics.incr("errors_total")
                yield {"event": "error", "error": str(payload)}
                return

    # ------------------------------------------------------------------
    # /solve_batch
    # ------------------------------------------------------------------
    def handle_batch(self, payload: Any) -> Dict[str, Any]:
        """Decode and run one homogeneous batch through
        :func:`repro.core.analyzer.solve_batch` (worker pool reused
        across calls).

        Payload: ``{"wire_schema", "pairs": [{"database", "query"},
        ...], "mode"?, "method"?, "budget"?, "weighted"?}`` — one tier
        (and one objective) shared by the whole batch, results in input
        order.
        """
        if not isinstance(payload, dict):
            raise WireError("batch request must be an object")
        if payload.get("wire_schema") != WIRE_SCHEMA:
            raise WireError(
                f"unsupported wire_schema {payload.get('wire_schema')!r} "
                f"(this server speaks {WIRE_SCHEMA})"
            )
        pairs_spec = payload.get("pairs")
        if not isinstance(pairs_spec, list) or not pairs_spec:
            raise WireError("batch 'pairs' must be a non-empty array")
        if len(pairs_spec) > self.policy.max_batch_items:
            raise BatchTooLargeError(
                f"batch of {len(pairs_spec)} exceeds the "
                f"{self.policy.max_batch_items}-pair limit"
            )
        if self.metrics.active_solves() >= self.policy.max_concurrent_solves:
            self.metrics.incr("rejected_total")
            raise CapacityError("server at capacity; retry the batch later")
        mode = payload.get("mode", "exact")
        method = payload.get("method")
        from repro.serving.wire import MODES, METHODS, budget_from_spec

        if mode not in MODES:
            raise WireError(f"unknown mode {mode!r}")
        if method not in METHODS:
            raise WireError(f"unknown method {method!r}")
        weighted = payload.get("weighted", False)
        if not isinstance(weighted, bool):
            raise WireError("'weighted' must be a boolean")
        budget = budget_from_spec(payload.get("budget"))
        pairs = []
        for i, pair_spec in enumerate(pairs_spec):
            if not isinstance(pair_spec, dict):
                raise WireError(f"pair {i} must be an object")
            try:
                db = database_from_spec(pair_spec.get("database"))
                q = query_from_spec(pair_spec.get("query"))
            except WireError as exc:
                raise WireError(f"pair {i}: {exc}") from exc
            pairs.append((db, q))

        # Batch-level admission: one oversized pair reroutes the whole
        # homogeneous batch to the anytime tier (results stay certified).
        requests = [
            SolveRequest(db, q, mode=mode, method=method, budget=budget,
                         weighted=weighted)
            for db, q in pairs
        ]
        from repro.planner import is_large_instance

        oversized = [
            i for i, r in enumerate(requests)
            if is_large_instance(
                self.policy.features(r),
                max_exact_tuples=self.policy.max_exact_tuples,
            )
        ]
        rerouted = False
        tier = "interactive"
        if oversized and mode != "anytime":
            mode, method = "anytime", None
            budget = self.policy.reroute_budget
            rerouted, tier = True, "batch"
            self.metrics.incr("rerouted_total")

        self.metrics.incr("batch_requests_total")
        self.metrics.incr("batch_pairs_total", len(pairs))
        self.metrics.solve_started()
        try:
            batch = solve_batch(
                pairs,
                mode=mode,
                method=method,
                budget=budget,
                workers=self.workers,
                pool=self.pool,
                cache_dir=self.cache_dir,
                weighted=weighted,
            )
        finally:
            self.metrics.solve_finished()
        stats = batch.stats
        for signature, count in sorted(stats.plans.items()):
            self.metrics.record_plan(signature, count)
        return {
            "wire_schema": WIRE_SCHEMA,
            "results": [encode_result(r) for r in batch.results],
            "mode": mode,
            "tier": tier,
            "rerouted": rerouted,
            "stats": {
                "pairs": stats.pairs,
                "unique_pairs": stats.unique_pairs,
                "workers": stats.workers,
                "shards": stats.shards,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "time_total": stats.time_total,
                "plans": dict(sorted(stats.plans.items())),
            },
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, request: SolveRequest) -> AdmissionDecision:
        decision = self.policy.admit(request, self.metrics.active_solves())
        if not decision.accepted:
            self.metrics.incr("rejected_total")
            raise CapacityError(decision.reason)
        if decision.rerouted:
            self.metrics.incr("rerouted_total")
        return decision

    def _run_solve(
        self,
        request: SolveRequest,
        decision: AdmissionDecision,
        on_interval=None,
    ):
        from repro.planner import plan_instance, planner_enabled

        if planner_enabled(None):
            plan = plan_instance(
                request.database,
                request.query,
                mode=decision.mode,
                budget=decision.budget,
                weighted=request.weighted,
            )
            self.metrics.record_plan(plan.signature())
        self.metrics.solve_started()
        try:
            kwargs: Dict[str, Any] = {
                "mode": decision.mode,
                "method": decision.method,
                "budget": decision.budget,
            }
            # Added only when set, so injected test solvers with the
            # historical signature keep working for unweighted requests.
            if request.weighted:
                kwargs["weighted"] = True
            if on_interval is not None:
                kwargs["on_interval"] = on_interval
            return self._solve_fn(request.database, request.query, **kwargs)
        finally:
            self.metrics.solve_finished()

    def _store(self, key: str, result) -> None:
        if self.cache is not None:
            self.cache.put(key, result)

    def _respond(
        self,
        result,
        decision: AdmissionDecision,
        coalesced: bool,
        cache: str,
    ) -> Dict[str, Any]:
        payload = {
            "wire_schema": WIRE_SCHEMA,
            "result": encode_result(result),
            "mode": decision.mode,
            "tier": decision.tier,
            "rerouted": decision.rerouted,
            "coalesced": coalesced,
            "cache": cache,
        }
        if decision.rerouted:
            payload["reason"] = decision.reason
            payload["budget"] = budget_to_spec(decision.budget)
        return payload


class _Handler(BaseHTTPRequestHandler):
    """stdlib request handler: routing, body limits, error mapping."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    @property
    def app(self) -> ServingApp:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # servers are quiet; metrics carry the signal

    def _send_json(self, status: int, obj: Dict[str, Any], headers=()) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, headers=()) -> None:
        self.app.metrics.incr("errors_total")
        self._send_json(status, {"error": message, "status": status}, headers)

    def _read_body(self) -> Optional[bytes]:
        """The request body, or ``None`` after an error response."""
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "Content-Length required")
            return None
        try:
            length = int(length)
        except ValueError:
            self._send_error_json(400, "malformed Content-Length")
            return None
        limit = self.server.max_body_bytes  # type: ignore[attr-defined]
        if length > limit:
            # The client would keep sending a body we refuse to read;
            # answer and drop the connection rather than stall.
            self.close_connection = True
            self._send_error_json(
                413, f"request body of {length} bytes exceeds the {limit}-byte limit"
            )
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:
        self.app.metrics.incr("requests_total")
        if self.path == "/health":
            from repro import __version__

            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "wire_schema": WIRE_SCHEMA,
                },
            )
        elif self.path == "/metrics":
            snapshot = self.app.metrics.snapshot()
            snapshot["in_flight_groups"] = len(self.app.registry)
            snapshot["in_flight_waiters"] = self.app.registry.waiters()
            self._send_json(200, snapshot)
        else:
            self._send_error_json(404, f"no such endpoint {self.path!r}")

    def do_POST(self) -> None:
        self.app.metrics.incr("requests_total")
        if self.path not in ("/solve", "/solve_batch"):
            self._send_error_json(404, f"no such endpoint {self.path!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return
        try:
            if self.path == "/solve_batch":
                self._send_json(200, self.app.handle_batch(payload))
                return
            request = self.app.decode(payload)
            if request.stream:
                self._stream(request)
            else:
                self._send_json(200, self.app.handle_solve(request))
        except WireError as exc:
            self._send_error_json(400, str(exc))
        except CapacityError as exc:
            self._send_error_json(429, str(exc), headers=[("Retry-After", "1")])
        except ServingError as exc:
            self._send_error_json(exc.status, str(exc))
        except Exception as exc:  # solver bugs and the like: clean 500
            self._send_error_json(500, f"solve failed: {exc}")

    def _stream(self, request: SolveRequest) -> None:
        """Chunked ``application/x-ndjson`` interval stream."""
        frames = self.app.stream_solve(request)  # raises (400/429) pre-headers
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for frame in frames:
                line = (json.dumps(frame) + "\n").encode("utf-8")
                self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except OSError:
            # Client hung up mid-stream; the solve thread finishes on
            # its own and the connection is simply torn down.
            self.close_connection = True


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Requests are independent; a slow client must not wedge a worker
    # thread forever.
    timeout = 60


class ResilienceServer:
    """The socket-facing daemon: a :class:`ServingApp` behind
    :class:`http.server.ThreadingHTTPServer`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`), which is what the tests and the benchmark do.  Use
    as a context manager, or :meth:`start`/:meth:`stop` explicitly;
    :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 1,
        solve_fn=None,
        coalesce: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        coalesce_timeout: float = DEFAULT_COALESCE_TIMEOUT,
    ):
        self.app = ServingApp(
            cache_dir=cache_dir,
            policy=policy,
            workers=workers,
            solve_fn=solve_fn,
            coalesce=coalesce,
            coalesce_timeout=coalesce_timeout,
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ResilienceServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serving",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI path)."""
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.app.close()

    def stop(self) -> None:
        """Shut down the listener, join the thread, release the pool."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "ResilienceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"ResilienceServer({self.address}, workers={self.app.workers})"
