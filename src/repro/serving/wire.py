"""Wire schema for the serving tier: JSON ↔ solver arguments.

One request describes one resilience instance — the decision-problem
input of Definition 1: a database, a conjunctive query, a solving tier
(``mode``), an optional forced backend, and an optional
:class:`~repro.resilience.types.Budget`.  The codec is *lossless* with
respect to solving: decoding an encoded request reproduces arguments
whose :func:`~repro.witness.cache.pair_cache_key` is bit-identical to
the original's, which is the property request coalescing and the
result cache stand on (``tests/test_serving_wire.py`` proves it by
Hypothesis round-trip).

Design notes:

* Queries travel *structurally* (a list of atom objects), not as
  Datalog text — the surface syntax's trailing-``x`` exogenous marker
  makes relation names ending in ``x`` ambiguous in text form
  (``Tx(a)`` parses as ``T^x(a)``), and the wire format must not
  inherit that ambiguity.  Text is still *accepted* on input as a
  convenience (parsed by :func:`repro.query.parser.parse_query`).
* Database values are JSON scalars, with JSON arrays decoding to the
  tuple-valued composite constants the reductions use — the same
  convention as the ``repro solve`` CLI's database files.
* Every payload carries ``wire_schema`` (:data:`WIRE_SCHEMA`); a
  mismatched or missing version is rejected up front, mirroring how
  :data:`~repro.witness.cache.CACHE_SCHEMA` salts the result-cache
  keys — schema drift must fail loudly, never deserialize garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.resilience.types import (
    BoundedResilienceResult,
    Budget,
    ResilienceResult,
)

# Bumped whenever request/response payload layouts change; requests
# carrying another version are rejected with a clean 400.
# Schema 2 (1.6.0): relations may carry a ``costs`` array (per-tuple
# deletion costs, aligned with ``tuples``) and requests a ``weighted``
# flag selecting the weighted objective.
WIRE_SCHEMA = 2

MODES = ("exact", "approx", "anytime")
METHODS = (None, "exact", "flow")


class WireError(ValueError):
    """A malformed or unsupported payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class SolveRequest:
    """One decoded ``/solve`` request, ready to hand to the solver."""

    database: Database
    query: ConjunctiveQuery
    mode: str = "exact"
    method: Optional[str] = None
    budget: Optional[Budget] = None
    stream: bool = False
    weighted: bool = False


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------


def _decode_value(value: Any):
    """JSON value -> hashable constant (arrays become tuples)."""
    if isinstance(value, list):
        return tuple(_decode_value(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise WireError(f"unsupported tuple value {value!r}")


def _encode_value(value: Any):
    """Hashable constant -> JSON value (tuples become arrays)."""
    if isinstance(value, tuple):
        return [_encode_value(v) for v in value]
    return value


def database_from_spec(spec: Any) -> Database:
    """Build a :class:`Database` from its wire/JSON specification.

    The schema is ``{"relations": {name: {"arity": k, "exogenous":
    bool, "tuples": [[v, ...], ...], "costs": [c, ...]}}}``; a row may
    be a bare scalar for a unary relation, and the optional ``costs``
    array gives each row's positive-integer deletion cost, aligned with
    ``tuples`` (omitted costs default to 1).  Raises :class:`WireError`
    on any structural problem (wrong types, arity mismatches,
    non-scalar values, misaligned or non-positive costs).
    """
    if not isinstance(spec, dict):
        raise WireError(f"database spec must be an object, got {type(spec).__name__}")
    relations = spec.get("relations", {})
    if not isinstance(relations, dict):
        raise WireError("database 'relations' must be an object")
    db = Database()
    for name, rel_spec in relations.items():
        if not isinstance(rel_spec, dict):
            raise WireError(f"relation {name!r}: spec must be an object")
        arity = rel_spec.get("arity")
        if not isinstance(arity, int) or isinstance(arity, bool) or arity < 1:
            raise WireError(f"relation {name!r}: arity must be a positive integer")
        exogenous = rel_spec.get("exogenous", False)
        if not isinstance(exogenous, bool):
            raise WireError(f"relation {name!r}: exogenous must be a boolean")
        db.declare(name, arity, exogenous=exogenous)
        rows = rel_spec.get("tuples", [])
        if not isinstance(rows, list):
            raise WireError(f"relation {name!r}: tuples must be an array")
        costs = rel_spec.get("costs")
        if costs is not None:
            if not isinstance(costs, list) or len(costs) != len(rows):
                raise WireError(
                    f"relation {name!r}: costs must be an array aligned "
                    f"with tuples ({len(rows)} rows)"
                )
            for c in costs:
                if isinstance(c, bool) or not isinstance(c, int) or c < 1:
                    raise WireError(
                        f"relation {name!r}: cost {c!r} must be a "
                        "positive integer"
                    )
        for i, row in enumerate(rows):
            values = row if isinstance(row, list) else [row]
            if len(values) != arity:
                raise WireError(
                    f"relation {name!r}: row {row!r} does not match arity {arity}"
                )
            cost = costs[i] if costs is not None else None
            db.add(name, *(_decode_value(v) for v in values), cost=cost)
    return db


def database_to_spec(database: Database) -> Dict[str, Any]:
    """The wire/JSON specification of ``database`` (deterministic:
    relations and rows in sorted order)."""
    relations: Dict[str, Any] = {}
    for name in sorted(database.relations):
        rel = database.relations[name]
        rows = sorted((t for t in rel), key=DBTuple.sort_key)
        rel_spec: Dict[str, Any] = {
            "arity": rel.arity,
            "exogenous": rel.exogenous,
            "tuples": [[_encode_value(v) for v in t.values] for t in rows],
        }
        # Costs travel only when some row's differs from the default 1,
        # so all-unit databases keep the schema-1 relation layout.
        if rel.has_weighted_costs:
            rel_spec["costs"] = [rel.cost(t) for t in rows]
        relations[name] = rel_spec
    return {"relations": relations}


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def query_from_spec(spec: Any) -> ConjunctiveQuery:
    """Build a :class:`ConjunctiveQuery` from its wire form.

    Accepts either Datalog text (``"R(x,y), R(y,z)"``) or the
    unambiguous structural form ``{"atoms": [{"relation": "R", "args":
    ["x", "y"], "exogenous": false}, ...], "name": "q"}``.
    """
    if isinstance(spec, str):
        try:
            return parse_query(spec)
        except Exception as exc:
            raise WireError(f"unparseable query text {spec!r}: {exc}") from exc
    if not isinstance(spec, dict):
        raise WireError(f"query must be text or an object, got {type(spec).__name__}")
    atoms_spec = spec.get("atoms")
    if not isinstance(atoms_spec, list) or not atoms_spec:
        raise WireError("query 'atoms' must be a non-empty array")
    atoms: List[Atom] = []
    for atom_spec in atoms_spec:
        if not isinstance(atom_spec, dict):
            raise WireError(f"atom {atom_spec!r} must be an object")
        relation = atom_spec.get("relation")
        if not isinstance(relation, str) or not relation:
            raise WireError(f"atom {atom_spec!r}: relation must be a name")
        args = atom_spec.get("args")
        if (
            not isinstance(args, list)
            or not args
            or not all(isinstance(a, str) and a for a in args)
        ):
            raise WireError(
                f"atom {atom_spec!r}: args must be a non-empty array of variables"
            )
        exogenous = atom_spec.get("exogenous", False)
        if not isinstance(exogenous, bool):
            raise WireError(f"atom {atom_spec!r}: exogenous must be a boolean")
        atoms.append(Atom(relation, tuple(args), exogenous=exogenous))
    name = spec.get("name")
    if name is not None and not isinstance(name, str):
        raise WireError("query 'name' must be a string")
    try:
        return ConjunctiveQuery(atoms, name=name)
    except ValueError as exc:
        raise WireError(str(exc)) from exc


def query_to_spec(query: ConjunctiveQuery) -> Dict[str, Any]:
    """The unambiguous structural wire form of ``query``."""
    spec: Dict[str, Any] = {
        "atoms": [
            {
                "relation": a.relation,
                "args": list(a.args),
                "exogenous": a.exogenous,
            }
            for a in query.atoms
        ]
    }
    if query.name:
        spec["name"] = query.name
    return spec


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


def budget_from_spec(spec: Any) -> Optional[Budget]:
    """``None`` | seconds | ``{"time_limit", "node_limit"}`` -> Budget."""
    if spec is None:
        return None
    if isinstance(spec, bool):
        raise WireError(f"budget cannot be a boolean ({spec!r})")
    if isinstance(spec, (int, float)):
        if spec <= 0:
            raise WireError(f"budget seconds must be positive, got {spec!r}")
        return Budget(time_limit=float(spec))
    if isinstance(spec, dict):
        unknown = set(spec) - {"time_limit", "node_limit"}
        if unknown:
            raise WireError(f"unknown budget fields {sorted(unknown)}")
        time_limit = spec.get("time_limit")
        node_limit = spec.get("node_limit")
        if time_limit is not None:
            if isinstance(time_limit, bool) or not isinstance(
                time_limit, (int, float)
            ) or time_limit <= 0:
                raise WireError(f"budget time_limit must be positive seconds")
            time_limit = float(time_limit)
        if node_limit is not None:
            if isinstance(node_limit, bool) or not isinstance(node_limit, int) \
                    or node_limit < 0:
                raise WireError("budget node_limit must be a non-negative integer")
        return Budget(time_limit=time_limit, node_limit=node_limit)
    raise WireError(f"cannot interpret {spec!r} as a budget")


def budget_to_spec(budget: Optional[Budget]) -> Optional[Dict[str, Any]]:
    """Budget -> wire form (``None`` for no budget)."""
    if budget is None:
        return None
    return {"time_limit": budget.time_limit, "node_limit": budget.node_limit}


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def decode_request(payload: Any) -> SolveRequest:
    """Validate and decode one ``/solve`` payload.

    Raises :class:`WireError` with a client-actionable message on any
    problem; a successfully decoded request is guaranteed to reach the
    solver without type errors.
    """
    if not isinstance(payload, dict):
        raise WireError(f"request must be an object, got {type(payload).__name__}")
    schema = payload.get("wire_schema")
    if schema != WIRE_SCHEMA:
        raise WireError(
            f"unsupported wire_schema {schema!r} (this server speaks "
            f"{WIRE_SCHEMA})"
        )
    unknown = set(payload) - {
        "wire_schema", "database", "query", "mode", "method", "budget",
        "stream", "weighted",
    }
    if unknown:
        raise WireError(f"unknown request fields {sorted(unknown)}")
    if "database" not in payload:
        raise WireError("request is missing 'database'")
    if "query" not in payload:
        raise WireError("request is missing 'query'")
    mode = payload.get("mode", "exact")
    if mode not in MODES:
        raise WireError(f"unknown mode {mode!r} (expected one of {MODES})")
    method = payload.get("method")
    if method not in METHODS:
        raise WireError(f"unknown method {method!r} (expected one of {METHODS})")
    if method is not None and mode != "exact":
        raise WireError("method forcing requires mode='exact'")
    stream = payload.get("stream", False)
    if not isinstance(stream, bool):
        raise WireError("'stream' must be a boolean")
    weighted = payload.get("weighted", False)
    if not isinstance(weighted, bool):
        raise WireError("'weighted' must be a boolean")
    budget = budget_from_spec(payload.get("budget"))
    if budget is not None and mode != "anytime":
        raise WireError("a budget only applies to mode='anytime'")
    return SolveRequest(
        database=database_from_spec(payload["database"]),
        query=query_from_spec(payload["query"]),
        mode=mode,
        method=method,
        budget=budget,
        stream=stream,
        weighted=weighted,
    )


def encode_request(request: SolveRequest) -> Dict[str, Any]:
    """The wire payload for ``request`` (decodes back to equal solver
    arguments — same :func:`~repro.witness.cache.pair_cache_key`)."""
    payload: Dict[str, Any] = {
        "wire_schema": WIRE_SCHEMA,
        "database": database_to_spec(request.database),
        "query": query_to_spec(request.query),
        "mode": request.mode,
    }
    if request.method is not None:
        payload["method"] = request.method
    if request.budget is not None:
        payload["budget"] = budget_to_spec(request.budget)
    if request.stream:
        payload["stream"] = True
    if request.weighted:
        payload["weighted"] = True
    return payload


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def _encode_contingency(tuples) -> List[List[Any]]:
    """A contingency set as sorted ``[relation, [values...]]`` rows —
    the same total order (:meth:`DBTuple.sort_key`) every solver uses
    for deterministic output, so equal results encode bit-identically."""
    return [
        [t.relation, [_encode_value(v) for v in t.values]]
        for t in sorted(tuples, key=DBTuple.sort_key)
    ]


def _decode_contingency(rows: Any) -> frozenset:
    if not isinstance(rows, list):
        raise WireError("contingency_set must be an array")
    out = []
    for row in rows:
        if not (isinstance(row, list) and len(row) == 2 and isinstance(row[0], str)):
            raise WireError(f"bad contingency row {row!r}")
        out.append(DBTuple(row[0], tuple(_decode_value(v) for v in row[1])))
    return frozenset(out)


def encode_result(result) -> Dict[str, Any]:
    """A solver result as a wire payload.

    Exact results carry ``kind="exact"``; bounded results carry
    ``kind="bounded"`` with the certified interval.  Both include the
    witnessing contingency set and the producing method.
    """
    if isinstance(result, BoundedResilienceResult):
        return {
            "kind": "bounded",
            "lower_bound": result.lower_bound,
            "upper_bound": result.upper_bound,
            "value": result.value,
            "exact": result.is_exact,
            "method": result.method,
            "contingency_set": _encode_contingency(result.contingency_set),
        }
    if isinstance(result, ResilienceResult):
        return {
            "kind": "exact",
            "value": result.value,
            "method": result.method,
            "contingency_set": _encode_contingency(result.contingency_set),
        }
    raise TypeError(f"cannot encode {type(result).__name__} as a wire result")


def decode_result(payload: Any):
    """The inverse of :func:`encode_result`."""
    if not isinstance(payload, dict):
        raise WireError("result payload must be an object")
    kind = payload.get("kind")
    gamma = _decode_contingency(payload.get("contingency_set", []))
    method = payload.get("method", "")
    if kind == "exact":
        return ResilienceResult(payload["value"], gamma, method=method)
    if kind == "bounded":
        return BoundedResilienceResult(
            payload["lower_bound"], payload["upper_bound"], gamma, method=method
        )
    raise WireError(f"unknown result kind {kind!r}")
