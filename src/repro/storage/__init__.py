"""Out-of-core columnar storage.

The paper's complexity landscape (Section 2, and the PTIME island of
Proposition 31) is only observable at scale if instances *reach* scale:
this package stores a database as a versioned on-disk snapshot —
dictionary-encoded int64 column files opened with ``numpy.memmap`` —
so million-tuple instances build once, solve under a fixed memory
ceiling, and share pages across parallel workers instead of being
pickled per task.

Three layers:

* :mod:`repro.storage.layout` — the on-disk format
  (:data:`~repro.storage.layout.LAYOUT_VERSION`), the streaming
  :class:`~repro.storage.layout.SnapshotWriter` with atomic commit,
  and :func:`~repro.storage.layout.ingest_database` /
  :func:`~repro.storage.layout.open_snapshot`;
* :mod:`repro.storage.stored` — the read-only
  :class:`~repro.storage.stored.StoredDatabase` handle that the whole
  solver stack (witness enumeration, kernelization, exact hitting-set
  backends of Definition 1) consumes as if it were an in-memory
  :class:`~repro.db.database.Database`, pickling by path;
* the columnar adapter
  (:func:`~repro.storage.stored.columnar_parts`) wiring snapshots
  straight into :class:`~repro.query.columnar.ColumnarDatabase`
  without a decode pass.

Results are bit-identical to the in-memory backend at every
overlapping scale — the equivalence suite in ``tests/test_storage.py``
pins witness matrices, kernels, and resilience values across the
workload families.
"""

from repro.storage.layout import (
    LAYOUT_VERSION,
    Snapshot,
    SnapshotLayoutError,
    SnapshotWriter,
    ingest_database,
    open_snapshot,
)
from repro.storage.stored import (
    ReadOnlyStorageError,
    StoredDatabase,
    StoredRelation,
    columnar_parts,
    open_stored_database,
)

__all__ = [
    "LAYOUT_VERSION",
    "Snapshot",
    "SnapshotLayoutError",
    "SnapshotWriter",
    "ingest_database",
    "open_snapshot",
    "ReadOnlyStorageError",
    "StoredDatabase",
    "StoredRelation",
    "columnar_parts",
    "open_stored_database",
]
