"""The versioned on-disk snapshot layout and its writers/readers.

Out-of-core resilience (Section 2's ``D |= q`` witness enumeration over
million-tuple instances) needs the database itself off the Python heap:
a *snapshot* stores each relation as a raw little-endian int64 matrix
of dictionary-encoded constant codes — exactly the encoding
:class:`repro.query.columnar.ColumnarDatabase` builds in memory — so
the vectorized join (and therefore every witness structure and
hitting-set solve built on it, Definition 1) can run directly over
``numpy.memmap`` views without materializing facts as objects.

Layout version 1 (a directory)::

    manifest.json     layout version, content digest, relation table
    constants.i64     interned constants (all-int fast form), or
    constants.json    interned constants (mixed int/str form)
    rel<i>.codes.i64  one (rows, arity) code matrix per relation

``manifest.json`` carries the database's **content digest** — the
SHA-256 of :meth:`repro.db.database.Database.canonical_text`, computed
at ingest — so a reopened snapshot keys content-addressed caches
exactly like the in-memory instance it was built from.  Ingest is
atomic: everything is written into a ``*.part-<pid>`` sibling
directory and renamed into place in one step, so readers never observe
a partial snapshot.

Constants are restricted to ``int`` (64-bit range, bools excluded) and
``str`` — the value vocabulary of every workload generator — and the
all-int case is stored as a memmap-able int64 vector so a
million-constant snapshot costs no JSON parse and no per-value Python
object until a constant is actually decoded.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Bumped whenever the on-disk layout changes incompatibly; readers
#: refuse other versions instead of misreading them.
LAYOUT_VERSION = 1

_MANIFEST = "manifest.json"
_CONSTANTS_I64 = "constants.i64"
_CONSTANTS_JSON = "constants.json"
_CODES_DTYPE = np.dtype("<i8")

#: int64 bounds for constant validation.
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class SnapshotLayoutError(ValueError):
    """A snapshot directory is missing, partial, or layout-incompatible."""


def _check_constant(value: Hashable) -> Hashable:
    """Validate one constant: an int (int64 range, not bool) or a str."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SnapshotLayoutError(
            f"snapshot constants must be int or str, got {type(value).__name__}: "
            f"{value!r}"
        )
    if isinstance(value, int) and not (_I64_MIN <= value <= _I64_MAX):
        raise SnapshotLayoutError(f"constant {value!r} exceeds the int64 range")
    return value


class _RelationMeta:
    """One manifest relation entry."""

    __slots__ = ("name", "arity", "exogenous", "rows", "codes_file", "costs")

    def __init__(self, name, arity, exogenous, rows, codes_file, costs):
        self.name = name
        self.arity = arity
        self.exogenous = exogenous
        self.rows = rows
        self.codes_file = codes_file
        # [(codes_tuple, cost), ...] — non-unit costs, sparse.
        self.costs = costs


class SnapshotWriter:
    """Streaming builder of one layout-v1 snapshot.

    Relations must be added in strictly ascending name order (the order
    :meth:`~repro.db.database.Database.canonical_text` serializes them
    in), which lets the content digest be computed **streaming**: each
    relation's sorted row reprs are hashed and discarded before the
    next relation arrives, so building a million-tuple snapshot never
    holds more than one relation's digest material.  Pass a
    pre-computed ``digest`` (e.g. ``database.content_digest()``) to
    skip digest work entirely.

    Rows are buffered and flushed to the raw code file in blocks of
    ``buffer_rows``; constants are interned into one shared table.
    ``commit()`` renames the staging directory into place atomically;
    ``abort()`` (or ``commit`` failure) removes it.
    """

    def __init__(
        self,
        path,
        overwrite: bool = False,
        buffer_rows: int = 65536,
        digest: Optional[str] = None,
    ):
        self.path = Path(path)
        self.overwrite = overwrite
        self.buffer_rows = max(1, int(buffer_rows))
        if self.path.exists() and not overwrite:
            raise SnapshotLayoutError(f"snapshot target {self.path} already exists")
        self._staging = self.path.parent / f"{self.path.name}.part-{os.getpid()}"
        if self._staging.exists():
            shutil.rmtree(self._staging)
        self._staging.mkdir(parents=True)
        self._intern: Dict[Hashable, int] = {}
        self._relations: List[_RelationMeta] = []
        self._known_digest = digest
        self._hasher = None if digest is not None else hashlib.sha256()
        self._hashed_any = False
        self._committed = False

    # ------------------------------------------------------------------
    def _code(self, value: Hashable) -> int:
        code = self._intern.get(value)
        if code is None:
            _check_constant(value)
            code = len(self._intern)
            self._intern[value] = code
        return code

    def _feed_digest(self, segment_head: str, row_texts: Sequence[str]) -> None:
        if self._hasher is None:
            return
        if self._hashed_any:
            self._hasher.update(b"|")
        self._hasher.update(segment_head.encode())
        for i, text in enumerate(row_texts):
            if i:
                self._hasher.update(b",")
            self._hasher.update(text.encode())
        self._hashed_any = True

    def add_relation(
        self,
        name: str,
        arity: int,
        rows: Iterable[Sequence[Hashable]],
        exogenous: bool = False,
        costs: Optional[Dict[Tuple[Hashable, ...], int]] = None,
    ) -> int:
        """Stream one relation into the snapshot; returns its row count.

        ``rows`` yields distinct value vectors (set semantics, like
        :class:`~repro.db.relation.Relation`); ``costs`` maps value
        vectors to their non-unit positive costs.
        """
        if self._committed:
            raise SnapshotLayoutError("snapshot already committed")
        if self._relations and name <= self._relations[-1].name:
            raise SnapshotLayoutError(
                f"relations must be added in ascending name order "
                f"({name!r} after {self._relations[-1].name!r})"
            )
        if arity < 1:
            raise SnapshotLayoutError(f"arity must be >= 1, got {arity}")
        codes_file = f"rel{len(self._relations)}.codes.i64"
        n_rows = 0
        row_reprs: List[str] = [] if self._hasher is not None else None
        buffer: List[Tuple[int, ...]] = []
        with open(self._staging / codes_file, "wb") as handle:
            for values in rows:
                values = tuple(values)
                if len(values) != arity:
                    raise SnapshotLayoutError(
                        f"{name} has arity {arity}, got {len(values)} values: "
                        f"{values!r}"
                    )
                buffer.append(tuple(self._code(v) for v in values))
                if row_reprs is not None:
                    row_reprs.append(repr(values))
                n_rows += 1
                if len(buffer) >= self.buffer_rows:
                    handle.write(
                        np.asarray(buffer, dtype=_CODES_DTYPE).tobytes()
                    )
                    buffer.clear()
            if buffer:
                handle.write(np.asarray(buffer, dtype=_CODES_DTYPE).tobytes())
        if row_reprs is not None:
            row_reprs.sort()
            for a, b in zip(row_reprs, row_reprs[1:]):
                if a == b:
                    raise SnapshotLayoutError(
                        f"duplicate row in relation {name!r}: {a}"
                    )
            self._feed_digest(f"{name}/{arity}/{int(exogenous)}:", row_reprs)
        cost_entries: List[Tuple[Tuple[int, ...], int]] = []
        if costs:
            for values, cost in costs.items():
                values = tuple(values)
                if (
                    isinstance(cost, bool)
                    or not isinstance(cost, int)
                    or cost < 1
                ):
                    raise SnapshotLayoutError(
                        f"cost for {values!r} must be a positive int, got {cost!r}"
                    )
                if cost == 1:
                    continue
                cost_entries.append(
                    (tuple(self._code(v) for v in values), cost)
                )
            if cost_entries and not exogenous and self._hasher is not None:
                cost_texts = sorted(
                    f"{values!r}={cost}" for values, cost in costs.items()
                    if cost != 1
                )
                self._feed_digest(f"{name}$costs:", cost_texts)
        self._relations.append(
            _RelationMeta(name, arity, bool(exogenous), n_rows, codes_file, cost_entries)
        )
        return n_rows

    # ------------------------------------------------------------------
    def commit(self) -> Path:
        """Finalize the snapshot and rename it into place atomically."""
        if self._committed:
            raise SnapshotLayoutError("snapshot already committed")
        try:
            constants = list(self._intern)
            if constants and all(isinstance(c, int) for c in constants):
                constants_format = "i64"
                np.asarray(constants, dtype=_CODES_DTYPE).tofile(
                    self._staging / _CONSTANTS_I64
                )
            else:
                constants_format = "json"
                encoded = [
                    ["i", c] if isinstance(c, int) else ["s", c]
                    for c in constants
                ]
                (self._staging / _CONSTANTS_JSON).write_text(
                    json.dumps(encoded)
                )
            digest = (
                self._known_digest
                if self._known_digest is not None
                else self._hasher.hexdigest()
            )
            manifest = {
                "layout": LAYOUT_VERSION,
                "digest": digest,
                "n_constants": len(constants),
                "constants_format": constants_format,
                "relations": [
                    {
                        "name": m.name,
                        "arity": m.arity,
                        "exogenous": m.exogenous,
                        "rows": m.rows,
                        "codes_file": m.codes_file,
                        "costs": [
                            [list(codes), cost] for codes, cost in m.costs
                        ],
                    }
                    for m in self._relations
                ],
            }
            tmp_manifest = self._staging / (_MANIFEST + ".tmp")
            tmp_manifest.write_text(json.dumps(manifest, indent=1))
            os.replace(tmp_manifest, self._staging / _MANIFEST)
            if self.path.exists():
                if not self.overwrite:
                    raise SnapshotLayoutError(
                        f"snapshot target {self.path} already exists"
                    )
                shutil.rmtree(self.path)
            os.rename(self._staging, self.path)
            self._committed = True
            return self.path
        except BaseException:
            self.abort()
            raise

    def abort(self) -> None:
        """Discard the staging directory (idempotent)."""
        if self._staging.exists():
            shutil.rmtree(self._staging, ignore_errors=True)


class Snapshot:
    """An open (read-only, memmap-backed) layout-v1 snapshot.

    Cheap to construct — the manifest is parsed, code matrices and the
    constant table are mapped lazily on first touch — and safe to open
    from many processes at once: everything on disk is immutable after
    :meth:`SnapshotWriter.commit`.
    """

    def __init__(self, path):
        self.path = Path(path)
        manifest_path = self.path / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise SnapshotLayoutError(
                f"{self.path} is not a snapshot (no {_MANIFEST})"
            ) from None
        except (OSError, ValueError) as exc:
            raise SnapshotLayoutError(
                f"unreadable snapshot manifest {manifest_path}: {exc}"
            ) from None
        layout = manifest.get("layout")
        if layout != LAYOUT_VERSION:
            raise SnapshotLayoutError(
                f"snapshot {self.path} has layout {layout!r}; this reader "
                f"supports {LAYOUT_VERSION}"
            )
        self.layout = layout
        self.digest: str = manifest["digest"]
        self.n_constants: int = manifest["n_constants"]
        self._constants_format: str = manifest["constants_format"]
        self.relation_meta: Dict[str, _RelationMeta] = {}
        for entry in manifest["relations"]:
            meta = _RelationMeta(
                entry["name"],
                entry["arity"],
                bool(entry["exogenous"]),
                entry["rows"],
                entry["codes_file"],
                [(tuple(codes), cost) for codes, cost in entry["costs"]],
            )
            self.relation_meta[meta.name] = meta
        self._codes: Dict[str, np.ndarray] = {}
        self._constants = None

    # ------------------------------------------------------------------
    def relation_names(self) -> List[str]:
        """Relation names in manifest (= ascending) order."""
        return list(self.relation_meta)

    def codes(self, name: str) -> np.ndarray:
        """The ``(rows, arity)`` int64 code matrix of ``name``, memmap'd."""
        cached = self._codes.get(name)
        if cached is None:
            meta = self.relation_meta[name]
            if meta.rows == 0:
                cached = np.empty((0, meta.arity), dtype=np.int64)
            else:
                cached = np.memmap(
                    self.path / meta.codes_file,
                    dtype=_CODES_DTYPE,
                    mode="r",
                    shape=(meta.rows, meta.arity),
                )
            self._codes[name] = cached
        return cached

    def _load_constants(self):
        if self._constants is None:
            if self._constants_format == "i64":
                if self.n_constants == 0:
                    self._constants = np.empty(0, dtype=_CODES_DTYPE)
                else:
                    self._constants = np.memmap(
                        self.path / _CONSTANTS_I64,
                        dtype=_CODES_DTYPE,
                        mode="r",
                        shape=(self.n_constants,),
                    )
            else:
                encoded = json.loads(
                    (self.path / _CONSTANTS_JSON).read_text()
                )
                self._constants = [
                    int(v) if kind == "i" else str(v) for kind, v in encoded
                ]
        return self._constants

    def constant(self, code: int) -> Hashable:
        """Decode one interned constant."""
        table = self._load_constants()
        if isinstance(table, np.ndarray):
            return int(table[code])
        return table[code]

    def total_rows(self) -> int:
        return sum(m.rows for m in self.relation_meta.values())

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{m.name}{'^x' if m.exogenous else ''}:{m.rows}"
            for m in self.relation_meta.values()
        )
        return f"Snapshot({str(self.path)!r}; {rels})"


def open_snapshot(path) -> Snapshot:
    """Open the snapshot directory at ``path`` (validated, lazy)."""
    return Snapshot(path)


def ingest_database(database, path, overwrite: bool = False) -> Path:
    """Write ``database`` as a snapshot at ``path``, atomically.

    The manifest digest is the database's own
    :meth:`~repro.db.database.Database.content_digest`, so the stored
    form and the in-memory form share one content identity (the
    equivalence suite pins ``open`` → digest round-trips).  Costs —
    including exogenous ones, which the digest ignores but
    ``Database.cost`` serves — are preserved.
    """
    writer = SnapshotWriter(
        path, overwrite=overwrite, digest=database.content_digest()
    )
    try:
        for name in sorted(database.relations):
            rel = database.relations[name]
            costs = {t.values: rel.cost(t) for t in rel} if rel.has_weighted_costs else None
            writer.add_relation(
                name,
                rel.arity,
                (t.values for t in rel),
                exogenous=rel.exogenous,
                costs=costs,
            )
        return writer.commit()
    except BaseException:
        writer.abort()
        raise
