"""Read-only database handles over on-disk snapshots.

A :class:`StoredDatabase` presents a committed
:class:`~repro.storage.layout.Snapshot` through enough of the
:class:`~repro.db.database.Database` surface for the whole solver stack
— witness enumeration (Section 2's ``D |= q``), kernelization, and the
exact hitting-set backends behind Definition 1 — to run without ever
materializing the instance as Python objects:

* relation metadata (names, arities, exogenous flags, row counts) comes
  from the manifest;
* the columnar join adapter (:func:`columnar_parts`) hands
  :class:`~repro.query.columnar.ColumnarDatabase` the memmap'd code
  matrices *directly* — global tuple ids are positions into the
  snapshot's own row order, so the join never decodes a fact it does
  not emit in a witness;
* content identity (``canonical_form``/``content_digest``) is O(1):
  the digest recorded at ingest stands in for the instance, keying the
  witness-structure LRU and the result cache without an O(|D|) pass.

Handles are **strictly read-only** — every in-place mutating entry
point raises :class:`ReadOnlyStorageError`.  ``D - Gamma`` style
deletion (:meth:`StoredDatabase.minus`) returns a *materialized*
in-memory copy instead: it is only reached by the PTIME flow specials
and explicit contingency verification, never by the exact hitting-set
path, so a stored instance solves exact end to end without ever
copying itself onto the heap.

Pickling a handle serializes only its path: worker processes in
:mod:`repro.parallel` reopen the snapshot (and re-``mmap`` the same
pages) instead of receiving a pickled fact set, which makes task
payloads O(1) in the database size and lets the OS share the columns
across the pool.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.db.tuples import DBTuple
from repro.storage.layout import LAYOUT_VERSION, Snapshot, open_snapshot

#: Rows decoded per block when a stored relation is iterated as facts.
_DECODE_BLOCK_ROWS = 65536


class ReadOnlyStorageError(TypeError):
    """A mutating operation was attempted on a snapshot-backed handle."""


class StoredRelation:
    """One relation of an open snapshot, presented read-only.

    Iteration decodes facts lazily in blocks; membership testing and
    cost lookup decode nothing until first use.  The object intentionally
    mirrors the read surface of :class:`~repro.db.relation.Relation`
    (``name``/``arity``/``exogenous``/``len``/``iter``/``cost``/
    ``cost_items``/``has_weighted_costs``) and nothing of its write
    surface.
    """

    def __init__(self, db: "StoredDatabase", name: str):
        self._db = db
        meta = db.storage_snapshot.relation_meta[name]
        self.name = name
        self.arity = meta.arity
        self.exogenous = meta.exogenous
        self._rows = meta.rows
        self._cost_codes = meta.costs
        self._cost_map: Optional[Dict[DBTuple, int]] = None
        self._vector_set: Optional[Set[Tuple[Hashable, ...]]] = None

    def __len__(self) -> int:
        return self._rows

    def _decode_row(self, row: np.ndarray) -> Tuple[Hashable, ...]:
        constant = self._db.storage_snapshot.constant
        return tuple(constant(int(c)) for c in row)

    def __iter__(self) -> Iterator[DBTuple]:
        codes = self._db.storage_snapshot.codes(self.name)
        name = self.name
        for lo in range(0, self._rows, _DECODE_BLOCK_ROWS):
            block = np.asarray(codes[lo : lo + _DECODE_BLOCK_ROWS])
            for row in block:
                yield DBTuple(name, self._decode_row(row))

    def __contains__(self, item: object) -> bool:
        if isinstance(item, DBTuple):
            if item.relation != self.name:
                return False
            values = item.values
        elif isinstance(item, tuple):
            values = item
        else:
            return False
        if self._vector_set is None:
            # One full decode, amortized across membership tests; the
            # solve path never calls this (witnesses carry facts that
            # came out of the snapshot itself).
            self._vector_set = {t.values for t in self}
        return values in self._vector_set

    def value_vectors(self) -> Set[Tuple[Hashable, ...]]:
        """The raw value vectors (decoded once, then cached)."""
        if self._vector_set is None:
            self._vector_set = {t.values for t in self}
        return self._vector_set

    def _costs(self) -> Dict[DBTuple, int]:
        if self._cost_map is None:
            self._cost_map = {
                DBTuple(self.name, self._decode_row(np.asarray(codes))): cost
                for codes, cost in self._cost_codes
            }
        return self._cost_map

    def cost(self, fact: DBTuple) -> int:
        """The cost of ``fact`` (1 unless the snapshot stored one)."""
        return self._costs().get(fact, 1)

    @property
    def has_weighted_costs(self) -> bool:
        return bool(self._cost_codes)

    def cost_items(self) -> frozenset:
        return frozenset((t.values, c) for t, c in self._costs().items())

    @property
    def tuples(self) -> frozenset:
        """All facts, decoded (O(n) — equivalence tests only)."""
        return frozenset(self)

    def __repr__(self) -> str:
        flag = "^x" if self.exogenous else ""
        return f"StoredRelation {self.name}{flag}/{self.arity} ({self._rows} rows)"


def _read_only(*_args, **_kwargs):
    raise ReadOnlyStorageError(
        "snapshot-backed databases are read-only; materialize with "
        "StoredDatabase.to_database() to mutate"
    )


class StoredDatabase:
    """A read-only :class:`~repro.db.database.Database` stand-in backed
    by an on-disk snapshot.

    Satisfies the read surface every solver layer touches — relation
    metadata, fact iteration, costs, content identity — while keeping
    the data memmap'd.  ``canonical_form()`` is a one-element sentinel
    built from the layout version and content digest, so hashing and
    cache keying are O(1); two handles over snapshots of equal content
    compare equal, and a handle never compares equal to an in-memory
    ``Database`` (different types, different cache families — by
    design, since their canonical forms are produced differently).
    """

    def __init__(self, snapshot: Snapshot):
        self.storage_snapshot = snapshot
        self.relations: Dict[str, StoredRelation] = {
            name: StoredRelation(self, name)
            for name in snapshot.relation_names()
        }

    # -- content identity ---------------------------------------------
    def content_digest(self) -> str:
        """The digest recorded at ingest — O(1), no decode."""
        return self.storage_snapshot.digest

    def canonical_form(self) -> frozenset:
        """An O(1) sentinel standing in for the canonical form."""
        return frozenset(
            {("__snapshot__", LAYOUT_VERSION, self.storage_snapshot.digest)}
        )

    def content_epoch(self) -> tuple:
        """Snapshots never mutate: the epoch is the digest itself."""
        return (("__snapshot__", self.storage_snapshot.digest),)

    def canonical_text(self) -> str:
        """The full canonical text, by decoding every fact (O(|D|)).

        Only result-cache key construction needs this; prefer
        :meth:`content_digest` for identity checks.
        """
        parts: List[str] = []
        for name in sorted(self.relations):
            rel = self.relations[name]
            rows = ",".join(sorted(repr(t.values) for t in rel))
            parts.append(f"{name}/{rel.arity}/{int(rel.exogenous)}:{rows}")
            if not rel.exogenous and rel.has_weighted_costs:
                cost_rows = ",".join(
                    sorted(f"{values!r}={cost}" for values, cost in rel.cost_items())
                )
                parts.append(f"{name}$costs:{cost_rows}")
        return "|".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoredDatabase):
            return NotImplemented
        return self.storage_snapshot.digest == other.storage_snapshot.digest

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    # -- read surface --------------------------------------------------
    def relation(self, name: str) -> StoredRelation:
        return self.relations[name]

    def __contains__(self, fact: DBTuple) -> bool:
        rel = self.relations.get(fact.relation)
        return rel is not None and fact in rel

    def __iter__(self) -> Iterator[DBTuple]:
        for rel in self.relations.values():
            yield from rel

    def __len__(self) -> int:
        return self.storage_snapshot.total_rows()

    def all_tuples(self) -> Set[DBTuple]:
        return set(self)

    def endogenous_tuples(self) -> Set[DBTuple]:
        out: Set[DBTuple] = set()
        for rel in self.relations.values():
            if not rel.exogenous:
                out.update(rel)
        return out

    def active_domain(self) -> Set[Hashable]:
        dom: Set[Hashable] = set()
        for fact in self:
            dom.update(fact.values)
        return dom

    def cost(self, fact: DBTuple) -> int:
        """The cost of ``fact``.

        Unlike ``Database.cost`` this does not verify membership —
        the solver stack only asks about facts it read out of this very
        snapshot, and a membership probe would force a full decode.
        """
        rel = self.relations.get(fact.relation)
        if rel is None:
            raise ValueError(f"{fact!r} is not in the database")
        return rel.cost(fact)

    def total_cost(self, facts) -> int:
        return sum(self.cost(fact) for fact in facts)

    def has_weighted_costs(self) -> bool:
        return any(
            rel.has_weighted_costs
            for rel in self.relations.values()
            if not rel.exogenous
        )

    # -- write surface: refused ----------------------------------------
    add = _read_only
    add_all = _read_only
    declare = _read_only
    set_cost = _read_only
    set_exogenous = _read_only
    copy = _read_only

    def minus(self, gamma):
        """``D - Gamma``, materialized in memory.

        The exact hitting-set path never deletes (it works on the
        witness structure), but the PTIME flow specials and explicit
        contingency verification do — for those, the handle decodes to
        a mutable :class:`Database` first (O(|D|)), which is fine at
        the scales flow constructions run at and loudly wrong nowhere.
        """
        return self.to_database().minus(gamma)

    def to_database(self):
        """Materialize a mutable in-memory :class:`Database` copy.

        O(|D|) decode — the escape hatch for verification helpers
        (e.g. ``is_contingency_set``) that genuinely need deletion.
        """
        from repro.db.database import Database

        db = Database()
        for name in sorted(self.relations):
            rel = self.relations[name]
            out = db.declare(name, rel.arity, exogenous=rel.exogenous)
            for fact in rel:
                out.add(*fact.values)
            for values, cost in rel.cost_items():
                out.set_cost(DBTuple(name, values), cost)
        return db

    # -- pickling: by path ---------------------------------------------
    def __reduce__(self):
        return (open_stored_database, (str(self.storage_snapshot.path),))

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{r.name}{'^x' if r.exogenous else ''}:{len(r)}"
            for r in self.relations.values()
        )
        return f"StoredDatabase({rels}; n={len(self)})"


def open_stored_database(path) -> StoredDatabase:
    """Open the snapshot at ``path`` as a read-only database handle."""
    return StoredDatabase(open_snapshot(path))


# ---------------------------------------------------------------------------
# Columnar adapter
# ---------------------------------------------------------------------------

class _SnapshotFacts:
    """Lazy global-tuple-id → :class:`DBTuple` decoder.

    Stands in for ``ColumnarDatabase.facts`` (a materialized list on the
    in-memory path): facts are decoded only when a witness actually
    emits their id, so enumeration over a million-tuple snapshot touches
    Python objects only for the tuples that appear in witnesses.
    """

    def __init__(self, snapshot: Snapshot):
        self._snapshot = snapshot
        self._names: List[str] = []
        self._starts: List[int] = []
        total = 0
        for name in snapshot.relation_names():
            self._names.append(name)
            self._starts.append(total)
            total += snapshot.relation_meta[name].rows
        self._total = total

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, tid: int) -> DBTuple:
        tid = int(tid)
        if not 0 <= tid < self._total:
            raise IndexError(tid)
        i = bisect.bisect_right(self._starts, tid) - 1
        name = self._names[i]
        row = self._snapshot.codes(name)[tid - self._starts[i]]
        constant = self._snapshot.constant
        return DBTuple(name, tuple(constant(int(c)) for c in row))


class _SnapshotConstants:
    """Lazy code → constant decoder (``ColumnarDatabase.constants``)."""

    def __init__(self, snapshot: Snapshot):
        self._snapshot = snapshot

    def __len__(self) -> int:
        return self._snapshot.n_constants

    def __getitem__(self, code: int) -> Hashable:
        return self._snapshot.constant(int(code))


def columnar_parts(snapshot: Snapshot):
    """The five ``ColumnarDatabase`` ingredients, zero-copy.

    Returns ``(facts, relations, ranges, constants, n_constants)``:
    code matrices are the snapshot's memmaps as-is (global tuple ids are
    snapshot row positions, relations in ascending name order exactly
    like the in-memory encoder), and the fact/constant tables decode
    lazily.  Codes in a snapshot are already dense (< ``n_constants``),
    which is all the join's key folding requires.
    """
    relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    ranges: List[Tuple[str, int, np.ndarray]] = []
    offset = 0
    for name in snapshot.relation_names():
        meta = snapshot.relation_meta[name]
        codes = snapshot.codes(name)
        ids = np.arange(offset, offset + meta.rows, dtype=np.int64)
        ranges.append((name, offset, codes))
        relations[name] = (codes, ids)
        offset += meta.rows
    return (
        _SnapshotFacts(snapshot),
        relations,
        ranges,
        _SnapshotConstants(snapshot),
        max(1, snapshot.n_constants),
    )
