"""Structural analysis of conjunctive queries.

Implements the paper's structural vocabulary:

* :mod:`repro.structure.domination` — sj-free domination (Definition 3)
  and SJ-domination (Definition 16), plus normalization (making
  dominated relations exogenous, Propositions 4/18);
* :mod:`repro.structure.triads` — triad detection (Definition 5);
* :mod:`repro.structure.linearity` — linear queries (Section 2.4) and
  pseudo-linearity (Theorem 25);
* :mod:`repro.structure.patterns` — unary/binary paths (Theorems 27/28),
  chains, confluences (+ exogenous-path criterion), permutations
  (+ boundedness), and REP patterns (Section 7);
* :mod:`repro.structure.classifier` — the dichotomy decision procedure
  (Theorem 37) extended with the Section 8 results.
"""

from repro.structure.domination import (
    sjfree_dominates,
    sj_dominates,
    dominated_relations,
    normalize,
)
from repro.structure.triads import find_triad, has_triad
from repro.structure.linearity import (
    find_linear_order,
    is_linear,
    is_pseudo_linear,
)
from repro.structure.patterns import (
    find_unary_path,
    find_binary_path,
    find_path,
    two_atom_pattern,
    confluence_has_exogenous_path,
    permutation_is_bound,
)
from repro.structure.classifier import classify, Classification, Verdict

__all__ = [
    "sjfree_dominates",
    "sj_dominates",
    "dominated_relations",
    "normalize",
    "find_triad",
    "has_triad",
    "find_linear_order",
    "is_linear",
    "is_pseudo_linear",
    "find_unary_path",
    "find_binary_path",
    "find_path",
    "two_atom_pattern",
    "confluence_has_exogenous_path",
    "permutation_is_bound",
    "classify",
    "Classification",
    "Verdict",
]
