"""The complexity classifier: Theorem 37's decision procedure, extended.

Theorem 37 promises "a PTIME algorithm that on input q determines which
case occurs".  :func:`classify` is that algorithm, extended with every
complexity fact the paper proves:

1. minimize the query (Section 4.1 — hardness patterns inside removable
   atoms are irrelevant, Example 22);
2. split into connected components (Lemma 15: NP-complete iff some
   component is; P iff all are);
3. normalize via SJ-domination (Proposition 18);
4. self-join-free queries: the prior dichotomy (Theorem 7);
5. triad => NP-complete (Theorem 24);
6. unary/binary path => NP-complete (Theorems 27/28);
7. exactly two R-atoms: the Figure 5 dichotomy — chain (NPC,
   Proposition 30), confluence (NPC iff exogenous path, Proposition 32),
   permutation (NPC iff bound, Proposition 35), REP (P, Proposition 36);
8. three R-atoms: the Section 8 catalog (isomorphism matching), with the
   paper's open problems reported as OPEN;
9. k-chains for any k (NPC, Proposition 38).

Anything the paper leaves open — or outside its fragment (non-binary
self-joins, multiple repeated relations) — returns OPEN with a reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.query.cq import ConjunctiveQuery
from repro.query.homomorphism import minimize
from repro.query.zoo import ALL_QUERIES, PAPER_VERDICTS
from repro.structure.domination import normalize
from repro.structure.isomorphism import are_isomorphic
from repro.structure.linearity import is_linear
from repro.structure.patterns import (
    CHAIN,
    CONFLUENCE,
    PERMUTATION,
    REP,
    PATH,
    confluence_has_exogenous_path,
    find_path,
    permutation_is_bound,
    two_atom_pattern,
)
from repro.structure.triads import find_triad


class Verdict(str, Enum):
    """Complexity verdict for RES(q)."""

    P = "P"
    NPC = "NP-complete"
    OPEN = "OPEN"


@dataclass
class Classification:
    """Outcome of :func:`classify`.

    Attributes
    ----------
    verdict:
        ``Verdict.P``, ``Verdict.NPC``, or ``Verdict.OPEN``.
    rule:
        Short name of the deciding rule (e.g. ``"triad"``,
        ``"confluence-no-exogenous-path"``).
    detail:
        Human-readable elaboration (e.g. the triad's atoms).
    minimized:
        The minimized query actually analysed.
    normalized:
        The normal form (dominated relations exogenous) analysed.
    component_results:
        Per-component classifications when the query is disconnected.
    """

    verdict: Verdict
    rule: str
    detail: str = ""
    minimized: Optional[ConjunctiveQuery] = None
    normalized: Optional[ConjunctiveQuery] = None
    component_results: List["Classification"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"Classification({self.verdict.value}, rule={self.rule!r})"


# Zoo entries with three R-atoms used as the Section 8 catalog.
_SECTION8_CATALOG = [
    "q_3chain",
    "q_AC3conf",
    "q_TS3conf",
    "q_AS3conf",
    "q_AC3cc",
    "q_AS3cc",
    "q_C3cc",
    "q_S3cc",
    "q_A3perm_R",
    "q_Swx3perm_R",
    "q_Sxy3perm_R",
    "q_AC3perm_R",
    "q_AB3perm_R",
    "q_SxyBC3perm_R",
    "q_ASxy3perm_R",
    "q_SxyB3perm_R",
    "q_SxyC3perm_R",
    "q_z4",
    "q_z5",
    "q_z6",
    "q_z7",
]
# q_A3perm_R is in the zoo without a PAPER_VERDICTS entry conflict: Prop 13.
_CATALOG_VERDICTS = dict(PAPER_VERDICTS)
_CATALOG_VERDICTS.setdefault("q_A3perm_R", "P")

_NORMALIZED_CACHE: dict = {}


def _normalized_reference(name: str) -> ConjunctiveQuery:
    """The catalog query in normal form (memoised)."""
    if name not in _NORMALIZED_CACHE:
        _NORMALIZED_CACHE[name] = normalize(ALL_QUERIES[name])
    return _NORMALIZED_CACHE[name]


def _is_k_chain(query: ConjunctiveQuery, rel: str) -> bool:
    """Do the R-atoms form a simple k-chain R(v0,v1), ..., R(vk-1,vk)?

    All endpoints distinct (no repeated variables, no cycles back).
    """
    occs = query.occurrences(rel)
    if any(a.arity != 2 or a.has_repeated_variable() for a in occs):
        return False
    successors = {}
    indegree = {}
    for a in occs:
        src, dst = a.args
        if src in successors:
            return False
        successors[src] = dst
        indegree[dst] = indegree.get(dst, 0) + 1
        if indegree[dst] > 1:
            return False
    starts = [a.args[0] for a in occs if indegree.get(a.args[0], 0) == 0]
    if len(starts) != 1:
        return False
    # Walk the chain; it must visit every atom without revisiting a node.
    node = starts[0]
    visited = {node}
    steps = 0
    while node in successors:
        node = successors[node]
        if node in visited:
            return False
        visited.add(node)
        steps += 1
    return steps == len(occs)


def _classify_connected(query: ConjunctiveQuery) -> Classification:
    """Classify a minimal, connected query."""
    normalized = normalize(query)
    endo = normalized.endogenous_atoms()
    if not endo:
        return Classification(
            Verdict.P,
            rule="no-endogenous-atoms",
            detail="every relation is exogenous; resilience is trivial",
            minimized=query,
            normalized=normalized,
        )

    triad = find_triad(normalized)
    if triad is not None:
        atoms = ", ".join(repr(normalized.atoms[i]) for i in triad)
        return Classification(
            Verdict.NPC,
            rule="triad",
            detail=f"triad {{{atoms}}} (Theorem 24)",
            minimized=query,
            normalized=normalized,
        )

    if normalized.is_self_join_free():
        return Classification(
            Verdict.P,
            rule="sj-free-no-triad",
            detail="self-join-free without triad (Theorem 7)",
            minimized=query,
            normalized=normalized,
        )

    # Self-joins among *endogenous* atoms?
    endo_counts = {}
    for atom in endo:
        endo_counts[atom.relation] = endo_counts.get(atom.relation, 0) + 1
    endo_sj = sorted(r for r, c in endo_counts.items() if c >= 2)

    if not endo_sj:
        # Repeated relations are all exogenous.  Triad-free; if the
        # query is linear, standard flow applies (exogenous repeats are
        # infinite-capacity and never cut).  Otherwise Conjecture 26
        # territory.
        if is_linear(normalized):
            return Classification(
                Verdict.P,
                rule="linear-exogenous-self-joins",
                detail="only exogenous relations repeat; linear => network flow",
                minimized=query,
                normalized=normalized,
            )
        return Classification(
            Verdict.OPEN,
            rule="pseudo-linear-conjecture",
            detail="no triad, repeats exogenous, not linear (Conjecture 26)",
            minimized=query,
            normalized=normalized,
        )

    if len(endo_sj) > 1 or not normalized.is_binary():
        return Classification(
            Verdict.OPEN,
            rule="outside-fragment",
            detail="not a single-self-join binary query; beyond the paper",
            minimized=query,
            normalized=normalized,
        )

    rel = endo_sj[0]
    path = find_path(normalized)
    if path is not None:
        a, b = path
        kind = "unary" if a.arity == 1 else "binary"
        return Classification(
            Verdict.NPC,
            rule=f"{kind}-path",
            detail=f"path between {a!r} and {b!r} (Theorems 27/28)",
            minimized=query,
            normalized=normalized,
        )

    occs = normalized.occurrences(rel)
    if len(occs) == 2:
        return _classify_two_atoms(query, normalized)
    if _is_k_chain(normalized, rel):
        return Classification(
            Verdict.NPC,
            rule="k-chain",
            detail=f"{len(occs)}-chain of {rel} atoms (Proposition 38)",
            minimized=query,
            normalized=normalized,
        )
    if len(occs) == 3:
        return _classify_three_atoms(query, normalized)
    return Classification(
        Verdict.OPEN,
        rule="many-R-atoms",
        detail=f"{len(occs)} R-atoms; beyond the paper's case analysis",
        minimized=query,
        normalized=normalized,
    )


def _classify_two_atoms(
    original: ConjunctiveQuery, normalized: ConjunctiveQuery
) -> Classification:
    pattern = two_atom_pattern(normalized)
    if pattern == CHAIN:
        return Classification(
            Verdict.NPC,
            rule="chain",
            detail="2-chain (Proposition 30)",
            minimized=original,
            normalized=normalized,
        )
    if pattern == CONFLUENCE:
        if confluence_has_exogenous_path(normalized):
            return Classification(
                Verdict.NPC,
                rule="confluence-exogenous-path",
                detail="confluence with exogenous path (Proposition 32)",
                minimized=original,
                normalized=normalized,
            )
        return Classification(
            Verdict.P,
            rule="confluence-no-exogenous-path",
            detail="confluence, flow-solvable (Propositions 31/32)",
            minimized=original,
            normalized=normalized,
        )
    if pattern == PERMUTATION:
        if permutation_is_bound(normalized):
            return Classification(
                Verdict.NPC,
                rule="bound-permutation",
                detail="bound permutation (Proposition 35)",
                minimized=original,
                normalized=normalized,
            )
        return Classification(
            Verdict.P,
            rule="unbound-permutation",
            detail="unbound permutation, flow-solvable (Proposition 35)",
            minimized=original,
            normalized=normalized,
        )
    if pattern == REP:
        return Classification(
            Verdict.P,
            rule="rep-shared-variable",
            detail="REP atoms sharing a variable (Proposition 36)",
            minimized=original,
            normalized=normalized,
        )
    return Classification(  # pragma: no cover - paths were handled earlier
        Verdict.OPEN,
        rule="unrecognized-two-atom-pattern",
        detail=f"pattern={pattern!r}",
        minimized=original,
        normalized=normalized,
    )


def _classify_three_atoms(
    original: ConjunctiveQuery, normalized: ConjunctiveQuery
) -> Classification:
    for name in _SECTION8_CATALOG:
        # Compare normal form to normal form: the input query has been
        # normalized, so the catalog reference must be too (e.g. in
        # q_AS3cc the R-atoms dominate S, which becomes exogenous).
        reference = _normalized_reference(name)
        if are_isomorphic(normalized, reference):
            raw = _CATALOG_VERDICTS.get(name, "OPEN")
            verdict = {
                "P": Verdict.P,
                "NPC": Verdict.NPC,
                "OPEN": Verdict.OPEN,
            }[raw]
            return Classification(
                verdict,
                rule=f"section8-catalog:{name}",
                detail=f"isomorphic to {name} (Section 8)",
                minimized=original,
                normalized=normalized,
            )
    return Classification(
        Verdict.OPEN,
        rule="three-R-atoms-uncataloged",
        detail="three R-atoms; no Section 8 result matches",
        minimized=original,
        normalized=normalized,
    )


def classify(query: ConjunctiveQuery) -> Classification:
    """Classify the complexity of RES(q).

    Returns a :class:`Classification` whose ``verdict`` is ``P``,
    ``NP-complete``, or ``OPEN``, together with the deciding rule.
    """
    minimal = minimize(query)
    components = minimal.components()
    if len(components) == 1:
        result = _classify_connected(minimal)
        result.minimized = minimal
        return result

    sub_results = [_classify_connected(c) for c in components]
    if any(r.verdict == Verdict.NPC for r in sub_results):
        verdict, rule = Verdict.NPC, "component-np-complete"
        detail = "some component is NP-complete (Lemma 15)"
    elif any(r.verdict == Verdict.OPEN for r in sub_results):
        verdict, rule = Verdict.OPEN, "component-open"
        detail = "no component is NP-complete but some are unresolved"
    else:
        verdict, rule = Verdict.P, "all-components-p"
        detail = "every component is in P (Lemma 15)"
    return Classification(
        verdict,
        rule=rule,
        detail=detail,
        minimized=minimal,
        component_results=sub_results,
    )
