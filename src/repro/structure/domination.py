"""Domination: when an endogenous relation is implicitly exogenous.

Two notions coexist in the paper:

* **SJ-free domination** (Definition 3): atom ``A`` dominates atom ``B``
  when ``var(A) ⊂ var(B)``.  Sound for sj-free queries (Proposition 4)
  but *unsound* with self-joins — Example 11 exhibits a database where
  the "dominated" relation is the better contingency choice.

* **SJ-domination** (Definition 16): relation ``A`` dominates relation
  ``B`` when there is a positional map ``f : [arity(A)] -> [arity(B)]``
  such that *every* ``B``-atom has a matching ``A``-atom whose i-th
  position equals the B-atom's ``f(i)``-th position.  Sound for all CQs
  (Proposition 18).

Normalization (making every dominated relation exogenous, iterated to a
fixpoint) is the preprocessing step every complexity argument in the
paper assumes.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Tuple

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery


def sjfree_dominates(a: Atom, b: Atom) -> bool:
    """Definition 3: ``A`` dominates ``B`` iff ``var(A)`` is a *proper*
    subset of ``var(B)`` (both atoms endogenous).

    Only meaningful for self-join-free queries; retained for the E4
    experiment demonstrating its failure under self-joins.
    """
    if a.exogenous or b.exogenous:
        return False
    return a.variables() < b.variables()


def _position_maps(arity_a: int, arity_b: int):
    """All functions [arity_a] -> [arity_b], as index tuples."""
    return product(range(arity_b), repeat=arity_a)


def sj_dominates(query: ConjunctiveQuery, rel_a: str, rel_b: str) -> bool:
    """Definition 16: does relation ``rel_a`` dominate ``rel_b`` in ``query``?

    Requires a single positional map ``f`` such that for each ``B``-atom
    ``g_B`` there exists an ``A``-atom ``h_A`` with
    ``pos_{h_A}(i) = pos_{g_B}(f(i))`` for all ``i``.  Both relations
    must be endogenous and distinct.
    """
    if rel_a == rel_b:
        return False
    flags = query.relation_flags()
    if flags.get(rel_a, False) or flags.get(rel_b, False):
        return False
    a_atoms = query.occurrences(rel_a)
    b_atoms = query.occurrences(rel_b)
    if not a_atoms or not b_atoms:
        return False
    arity_a = a_atoms[0].arity
    arity_b = b_atoms[0].arity

    for f in _position_maps(arity_a, arity_b):
        ok = True
        for g_b in b_atoms:
            projected = tuple(g_b.args[f[i]] for i in range(arity_a))
            if not any(h_a.args == projected for h_a in a_atoms):
                ok = False
                break
        if ok:
            return True
    return False


def dominated_relations(query: ConjunctiveQuery) -> List[Tuple[str, str]]:
    """All SJ-domination pairs ``(dominator, dominated)`` in ``query``."""
    names = sorted(query.relation_names())
    out: List[Tuple[str, str]] = []
    for rel_a in names:
        for rel_b in names:
            if rel_a != rel_b and sj_dominates(query, rel_a, rel_b):
                out.append((rel_a, rel_b))
    return out


def normalize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The normal form: iteratively mark SJ-dominated relations exogenous.

    Proposition 18 guarantees ``RES(q) ≡ RES(normalize(q))``.  Iteration
    is needed because marking one relation exogenous can stop it from
    dominating others (exogenous relations neither dominate nor are
    usefully dominated — they are already undeletable).

    Mutual domination (two relations each dominating the other — only
    possible with identical variable vectors up to the map) is broken by
    name order so at least one relation stays endogenous.
    """
    current = query
    while True:
        pairs = dominated_relations(current)
        if not pairs:
            return current
        dominators = {a for a, _ in pairs}
        # Pick a dominated relation that is not itself needed as a
        # dominator of something else this round, if possible.
        candidates = sorted({b for _, b in pairs})
        pick = None
        for cand in candidates:
            if cand not in dominators:
                pick = cand
                break
        if pick is None:
            # Mutual domination cycle: keep the lexicographically first
            # dominator endogenous, mark its partner.
            first = sorted(pairs)[0]
            pick = first[1]
        current = current.with_atoms_exogenous([pick])
