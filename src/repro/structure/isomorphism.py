"""Query isomorphism up to renaming and column symmetry.

The Section 8 results are stated for concrete queries (``qAC3conf``,
``qSxy3perm-R``, ...).  To apply them, the classifier must recognise a
user's query as *the same query* up to:

* renaming of variables (bijective),
* renaming of relation symbols (bijective, preserving arity, exogenous
  flag, and occurrence structure),
* globally swapping the two columns of any binary relation — resilience
  is invariant under replacing ``R`` by its transpose everywhere in the
  query and database, so e.g. ``R(x,y), R(x,z)`` is the mirror image of
  the confluence ``R(y,x), R(z,x)``.

Queries here are tiny (<= 6 atoms), so brute-force search over relation
bijections, column-swap masks, and variable bijections is instant.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Dict, List, Optional, Tuple

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery


def _relation_profile(query: ConjunctiveQuery, rel: str) -> Tuple[int, bool, int]:
    """(arity, exogenous, occurrence count) — invariants a relation
    bijection must preserve."""
    occ = query.occurrences(rel)
    return (occ[0].arity, occ[0].exogenous, len(occ))


def _atom_multiset(
    query: ConjunctiveQuery,
    rel_map: Dict[str, str],
    swapped: Dict[str, bool],
    var_map: Dict[str, str],
) -> frozenset:
    atoms = set()
    for atom in query.atoms:
        args = tuple(var_map[a] for a in atom.args)
        if swapped.get(atom.relation, False) and len(args) == 2:
            args = (args[1], args[0])
        atoms.add((rel_map[atom.relation], args))
    return frozenset(atoms)


def _target_set(query: ConjunctiveQuery) -> frozenset:
    return frozenset((a.relation, a.args) for a in query.atoms)


def find_isomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, allow_column_swap: bool = True
) -> Optional[Dict[str, str]]:
    """A variable bijection witnessing ``q1 ≅ q2``, or ``None``.

    Searches relation bijections compatible with profiles, column-swap
    masks over q1's binary relations (when ``allow_column_swap``), and
    variable bijections.
    """
    if len(q1.atoms) != len(q2.atoms):
        return None
    v1 = sorted(q1.variables())
    v2 = sorted(q2.variables())
    if len(v1) != len(v2):
        return None
    rels1 = sorted(q1.relation_names())
    rels2 = sorted(q2.relation_names())
    if len(rels1) != len(rels2):
        return None

    profiles2: Dict[str, List[str]] = {}
    for r in rels2:
        profiles2.setdefault(str(_relation_profile(q2, r)), []).append(r)

    target = _target_set(q2)

    # Candidate images per q1 relation.
    candidates = []
    for r in rels1:
        images = profiles2.get(str(_relation_profile(q1, r)), [])
        if not images:
            return None
        candidates.append(images)

    binary_rels = [r for r in rels1 if q1.occurrences(r)[0].arity == 2]

    for images in product(*candidates):
        if len(set(images)) != len(images):
            continue
        rel_map = dict(zip(rels1, images))
        swap_space = (
            product([False, True], repeat=len(binary_rels))
            if allow_column_swap
            else [tuple(False for _ in binary_rels)]
        )
        for mask in swap_space:
            swapped = dict(zip(binary_rels, mask))
            for perm in permutations(v2):
                var_map = dict(zip(v1, perm))
                if _atom_multiset(q1, rel_map, swapped, var_map) == target:
                    return var_map
    return None


def are_isomorphic(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, allow_column_swap: bool = True
) -> bool:
    """True iff the two queries are isomorphic (see module docstring)."""
    return find_isomorphism(q1, q2, allow_column_swap) is not None
