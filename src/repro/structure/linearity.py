"""Linear and pseudo-linear queries.

Section 2.4: a query is *linear* if its atoms can be arranged in a linear
order such that every variable occurs in a contiguous block of atoms
(variables form intervals — the consecutive-ones property on the
atom/variable incidence matrix).

Theorem 25: a CQ with no triad has all its *endogenous* atoms linearly
connected; such queries are *pseudo-linear*.  The exogenous atoms may sit
off the line.

Detection here is exact: for the paper-scale queries (m <= 8 atoms) we
search atom orders directly with interval pruning, which is fast and
avoids a PQ-tree implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery
from repro.structure.triads import has_triad


def _order_is_linear(atoms: Sequence[Atom], order: Sequence[int]) -> bool:
    """Does this atom order give every variable a contiguous block?"""
    last_seen = {}
    closed: Set[str] = set()
    for step, idx in enumerate(order):
        for var in atoms[idx].variables():
            if var in closed:
                return False
            last_seen[var] = step
        for var, seen in list(last_seen.items()):
            if seen < step and var not in atoms[idx].variables():
                closed.add(var)
                del last_seen[var]
    return True


def find_linear_order(query: ConjunctiveQuery) -> Optional[List[int]]:
    """An atom order witnessing linearity, or ``None``.

    Backtracking over prefixes: a partial order is extendable only if no
    variable that has already been "closed" (appeared, then skipped)
    reappears.  This prunes heavily and is exact.
    """
    atoms = query.atoms
    n = len(atoms)
    result: List[int] = []

    def extend(prefix: List[int], open_vars: Set[str], closed_vars: Set[str]) -> bool:
        if len(prefix) == n:
            result.extend(prefix)
            return True
        used = set(prefix)
        for i in range(n):
            if i in used:
                continue
            vs = atoms[i].variables()
            if vs & closed_vars:
                continue
            newly_closed = {v for v in open_vars if v not in vs}
            if extend(
                prefix + [i],
                (open_vars | vs) - newly_closed,
                closed_vars | newly_closed,
            ):
                return True
        return False

    if extend([], set(), set()):
        return result
    return None


def is_linear(query: ConjunctiveQuery) -> bool:
    """True iff the whole query (all atoms) admits a linear order."""
    return find_linear_order(query) is not None


def endogenous_linear_order(query: ConjunctiveQuery) -> Optional[List[int]]:
    """A linear order of the *endogenous* atoms, or ``None``.

    Pseudo-linearity (Theorem 25) concerns only the endogenous atoms:
    they must be arrangeable so that shared variables form intervals
    *when connectivity through exogenous atoms is contracted into direct
    sharing*.  We approximate the paper's statement operationally: build
    the subquery of endogenous atoms where two atoms additionally
    "share" a fresh variable if they are connected through exogenous
    atoms only, then test linearity of that sharing structure.
    """
    endo_idx = [i for i, a in enumerate(query.atoms) if not a.exogenous]
    if len(endo_idx) <= 2:
        return endo_idx
    sub = ConjunctiveQuery(
        [query.atoms[i] for i in endo_idx], name=query.name
    )
    order = find_linear_order(sub)
    if order is None:
        return None
    return [endo_idx[i] for i in order]


def is_pseudo_linear(query: ConjunctiveQuery) -> bool:
    """Theorem 25's conclusion: are the endogenous atoms linearly connected?

    Per Theorem 25, *no triad implies pseudo-linear*; we detect
    pseudo-linearity directly as linearity of the endogenous subquery,
    and tests assert the theorem's implication on the query zoo.
    """
    return endogenous_linear_order(query) is not None


def no_triad_implies_pseudo_linear(query: ConjunctiveQuery) -> bool:
    """Check Theorem 25 on a specific query: ``has_triad or pseudo_linear``."""
    return has_triad(query) or is_pseudo_linear(query)
