"""Self-join patterns: paths, chains, confluences, permutations, REP.

Section 6 and 7 of the paper classify how the repeated relation ``R`` of
a single-self-join (ssj) binary query can interact with itself:

* **unary path** (Theorem 27): unary ``R`` occurring in two distinct
  atoms ``R(x), R(y)`` — always NP-complete;
* **binary path** (Theorem 28): two binary ``R``-atoms with disjoint
  variables and no all-R path between them — always NP-complete;
* with exactly two binary ``R``-atoms sharing variables (Figure 5):

  - **chain** ``R(x,y), R(y,z)`` — shares one variable, different
    attribute positions; always NP-complete (Proposition 30);
  - **confluence** ``R(x,y), R(z,y)`` — shares one variable in the same
    attribute position; NP-complete iff an exogenous path connects the
    non-shared endpoints avoiding the shared variable (Proposition 32);
  - **permutation** ``R(x,y), R(y,x)`` — shares both variables in
    swapped positions; NP-complete iff *bound* (Proposition 35);
  - **REP** — a repeated variable in some ``R``-atom; in P when the
    atoms share a variable (Proposition 36), otherwise it is a binary
    path and hard.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery


# ---------------------------------------------------------------------------
# Paths (Theorems 27 / 28)
# ---------------------------------------------------------------------------

def find_unary_path(query: ConjunctiveQuery) -> Optional[Tuple[Atom, Atom]]:
    """Two distinct unary atoms over the same (endogenous) relation.

    Theorem 27 applies to minimal ssj CQs; the classifier checks those
    side conditions.  Returns the witnessing atom pair or ``None``.
    """
    for rel in query.self_join_relations():
        occs = query.occurrences(rel)
        if occs and occs[0].arity == 1 and not occs[0].exogenous:
            distinct = {a.args for a in occs}
            if len(distinct) >= 2:
                return occs[0], occs[1]
    return None


def _r_sharing_components(occs: List[Atom]) -> List[Set[int]]:
    """Connected components of R-atoms under variable sharing."""
    n = len(occs)
    seen: Set[int] = set()
    comps: List[Set[int]] = []
    for start in range(n):
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            cur = queue.popleft()
            for other in range(n):
                if other in seen:
                    continue
                if occs[cur].variables() & occs[other].variables():
                    seen.add(other)
                    comp.add(other)
                    queue.append(other)
        comps.append(comp)
    return comps


def find_binary_path(query: ConjunctiveQuery) -> Optional[Tuple[Atom, Atom]]:
    """Two binary ``R``-atoms with disjoint variables and no all-R path.

    Theorem 28: the atoms must be "consecutive", i.e. there is no path of
    R-atoms between them — equivalently they lie in different connected
    components of the R-atoms' variable-sharing graph.  Returns a
    witnessing pair from two different components, or ``None``.
    """
    for rel in query.self_join_relations():
        occs = query.occurrences(rel)
        if not occs or occs[0].arity != 2 or occs[0].exogenous:
            continue
        comps = _r_sharing_components(occs)
        if len(comps) >= 2:
            a = occs[min(comps[0])]
            b = occs[min(comps[1])]
            return a, b
    return None


def find_path(query: ConjunctiveQuery) -> Optional[Tuple[Atom, Atom]]:
    """A unary or binary path witness, or ``None``."""
    return find_unary_path(query) or find_binary_path(query)


# ---------------------------------------------------------------------------
# Two-R-atom patterns (Section 7)
# ---------------------------------------------------------------------------

CHAIN = "chain"
CONFLUENCE = "confluence"
PERMUTATION = "permutation"
REP = "rep"
PATH = "path"


def two_atom_pattern(query: ConjunctiveQuery) -> Optional[str]:
    """The Figure 5 pattern of an ssj binary query with exactly 2 R-atoms.

    Returns one of ``"chain" | "confluence" | "permutation" | "rep" |
    "path"`` or ``None`` when the query is not an ssj binary query with
    exactly two occurrences of its repeated relation.

    REP takes precedence (the Figure 5 taxonomy treats any repeated
    variable in an R-atom as the REP row); for REP atoms with disjoint
    variables the verdict is ``"path"`` (Theorem 28 applies, cf. z1/z2).
    """
    rel = query.self_join_relation()
    if rel is None or not query.is_binary():
        return None
    occs = query.occurrences(rel)
    if len(occs) != 2:
        return None
    a, b = occs
    if a.arity == 1:
        return PATH if a.args != b.args else None
    if a.has_repeated_variable() or b.has_repeated_variable():
        return REP if (a.variables() & b.variables()) else PATH
    shared = a.variables() & b.variables()
    if not shared:
        return PATH
    if len(shared) == 2:
        # Both variables shared; identical atoms are impossible (the CQ
        # constructor deduplicates), so positions must be swapped.
        return PERMUTATION
    # Exactly one shared variable: same attribute position on both atoms
    # (or, symmetrically, first position on both) is a confluence;
    # different positions is a chain.
    (v,) = shared
    pos_a = a.args.index(v)
    pos_b = b.args.index(v)
    return CONFLUENCE if pos_a == pos_b else CHAIN


# ---------------------------------------------------------------------------
# Confluence criterion (Proposition 32)
# ---------------------------------------------------------------------------

def confluence_endpoints(query: ConjunctiveQuery) -> Tuple[str, str, str]:
    """For a 2-confluence query return ``(x, z, y)``: the two free
    endpoints and the shared join variable of the R-atoms."""
    rel = query.self_join_relation()
    if rel is None:
        raise ValueError("query has no self-join")
    a, b = query.occurrences(rel)
    shared = a.variables() & b.variables()
    if len(shared) != 1:
        raise ValueError("not a 2-confluence")
    (y,) = shared
    x = next(v for v in a.args if v != y)
    z = next(v for v in b.args if v != y)
    return x, z, y


def confluence_has_exogenous_path(query: ConjunctiveQuery) -> bool:
    """Proposition 32's criterion: is there an exogenous path from ``x``
    to ``z`` avoiding ``y``?

    The path walks variable-to-variable through *exogenous* atoms none of
    which contains ``y``.  If such a path exists the confluence behaves
    like ``q_vc`` and is NP-complete; otherwise network flow solves it.
    """
    x, z, y = confluence_endpoints(query)
    if x == z:
        return False
    adjacency: Dict[str, Set[str]] = {}
    for atom in query.atoms:
        if not atom.exogenous:
            continue
        vs = atom.variables()
        if y in vs:
            continue
        for v in vs:
            adjacency.setdefault(v, set()).update(vs - {v})
    seen = {x}
    queue = deque([x])
    while queue:
        cur = queue.popleft()
        if cur == z:
            return True
        for nxt in adjacency.get(cur, ()):  # pragma: no branch
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return z in seen


# ---------------------------------------------------------------------------
# Permutation criterion (Proposition 35)
# ---------------------------------------------------------------------------

def permutation_is_bound(query: ConjunctiveQuery) -> bool:
    """Is the 2-permutation *bound* (Proposition 35)?

    Bound means: some endogenous relation ``S`` contains ``x`` but not
    ``y``, and some endogenous relation ``T`` contains ``y`` but not
    ``x``, where ``R(x,y), R(y,x)`` are the permutation atoms.
    """
    rel = query.self_join_relation()
    if rel is None:
        raise ValueError("query has no self-join")
    a, _b = query.occurrences(rel)
    x, y = a.args
    left = right = False
    for atom in query.atoms:
        if atom.relation == rel or atom.exogenous:
            continue
        vs = atom.variables()
        if x in vs and y not in vs:
            left = True
        if y in vs and x not in vs:
            right = True
    return left and right
