"""Triad detection (Definition 5).

A *triad* is a set of three endogenous atoms ``{S0, S1, S2}`` such that
for every pair ``i, j`` there is a path from ``Si`` to ``Sj`` in the dual
hypergraph ``H(q)`` that uses no variable occurring in the third atom.

Triads characterize hardness for sj-free CQs (Lemma 6) and — the paper's
Theorem 24 — remain a hardness criterion for arbitrary CQs with
self-joins.  Detection must be run on the *normal form* (dominated
relations exogenous) for the sj-free dichotomy; the classifier handles
that sequencing.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import DualHypergraph


def find_triad(query: ConjunctiveQuery) -> Optional[Tuple[int, int, int]]:
    """The first triad of ``query`` as atom indices, or ``None``.

    Checks all triples of endogenous atoms; for each ordered pair inside
    a triple, searches for a connecting path avoiding the third atom's
    variables (paths may pass through exogenous atoms).
    """
    hyper = DualHypergraph(query)
    endo = [i for i, a in enumerate(query.atoms) if not a.exogenous]
    for triple in combinations(endo, 3):
        if _is_triad(hyper, triple):
            return triple
    return None


def _is_triad(hyper: DualHypergraph, triple: Tuple[int, int, int]) -> bool:
    atoms = hyper.query.atoms
    for i, j in combinations(range(3), 2):
        k = 3 - i - j
        forbidden = atoms[triple[k]].variables()
        if hyper.path_avoiding(triple[i], triple[j], forbidden) is None:
            return False
    return True


def has_triad(query: ConjunctiveQuery) -> bool:
    """True iff ``query`` contains a triad."""
    return find_triad(query) is not None


def all_triads(query: ConjunctiveQuery) -> List[Tuple[int, int, int]]:
    """Every triad of ``query`` (used by diagnostics and tests)."""
    hyper = DualHypergraph(query)
    endo = [i for i, a in enumerate(query.atoms) if not a.exogenous]
    return [t for t in combinations(endo, 3) if _is_triad(hyper, t)]
