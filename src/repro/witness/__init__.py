"""Shared witness-structure engine with preprocessing reductions.

The exact and approximate resilience solvers all consume the same
object: the *witness structure* of a (query, database) pair — the
hitting-set view of resilience from Section 2 (witnesses of ``D |= q``
as sets of endogenous tuples, Definition 1) — kernelized by superset
elimination, unit-witness forcing, dominated-tuple elimination, and
connected-component decomposition.  See
:class:`~repro.witness.structure.WitnessStructure` for the pipeline,
:func:`~repro.witness.cache.witness_structure` for the memoized entry
point the dispatcher uses, and
:class:`~repro.witness.cache.ResultCache` for the persistent
content-hash-keyed store of finished results that batch solving reuses
across process lifetimes.
"""

from repro.witness.structure import (
    ReductionStats,
    UnbreakableQueryError,
    WitnessComponent,
    WitnessStructure,
)
from repro.witness.cache import (
    InFlightGroup,
    InFlightRegistry,
    ResultCache,
    clear_witness_cache,
    component_cache_key,
    pair_cache_key,
    peek_witness_structure,
    witness_cache_info,
    witness_structure,
)

__all__ = [
    "InFlightGroup",
    "InFlightRegistry",
    "ReductionStats",
    "ResultCache",
    "UnbreakableQueryError",
    "WitnessComponent",
    "WitnessStructure",
    "component_cache_key",
    "pair_cache_key",
    "peek_witness_structure",
    "witness_structure",
    "clear_witness_cache",
    "witness_cache_info",
]
