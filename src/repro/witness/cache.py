"""Memoized witness structures and the persistent result cache.

Building a :class:`~repro.witness.structure.WitnessStructure` (the
Section 2 hitting-set view of resilience) is the dominant cost of an
exact solve (full witness enumeration plus the
reduction fixpoint), and the benchmark suites solve the same
(query, database) pair repeatedly — dispatch vs. cross-check, BnB vs.
ILP, batch reruns.  :func:`witness_structure` keys a small LRU on the
database's :meth:`~repro.db.database.Database.canonical_form` and the
query's :meth:`~repro.query.cq.ConjunctiveQuery.canonical_signature`,
so mutated databases (or flag changes) miss the cache instead of
returning stale structures.

:class:`ResultCache` extends the same idea across process lifetimes: a
content-hash-keyed on-disk store of finished *results* (exact values
with their minimum contingency sets, Definition 1, or certified
intervals from the bounded tiers), so repeated CLI / benchmark
invocations skip solved instances entirely.  Keys cover the full
database contents, the query signature, the solving tier and budget,
and a schema salt — anything that could change the answer changes the
key, so invalidation is automatic (see ``docs/parallelism.md`` for the
exact key semantics).

:class:`InFlightRegistry` is the *in-flight* complement the serving
tier (:mod:`repro.serving`) builds on: identical concurrent requests —
same :func:`pair_cache_key` — share one solve instead of racing the
result cache, which the determinism contract makes safe (equal keys
mean equal answers, so any requester may consume the leader's result).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.witness.structure import WitnessStructure

_MAXSIZE = 128
_cache: "OrderedDict[Tuple[frozenset, frozenset, bool, bool], WitnessStructure]" = (
    OrderedDict()
)
_hits = 0
_misses = 0
# The serving tier calls witness_structure from many handler threads at
# once; OrderedDict reordering/eviction is not atomic, so every cache
# touch happens under this lock (builds themselves run outside it).
_cache_lock = threading.RLock()


def witness_structure(
    database: Database,
    query: ConjunctiveQuery,
    reduce: bool = True,
    index: Optional[DatabaseIndex] = None,
    weighted: bool = False,
) -> WitnessStructure:
    """The (cached) witness structure of a (query, database) pair.

    The key covers the full database contents (including any non-unit
    endogenous tuple costs, via the canonical form) plus the
    ``weighted`` flag — a weighted build runs the cost-aware
    kernelization, so it never aliases an unweighted build of the same
    instance.  The cache is safe under mutation: any change to tuples,
    flags, or costs produces a fresh build.  ``index`` is only
    consulted on a miss.  Thread-safe; concurrent misses on the same
    key may build twice (the builds are pure, so either result is
    correct and the last one is kept).
    """
    global _hits, _misses
    key = (
        database.canonical_form(),
        query.canonical_signature(),
        reduce,
        weighted,
    )
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            _cache.move_to_end(key)
            return cached
        _misses += 1
    ws = WitnessStructure.build(
        database, query, reduce=reduce, index=index, weighted=weighted
    )
    with _cache_lock:
        _cache[key] = ws
        while len(_cache) > _MAXSIZE:
            _cache.popitem(last=False)
    return ws


def peek_witness_structure(
    database: Database,
    query: ConjunctiveQuery,
    reduce: bool = True,
    weighted: bool = False,
) -> Optional[WitnessStructure]:
    """The cached structure for a pair, or ``None`` — never builds.

    The planner's feature extraction
    (:func:`repro.planner.features.extract_features`) reads
    post-kernelization shape through this: a peek must stay cheap and
    side-effect-free, so it does not count as a hit or miss (the
    hit/miss deltas are how the batch engine attributes structure
    builds) and does not refresh LRU recency.
    """
    key = (
        database.canonical_form(),
        query.canonical_signature(),
        reduce,
        weighted,
    )
    with _cache_lock:
        return _cache.get(key)


def clear_witness_cache() -> None:
    """Drop every cached structure (and reset the hit/miss counters)."""
    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def witness_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, currsize)`` — mirrors ``lru_cache.cache_info``."""
    with _cache_lock:
        return _hits, _misses, len(_cache)


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------

# Bumped whenever the stored payload layout or the key semantics change;
# old entries then simply never match and age out.  Schema 2: keys gained
# the ``weighted`` flag and per-tuple cost text (weighted resilience) —
# every schema-1 entry is invalidated wholesale rather than risking a
# unit-cost key colliding with a weighted one.
CACHE_SCHEMA = 2


def _canonical_pair_text(database: Database, query: ConjunctiveQuery) -> str:
    """A deterministic textual form of one (database, query) pair.

    Built from sorted relation declarations and sorted tuple reprs (the
    same repr-based total order as :meth:`DBTuple.sort_key`), plus the
    sorted atom signatures of the query — no ``hash()`` anywhere, so the
    text is stable across processes and interpreter runs regardless of
    ``PYTHONHASHSEED``.  Non-unit endogenous tuple costs contribute a
    ``$costs`` segment per relation (exogenous costs are never charged,
    so they are excluded), keeping all-unit databases textually
    identical whether or not anyone ever touched the cost API.
    """
    return database.canonical_text() + "#" + _canonical_query_text(query)


def _canonical_query_text(query: ConjunctiveQuery) -> str:
    """The query segment of the pair text: sorted atom signatures."""
    return ";".join(
        sorted(
            f"{a.relation}({','.join(a.args)}){'^x' if a.exogenous else ''}"
            for a in query.atoms
        )
    )


def pair_cache_key(
    database: Database,
    query: ConjunctiveQuery,
    mode: str = "exact",
    method: Optional[str] = None,
    budget=None,
    weighted: bool = False,
) -> str:
    """The content-hash key one solved result is stored under.

    SHA-256 over the canonical pair text plus every parameter that can
    change the result: the solving tier, a forced backend, the anytime
    budget, the ``weighted`` objective flag, and :data:`CACHE_SCHEMA`.
    Equal-content databases produce equal keys; any tuple, flag, cost,
    or parameter change produces a different key (which is the entire
    invalidation story).

    ``budget`` accepts everything the solvers do — ``None``, a bare
    number of seconds, or a :class:`~repro.resilience.types.Budget` —
    and is normalized first, so ``budget=2.5`` and
    ``Budget(time_limit=2.5)`` share one key while distinct budgets
    never collide.
    """
    time_limit = node_limit = None
    if budget is not None:
        # Imported here: repro.resilience.types imports this package.
        from repro.resilience.types import Budget

        budget = Budget.coerce(budget)
        time_limit = budget.time_limit
        node_limit = budget.node_limit
    # Fed to the hash segment by segment — never concatenated into one
    # O(|D|) ``material`` string.  The database segment comes from the
    # epoch-memoized Database.canonical_text(), so a repeat lookup on an
    # unmutated database neither rebuilds nor copies the tuple text.
    # Byte-identical to hashing
    # "\x1f".join([...fixed segments..., _canonical_pair_text(db, q)]),
    # which the golden-key suite pins.
    hasher = hashlib.sha256()
    for segment in (
        f"schema={CACHE_SCHEMA}",
        f"mode={mode}",
        f"method={method}",
        f"time_limit={time_limit!r}",
        f"node_limit={node_limit!r}",
        f"weighted={bool(weighted)}",
    ):
        hasher.update(segment.encode())
        hasher.update(b"\x1f")
    hasher.update(database.canonical_text().encode())
    hasher.update(b"#")
    hasher.update(_canonical_query_text(query).encode())
    return hasher.hexdigest()


def component_cache_key(
    witness_sets,
    mode: str = "exact",
    backend: Optional[str] = None,
) -> str:
    """The content-hash key one solved witness *component* is stored under.

    Per-component minimum hitting sets (and certified per-component
    intervals) are pure functions of the component's witness sets — the
    database and query only matter through them — so the key hashes just
    the sets (as sorted fact reprs, the same process-stable text as
    :func:`pair_cache_key`), the solving tier, the backend that will run
    (exact tier only; ``bnb`` and ``ilp`` pick different optimal sets),
    and :data:`CACHE_SCHEMA`.  :class:`repro.incremental.IncrementalSession`
    keys its per-component store this way, which is what lets witness
    components untouched by an update hit the cache across database
    states (and across sessions sharing one ``cache_dir``).
    """
    # Streaming equivalent of hashing "\x1f".join([...segments..., rows])
    # where rows is the ","-join of the sorted per-set texts: the per-set
    # strings must exist to be sorted, but the joined component text and
    # the final material string are never materialized.
    hasher = hashlib.sha256()
    for segment in (
        f"schema={CACHE_SCHEMA}",
        "granularity=component",
        f"mode={mode}",
        f"backend={backend}",
    ):
        hasher.update(segment.encode())
        hasher.update(b"\x1f")
    set_texts = sorted(
        "{" + ";".join(sorted(repr(t) for t in s)) + "}"
        for s in witness_sets
    )
    for i, text in enumerate(set_texts):
        if i:
            hasher.update(b",")
        hasher.update(text.encode())
    return hasher.hexdigest()


class ResultCache:
    """A persistent, content-hash-keyed store of solved results.

    One entry per :func:`pair_cache_key`, stored as
    ``<cache_dir>/<key>.pkl`` — a pickle of ``(CACHE_SCHEMA, key,
    result)``.  Writes are atomic (temp file + ``os.replace``), and a
    read validates the schema and the embedded key before trusting the
    payload: torn, truncated, or otherwise corrupted entries are
    deleted and reported as misses, then transparently recomputed and
    rewritten by the caller.

    The store is safe to share between concurrent processes — even two
    writers landing on the *same* key: each ``os.replace`` installs a
    complete entry, so the survivor is whichever finished last, and
    results for equal keys are identical by construction (exact tier)
    or equally valid certified intervals (bounded tiers).  Two
    guarantees make this hold under load:

    * in-progress temp files use a ``.part`` suffix, outside the
      ``*.pkl`` entry namespace, so they are never read, counted, or
      cleared as entries mid-write;
    * corrupted-entry eviction is *guarded*: the bad file is unlinked
      only if it is still the same file that failed validation
      (``st_ino``/``st_dev`` comparison), so a reader that lost a race
      with a concurrent valid rewrite never deletes the fresh entry.
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str):
        """The stored result for ``key``, or ``None`` on a miss.

        Any failure to read or validate the entry (missing file, torn
        write, schema drift, unpicklable garbage) is a miss; the bad
        file is removed so the rewrite starts clean.
        """
        path = self._path(key)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            with handle:
                stamp = os.fstat(handle.fileno())
                schema, stored_key, result = pickle.load(handle)
            if schema != CACHE_SCHEMA or stored_key != key:
                raise ValueError("cache entry does not match its key")
        except Exception:
            self.misses += 1
            self._evict_if_unchanged(path, stamp)
            return None
        self.hits += 1
        return result

    def _evict_if_unchanged(self, path: Path, stamp) -> None:
        """Unlink ``path`` only if it is still the file ``stamp`` was
        taken from.

        Between a failed read and the eviction, a concurrent writer may
        have atomically replaced the entry with a valid one; deleting
        blindly would throw that fresh result away (and, with a reader
        hammering the key, could starve the cache indefinitely).  A
        replaced entry is a different inode, so the comparison is exact
        on POSIX filesystems.
        """
        try:
            current = os.stat(path)
        except OSError:
            return
        if (current.st_ino, current.st_dev) == (stamp.st_ino, stamp.st_dev):
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` atomically.

        The temp file's ``.part`` suffix keeps half-written entries out
        of the ``*.pkl`` namespace that :meth:`get`, :meth:`__len__`,
        and :meth:`clear` operate on — a concurrent ``clear()`` cannot
        unlink an entry mid-write out from under ``os.replace``.
        """
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((CACHE_SCHEMA, key, result), handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))

    def clear(self) -> None:
        """Delete every entry (and reset the hit/miss counters).

        Also sweeps stale ``.part`` temp files left behind by writers
        that died mid-:meth:`put`.
        """
        for pattern in ("*.pkl", ".tmp-*.part"):
            for path in self.cache_dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        self.hits = 0
        self.misses = 0

    def info(self) -> Tuple[int, int, int]:
        """``(hits, misses, currsize)`` — mirrors ``lru_cache.cache_info``."""
        return self.hits, self.misses, len(self)

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.cache_dir)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ---------------------------------------------------------------------------
# In-flight request coalescing
# ---------------------------------------------------------------------------


class InFlightGroup:
    """One in-flight solve and the requests waiting on it.

    Created by :meth:`InFlightRegistry.lease`; consumers block on
    :meth:`InFlightRegistry.result`.  The outcome slots are written
    exactly once (by ``resolve``/``fail``) before ``done`` is set, so
    readers need no further synchronization after the event fires.
    """

    __slots__ = ("key", "done", "followers", "result", "error")

    def __init__(self, key: str):
        self.key = key
        self.done = threading.Event()
        self.followers = 0
        self.result = None
        self.error: Optional[BaseException] = None


class InFlightRegistry:
    """Coalesces identical concurrent solves onto one computation.

    Requests for the same :func:`pair_cache_key` are provably the same
    problem — the key covers the database contents, query signature,
    tier, backend, and budget, and every tier is deterministic for a
    fixed key — so while one solve is in flight, later arrivals wait
    for its result instead of recomputing (Definition 1's decision
    problem answered once per distinct instance, however many clients
    ask).

    The first caller to :meth:`lease` a key becomes the *leader* and
    must eventually call :meth:`resolve` or :meth:`fail`; both remove
    the group **before** publishing the outcome, so a failed group
    never poisons the key — the next request simply starts a fresh
    solve.  All methods are thread-safe.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._groups: dict = {}

    def lease(self, key: str) -> Tuple[bool, InFlightGroup]:
        """Join (or start) the in-flight group for ``key``.

        Returns ``(leader, group)``: the leader runs the solve and owes
        the group a :meth:`resolve`/:meth:`fail`; followers pass the
        group to :meth:`result` and block.
        """
        with self._lock:
            group = self._groups.get(key)
            if group is not None:
                group.followers += 1
                return False, group
            group = InFlightGroup(key)
            self._groups[key] = group
            return True, group

    def resolve(self, key: str, result) -> None:
        """Publish the leader's result to every waiter and retire the group."""
        with self._lock:
            group = self._groups.pop(key, None)
        if group is not None:
            group.result = result
            group.done.set()

    def fail(self, key: str, error: BaseException) -> None:
        """Propagate the leader's failure to every waiter and retire the
        group (so the next identical request retries from scratch)."""
        with self._lock:
            group = self._groups.pop(key, None)
        if group is not None:
            group.error = error
            group.done.set()

    def result(self, group: InFlightGroup, timeout: Optional[float] = None):
        """Block until ``group`` resolves; re-raise the leader's error."""
        if not group.done.wait(timeout):
            raise TimeoutError(
                f"coalesced solve for {group.key[:16]}… did not finish "
                f"within {timeout}s"
            )
        if group.error is not None:
            raise group.error
        return group.result

    def waiters(self) -> int:
        """Total followers currently blocked across all groups."""
        with self._lock:
            return sum(g.followers for g in self._groups.values())

    def __len__(self) -> int:
        """Number of distinct solves currently in flight."""
        with self._lock:
            return len(self._groups)
