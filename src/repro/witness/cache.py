"""Memoized witness structures.

Building a :class:`~repro.witness.structure.WitnessStructure` (the
Section 2 hitting-set view of resilience) is the dominant cost of an
exact solve (full witness enumeration plus the
reduction fixpoint), and the benchmark suites solve the same
(query, database) pair repeatedly — dispatch vs. cross-check, BnB vs.
ILP, batch reruns.  :func:`witness_structure` keys a small LRU on the
database's :meth:`~repro.db.database.Database.canonical_form` and the
query's :meth:`~repro.query.cq.ConjunctiveQuery.canonical_signature`,
so mutated databases (or flag changes) miss the cache instead of
returning stale structures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.witness.structure import WitnessStructure

_MAXSIZE = 128
_cache: "OrderedDict[Tuple[frozenset, frozenset, bool], WitnessStructure]" = (
    OrderedDict()
)
_hits = 0
_misses = 0


def witness_structure(
    database: Database,
    query: ConjunctiveQuery,
    reduce: bool = True,
    index: Optional[DatabaseIndex] = None,
) -> WitnessStructure:
    """The (cached) witness structure of a (query, database) pair.

    The key covers the full database contents, so the cache is safe
    under mutation: any change to tuples or exogenous flags produces a
    fresh build.  ``index`` is only consulted on a miss.
    """
    global _hits, _misses
    key = (database.canonical_form(), query.canonical_signature(), reduce)
    cached = _cache.get(key)
    if cached is not None:
        _hits += 1
        _cache.move_to_end(key)
        return cached
    _misses += 1
    ws = WitnessStructure.build(database, query, reduce=reduce, index=index)
    _cache[key] = ws
    while len(_cache) > _MAXSIZE:
        _cache.popitem(last=False)
    return ws


def clear_witness_cache() -> None:
    """Drop every cached structure (and reset the hit/miss counters)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def witness_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, currsize)`` — mirrors ``lru_cache.cache_info``."""
    return _hits, _misses, len(_cache)
