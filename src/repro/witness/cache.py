"""Memoized witness structures and the persistent result cache.

Building a :class:`~repro.witness.structure.WitnessStructure` (the
Section 2 hitting-set view of resilience) is the dominant cost of an
exact solve (full witness enumeration plus the
reduction fixpoint), and the benchmark suites solve the same
(query, database) pair repeatedly — dispatch vs. cross-check, BnB vs.
ILP, batch reruns.  :func:`witness_structure` keys a small LRU on the
database's :meth:`~repro.db.database.Database.canonical_form` and the
query's :meth:`~repro.query.cq.ConjunctiveQuery.canonical_signature`,
so mutated databases (or flag changes) miss the cache instead of
returning stale structures.

:class:`ResultCache` extends the same idea across process lifetimes: a
content-hash-keyed on-disk store of finished *results* (exact values
with their minimum contingency sets, Definition 1, or certified
intervals from the bounded tiers), so repeated CLI / benchmark
invocations skip solved instances entirely.  Keys cover the full
database contents, the query signature, the solving tier and budget,
and a schema salt — anything that could change the answer changes the
key, so invalidation is automatic (see ``docs/parallelism.md`` for the
exact key semantics).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex
from repro.witness.structure import WitnessStructure

_MAXSIZE = 128
_cache: "OrderedDict[Tuple[frozenset, frozenset, bool], WitnessStructure]" = (
    OrderedDict()
)
_hits = 0
_misses = 0


def witness_structure(
    database: Database,
    query: ConjunctiveQuery,
    reduce: bool = True,
    index: Optional[DatabaseIndex] = None,
) -> WitnessStructure:
    """The (cached) witness structure of a (query, database) pair.

    The key covers the full database contents, so the cache is safe
    under mutation: any change to tuples or exogenous flags produces a
    fresh build.  ``index`` is only consulted on a miss.
    """
    global _hits, _misses
    key = (database.canonical_form(), query.canonical_signature(), reduce)
    cached = _cache.get(key)
    if cached is not None:
        _hits += 1
        _cache.move_to_end(key)
        return cached
    _misses += 1
    ws = WitnessStructure.build(database, query, reduce=reduce, index=index)
    _cache[key] = ws
    while len(_cache) > _MAXSIZE:
        _cache.popitem(last=False)
    return ws


def clear_witness_cache() -> None:
    """Drop every cached structure (and reset the hit/miss counters)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def witness_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, currsize)`` — mirrors ``lru_cache.cache_info``."""
    return _hits, _misses, len(_cache)


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------

# Bumped whenever the stored payload layout or the key semantics change;
# old entries then simply never match and age out.
CACHE_SCHEMA = 1


def _canonical_pair_text(database: Database, query: ConjunctiveQuery) -> str:
    """A deterministic textual form of one (database, query) pair.

    Built from sorted relation declarations and sorted tuple reprs (the
    same repr-based total order as :meth:`DBTuple.sort_key`), plus the
    sorted atom signatures of the query — no ``hash()`` anywhere, so the
    text is stable across processes and interpreter runs regardless of
    ``PYTHONHASHSEED``.
    """
    parts = []
    for name in sorted(database.relations):
        rel = database.relations[name]
        rows = ",".join(sorted(repr(t.values) for t in rel))
        parts.append(f"{name}/{rel.arity}/{int(rel.exogenous)}:{rows}")
    atoms = ";".join(
        sorted(
            f"{a.relation}({','.join(a.args)}){'^x' if a.exogenous else ''}"
            for a in query.atoms
        )
    )
    return "|".join(parts) + "#" + atoms


def pair_cache_key(
    database: Database,
    query: ConjunctiveQuery,
    mode: str = "exact",
    method: Optional[str] = None,
    budget=None,
) -> str:
    """The content-hash key one solved result is stored under.

    SHA-256 over the canonical pair text plus every parameter that can
    change the result: the solving tier, a forced backend, the anytime
    budget, and :data:`CACHE_SCHEMA`.  Equal-content databases produce
    equal keys; any tuple, flag, or parameter change produces a
    different key (which is the entire invalidation story).

    ``budget`` accepts everything the solvers do — ``None``, a bare
    number of seconds, or a :class:`~repro.resilience.types.Budget` —
    and is normalized first, so ``budget=2.5`` and
    ``Budget(time_limit=2.5)`` share one key while distinct budgets
    never collide.
    """
    time_limit = node_limit = None
    if budget is not None:
        # Imported here: repro.resilience.types imports this package.
        from repro.resilience.types import Budget

        budget = Budget.coerce(budget)
        time_limit = budget.time_limit
        node_limit = budget.node_limit
    material = "\x1f".join(
        [
            f"schema={CACHE_SCHEMA}",
            f"mode={mode}",
            f"method={method}",
            f"time_limit={time_limit!r}",
            f"node_limit={node_limit!r}",
            _canonical_pair_text(database, query),
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


def component_cache_key(
    witness_sets,
    mode: str = "exact",
    backend: Optional[str] = None,
) -> str:
    """The content-hash key one solved witness *component* is stored under.

    Per-component minimum hitting sets (and certified per-component
    intervals) are pure functions of the component's witness sets — the
    database and query only matter through them — so the key hashes just
    the sets (as sorted fact reprs, the same process-stable text as
    :func:`pair_cache_key`), the solving tier, the backend that will run
    (exact tier only; ``bnb`` and ``ilp`` pick different optimal sets),
    and :data:`CACHE_SCHEMA`.  :class:`repro.incremental.IncrementalSession`
    keys its per-component store this way, which is what lets witness
    components untouched by an update hit the cache across database
    states (and across sessions sharing one ``cache_dir``).
    """
    rows = ",".join(
        sorted(
            "{" + ";".join(sorted(repr(t) for t in s)) + "}"
            for s in witness_sets
        )
    )
    material = "\x1f".join(
        [
            f"schema={CACHE_SCHEMA}",
            "granularity=component",
            f"mode={mode}",
            f"backend={backend}",
            rows,
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """A persistent, content-hash-keyed store of solved results.

    One entry per :func:`pair_cache_key`, stored as
    ``<cache_dir>/<key>.pkl`` — a pickle of ``(CACHE_SCHEMA, key,
    result)``.  Writes are atomic (temp file + ``os.replace``), and a
    read validates the schema and the embedded key before trusting the
    payload: torn, truncated, or otherwise corrupted entries are
    deleted and reported as misses, then transparently recomputed and
    rewritten by the caller.

    The store is safe to share between sequential invocations and
    between coordinator processes writing distinct keys; results for
    the *same* key are identical by construction (exact tier) or
    equally valid certified intervals (bounded tiers), so last-writer
    wins is harmless.
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str):
        """The stored result for ``key``, or ``None`` on a miss.

        Any failure to read or validate the entry (missing file, torn
        write, schema drift, unpicklable garbage) is a miss; the bad
        file is removed so the rewrite starts clean.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                schema, stored_key, result = pickle.load(handle)
            if schema != CACHE_SCHEMA or stored_key != key:
                raise ValueError("cache entry does not match its key")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` atomically."""
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((CACHE_SCHEMA, key, result), handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))

    def clear(self) -> None:
        """Delete every entry (and reset the hit/miss counters)."""
        for path in self.cache_dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        self.hits = 0
        self.misses = 0

    def info(self) -> Tuple[int, int, int]:
        """``(hits, misses, currsize)`` — mirrors ``lru_cache.cache_info``."""
        return self.hits, self.misses, len(self)

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.cache_dir)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
