"""The shared witness-structure engine.

Every exact resilience computation is a minimum hitting set over the
*witness structure* of a (query, database) pair (the Section 2 /
Definition 1 view of resilience): each witness of
``D |= q`` contributes the set of endogenous tuples it uses, and a
contingency set is exactly a set of endogenous tuples intersecting every
such set.  Before this module existed, each solver call re-enumerated
witnesses from scratch and worked on raw ``FrozenSet[DBTuple]`` objects;
:class:`WitnessStructure` enumerates once, maps tuples to a compact
integer universe, and applies the standard hitting-set kernelization
repertoire *before* any solver runs:

1. **superset elimination** — only inclusion-minimal witness sets
   matter (hitting a subset hits all its supersets);
2. **unit-witness forcing** — a singleton witness ``{t}`` forces ``t``
   into (some) minimum hitting set; ``t`` is committed and every
   witness it hits is removed;
3. **dominated-tuple elimination** — if every remaining witness
   containing ``t`` also contains ``u``, any solution using ``t`` can
   swap it for ``u``; ``t`` is deleted from the candidate pool;
4. **connected-component decomposition** — the tuple/witness incidence
   graph splits into components that are solved independently and
   summed.

Stages 1–3 run to a fixpoint (each can enable the others), and the
whole pipeline frequently solves small instances outright, leaving the
branch-and-bound / ILP backends only the irreducible core.

**Weighted instances.**  With per-tuple costs (``build(...,
weighted=True)``), stages 1, 2, and 4 are cost-oblivious — minimality
and forcing are pure feasibility arguments — but stage 3 must compare
costs: ``t`` may only be swapped for ``u`` when ``cost(u) <= cost(t)``
(a cheaper-or-equal dominator preserves the weighted optimum; a more
expensive one does not).  Both the frozenset reference and the bitset
matrix kernel apply the same cost-aware rule, the structure records
per-id costs (:attr:`WitnessStructure.costs`), and the preserved
invariant becomes ``opt_w(original) = cost(forced) + opt_w(reduced)``.
An unweighted build is bit-for-bit the historical pipeline.

Internally witness sets are ``frozenset``s of integer tuple-ids; stage
3's subset tests run on Python-int *bitsets* over witness rows (a
single ``& ~`` per candidate pair), and the final per-tuple bitsets
are exposed as :attr:`WitnessStructure.tuple_bitsets` for consumers.
The scipy CSR incidence matrix consumed by the ILP backend is built
directly from the same ids via :meth:`WitnessStructure.incidence_matrix`
/ :meth:`WitnessComponent.incidence_matrix`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import (
    DatabaseIndex,
    _witness_tuple_sets_reference,
)


def _kernel_backend() -> str:
    """The kernelization backend: env var, planner plan, or default.

    ``bitset`` (default) runs the reduction fixpoint on a padded numpy
    id matrix with Python-int bitsets over witness rows; ``reference``
    runs the original frozenset pipeline.  Both produce bit-identical
    structures (sets, order, forced ids, statistics) — the property
    suite in ``tests/test_bitset_kernel.py`` enforces it.

    ``REPRO_KERNEL_BACKEND`` wins when set; otherwise a solve running
    under a planner plan (:func:`repro.planner.active_plan`) uses the
    plan's ``kernel`` choice.  The small-input guards below
    (:data:`_BITSET_MIN_SETS`, the width cap) apply in every case —
    they are output-invisible fast paths, not backend selections.
    """
    backend = os.environ.get("REPRO_KERNEL_BACKEND")
    if backend is None:
        from repro.planner import active_plan

        plan = active_plan()
        backend = plan.kernel if plan is not None else "bitset"
    if backend not in ("bitset", "reference"):
        raise ValueError(
            f"REPRO_KERNEL_BACKEND={backend!r} (expected 'bitset' or 'reference')"
        )
    return backend


class UnbreakableQueryError(ValueError):
    """Raised when no contingency set exists.

    This happens when some witness uses only exogenous tuples: no
    deletion of endogenous tuples can falsify the query, so resilience
    is undefined (the decision problem answers "no" for every k, and
    the optimization problem has no finite optimum).

    Defined here — where witness enumeration first detects the
    condition — and re-exported by :mod:`repro.resilience.types`, its
    historical home.
    """


@dataclass
class ReductionStats:
    """What preprocessing did to one witness structure.

    All counts refer to *endogenous-restricted, de-duplicated* witness
    sets (the output of :func:`repro.query.evaluation.witness_tuple_sets`).
    """

    witnesses_raw: int = 0
    witnesses_distinct: int = 0
    witnesses_minimal: int = 0
    witnesses_final: int = 0
    tuples_raw: int = 0
    tuples_final: int = 0
    forced_tuples: int = 0
    dominated_tuples: int = 0
    components: int = 0
    rounds: int = 0
    time_enumerate: float = 0.0
    time_reduce: float = 0.0

    def merge(self, other: "ReductionStats") -> None:
        """Accumulate ``other`` into this instance (for batch reports)."""
        self.witnesses_raw += other.witnesses_raw
        self.witnesses_distinct += other.witnesses_distinct
        self.witnesses_minimal += other.witnesses_minimal
        self.witnesses_final += other.witnesses_final
        self.tuples_raw += other.tuples_raw
        self.tuples_final += other.tuples_final
        self.forced_tuples += other.forced_tuples
        self.dominated_tuples += other.dominated_tuples
        self.components += other.components
        self.rounds += other.rounds
        self.time_enumerate += other.time_enumerate
        self.time_reduce += other.time_reduce


@dataclass(frozen=True)
class WitnessComponent:
    """One connected component of the reduced tuple/witness graph.

    ``tuple_ids`` are global ids into the parent structure's universe;
    ``sets`` are the component's witness sets over those same global
    ids.  Components partition both the active tuples and the witness
    sets, so resilience is the sum of per-component minimum hitting
    sets.
    """

    tuple_ids: Tuple[int, ...]
    sets: Tuple[FrozenSet[int], ...]

    def incidence_matrix(self):
        """Sparse CSR 0/1 matrix: rows = witness sets, cols = local
        positions into ``tuple_ids`` (sorted ascending)."""
        local = {t: j for j, t in enumerate(self.tuple_ids)}
        return _csr_from_sets(
            [frozenset(local[t] for t in s) for s in self.sets],
            len(self.tuple_ids),
        )


class WitnessStructure:
    """The preprocessed witness structure of one (query, database) pair.

    Build with :meth:`build`; consume via :attr:`components` (solvers),
    :meth:`incidence_matrix` (whole-structure CSR), or the convenience
    accessors below.  Attributes:

    ``universe``
        All endogenous tuples appearing in any witness, sorted by
        :meth:`DBTuple.sort_key`; a tuple's id is its position here.
    ``raw_sets`` / ``sets``
        Witness sets (frozensets of tuple ids) before / after
        preprocessing.  ``sets`` only contains inclusion-minimal sets
        over non-forced, non-dominated tuples.
    ``forced_ids`` / ``forced``
        Tuples committed by unit-witness forcing; every one belongs to
        some minimum contingency set, so solvers add ``len(forced)`` to
        the optimum of ``sets``.
    ``tuple_bitsets``
        For each active tuple id, a Python-int bitset over rows of
        ``sets`` (bit *r* set iff the tuple occurs in ``sets[r]``) —
        the row view of the reduced structure, exposed for consumers;
        the reduction pipeline builds its own per-round bitsets.
    ``components``
        The connected components of the reduced structure, ordered by
        smallest tuple id.
    ``satisfied``
        Whether ``D |= q`` at build time (no witnesses ⇒ resilience 0).

    Raises :class:`UnbreakableQueryError` at build time when some
    witness uses only exogenous tuples.
    """

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        universe: Tuple[DBTuple, ...],
        raw_sets: Optional[Tuple[FrozenSet[int], ...]],
        sets: Tuple[FrozenSet[int], ...],
        forced_ids: FrozenSet[int],
        stats: ReductionStats,
        raw_matrix=None,
        weighted: bool = False,
        costs: Optional[Tuple[int, ...]] = None,
    ):
        self.database = database
        self.query = query
        self.universe = universe
        self.weighted = weighted
        # Per-universe-id costs; populated only on weighted builds (an
        # unweighted structure charges 1 per tuple implicitly).
        self.costs: Optional[Tuple[int, ...]] = costs
        self.tuple_index: Dict[DBTuple, int] = {t: i for i, t in enumerate(universe)}
        # raw_sets may arrive as the padded id matrix of the columnar
        # fast path; the frozenset view is materialized on first access
        # (the hot path never reads it).
        self._raw_sets = tuple(raw_sets) if raw_sets is not None else None
        self._raw_matrix = raw_matrix
        self.sets = sets
        self.forced_ids = forced_ids
        self.stats = stats
        self.tuple_bitsets: Dict[int, int] = _bitsets(sets)
        self.components: Tuple[WitnessComponent, ...] = _decompose(sets)
        stats.components = len(self.components)
        stats.witnesses_final = len(sets)
        stats.tuples_final = len(self.tuple_bitsets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        query: ConjunctiveQuery,
        reduce: bool = True,
        index: Optional[DatabaseIndex] = None,
        weighted: bool = False,
    ) -> "WitnessStructure":
        """Enumerate witnesses and (optionally) run all reductions.

        ``reduce=False`` skips every preprocessing stage — useful for
        cross-checking that the reductions preserve the optimum.  An
        existing :class:`DatabaseIndex` may be passed to reuse per-atom
        hash indexes across many builds on the same database.
        ``weighted=True`` records per-tuple costs and switches
        dominated-tuple elimination to the cost-aware rule (see the
        module doc); with all costs at 1 the result is identical to an
        unweighted build.

        Large instances enumerate through the vectorized columnar join
        (:func:`repro.query.columnar.try_witness_incidence`), which
        hands over the sorted universe and the witness→tuple-id matrix
        directly; otherwise the reference evaluator runs and the ids
        are assigned here.  Either way the ids, sets, and statistics
        are identical.
        """
        from repro.query.columnar import try_witness_incidence

        t0 = time.perf_counter()
        incidence = try_witness_incidence(database, query, index=index)
        if incidence is not None:
            universe, matrix = incidence
            pad = len(universe)
            if matrix.shape[0] and (
                matrix.shape[1] == 0 or bool((matrix[:, 0] == pad).any())
            ):
                raise UnbreakableQueryError(
                    "a witness uses only exogenous tuples; the query cannot "
                    "be falsified by endogenous deletions"
                )
            t1 = time.perf_counter()
            raw = None
            n_raw = matrix.shape[0]
        else:
            # try_witness_incidence already attempted (and counted) the
            # columnar path; enumerate via the reference evaluator
            # directly rather than re-dispatching.
            tuple_sets = _witness_tuple_sets_reference(
                database, query, endogenous_only=True, index=index
            )
            for s in tuple_sets:
                if not s:
                    raise UnbreakableQueryError(
                        "a witness uses only exogenous tuples; the query "
                        "cannot be falsified by endogenous deletions"
                    )
            t1 = time.perf_counter()
            # key= computes each repr-based sort key once instead of per
            # comparison — on thousands of tuples this is a 10x sort.
            universe = tuple(
                sorted({t for s in tuple_sets for t in s}, key=DBTuple.sort_key)
            )
            idx = {t: i for i, t in enumerate(universe)}
            raw = tuple(frozenset(idx[t] for t in s) for s in tuple_sets)
            n_raw = len(raw)
            matrix = None

        stats = ReductionStats(
            witnesses_raw=n_raw,
            tuples_raw=len(universe),
            time_enumerate=t1 - t0,
        )
        costs = (
            tuple(database.cost(t) for t in universe) if weighted else None
        )
        # Both enumeration paths deduplicate witness sets already.
        stats.witnesses_distinct = n_raw if raw is None else len(set(raw))
        if (
            reduce
            and matrix is not None
            and n_raw >= _BITSET_MIN_SETS
            and matrix.shape[1] <= _MINIMAL_SUBSET_ENUM_MAX_LEN
            and _kernel_backend() == "bitset"
        ):
            # The matrix is already the bitset kernel's working
            # representation — skip the frozenset round-trip.
            out, forced_ids, dominated = _reduce_matrix(
                matrix, len(universe), stats, costs=costs
            )
            sets: List[FrozenSet[int]] = _sets_from_matrix(out, len(universe))
            forced = frozenset(forced_ids)
        else:
            if raw is None:
                raw = tuple(
                    frozenset(t for t in row if t != len(universe))
                    for row in matrix.tolist()
                )
            if reduce:
                sets, forced, dominated = _reduce(list(raw), stats, costs=costs)
            else:
                sets, forced, dominated = list(raw), frozenset(), 0
                stats.witnesses_minimal = len(raw)
        stats.forced_tuples = len(forced)
        stats.dominated_tuples = dominated
        stats.time_reduce = time.perf_counter() - t1
        return cls(
            database,
            query,
            universe,
            raw,
            tuple(sets),
            frozenset(forced),
            stats,
            raw_matrix=matrix,
            weighted=weighted,
            costs=costs,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def raw_sets(self) -> Tuple[FrozenSet[int], ...]:
        """Witness sets before preprocessing (materialized lazily)."""
        if self._raw_sets is None:
            pad = len(self.universe)
            self._raw_sets = tuple(
                frozenset(t for t in row if t != pad)
                for row in self._raw_matrix.tolist()
            )
        return self._raw_sets

    @property
    def satisfied(self) -> bool:
        """``D |= q`` — the structure has at least one witness."""
        return self.stats.witnesses_raw > 0

    @property
    def forced(self) -> FrozenSet[DBTuple]:
        """The forced tuples, as database facts."""
        return frozenset(self.universe[i] for i in self.forced_ids)

    def tuples(self, ids) -> FrozenSet[DBTuple]:
        """Map ids back to database facts."""
        return frozenset(self.universe[i] for i in ids)

    def cost_of(self, ids) -> int:
        """The summed cost of a set of tuple ids.

        On an unweighted structure every tuple costs 1, so this is
        simply the count — solvers can use it unconditionally.
        """
        if self.costs is None:
            return len(ids) if not isinstance(ids, int) else 1
        if isinstance(ids, int):
            return self.costs[ids]
        return sum(self.costs[i] for i in ids)

    @property
    def forced_cost(self) -> int:
        """The summed cost of the forced tuples."""
        return self.cost_of(self.forced_ids)

    def incidence_matrix(self):
        """CSR 0/1 incidence of the *reduced* structure: rows = witness
        sets in ``self.sets``, cols = the full universe."""
        return _csr_from_sets(self.sets, len(self.universe))

    def __repr__(self) -> str:
        return (
            f"WitnessStructure(witnesses={self.stats.witnesses_raw}->{len(self.sets)}, "
            f"tuples={len(self.universe)}->{self.stats.tuples_final}, "
            f"forced={len(self.forced_ids)}, components={len(self.components)})"
        )


def _csr_from_sets(sets: Sequence[FrozenSet[int]], n_cols: int):
    """Sparse CSR 0/1 matrix with one row per set over ``n_cols`` columns."""
    from scipy.sparse import csr_matrix

    indptr = [0]
    indices: List[int] = []
    for s in sets:
        indices.extend(sorted(s))
        indptr.append(len(indices))
    return csr_matrix(
        ([1.0] * len(indices), indices, indptr),
        shape=(len(sets), n_cols),
    )


# ---------------------------------------------------------------------------
# Reduction pipeline
# ---------------------------------------------------------------------------

def _bitsets(sets: Sequence[FrozenSet[int]]) -> Dict[int, int]:
    """Per-tuple bitsets over witness rows: bit ``r`` of ``out[t]`` is
    set iff tuple ``t`` occurs in ``sets[r]``."""
    out: Dict[int, int] = {}
    for row, s in enumerate(sets):
        bit = 1 << row
        for t in s:
            out[t] = out.get(t, 0) | bit
    return out


# Pairwise minimality checking is quadratic in the number of witness
# sets; past this count, and as long as the sets themselves are small
# (witness sets never exceed the query's endogenous atom count), we
# instead enumerate each set's proper subsets and hash-probe for them —
# O(m * 2^k) with tiny constants instead of O(m^2).
_MINIMAL_PAIRWISE_LIMIT = 512
_MINIMAL_SUBSET_ENUM_MAX_LEN = 12


def _minimal_sets(sets: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Keep only inclusion-minimal sets (deduplicated, deterministic)."""
    distinct = set(sets)
    ordered = sorted(distinct, key=lambda s: (len(s), sorted(s)))
    max_len = len(ordered[-1]) if ordered else 0
    if (
        len(ordered) > _MINIMAL_PAIRWISE_LIMIT
        and max_len <= _MINIMAL_SUBSET_ENUM_MAX_LEN
    ):
        # A set is non-minimal iff one of its proper subsets is also a
        # witness set; with sets this small, probing every subset beats
        # comparing every pair.
        from itertools import combinations

        kept = []
        for s in ordered:
            elems = sorted(s)
            if not any(
                frozenset(sub) in distinct
                for r in range(1, len(elems))
                for sub in combinations(elems, r)
            ):
                kept.append(s)
        return kept
    kept = []
    for s in ordered:
        if not any(k <= s for k in kept):
            kept.append(s)
    return kept


def _dominated_tuples(
    sets: Sequence[FrozenSet[int]],
    costs: Optional[Sequence[int]] = None,
) -> List[int]:
    """Tuples whose witness rows are covered by another tuple's rows.

    ``t`` is dominated by ``u`` when ``rows(t) ⊆ rows(u)``: any hitting
    set using ``t`` can use ``u`` instead.  For *equal* row sets only
    the smallest tuple id survives, which keeps the choice
    deterministic; a tuple already marked dominated is never used as a
    dominator (domination is transitive, so a live dominator always
    exists).

    With ``costs`` (weighted instances) the swap argument needs
    ``cost(u) <= cost(t)`` — replacing ``t`` by a strictly more
    expensive ``u`` could raise the weighted optimum — and for equal
    row sets the strictly cheaper tuple wins (smallest id on cost
    ties).  ``costs=None`` is exactly the historical unweighted rule.
    """
    bitsets = _bitsets(sets)
    dominated: set = set()
    for t, rows_t in sorted(bitsets.items()):
        # Any dominator of t appears in *every* witness row of t, in
        # particular t's lowest row — so only that row's members are
        # candidates.  Witness sets are small (bounded by the query's
        # endogenous atom count), which makes this linear-ish in the
        # incidence size instead of quadratic in the tuple count.
        lowest_row = (rows_t & -rows_t).bit_length() - 1
        cost_t = 1 if costs is None else costs[t]
        for u in sorted(sets[lowest_row]):
            if u == t or u in dominated:
                continue
            cost_u = 1 if costs is None else costs[u]
            if cost_u > cost_t:
                continue
            rows_u = bitsets[u]
            if rows_t & ~rows_u == 0 and (
                rows_t != rows_u or cost_u < cost_t or u < t
            ):
                dominated.add(t)
                break
    return sorted(dominated)


def _reduce(
    sets: List[FrozenSet[int]],
    stats: ReductionStats,
    costs: Optional[Sequence[int]] = None,
) -> Tuple[List[FrozenSet[int]], FrozenSet[int], int]:
    """Run stages 1–3 to a fixpoint.

    Returns ``(reduced_sets, forced_ids, n_dominated)``.  The invariant
    maintained is that ``opt(original) = len(forced) + opt(reduced)``
    (on weighted instances, ``opt_w(original) = cost(forced) +
    opt_w(reduced)``) and that any hitting set of ``reduced_sets``
    together with the forced tuples hits every original witness set.
    ``costs`` switches domination to the cost-aware rule.

    Dispatches between the vectorized bitset kernel (default) and the
    frozenset reference pipeline per :func:`_kernel_backend`; outputs
    are identical either way, including the deterministic
    ``(len, sorted elements)`` order of the reduced sets.  Tiny systems
    (fewer than :data:`_BITSET_MIN_SETS` sets) stay on the reference
    path, where per-call numpy overhead would dominate.
    """
    if (
        _kernel_backend() == "reference"
        or len(sets) < _BITSET_MIN_SETS
        or any(not s for s in sets)
        # The matrix minimality stage enumerates 2^width subset
        # patterns per row length; wide witness sets stay on the
        # reference pipeline's pairwise scan (same guard it applies
        # to its own subset-enumeration fast path).
        or max(len(s) for s in sets) > _MINIMAL_SUBSET_ENUM_MAX_LEN
    ):
        return _reduce_reference(sets, stats, costs=costs)
    matrix, pad = _matrix_from_sets(sets)
    matrix, forced, dominated_total = _reduce_matrix(
        matrix, pad, stats, costs=costs
    )
    return _sets_from_matrix(matrix, pad), frozenset(forced), dominated_total


def _reduce_reference(
    sets: List[FrozenSet[int]],
    stats: ReductionStats,
    costs: Optional[Sequence[int]] = None,
) -> Tuple[List[FrozenSet[int]], FrozenSet[int], int]:
    """The original frozenset reduction fixpoint (the kernel oracle)."""
    forced: set = set()
    dominated_total = 0
    first = True
    changed = True
    while changed:
        stats.rounds += 1
        changed = False

        minimal = _minimal_sets(sets)
        if len(minimal) != len(sets):
            changed = True
        sets = minimal
        if first:
            stats.witnesses_minimal = len(sets)
            first = False

        units = {next(iter(s)) for s in sets if len(s) == 1}
        if units:
            forced |= units
            sets = [s for s in sets if not (s & units)]
            changed = True

        dominated = set(_dominated_tuples(sets, costs=costs))
        if dominated:
            dominated_total += len(dominated)
            sets = [frozenset(s - dominated) for s in sets]
            changed = True
    return sets, frozenset(forced), dominated_total


# ---------------------------------------------------------------------------
# The bitset kernel (vectorized reduction pipeline)
# ---------------------------------------------------------------------------

# Below this many witness sets the frozenset pipeline wins (fixed numpy
# call overhead per reduction stage); the dispatch is output-invisible
# because both pipelines produce identical results.
_BITSET_MIN_SETS = 48
#
# Witness sets are held as one padded numpy int64 matrix: row = witness
# set with its tuple ids ascending, right-padded with ``pad`` (one past
# the largest id, so ascending row sort keeps real ids in front).
# Superset elimination probes subset keys against hashed row keys,
# unit forcing and dominated-tuple elimination run on numpy masks and
# Python-int row bitsets (AND/OR/popcount) — no frozenset algebra on
# the hot path.  Every stage reproduces the reference pipeline's
# deterministic output order exactly.

def _matrix_from_sets(
    sets: Sequence[FrozenSet[int]],
) -> Tuple[np.ndarray, int]:
    """Pack id sets into a padded, row-sorted matrix; returns (mat, pad)."""
    m = len(sets)
    lengths = np.fromiter((len(s) for s in sets), dtype=np.int64, count=m)
    width = int(lengths.max()) if m else 0
    flat = np.fromiter(
        (t for s in sets for t in s), dtype=np.int64, count=int(lengths.sum())
    )
    pad = int(flat.max()) + 1 if len(flat) else 1
    mat = np.full((m, width), pad, dtype=np.int64)
    offsets = np.cumsum(lengths) - lengths
    row_idx = np.repeat(np.arange(m, dtype=np.int64), lengths)
    col_idx = np.arange(len(flat), dtype=np.int64) - np.repeat(offsets, lengths)
    mat[row_idx, col_idx] = flat
    mat.sort(axis=1)
    return mat, pad


def _sets_from_matrix(mat: np.ndarray, pad: int) -> List[FrozenSet[int]]:
    """Unpack matrix rows back into frozensets (plain Python ints)."""
    return [
        frozenset(t for t in row if t != pad) for row in mat.tolist()
    ]


def _row_keys(mat: np.ndarray, base: int) -> Optional[np.ndarray]:
    """Combine each row's columns into one int64 key, or ``None`` when
    the positional encoding would overflow (the caller then falls back
    to per-pattern key compression)."""
    m, k = mat.shape
    if k == 0:
        return np.zeros(m, dtype=np.int64)
    if k * np.log2(base) >= 62:
        return None
    powers = base ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return mat @ powers


def _minimal_matrix(mat: np.ndarray, pad: int) -> np.ndarray:
    """Deduplicate, order by ``(len, elements)``, drop non-minimal rows.

    A row is non-minimal iff one of its proper subsets is also a row;
    subsets are enumerated per (length, position-pattern) and probed
    vectorized against the hashed row keys — the bitset analogue of the
    reference ``_minimal_sets`` (same output, same order).
    """
    from itertools import combinations

    base = pad + 1
    k = mat.shape[1]
    keys = _row_keys(mat, base)
    if keys is not None and (k + 1) * float(base) ** k < 2**62:
        # Fast path: one int64 key per row already realizes the
        # deduplication *and* the (len, elements) order — rows of equal
        # length share their padding digits, so the positional encoding
        # compares exactly like the element tuples.
        lengths = (mat != pad).sum(axis=1)
        combined = lengths * np.int64(base) ** k + keys
        order = np.argsort(combined, kind="stable")
        combined = combined[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = combined[1:] != combined[:-1]
        mat = mat[order[first]]
        keys = keys[order[first]]
    else:
        mat = np.unique(mat, axis=0)
        lengths = (mat != pad).sum(axis=1)
        order = np.lexsort(
            tuple(mat[:, j] for j in range(k - 1, -1, -1)) + (lengths,)
        )
        mat = mat[order]
        keys = _row_keys(mat, base)
    m = mat.shape[0]
    lengths = (mat != pad).sum(axis=1)
    if m == 0 or k <= 1:
        return mat

    if keys is not None:
        sorted_keys = np.sort(keys)
        powers = base ** np.arange(k - 1, -1, -1, dtype=np.int64)
    drop = np.zeros(m, dtype=bool)
    for length in np.unique(lengths):
        length = int(length)
        if length < 2:
            continue
        rows = np.flatnonzero(lengths == length)
        for r in range(1, length):
            for pattern in combinations(range(length), r):
                cols = [mat[rows, j] for j in pattern]
                if keys is not None:
                    probe = sum(
                        col * powers[i] for i, col in enumerate(cols)
                    ) + int(pad * powers[r:].sum())
                    pos = np.searchsorted(sorted_keys, probe)
                    pos_c = np.minimum(pos, len(sorted_keys) - 1)
                    hit = (pos < len(sorted_keys)) & (
                        sorted_keys[pos_c] == probe
                    )
                else:
                    from repro.query.columnar import _combine_keys

                    pad_col = np.full(len(rows), pad, dtype=np.int64)
                    probe_cols = list(cols) + [pad_col] * (k - r)
                    present_cols = [mat[:, j] for j in range(k)]
                    present_key, probe_key = _combine_keys(
                        present_cols, probe_cols, base
                    )
                    sorted_present = np.sort(present_key)
                    pos = np.searchsorted(sorted_present, probe_key)
                    pos_c = np.minimum(pos, len(sorted_present) - 1)
                    hit = (pos < len(sorted_present)) & (
                        sorted_present[pos_c] == probe_key
                    )
                drop[rows[hit]] = True
    return mat[~drop]


def _dominated_matrix(
    mat: np.ndarray, pad: int, costs: Optional[Sequence[int]] = None
) -> List[int]:
    """The dominated tuples of a padded matrix (ascending ids).

    Identical semantics to the reference :func:`_dominated_tuples`:
    tuples scanned ascending, candidate dominators drawn from the
    tuple's lowest row ascending, equal row sets keep the smallest id,
    and on weighted instances (``costs``) a dominator must be
    cheaper-or-equal, with strictly-cheaper winning equal row sets.
    The subset test ``rows(t) ⊆ rows(u)`` becomes a counting identity —
    ``|rows(t) ∩ rows(u)| == deg(t)`` — over a vectorized co-occurrence
    table, so no per-pair set algebra survives on the hot path.
    """
    m, k = mat.shape
    if m == 0:
        return []
    base = pad + 1
    if base > 3_000_000_000:  # pragma: no cover - ids are dense indices
        return _dominated_tuples(_sets_from_matrix(mat, pad), costs=costs)
    rows = np.repeat(np.arange(m, dtype=np.int64), k)
    vals = mat.ravel()
    keep = vals != pad
    rows = rows[keep]
    vals = vals[keep]
    order = np.argsort(vals, kind="stable")
    vals_s = vals[order]
    rows_s = rows[order]
    uniq, starts, counts = np.unique(
        vals_s, return_index=True, return_counts=True
    )
    deg = dict(zip(uniq.tolist(), counts.tolist()))
    lowest = dict(zip(uniq.tolist(), rows_s[starts].tolist()))

    pair_keys = []
    for i in range(k):
        a = mat[:, i]
        for j in range(k):
            if i == j:
                continue
            b = mat[:, j]
            valid = (a != pad) & (b != pad)
            if valid.any():
                pair_keys.append(a[valid] * base + b[valid])
    co: Dict[int, int] = {}
    if pair_keys:
        keys, key_counts = np.unique(
            np.concatenate(pair_keys), return_counts=True
        )
        co = dict(zip(keys.tolist(), key_counts.tolist()))

    row_lists = mat.tolist()
    dominated: Set[int] = set()
    for t in uniq.tolist():
        deg_t = deg[t]
        cost_t = 1 if costs is None else costs[t]
        key_base = t * base
        for u in row_lists[lowest[t]]:
            if u == pad:
                break  # rows are ascending; padding is the tail
            if u == t or u in dominated:
                continue
            cost_u = 1 if costs is None else costs[u]
            if cost_u > cost_t:
                continue
            if co.get(key_base + u, 0) == deg_t and (
                deg[u] != deg_t or cost_u < cost_t or u < t
            ):
                dominated.add(t)
                break
    return sorted(dominated)


def _reduce_matrix(
    mat: np.ndarray,
    pad: int,
    stats: ReductionStats,
    costs: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, List[int], int]:
    """The stages 1–3 fixpoint on the padded matrix representation.

    Mirrors :func:`_reduce_reference` round for round (same ``rounds``
    and ``witnesses_minimal`` accounting, same fixpoint condition) and
    returns ``(final_matrix, forced_ids, n_dominated)``.
    """
    forced: Set[int] = set()
    dominated_total = 0
    first = True
    changed = True
    while changed:
        stats.rounds += 1
        changed = False

        minimal = _minimal_matrix(mat, pad)
        if minimal.shape[0] != mat.shape[0]:
            changed = True
        mat = minimal
        if first:
            stats.witnesses_minimal = mat.shape[0]
            first = False

        lengths = (mat != pad).sum(axis=1) if mat.size else np.zeros(0, int)
        units = np.unique(mat[lengths == 1, 0]) if mat.size else np.zeros(0, int)
        if units.size:
            forced.update(int(u) for u in units)
            keep = ~np.isin(mat, units).any(axis=1)
            mat = mat[keep]
            changed = True

        dominated = _dominated_matrix(mat, pad, costs=costs)
        if dominated:
            dominated_total += len(dominated)
            dom = np.array(dominated, dtype=np.int64)
            mat = np.where(np.isin(mat, dom), np.int64(pad), mat)
            mat.sort(axis=1)
            changed = True
    return mat, sorted(forced), dominated_total


def _decompose(sets: Sequence[FrozenSet[int]]) -> Tuple[WitnessComponent, ...]:
    """Connected components of the tuple/witness incidence graph.

    Large structures route through :func:`scipy.sparse.csgraph`
    (:func:`_decompose_matrix`); the union-find below is the reference
    implementation and the small-input fast path.  Output is identical:
    components ordered by smallest member id, members ascending, each
    component's sets in input order.
    """
    if (
        len(sets) >= 512
        and _kernel_backend() == "bitset"
        and all(sets)
    ):
        return _decompose_matrix(list(sets))
    return _decompose_reference(sets)


def _decompose_matrix(sets: List[FrozenSet[int]]) -> Tuple[WitnessComponent, ...]:
    """csgraph-backed connected components (same output as reference).

    Consecutive elements of each (ascending) row chain the row's tuples
    together, so the tuple–tuple graph of those edges has exactly the
    components of the bipartite tuple/witness graph.
    """
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    mat, pad = _matrix_from_sets(sets)
    m, k = mat.shape
    flat = mat[mat != pad]
    nodes = np.unique(flat)
    n = len(nodes)
    edges_a: List[np.ndarray] = []
    edges_b: List[np.ndarray] = []
    for j in range(k - 1):
        a = mat[:, j]
        b = mat[:, j + 1]
        valid = (a != pad) & (b != pad)
        if valid.any():
            edges_a.append(np.searchsorted(nodes, a[valid]))
            edges_b.append(np.searchsorted(nodes, b[valid]))
    if edges_a:
        row_idx = np.concatenate(edges_a)
        col_idx = np.concatenate(edges_b)
        data = np.ones(len(row_idx), dtype=np.int8)
        graph = coo_matrix((data, (row_idx, col_idx)), shape=(n, n))
    else:
        graph = coo_matrix((n, n), dtype=np.int8)
    _, labels = connected_components(graph, directed=False)

    # Components ordered by smallest member: nodes are ascending, so the
    # first occurrence of each label is its minimal member.
    _, first_pos = np.unique(labels, return_index=True)
    rank_of_label = np.empty(len(first_pos), dtype=np.int64)
    rank_of_label[np.argsort(first_pos, kind="stable")] = np.arange(
        len(first_pos)
    )
    comp_of_node = rank_of_label[labels]
    n_comps = len(first_pos)
    members: List[List[int]] = [[] for _ in range(n_comps)]
    for node, comp in zip(nodes.tolist(), comp_of_node.tolist()):
        members[comp].append(node)
    comp_sets: List[List[FrozenSet[int]]] = [[] for _ in range(n_comps)]
    first_col = np.searchsorted(nodes, mat[:, 0])
    row_comp = comp_of_node[first_col]
    for s, comp in zip(sets, row_comp.tolist()):
        comp_sets[comp].append(s)
    return tuple(
        WitnessComponent(tuple(ts), tuple(ss))
        for ts, ss in zip(members, comp_sets)
    )


def _decompose_reference(
    sets: Sequence[FrozenSet[int]],
) -> Tuple[WitnessComponent, ...]:
    """Union-find decomposition (the reference implementation)."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in sets:
        for t in s:
            parent.setdefault(t, t)
        it = iter(s)
        root = find(next(it))
        for t in it:
            r = find(t)
            if r != root:
                parent[r] = root

    groups: Dict[int, List[int]] = {}
    for t in parent:
        groups.setdefault(find(t), []).append(t)
    comp_of = {root: i for i, root in enumerate(sorted(groups, key=lambda r: min(groups[r])))}
    members: List[List[int]] = [[] for _ in comp_of]
    comp_sets: List[List[FrozenSet[int]]] = [[] for _ in comp_of]
    for root, ts in groups.items():
        members[comp_of[find(root)]] = sorted(ts)
    for s in sets:
        comp_sets[comp_of[find(next(iter(s)))]].append(s)
    return tuple(
        WitnessComponent(tuple(ts), tuple(ss))
        for ts, ss in zip(members, comp_sets)
    )
