"""The shared witness-structure engine.

Every exact resilience computation is a minimum hitting set over the
*witness structure* of a (query, database) pair (the Section 2 /
Definition 1 view of resilience): each witness of
``D |= q`` contributes the set of endogenous tuples it uses, and a
contingency set is exactly a set of endogenous tuples intersecting every
such set.  Before this module existed, each solver call re-enumerated
witnesses from scratch and worked on raw ``FrozenSet[DBTuple]`` objects;
:class:`WitnessStructure` enumerates once, maps tuples to a compact
integer universe, and applies the standard hitting-set kernelization
repertoire *before* any solver runs:

1. **superset elimination** — only inclusion-minimal witness sets
   matter (hitting a subset hits all its supersets);
2. **unit-witness forcing** — a singleton witness ``{t}`` forces ``t``
   into (some) minimum hitting set; ``t`` is committed and every
   witness it hits is removed;
3. **dominated-tuple elimination** — if every remaining witness
   containing ``t`` also contains ``u``, any solution using ``t`` can
   swap it for ``u``; ``t`` is deleted from the candidate pool;
4. **connected-component decomposition** — the tuple/witness incidence
   graph splits into components that are solved independently and
   summed.

Stages 1–3 run to a fixpoint (each can enable the others), and the
whole pipeline frequently solves small instances outright, leaving the
branch-and-bound / ILP backends only the irreducible core.

Internally witness sets are ``frozenset``s of integer tuple-ids; stage
3's subset tests run on Python-int *bitsets* over witness rows (a
single ``& ~`` per candidate pair), and the final per-tuple bitsets
are exposed as :attr:`WitnessStructure.tuple_bitsets` for consumers.
The scipy CSR incidence matrix consumed by the ILP backend is built
directly from the same ids via :meth:`WitnessStructure.incidence_matrix`
/ :meth:`WitnessComponent.incidence_matrix`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import DatabaseIndex, witness_tuple_sets


class UnbreakableQueryError(ValueError):
    """Raised when no contingency set exists.

    This happens when some witness uses only exogenous tuples: no
    deletion of endogenous tuples can falsify the query, so resilience
    is undefined (the decision problem answers "no" for every k, and
    the optimization problem has no finite optimum).

    Defined here — where witness enumeration first detects the
    condition — and re-exported by :mod:`repro.resilience.types`, its
    historical home.
    """


@dataclass
class ReductionStats:
    """What preprocessing did to one witness structure.

    All counts refer to *endogenous-restricted, de-duplicated* witness
    sets (the output of :func:`repro.query.evaluation.witness_tuple_sets`).
    """

    witnesses_raw: int = 0
    witnesses_distinct: int = 0
    witnesses_minimal: int = 0
    witnesses_final: int = 0
    tuples_raw: int = 0
    tuples_final: int = 0
    forced_tuples: int = 0
    dominated_tuples: int = 0
    components: int = 0
    rounds: int = 0
    time_enumerate: float = 0.0
    time_reduce: float = 0.0

    def merge(self, other: "ReductionStats") -> None:
        """Accumulate ``other`` into this instance (for batch reports)."""
        self.witnesses_raw += other.witnesses_raw
        self.witnesses_distinct += other.witnesses_distinct
        self.witnesses_minimal += other.witnesses_minimal
        self.witnesses_final += other.witnesses_final
        self.tuples_raw += other.tuples_raw
        self.tuples_final += other.tuples_final
        self.forced_tuples += other.forced_tuples
        self.dominated_tuples += other.dominated_tuples
        self.components += other.components
        self.rounds += other.rounds
        self.time_enumerate += other.time_enumerate
        self.time_reduce += other.time_reduce


@dataclass(frozen=True)
class WitnessComponent:
    """One connected component of the reduced tuple/witness graph.

    ``tuple_ids`` are global ids into the parent structure's universe;
    ``sets`` are the component's witness sets over those same global
    ids.  Components partition both the active tuples and the witness
    sets, so resilience is the sum of per-component minimum hitting
    sets.
    """

    tuple_ids: Tuple[int, ...]
    sets: Tuple[FrozenSet[int], ...]

    def incidence_matrix(self):
        """Sparse CSR 0/1 matrix: rows = witness sets, cols = local
        positions into ``tuple_ids`` (sorted ascending)."""
        local = {t: j for j, t in enumerate(self.tuple_ids)}
        return _csr_from_sets(
            [frozenset(local[t] for t in s) for s in self.sets],
            len(self.tuple_ids),
        )


class WitnessStructure:
    """The preprocessed witness structure of one (query, database) pair.

    Build with :meth:`build`; consume via :attr:`components` (solvers),
    :meth:`incidence_matrix` (whole-structure CSR), or the convenience
    accessors below.  Attributes:

    ``universe``
        All endogenous tuples appearing in any witness, sorted by
        :meth:`DBTuple.sort_key`; a tuple's id is its position here.
    ``raw_sets`` / ``sets``
        Witness sets (frozensets of tuple ids) before / after
        preprocessing.  ``sets`` only contains inclusion-minimal sets
        over non-forced, non-dominated tuples.
    ``forced_ids`` / ``forced``
        Tuples committed by unit-witness forcing; every one belongs to
        some minimum contingency set, so solvers add ``len(forced)`` to
        the optimum of ``sets``.
    ``tuple_bitsets``
        For each active tuple id, a Python-int bitset over rows of
        ``sets`` (bit *r* set iff the tuple occurs in ``sets[r]``) —
        the row view of the reduced structure, exposed for consumers;
        the reduction pipeline builds its own per-round bitsets.
    ``components``
        The connected components of the reduced structure, ordered by
        smallest tuple id.
    ``satisfied``
        Whether ``D |= q`` at build time (no witnesses ⇒ resilience 0).

    Raises :class:`UnbreakableQueryError` at build time when some
    witness uses only exogenous tuples.
    """

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        universe: Tuple[DBTuple, ...],
        raw_sets: Tuple[FrozenSet[int], ...],
        sets: Tuple[FrozenSet[int], ...],
        forced_ids: FrozenSet[int],
        stats: ReductionStats,
    ):
        self.database = database
        self.query = query
        self.universe = universe
        self.tuple_index: Dict[DBTuple, int] = {t: i for i, t in enumerate(universe)}
        self.raw_sets = raw_sets
        self.sets = sets
        self.forced_ids = forced_ids
        self.stats = stats
        self.tuple_bitsets: Dict[int, int] = _bitsets(sets)
        self.components: Tuple[WitnessComponent, ...] = _decompose(sets)
        stats.components = len(self.components)
        stats.witnesses_final = len(sets)
        stats.tuples_final = len(self.tuple_bitsets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        query: ConjunctiveQuery,
        reduce: bool = True,
        index: Optional[DatabaseIndex] = None,
    ) -> "WitnessStructure":
        """Enumerate witnesses and (optionally) run all reductions.

        ``reduce=False`` skips every preprocessing stage — useful for
        cross-checking that the reductions preserve the optimum.  An
        existing :class:`DatabaseIndex` may be passed to reuse per-atom
        hash indexes across many builds on the same database.
        """
        t0 = time.perf_counter()
        tuple_sets = witness_tuple_sets(
            database, query, endogenous_only=True, index=index
        )
        for s in tuple_sets:
            if not s:
                raise UnbreakableQueryError(
                    "a witness uses only exogenous tuples; the query cannot "
                    "be falsified by endogenous deletions"
                )
        t1 = time.perf_counter()

        universe = tuple(sorted({t for s in tuple_sets for t in s}))
        idx = {t: i for i, t in enumerate(universe)}
        raw = tuple(frozenset(idx[t] for t in s) for s in tuple_sets)

        stats = ReductionStats(
            witnesses_raw=len(raw),
            tuples_raw=len(universe),
            time_enumerate=t1 - t0,
        )
        stats.witnesses_distinct = len(set(raw))
        if reduce:
            sets, forced, dominated = _reduce(list(raw), stats)
        else:
            sets, forced, dominated = list(raw), frozenset(), 0
            stats.witnesses_minimal = len(raw)
        stats.forced_tuples = len(forced)
        stats.dominated_tuples = dominated
        stats.time_reduce = time.perf_counter() - t1
        return cls(
            database, query, universe, raw, tuple(sets), frozenset(forced), stats
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def satisfied(self) -> bool:
        """``D |= q`` — the structure has at least one witness."""
        return bool(self.raw_sets)

    @property
    def forced(self) -> FrozenSet[DBTuple]:
        """The forced tuples, as database facts."""
        return frozenset(self.universe[i] for i in self.forced_ids)

    def tuples(self, ids) -> FrozenSet[DBTuple]:
        """Map ids back to database facts."""
        return frozenset(self.universe[i] for i in ids)

    def incidence_matrix(self):
        """CSR 0/1 incidence of the *reduced* structure: rows = witness
        sets in ``self.sets``, cols = the full universe."""
        return _csr_from_sets(self.sets, len(self.universe))

    def __repr__(self) -> str:
        return (
            f"WitnessStructure(witnesses={len(self.raw_sets)}->{len(self.sets)}, "
            f"tuples={len(self.universe)}->{self.stats.tuples_final}, "
            f"forced={len(self.forced_ids)}, components={len(self.components)})"
        )


def _csr_from_sets(sets: Sequence[FrozenSet[int]], n_cols: int):
    """Sparse CSR 0/1 matrix with one row per set over ``n_cols`` columns."""
    from scipy.sparse import csr_matrix

    indptr = [0]
    indices: List[int] = []
    for s in sets:
        indices.extend(sorted(s))
        indptr.append(len(indices))
    return csr_matrix(
        ([1.0] * len(indices), indices, indptr),
        shape=(len(sets), n_cols),
    )


# ---------------------------------------------------------------------------
# Reduction pipeline
# ---------------------------------------------------------------------------

def _bitsets(sets: Sequence[FrozenSet[int]]) -> Dict[int, int]:
    """Per-tuple bitsets over witness rows: bit ``r`` of ``out[t]`` is
    set iff tuple ``t`` occurs in ``sets[r]``."""
    out: Dict[int, int] = {}
    for row, s in enumerate(sets):
        bit = 1 << row
        for t in s:
            out[t] = out.get(t, 0) | bit
    return out


# Pairwise minimality checking is quadratic in the number of witness
# sets; past this count, and as long as the sets themselves are small
# (witness sets never exceed the query's endogenous atom count), we
# instead enumerate each set's proper subsets and hash-probe for them —
# O(m * 2^k) with tiny constants instead of O(m^2).
_MINIMAL_PAIRWISE_LIMIT = 512
_MINIMAL_SUBSET_ENUM_MAX_LEN = 12


def _minimal_sets(sets: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Keep only inclusion-minimal sets (deduplicated, deterministic)."""
    distinct = set(sets)
    ordered = sorted(distinct, key=lambda s: (len(s), sorted(s)))
    max_len = len(ordered[-1]) if ordered else 0
    if (
        len(ordered) > _MINIMAL_PAIRWISE_LIMIT
        and max_len <= _MINIMAL_SUBSET_ENUM_MAX_LEN
    ):
        # A set is non-minimal iff one of its proper subsets is also a
        # witness set; with sets this small, probing every subset beats
        # comparing every pair.
        from itertools import combinations

        kept = []
        for s in ordered:
            elems = sorted(s)
            if not any(
                frozenset(sub) in distinct
                for r in range(1, len(elems))
                for sub in combinations(elems, r)
            ):
                kept.append(s)
        return kept
    kept = []
    for s in ordered:
        if not any(k <= s for k in kept):
            kept.append(s)
    return kept


def _dominated_tuples(sets: Sequence[FrozenSet[int]]) -> List[int]:
    """Tuples whose witness rows are covered by another tuple's rows.

    ``t`` is dominated by ``u`` when ``rows(t) ⊆ rows(u)``: any hitting
    set using ``t`` can use ``u`` instead.  For *equal* row sets only
    the smallest tuple id survives, which keeps the choice
    deterministic; a tuple already marked dominated is never used as a
    dominator (domination is transitive, so a live dominator always
    exists).
    """
    bitsets = _bitsets(sets)
    dominated: set = set()
    for t, rows_t in sorted(bitsets.items()):
        # Any dominator of t appears in *every* witness row of t, in
        # particular t's lowest row — so only that row's members are
        # candidates.  Witness sets are small (bounded by the query's
        # endogenous atom count), which makes this linear-ish in the
        # incidence size instead of quadratic in the tuple count.
        lowest_row = (rows_t & -rows_t).bit_length() - 1
        for u in sorted(sets[lowest_row]):
            if u == t or u in dominated:
                continue
            rows_u = bitsets[u]
            if rows_t & ~rows_u == 0 and (rows_t != rows_u or u < t):
                dominated.add(t)
                break
    return sorted(dominated)


def _reduce(
    sets: List[FrozenSet[int]], stats: ReductionStats
) -> Tuple[List[FrozenSet[int]], FrozenSet[int], int]:
    """Run stages 1–3 to a fixpoint.

    Returns ``(reduced_sets, forced_ids, n_dominated)``.  The invariant
    maintained is that ``opt(original) = len(forced) + opt(reduced)``
    and that any hitting set of ``reduced_sets`` together with the
    forced tuples hits every original witness set.
    """
    forced: set = set()
    dominated_total = 0
    first = True
    changed = True
    while changed:
        stats.rounds += 1
        changed = False

        minimal = _minimal_sets(sets)
        if len(minimal) != len(sets):
            changed = True
        sets = minimal
        if first:
            stats.witnesses_minimal = len(sets)
            first = False

        units = {next(iter(s)) for s in sets if len(s) == 1}
        if units:
            forced |= units
            sets = [s for s in sets if not (s & units)]
            changed = True

        dominated = set(_dominated_tuples(sets))
        if dominated:
            dominated_total += len(dominated)
            sets = [frozenset(s - dominated) for s in sets]
            changed = True
    return sets, frozenset(forced), dominated_total


def _decompose(sets: Sequence[FrozenSet[int]]) -> Tuple[WitnessComponent, ...]:
    """Connected components of the tuple/witness incidence graph."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in sets:
        for t in s:
            parent.setdefault(t, t)
        it = iter(s)
        root = find(next(it))
        for t in it:
            r = find(t)
            if r != root:
                parent[r] = root

    groups: Dict[int, List[int]] = {}
    for t in parent:
        groups.setdefault(find(t), []).append(t)
    comp_of = {root: i for i, root in enumerate(sorted(groups, key=lambda r: min(groups[r])))}
    members: List[List[int]] = [[] for _ in comp_of]
    comp_sets: List[List[FrozenSet[int]]] = [[] for _ in comp_of]
    for root, ts in groups.items():
        members[comp_of[find(root)]] = sorted(ts)
    for s in sets:
        comp_sets[comp_of[find(next(iter(s)))]].append(s)
    return tuple(
        WitnessComponent(tuple(ts), tuple(ss))
        for ts, ss in zip(members, comp_sets)
    )
