"""Synthetic workload generators for tests and benchmarks."""

from repro.workloads.random_db import (
    HARD_SCALING_QUERIES,
    assign_skewed_costs,
    declare_vocabulary,
    hard_scaling_workload,
    large_random_database,
    random_database_for_queries,
    random_database_for_query,
    random_binary_relation,
    random_unary_relation,
    weighted_hard_scaling_workload,
)
from repro.workloads.formulas import (
    CNFFormula,
    random_3cnf,
    random_2cnf,
    exhaustive_assignments,
)
from repro.workloads.graphs import random_graph, Graph
from repro.workloads.outofcore import (
    DEFAULT_HOT_PAIRS,
    chain_database,
    chain_query,
    chain_rows,
    write_chain_snapshot,
)
from repro.workloads.random_queries import (
    random_sjfree_cq,
    random_ssj_binary_cq,
    random_three_occurrence_cq,
)
from repro.workloads.update_stream import apply_update, update_stream

__all__ = [
    "random_sjfree_cq",
    "random_ssj_binary_cq",
    "random_three_occurrence_cq",
    "declare_vocabulary",
    "apply_update",
    "update_stream",
    "HARD_SCALING_QUERIES",
    "assign_skewed_costs",
    "hard_scaling_workload",
    "weighted_hard_scaling_workload",
    "large_random_database",
    "random_database_for_queries",
    "random_database_for_query",
    "random_binary_relation",
    "random_unary_relation",
    "CNFFormula",
    "random_3cnf",
    "random_2cnf",
    "exhaustive_assignments",
    "random_graph",
    "Graph",
    "DEFAULT_HOT_PAIRS",
    "chain_database",
    "chain_query",
    "chain_rows",
    "write_chain_snapshot",
]
