"""CNF formulas: instances for the 3SAT / Max 2SAT reductions.

Literals are non-zero integers (DIMACS style): ``+i`` is variable ``i``,
``-i`` its negation.  Variables are numbered from 1.

The exact solvers here (exhaustive satisfiability / max-sat) are used as
ground truth when machine-checking the paper's gadget constructions on
small formulas.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula over variables ``1..num_vars``."""

    num_vars: int
    clauses: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        for clause in self.clauses:
            for lit in clause:
                if lit == 0 or abs(lit) > self.num_vars:
                    raise ValueError(f"bad literal {lit} in clause {clause}")

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------
    def clause_satisfied(self, clause: Tuple[int, ...], assignment: Dict[int, bool]) -> bool:
        return any(
            assignment[abs(lit)] == (lit > 0) for lit in clause
        )

    def satisfied_count(self, assignment: Dict[int, bool]) -> int:
        """Number of clauses the assignment satisfies."""
        return sum(
            1 for clause in self.clauses if self.clause_satisfied(clause, assignment)
        )

    def is_satisfied(self, assignment: Dict[int, bool]) -> bool:
        return self.satisfied_count(assignment) == self.num_clauses

    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Exhaustive satisfiability check (ground truth for small n)."""
        for assignment in exhaustive_assignments(self.num_vars):
            if self.is_satisfied(assignment):
                return True
        return False

    def max_satisfiable(self) -> int:
        """The Max-SAT optimum by exhaustive search."""
        return max(
            self.satisfied_count(a) for a in exhaustive_assignments(self.num_vars)
        )

    def __repr__(self) -> str:
        parts = []
        for clause in self.clauses:
            lits = " v ".join(
                (f"x{lit}" if lit > 0 else f"~x{-lit}") for lit in clause
            )
            parts.append(f"({lits})")
        return " & ".join(parts) or "true"


def exhaustive_assignments(num_vars: int) -> Iterator[Dict[int, bool]]:
    """All 2^n assignments over variables 1..n."""
    for bits in itertools.product([False, True], repeat=num_vars):
        yield {i + 1: bits[i] for i in range(num_vars)}


def random_3cnf(
    num_vars: int,
    num_clauses: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CNFFormula:
    """A random 3CNF formula with distinct variables per clause.

    ``rng`` overrides ``seed`` with a caller-owned generator (so update
    streams and property tests can share one source of randomness);
    module-global ``random`` state is never consumed either way.
    """
    if rng is None:
        rng = random.Random(seed)
    if num_vars < 3:
        raise ValueError("need at least 3 variables for 3CNF")
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clause = tuple(
            v if rng.random() < 0.5 else -v for v in variables
        )
        clauses.append(clause)
    return CNFFormula(num_vars, tuple(clauses))


def random_2cnf(
    num_vars: int, num_clauses: int, seed: Optional[int] = None,
    allow_unit: bool = True,
    rng: Optional[random.Random] = None,
) -> CNFFormula:
    """A random 2CNF formula (clauses of size 1 or 2, as in Prop 39).

    ``rng`` overrides ``seed`` with a caller-owned generator.
    """
    if rng is None:
        rng = random.Random(seed)
    if num_vars < 2:
        raise ValueError("need at least 2 variables for 2CNF")
    clauses = []
    for _ in range(num_clauses):
        if allow_unit and rng.random() < 0.25:
            v = rng.randrange(1, num_vars + 1)
            clauses.append((v if rng.random() < 0.5 else -v,))
        else:
            variables = rng.sample(range(1, num_vars + 1), 2)
            clauses.append(
                tuple(v if rng.random() < 0.5 else -v for v in variables)
            )
    return CNFFormula(num_vars, tuple(clauses))
