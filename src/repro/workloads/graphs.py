"""Simple graphs for the vertex-cover reductions.

Vertex cover is the root of the paper's IJP template (Figure 8) and of
the reductions to ``q_vc`` and the path queries.  The exhaustive
:meth:`Graph.minimum_vertex_cover` is ground truth on small instances.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Graph:
    """An undirected graph on integer vertices."""

    vertices: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]]

    def __post_init__(self):
        for (u, v) in self.edges:
            if u not in self.vertices or v not in self.vertices:
                raise ValueError(f"edge ({u},{v}) uses unknown vertex")

    @staticmethod
    def make(vertices, edges) -> "Graph":
        """Normalize edges to ordered tuples and build a graph."""
        norm = frozenset(
            (min(u, v), max(u, v)) for (u, v) in edges
        )
        return Graph(frozenset(vertices), norm)

    def is_vertex_cover(self, cover: Set[int]) -> bool:
        return all(u in cover or v in cover for (u, v) in self.edges)

    def minimum_vertex_cover(self) -> Set[int]:
        """Exhaustive minimum vertex cover (small graphs only)."""
        vs = sorted(self.vertices)
        for k in range(len(vs) + 1):
            for combo in itertools.combinations(vs, k):
                if self.is_vertex_cover(set(combo)):
                    return set(combo)
        return set(vs)  # pragma: no cover

    def vertex_cover_number(self) -> int:
        return len(self.minimum_vertex_cover())


def random_graph(
    num_vertices: int,
    edge_probability: float,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Graph:
    """An Erdős–Rényi random graph G(n, p).

    ``rng`` overrides ``seed`` with a caller-owned generator; no
    module-global ``random`` state is consumed either way.
    """
    if rng is None:
        rng = random.Random(seed)
    vertices = range(num_vertices)
    edges = [
        (u, v)
        for u in vertices
        for v in vertices
        if u < v and rng.random() < edge_probability
    ]
    return Graph.make(vertices, edges)
