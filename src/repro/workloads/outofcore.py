"""Million-tuple PTIME chain workloads for the out-of-core tier.

The chain query ``R(x,y), S(y,z)`` is self-join-free and linear, so its
resilience sits on the PTIME side of the dichotomy (Proposition 31 /
Theorem 24's tractable island) — which makes it the right probe for the
*storage* engine: solve cost is dominated by witness enumeration over
``D |= q`` (Section 2), exactly the layer :mod:`repro.storage` moves
out of core.

The instance is deterministic (no RNG — bit-identity across processes
and scales is the point):

* ``hot_pairs`` disjoint witness pairs ``R(3i, 3i+1), S(3i+1, 3i+2)``
  — each joins with exactly one partner, so the witness set count is
  ``hot_pairs``, every witness is a disjoint 2-tuple set, and the
  resilience is exactly ``hot_pairs`` (delete one tuple per witness;
  Definition 1);
* dead filler tuples ``R(B_R+j, B_R+j)`` / ``S(B_S+j, B_S+j)`` drawn
  from disjoint constant ranges that never join — they inflate the
  instance to ``total_tuples`` without touching the answer, so the
  same known ground truth holds from 10^3 to 10^7 tuples.

Two constructions, one content: :func:`chain_database` materializes the
instance in memory, :func:`write_chain_snapshot` streams it straight
into a snapshot without ever holding the facts as Python objects.
Their content digests agree (the snapshot writer hashes the canonical
text incrementally), so equivalence suites can pin bit-identity at
every overlapping scale.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Tuple

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query

#: Filler constants live in ranges disjoint from the hot pairs (and
#: from each other), so filler tuples can never join with anything.
R_FILLER_BASE = 1_000_000_000
S_FILLER_BASE = 2_000_000_000

#: The PTIME probe query (self-join-free, linear).
CHAIN_QUERY_TEXT = "R(x, y), S(y, z)"

#: Default number of hot witness pairs — and therefore the known
#: resilience of every instance this module generates.
DEFAULT_HOT_PAIRS = 512


def chain_query() -> ConjunctiveQuery:
    """The chain query ``R(x,y), S(y,z)`` (fresh instance)."""
    return parse_query(CHAIN_QUERY_TEXT, name="q_oc_chain")


def _split_fillers(total_tuples: int, hot_pairs: int) -> Tuple[int, int]:
    if hot_pairs < 1:
        raise ValueError(f"hot_pairs must be >= 1, got {hot_pairs}")
    fill = total_tuples - 2 * hot_pairs
    if fill < 0:
        raise ValueError(
            f"total_tuples={total_tuples} cannot hold 2*{hot_pairs} hot tuples"
        )
    return fill - fill // 2, fill // 2


def chain_rows(
    total_tuples: int, hot_pairs: int = DEFAULT_HOT_PAIRS
) -> Tuple[Iterator[Tuple[int, int]], Iterator[Tuple[int, int]], int]:
    """Lazy ``(r_rows, s_rows, resilience)`` for one chain instance.

    The two iterators together yield exactly ``total_tuples`` distinct
    value vectors; the known resilience is ``hot_pairs``.
    """
    r_fill, s_fill = _split_fillers(total_tuples, hot_pairs)

    def r_rows() -> Iterator[Tuple[int, int]]:
        for i in range(hot_pairs):
            yield (3 * i, 3 * i + 1)
        for j in range(r_fill):
            yield (R_FILLER_BASE + j, R_FILLER_BASE + j)

    def s_rows() -> Iterator[Tuple[int, int]]:
        for i in range(hot_pairs):
            yield (3 * i + 1, 3 * i + 2)
        for j in range(s_fill):
            yield (S_FILLER_BASE + j, S_FILLER_BASE + j)

    return r_rows(), s_rows(), hot_pairs


def chain_database(
    total_tuples: int, hot_pairs: int = DEFAULT_HOT_PAIRS
) -> Database:
    """The chain instance materialized as an in-memory :class:`Database`.

    Same facts as :func:`write_chain_snapshot` writes — equal content
    digests — for the bit-identity suites at overlapping scales.
    """
    r_rows, s_rows, _ = chain_rows(total_tuples, hot_pairs)
    db = Database()
    db.add_all("R", r_rows)
    db.add_all("S", s_rows)
    return db


def write_chain_snapshot(
    path,
    total_tuples: int,
    hot_pairs: int = DEFAULT_HOT_PAIRS,
    overwrite: bool = False,
) -> Path:
    """Stream the chain instance directly into a snapshot at ``path``.

    Facts go straight from the generators into the snapshot's column
    files — no :class:`Database`, no fact objects — so peak memory is
    the constant intern table plus one relation's digest material, and
    a 10^6-tuple instance builds comfortably under the E22 RSS ceiling.
    """
    from repro.storage.layout import SnapshotWriter

    r_rows, s_rows, _ = chain_rows(total_tuples, hot_pairs)
    writer = SnapshotWriter(path, overwrite=overwrite)
    try:
        writer.add_relation("R", 2, r_rows)
        writer.add_relation("S", 2, s_rows)
        return writer.commit()
    except BaseException:
        writer.abort()
        raise
