"""Random database generation matched to a query's vocabulary.

Used throughout the tests and benchmarks to cross-validate the
polynomial-time solvers against the exact ones: generate a random
database over the query's relations, check both solvers agree.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery


def random_unary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill unary relation ``name`` with each constant independently."""
    for v in range(domain_size):
        if rng.random() < density:
            db.add(name, v)


def random_binary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill binary relation ``name`` with each ordered pair independently."""
    for u in range(domain_size):
        for v in range(domain_size):
            if rng.random() < density:
                db.add(name, u, v)


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int = 6,
    density: float = 0.35,
    seed: Optional[int] = None,
    densities: Optional[Dict[str, float]] = None,
) -> Database:
    """A random database over the query's vocabulary.

    Every relation of the query is declared (with the query's exogenous
    flag) and filled independently at the given density; ``densities``
    overrides per relation.  Relations of arity >= 3 are filled by
    sampling ``density * domain_size**2`` random vectors, keeping sizes
    comparable with the binary case.
    """
    rng = random.Random(seed)
    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in sorted(query.relation_arities().items()):
        db.declare(rel_name, arity, exogenous=flags[rel_name])
        d = (densities or {}).get(rel_name, density)
        if arity == 1:
            random_unary_relation(db, rel_name, domain_size, d, rng)
        elif arity == 2:
            random_binary_relation(db, rel_name, domain_size, d, rng)
        else:
            target = int(d * domain_size ** 2)
            for _ in range(target):
                db.add(
                    rel_name,
                    *(rng.randrange(domain_size) for _ in range(arity)),
                )
    return db
