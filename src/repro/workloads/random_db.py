"""Random database generation matched to a query's vocabulary.

Used throughout the tests and benchmarks to cross-validate the
polynomial-time solvers against the exact ones: generate a random
database over the query's relations, check both solvers agree.

Two size regimes:

* :func:`random_database_for_query` / :func:`random_database_for_queries`
  — density-driven instances of tens of tuples, where the exact solvers
  (NP-complete in general, Theorem 24) are still comfortable;
* :func:`large_random_database` / :func:`hard_scaling_workload` — the
  scale-up regime: thousands of tuples over NP-hard zoo queries, sized
  for the certified approximate/anytime tier
  (:mod:`repro.resilience.approx`), where exact search is out of reach.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.cq import ConjunctiveQuery


def random_unary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill unary relation ``name`` with each constant independently."""
    for v in range(domain_size):
        if rng.random() < density:
            db.add(name, v)


def random_binary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill binary relation ``name`` with each ordered pair independently."""
    for u in range(domain_size):
        for v in range(domain_size):
            if rng.random() < density:
                db.add(name, u, v)


def _fill_relation(
    db: Database,
    name: str,
    arity: int,
    domain_size: int,
    density: float,
    rng: random.Random,
) -> None:
    """Fill one (already declared) relation at the given density.

    Relations of arity >= 3 are filled by sampling
    ``density * domain_size**2`` random vectors, keeping sizes
    comparable with the binary case.
    """
    if arity == 1:
        random_unary_relation(db, name, domain_size, density, rng)
    elif arity == 2:
        random_binary_relation(db, name, domain_size, density, rng)
    else:
        for _ in range(int(density * domain_size ** 2)):
            db.add(name, *(rng.randrange(domain_size) for _ in range(arity)))


def _union_vocabulary(
    queries: Sequence[ConjunctiveQuery],
) -> Tuple[Dict[str, int], Dict[str, bool]]:
    """Arities and exogenous flags of every relation any query mentions.

    Raises ``ValueError`` if two queries disagree on a relation's arity
    or exogenous flag.
    """
    arities: Dict[str, int] = {}
    flags: Dict[str, bool] = {}
    for q in queries:
        for rel, arity in q.relation_arities().items():
            if arities.setdefault(rel, arity) != arity:
                raise ValueError(f"conflicting arities for relation {rel!r}")
        for rel, flag in q.relation_flags().items():
            if flags.setdefault(rel, flag) != flag:
                raise ValueError(f"conflicting exogenous flags for {rel!r}")
    return arities, flags


def declare_vocabulary(db: Database, queries: Sequence[ConjunctiveQuery]) -> Database:
    """Declare every relation the queries mention on ``db``.

    The one shared way a database gets a query-matched schema: sorted
    relation order, the queries' union arities and exogenous flags
    (``ValueError`` on conflicts, as in :func:`_union_vocabulary`).
    Used by the random generators here and by the IJP search's
    canonical/merged databases (:mod:`repro.ijp.search`), so all of
    them stay declaration-compatible by construction.  Returns ``db``.
    """
    arities, flags = _union_vocabulary(queries)
    for rel_name in sorted(arities):
        db.declare(rel_name, arities[rel_name], exogenous=flags[rel_name])
    return db


def random_database_for_queries(
    queries: Sequence[ConjunctiveQuery],
    domain_size: int = 6,
    density: float = 0.35,
    seed: Optional[int] = None,
    densities: Optional[Dict[str, float]] = None,
    rng: Optional[random.Random] = None,
) -> Database:
    """A random database over the *union* vocabulary of several queries.

    Batch workloads solve many queries over the same database; this
    declares every relation any query mentions (so the same instance is
    well-formed for all of them) and fills each at the given density.
    Raises ``ValueError`` if two queries disagree on a relation's arity
    or exogenous flag.  Pass ``rng`` to share one generator across
    calls (``seed`` is then ignored); module-global ``random`` state is
    never consumed either way.
    """
    arities, _ = _union_vocabulary(queries)
    if rng is None:
        rng = random.Random(seed)
    db = declare_vocabulary(Database(), queries)
    for rel_name in sorted(arities):
        d = (densities or {}).get(rel_name, density)
        _fill_relation(db, rel_name, arities[rel_name], domain_size, d, rng)
    return db


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int = 6,
    density: float = 0.35,
    seed: Optional[int] = None,
    densities: Optional[Dict[str, float]] = None,
    rng: Optional[random.Random] = None,
) -> Database:
    """A random database over the query's vocabulary.

    Every relation of the query is declared (with the query's exogenous
    flag) and filled independently at the given density; ``densities``
    overrides per relation.  Relations of arity >= 3 are filled by
    sampling ``density * domain_size**2`` random vectors, keeping sizes
    comparable with the binary case.  ``rng`` overrides ``seed`` with a
    caller-owned generator.
    """
    if rng is None:
        rng = random.Random(seed)
    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in sorted(query.relation_arities().items()):
        db.declare(rel_name, arity, exogenous=flags[rel_name])
        d = (densities or {}).get(rel_name, density)
        _fill_relation(db, rel_name, arity, domain_size, d, rng)
    return db


# ---------------------------------------------------------------------------
# The scale-up regime (repro.resilience.approx workloads)
# ---------------------------------------------------------------------------

# NP-complete zoo queries sharing one vocabulary (A, C unary; R binary),
# so a single large database serves the whole set.  Exact solving on the
# databases large_random_database emits for them is out of reach; the
# approximate tier returns certified intervals in milliseconds.
HARD_SCALING_QUERIES = (
    "q_chain",
    "q_3chain",
    "q_a_chain",
    "q_ac_chain",
    "q_sj1_rats",
    "q_triangle_sj1",
)


def large_random_database(
    queries: Sequence[ConjunctiveQuery],
    n_tuples: int = 2000,
    seed: Optional[int] = None,
    domain_size: Optional[int] = None,
    unary_fraction: float = 0.4,
    rng: Optional[random.Random] = None,
) -> Database:
    """A sparse random database with *thousands* of tuples.

    The density-driven generators above produce dense instances whose
    witness counts explode quadratically with the domain; this one
    instead targets a tuple *count*: every relation of arity >= 2 gets
    exactly ``n_tuples`` distinct rows sampled uniformly from a domain
    sized to keep the instance sparse (``domain_size`` defaults to
    ``max(8, n_tuples // 3)``, giving expected constant out-degree), and
    each unary relation holds a ``unary_fraction`` sample of the domain.
    Sparsity keeps the witness count roughly linear in ``n_tuples``, so
    the witness structure stays buildable while exact search on the
    NP-hard queries does not.
    """
    arities, _ = _union_vocabulary(queries)
    if domain_size is None:
        domain_size = max(8, n_tuples // 3)
    if rng is None:
        rng = random.Random(seed)
    db = declare_vocabulary(Database(), queries)
    for rel_name in sorted(arities):
        arity = arities[rel_name]
        if arity == 1:
            for v in range(domain_size):
                if rng.random() < unary_fraction:
                    db.add(rel_name, v)
            continue
        seen = set()
        target = min(n_tuples, domain_size ** arity)
        while len(seen) < target:
            row = tuple(rng.randrange(domain_size) for _ in range(arity))
            if row not in seen:
                seen.add(row)
                db.add(rel_name, *row)
    return db


def assign_skewed_costs(
    db: Database,
    seed: Optional[int] = None,
    max_cost: int = 16,
    alpha: float = 1.5,
    rng: Optional[random.Random] = None,
) -> Database:
    """Give every *endogenous* fact a skewed random deletion cost.

    Costs follow a truncated Pareto-like distribution — most facts stay
    cheap (cost 1 or 2) while a heavy tail reaches ``max_cost`` — the
    regime where the weighted optimum genuinely diverges from the
    cardinality optimum (a cheap hitting set routes *around* expensive
    tuples).  Exogenous relations are left untouched: their facts can
    never be charged, so costs there would be dead weight.

    Deterministic for a fixed ``seed``: relations are visited in sorted
    name order and facts in :meth:`DBTuple.sort_key` order, so the same
    database and seed always produce the same cost map.  Mutates and
    returns ``db``.
    """
    if max_cost < 1:
        raise ValueError(f"max_cost must be >= 1, got {max_cost}")
    if rng is None:
        rng = random.Random(seed)
    for name in sorted(db.relations):
        rel = db.relations[name]
        if rel.exogenous:
            continue
        for fact in sorted(rel, key=DBTuple.sort_key):
            cost = min(max_cost, int(rng.paretovariate(alpha)))
            rel.set_cost(fact, cost)
    return db


def weighted_hard_scaling_workload(
    n_tuples: int = 2000,
    n_databases: int = 2,
    seed: int = 0,
    query_names: Sequence[str] = HARD_SCALING_QUERIES,
    max_cost: int = 16,
) -> List[Tuple[Database, ConjunctiveQuery]]:
    """:func:`hard_scaling_workload` with skewed per-tuple costs.

    The intended input of ``solve_batch(pairs, mode="approx",
    weighted=True)`` and the ``bench_e20_weighted`` suite; the cost
    seed is derived from ``seed`` so the unweighted and weighted
    workloads share their underlying databases.
    """
    pairs = hard_scaling_workload(
        n_tuples=n_tuples, n_databases=n_databases, seed=seed,
        query_names=query_names,
    )
    seen: Dict[int, None] = {}
    for db, _ in pairs:
        if id(db) not in seen:
            seen[id(db)] = None
            assign_skewed_costs(
                db, seed=seed + 7919 * (len(seen)), max_cost=max_cost
            )
    return pairs


def hard_scaling_workload(
    n_tuples: int = 2000,
    n_databases: int = 2,
    seed: int = 0,
    query_names: Sequence[str] = HARD_SCALING_QUERIES,
) -> List[Tuple[Database, ConjunctiveQuery]]:
    """(database, query) pairs exact solving cannot touch.

    The cross product of :data:`HARD_SCALING_QUERIES` (or any other zoo
    names) with ``n_databases`` shared :func:`large_random_database`
    instances of ``n_tuples`` tuples per binary relation — the intended
    input of ``solve_batch(pairs, mode="approx")`` and the
    ``bench_e15_approx`` suite.
    """
    from repro.query.zoo import ALL_QUERIES

    queries = [ALL_QUERIES[name] for name in query_names]
    dbs = [
        large_random_database(queries, n_tuples=n_tuples, seed=seed + i)
        for i in range(n_databases)
    ]
    return [(db, q) for db in dbs for q in queries]
