"""Random database generation matched to a query's vocabulary.

Used throughout the tests and benchmarks to cross-validate the
polynomial-time solvers against the exact ones: generate a random
database over the query's relations, check both solvers agree.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.db.database import Database
from repro.query.cq import ConjunctiveQuery


def random_unary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill unary relation ``name`` with each constant independently."""
    for v in range(domain_size):
        if rng.random() < density:
            db.add(name, v)


def random_binary_relation(
    db: Database, name: str, domain_size: int, density: float, rng: random.Random
) -> None:
    """Fill binary relation ``name`` with each ordered pair independently."""
    for u in range(domain_size):
        for v in range(domain_size):
            if rng.random() < density:
                db.add(name, u, v)


def _fill_relation(
    db: Database,
    name: str,
    arity: int,
    domain_size: int,
    density: float,
    rng: random.Random,
) -> None:
    """Fill one (already declared) relation at the given density.

    Relations of arity >= 3 are filled by sampling
    ``density * domain_size**2`` random vectors, keeping sizes
    comparable with the binary case.
    """
    if arity == 1:
        random_unary_relation(db, name, domain_size, density, rng)
    elif arity == 2:
        random_binary_relation(db, name, domain_size, density, rng)
    else:
        for _ in range(int(density * domain_size ** 2)):
            db.add(name, *(rng.randrange(domain_size) for _ in range(arity)))


def random_database_for_queries(
    queries: Sequence[ConjunctiveQuery],
    domain_size: int = 6,
    density: float = 0.35,
    seed: Optional[int] = None,
    densities: Optional[Dict[str, float]] = None,
) -> Database:
    """A random database over the *union* vocabulary of several queries.

    Batch workloads solve many queries over the same database; this
    declares every relation any query mentions (so the same instance is
    well-formed for all of them) and fills each at the given density.
    Raises ``ValueError`` if two queries disagree on a relation's arity
    or exogenous flag.
    """
    arities: Dict[str, int] = {}
    flags: Dict[str, bool] = {}
    for q in queries:
        for rel, arity in q.relation_arities().items():
            if arities.setdefault(rel, arity) != arity:
                raise ValueError(f"conflicting arities for relation {rel!r}")
        for rel, flag in q.relation_flags().items():
            if flags.setdefault(rel, flag) != flag:
                raise ValueError(f"conflicting exogenous flags for {rel!r}")
    rng = random.Random(seed)
    db = Database()
    for rel_name in sorted(arities):
        db.declare(rel_name, arities[rel_name], exogenous=flags[rel_name])
        d = (densities or {}).get(rel_name, density)
        _fill_relation(db, rel_name, arities[rel_name], domain_size, d, rng)
    return db


def random_database_for_query(
    query: ConjunctiveQuery,
    domain_size: int = 6,
    density: float = 0.35,
    seed: Optional[int] = None,
    densities: Optional[Dict[str, float]] = None,
) -> Database:
    """A random database over the query's vocabulary.

    Every relation of the query is declared (with the query's exogenous
    flag) and filled independently at the given density; ``densities``
    overrides per relation.  Relations of arity >= 3 are filled by
    sampling ``density * domain_size**2`` random vectors, keeping sizes
    comparable with the binary case.
    """
    rng = random.Random(seed)
    db = Database()
    flags = query.relation_flags()
    for rel_name, arity in sorted(query.relation_arities().items()):
        db.declare(rel_name, arity, exogenous=flags[rel_name])
        d = (densities or {}).get(rel_name, density)
        _fill_relation(db, rel_name, arity, domain_size, d, rng)
    return db
