"""Random conjunctive-query generation.

Used by property tests to exercise the structural machinery on queries
beyond the paper's zoo: random binary ssj queries (the paper's
fragment) and random sj-free queries.  Generators are seeded and
deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.query.atom import Atom
from repro.query.cq import ConjunctiveQuery

_VARS = ["x", "y", "z", "w", "u", "v"]


def random_ssj_binary_cq(
    seed: Optional[int] = None,
    max_r_atoms: int = 3,
    max_extra_atoms: int = 3,
    num_vars: int = 4,
    allow_exogenous: bool = True,
    rng: Optional[random.Random] = None,
) -> ConjunctiveQuery:
    """A random single-self-join binary CQ over variables x, y, z, ...

    The repeated relation is always ``R`` (binary); extra atoms draw
    fresh unary/binary relation names (``A``, ``B``, ...) so the query
    stays ssj.  Generated queries may be disconnected or non-minimal —
    callers exercising Theorem 37 should minimize/normalize first, as
    the paper prescribes.  ``rng`` overrides ``seed`` with a
    caller-owned generator; module-global ``random`` state is never
    consumed either way.
    """
    if rng is None:
        rng = random.Random(seed)
    variables = _VARS[:num_vars]
    atoms: List[Atom] = []
    n_r = rng.randint(1, max_r_atoms)
    for _ in range(n_r):
        args = (rng.choice(variables), rng.choice(variables))
        atoms.append(Atom("R", args))
    extra_names = iter("ABCDEFG")
    for _ in range(rng.randint(0, max_extra_atoms)):
        name = next(extra_names)
        exogenous = allow_exogenous and rng.random() < 0.25
        if rng.random() < 0.5:
            atoms.append(Atom(name, (rng.choice(variables),), exogenous=exogenous))
        else:
            atoms.append(
                Atom(
                    name,
                    (rng.choice(variables), rng.choice(variables)),
                    exogenous=exogenous,
                )
            )
    return ConjunctiveQuery(atoms, name=f"rand_ssj_{seed}")


def random_three_occurrence_cq(
    seed: Optional[int] = None,
    max_extra_atoms: int = 2,
    num_vars: int = 3,
    allow_exogenous: bool = True,
    rng: Optional[random.Random] = None,
) -> ConjunctiveQuery:
    """A random binary CQ whose self-joined relation occurs exactly
    three times — the frontier fragment of Section 8 / Conjecture 49.

    Two-occurrence queries are fully classified (Theorem 43); the open
    queries of the paper (``q_AS3conf`` and the Conjecture 49 families)
    all have three ``R``-occurrences, so the standing IJP sweep
    (:mod:`repro.ijp.sweep`) samples this shape.  The three ``R`` atoms
    get distinct argument pairs (repeating an atom would just duplicate
    it), and extra unary/binary atoms draw fresh relation names.
    ``rng`` overrides ``seed`` with a caller-owned generator — pass one
    shared ``random.Random`` to make a whole sweep reproducible from a
    single seed; module-global ``random`` state is never consumed.
    """
    if rng is None:
        rng = random.Random(seed)
    variables = _VARS[:num_vars]
    arg_pairs = [(u, v) for u in variables for v in variables]
    atoms: List[Atom] = [
        Atom("R", args) for args in sorted(rng.sample(arg_pairs, 3))
    ]
    extra_names = iter("ABCDEFG")
    for _ in range(rng.randint(0, max_extra_atoms)):
        name = next(extra_names)
        exogenous = allow_exogenous and rng.random() < 0.25
        if rng.random() < 0.5:
            atoms.append(Atom(name, (rng.choice(variables),), exogenous=exogenous))
        else:
            atoms.append(
                Atom(
                    name,
                    (rng.choice(variables), rng.choice(variables)),
                    exogenous=exogenous,
                )
            )
    return ConjunctiveQuery(atoms, name=f"rand_3occ_{seed}")


def random_sjfree_cq(
    seed: Optional[int] = None,
    max_atoms: int = 4,
    num_vars: int = 4,
    rng: Optional[random.Random] = None,
) -> ConjunctiveQuery:
    """A random self-join-free CQ with unary/binary relations.

    ``rng`` overrides ``seed`` with a caller-owned generator.
    """
    if rng is None:
        rng = random.Random(seed)
    variables = _VARS[:num_vars]
    atoms: List[Atom] = []
    names = iter("RSTUVW")
    for _ in range(rng.randint(1, max_atoms)):
        name = next(names)
        if rng.random() < 0.4:
            atoms.append(Atom(name, (rng.choice(variables),)))
        else:
            atoms.append(
                Atom(name, (rng.choice(variables), rng.choice(variables)))
            )
    return ConjunctiveQuery(atoms, name=f"rand_sjfree_{seed}")
