"""Randomized insert/delete streams for the incremental engine.

The dynamic-workload counterpart of :mod:`repro.workloads.random_db`:
an initial database over a query set's vocabulary plus a reproducible
stream of single-tuple updates, the input shape of
:class:`repro.incremental.IncrementalSession` (and of the metamorphic
update-law tests — the single-tuple delta laws around Definition 1:
rho is monotone under insertion, and one endogenous insert/delete
moves it by at most 1).

Determinism contract: given the same ``seed`` (or the same
pre-positioned ``rng``), :func:`update_stream` returns the same initial
database and the same update list — present facts are sampled from a
sorted order, never from set iteration order, so streams reproduce
across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from bisect import insort
from typing import List, Optional, Sequence, Tuple, Union

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.incremental import Update
from repro.query.cq import ConjunctiveQuery
from repro.workloads.random_db import (
    _union_vocabulary,
    random_database_for_queries,
)

# How many fresh-row draws an insert attempts before falling back to a
# delete (the domain may be saturated for some relation).
_INSERT_ATTEMPTS = 64


def update_stream(
    queries: Union[ConjunctiveQuery, Sequence[ConjunctiveQuery]],
    n_ops: int = 100,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    domain_size: int = 6,
    density: float = 0.3,
    insert_fraction: float = 0.55,
    initial: Optional[Database] = None,
) -> Tuple[Database, List[Update]]:
    """An initial database plus ``n_ops`` valid single-tuple updates.

    Every insert adds a fact not currently present and every delete
    removes a present one (tracked across the stream), so the ops apply
    cleanly in order to the returned database — to an
    :class:`~repro.incremental.IncrementalSession` via ``apply``, or to
    a plain copy via :func:`apply_update` for recompute baselines.

    ``queries`` fixes the vocabulary (relations, arities, exogenous
    flags — the union across the set, as in
    :func:`~repro.workloads.random_db.random_database_for_queries`);
    ``initial`` substitutes a caller-built starting instance over the
    same vocabulary.  ``insert_fraction`` steers the drift: above 0.5
    the database grows on average, below it shrinks.  Pass ``rng`` to
    share one generator across several calls; otherwise ``seed`` feeds
    a private ``random.Random`` and module-global state is never
    touched.
    """
    queries = (
        [queries] if isinstance(queries, ConjunctiveQuery) else list(queries)
    )
    if rng is None:
        rng = random.Random(seed)
    arities, flags = _union_vocabulary(queries)
    if initial is None:
        db = random_database_for_queries(
            queries, domain_size=domain_size, density=density, rng=rng
        )
    else:
        db = initial.copy()
        for name in sorted(arities):
            db.declare(name, arities[name], exogenous=flags[name])

    rel_names = sorted(arities)
    present: List[DBTuple] = sorted(db)
    present_set = set(present)
    ops: List[Update] = []
    while len(ops) < n_ops:
        do_insert = not present or rng.random() < insert_fraction
        fact: Optional[DBTuple] = None
        if do_insert:
            for _attempt in range(_INSERT_ATTEMPTS):
                name = rel_names[rng.randrange(len(rel_names))]
                row = tuple(
                    rng.randrange(domain_size)
                    for _ in range(arities[name])
                )
                candidate = DBTuple(name, row)
                if candidate not in present_set:
                    fact = candidate
                    break
            if fact is None:
                do_insert = False  # vocabulary saturated: delete instead
        if do_insert and fact is not None:
            ops.append(Update("insert", fact))
            present_set.add(fact)
            insort(present, fact)
        else:
            # present is non-empty here: an empty database forces
            # do_insert, and with nothing present every insert draw is
            # fresh, so the saturation fallback cannot land here empty.
            fact = present.pop(rng.randrange(len(present)))
            present_set.discard(fact)
            ops.append(Update("delete", fact))
    return db, ops


def apply_update(database: Database, update: Update) -> None:
    """Apply one stream update to a plain :class:`Database` in place.

    The recompute-baseline twin of
    :meth:`~repro.incremental.IncrementalSession.apply`; unlike
    :meth:`Database.minus` it deletes exogenous facts too (stream
    updates are database updates, not contingency deletions).
    """
    if update.op == "insert":
        database.add(update.fact.relation, *update.fact.values)
    else:
        rel = database.relations.get(update.fact.relation)
        if rel is None or update.fact not in rel:
            raise ValueError(f"{update.fact!r} is not in the database")
        rel.discard(update.fact)
