"""Shared fixtures for the test suite."""

import pytest

from repro.db import Database


@pytest.fixture
def chain_db():
    """The Section 2 example database for q_chain:
    {t1: R(1,2), t2: R(2,3), t3: R(3,3)}."""
    db = Database()
    db.add_all("R", [(1, 2), (2, 3), (3, 3)])
    return db


@pytest.fixture
def example_11_db():
    """The Example 11 database showing sj-free domination fails."""
    db = Database()
    db.add_all("A", [(1,), (5,)])
    db.add_all("R", [(1, 2), (2, 3), (3, 1), (5, 1), (2, 5)])
    return db
