"""Shared fixtures for the test suite.

Setting ``REPRO_TEST_WORKERS=N`` (the CI parallel matrix leg does) maps
to ``REPRO_WORKERS``, which flips the default of every
``solve_batch``/``solve_many`` call in the suite to N-worker pool
execution — so the whole tier-1 suite doubles as a serial/parallel
equivalence check.

Hypothesis effort is profile-driven: the ``default`` profile keeps the
property suites fast for tier-1 runs, and the ``ci`` profile (selected
with ``REPRO_HYPOTHESIS_PROFILE=ci``, or the standard
``HYPOTHESIS_PROFILE``) raises ``max_examples`` and prints reproduction
blobs/seeds on failure — the CI ``tests-properties`` leg runs under it.
Test modules must not pin ``max_examples`` themselves, or the profile
cannot deepen them.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
_HYPOTHESIS_PROFILE = os.environ.get(
    "REPRO_HYPOTHESIS_PROFILE", os.environ.get("HYPOTHESIS_PROFILE", "default")
)
settings.load_profile(_HYPOTHESIS_PROFILE)


def pytest_report_header(config):
    active = settings()
    return (
        f"hypothesis profile: {_HYPOTHESIS_PROFILE} "
        f"(max_examples={active.max_examples}, "
        f"print_blob={active.print_blob})"
    )


from repro.db import Database

_test_workers = os.environ.get("REPRO_TEST_WORKERS")
if _test_workers:
    os.environ.setdefault("REPRO_WORKERS", _test_workers)


@pytest.fixture
def chain_db():
    """The Section 2 example database for q_chain:
    {t1: R(1,2), t2: R(2,3), t3: R(3,3)}."""
    db = Database()
    db.add_all("R", [(1, 2), (2, 3), (3, 3)])
    return db


@pytest.fixture
def example_11_db():
    """The Example 11 database showing sj-free domination fails."""
    db = Database()
    db.add_all("A", [(1,), (5,)])
    db.add_all("R", [(1, 2), (2, 3), (3, 1), (5, 1), (2, 5)])
    return db
