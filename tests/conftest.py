"""Shared fixtures for the test suite.

Setting ``REPRO_TEST_WORKERS=N`` (the CI parallel matrix leg does) maps
to ``REPRO_WORKERS``, which flips the default of every
``solve_batch``/``solve_many`` call in the suite to N-worker pool
execution — so the whole tier-1 suite doubles as a serial/parallel
equivalence check.
"""

import os

import pytest

from repro.db import Database

_test_workers = os.environ.get("REPRO_TEST_WORKERS")
if _test_workers:
    os.environ.setdefault("REPRO_WORKERS", _test_workers)


@pytest.fixture
def chain_db():
    """The Section 2 example database for q_chain:
    {t1: R(1,2), t2: R(2,3), t3: R(3,3)}."""
    db = Database()
    db.add_all("R", [(1, 2), (2, 3), (3, 3)])
    return db


@pytest.fixture
def example_11_db():
    """The Example 11 database showing sj-free domination fails."""
    db = Database()
    db.add_all("A", [(1,), (5,)])
    db.add_all("R", [(1, 2), (2, 3), (3, 1), (5, 1), (2, 5)])
    return db
