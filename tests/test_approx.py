"""Property tests for the certified approximate/anytime tier.

The contract under test (repro.resilience.approx): for every
(query, database) pair the bounded solvers return an interval
``lb <= rho(q, D) <= ub`` with a feasible contingency set of size
``ub``; the greedy upper bound respects its harmonic-ratio guarantee;
and anytime solving with an unlimited budget degrades into exact
solving (same value).
"""

import math

import pytest

from repro.core import solve_batch
from repro.query.zoo import ALL_QUERIES
from repro.resilience import (
    BoundedResilienceResult,
    Budget,
    greedy_hitting_set,
    greedy_ratio_bound,
    resilience_anytime,
    resilience_bounds,
    resilience_exact,
    solve,
)
from repro.resilience.exact import is_contingency_set
from repro.witness import WitnessStructure, clear_witness_cache
from repro.workloads import (
    hard_scaling_workload,
    large_random_database,
    random_database_for_queries,
)

# The dispatch-diverse shared-vocabulary mix used across the suites:
# NP-hard exact cases, bespoke specials, and flow queries.
SHARED_VOCAB_QUERIES = (
    "q_chain",
    "q_conf",
    "q_perm",
    "q_Aperm",
    "q_ACconf",
    "q_z3",
    "q_sj1_rats",
    "q_a_chain",
)


def _workload(n_dbs, domain_size=4, density=0.45):
    queries = [ALL_QUERIES[n] for n in SHARED_VOCAB_QUERIES]
    dbs = [
        random_database_for_queries(
            queries, domain_size=domain_size, density=density, seed=seed
        )
        for seed in range(n_dbs)
    ]
    return [(db, q) for db in dbs for q in queries]


class TestCertifiedContainment:
    def test_interval_contains_exact_on_200_randomized_pairs(self):
        """Acceptance: >= 200 pairs, every interval contains the exact
        value, and every upper bound is witnessed by a real contingency
        set."""
        pairs = _workload(25)
        assert len(pairs) >= 200
        clear_witness_cache()
        for db, q in pairs:
            exact = solve(db, q)
            bounded = solve(db, q, mode="approx")
            assert isinstance(bounded, BoundedResilienceResult)
            assert bounded.lower_bound <= exact.value <= bounded.upper_bound, (
                f"{q.name}: exact {exact.value} outside {bounded.interval}"
            )
            if exact.value:
                assert len(bounded.contingency_set) == bounded.upper_bound
                assert is_contingency_set(db, q, set(bounded.contingency_set))

    def test_dispatchable_ptime_pairs_come_back_closed(self):
        """Bespoke/flow queries stay exact in bounded modes."""
        q = ALL_QUERIES["q_perm"]
        pairs = _workload(5)
        for db, _ in pairs:
            bounded = solve(db, q, mode="approx")
            assert bounded.is_exact
            assert bounded.value == solve(db, q).value

    def test_bounds_are_deterministic(self):
        pairs = _workload(3)
        for db, q in pairs:
            first = solve(db, q, mode="approx")
            second = solve(db, q, mode="approx")
            assert first.interval == second.interval
            assert first.contingency_set == second.contingency_set


class TestGreedyGuarantee:
    def test_greedy_ratio_within_harmonic_bound(self):
        """len(greedy) <= H(d) * opt on the reduced structure, d = max
        number of witnesses a single tuple hits."""
        checked = 0
        for db, q in _workload(8) + _workload(8, domain_size=5, density=0.5):
            ws = WitnessStructure.build(db, q)
            if not ws.satisfied or not ws.sets:
                continue
            opt_reduced = resilience_exact(db, q, structure=ws).value - len(
                ws.forced_ids
            )
            greedy = greedy_hitting_set(ws.sets)
            ratio = greedy_ratio_bound(ws.sets)
            assert len(greedy) <= ratio * opt_reduced + 1e-9, (
                f"{q.name}: greedy {len(greedy)} > H(d)*opt = "
                f"{ratio:.3f}*{opt_reduced}"
            )
            checked += 1
        assert checked >= 20

    def test_ratio_bound_is_harmonic_number(self):
        sets = [frozenset({0, 1}), frozenset({0, 2}), frozenset({0, 3})]
        # tuple 0 hits 3 sets -> H(3)
        assert greedy_ratio_bound(sets) == pytest.approx(1 + 1 / 2 + 1 / 3)
        assert greedy_ratio_bound([]) == 1.0


class TestAnytime:
    def test_unlimited_budget_equals_exact_on_48_pairs(self):
        """Acceptance: mode='anytime' with unlimited budget is exact."""
        pairs = _workload(6)
        for db, q in pairs:
            exact = solve(db, q)
            anytime = solve(db, q, mode="anytime")
            assert anytime.is_exact, f"{q.name}: interval {anytime.interval}"
            assert anytime.value == exact.value

    def test_zero_node_budget_still_certifies(self):
        """Even a fully exhausted budget returns a valid interval."""
        for db, q in _workload(4):
            exact = solve(db, q)
            bounded = solve(
                db, q, mode="anytime", budget=Budget(node_limit=0)
            )
            assert bounded.lower_bound <= exact.value <= bounded.upper_bound

    def test_budget_coercion(self):
        assert Budget.coerce(None).unlimited
        assert Budget.coerce(2.5).time_limit == 2.5
        assert Budget.coerce(Budget(node_limit=7)).node_limit == 7
        with pytest.raises(TypeError):
            Budget.coerce("fast")

    def test_anytime_never_looser_than_approx(self):
        for db, q in _workload(3):
            approx = resilience_bounds(db, q)
            anytime = resilience_anytime(db, q, budget=Budget(node_limit=50))
            assert anytime.lower_bound >= approx.lower_bound
            assert anytime.upper_bound <= approx.upper_bound


class TestSolverIntegration:
    def test_mode_validation(self):
        db, q = _workload(1)[0]
        with pytest.raises(ValueError):
            solve(db, q, mode="magic")
        with pytest.raises(ValueError):
            solve(db, q, method="exact", mode="approx")

    def test_result_invariants(self):
        with pytest.raises(ValueError):
            BoundedResilienceResult(3, 2)
        r = BoundedResilienceResult(1, 3)
        assert r.gap == 2 and not r.is_exact and r.value == 3
        assert r.interval == (1, 3)

    def test_solve_batch_bounded_mode(self):
        pairs = _workload(4)
        clear_witness_cache()
        batch = solve_batch(pairs, mode="approx")
        assert batch.stats.mode == "approx"
        assert batch.stats.intervals_exact + sum(
            1 for r in batch if not r.is_exact
        ) == len(pairs)
        assert batch.stats.gap_total == sum(r.gap for r in batch)
        for (db, q), bounded in zip(pairs, batch):
            exact = solve(db, q)
            assert bounded.lower_bound <= exact.value <= bounded.upper_bound
        assert any(
            "certified intervals" in line
            for line in batch.stats.summary_lines()
        )

    def test_solve_batch_anytime_unlimited_matches_exact_batch(self):
        pairs = _workload(3)
        exact_values = solve_batch(pairs).values()
        anytime = solve_batch(pairs, mode="anytime")
        assert anytime.values() == exact_values
        assert anytime.intervals() == [(v, v) for v in exact_values]

    def test_unsatisfied_pair_is_zero_interval(self):
        q = ALL_QUERIES["q_chain"]
        db = random_database_for_queries([q], domain_size=3, density=0.0, seed=0)
        bounded = solve(db, q, mode="approx")
        assert bounded.interval == (0, 0)
        assert bounded.method == "unsatisfied"


class TestScalingWorkload:
    def test_large_database_hits_tuple_target(self):
        queries = [ALL_QUERIES[n] for n in ("q_chain", "q_a_chain")]
        db = large_random_database(queries, n_tuples=1500, seed=3)
        assert len(db.relations["R"].tuples) == 1500
        assert all(len(t.values) == 1 for t in db.relations["A"].tuples)

    def test_scaling_workload_solvable_by_approx_only(self):
        """The headline capability: certified intervals on instances
        with thousands of tuples, no exact solve involved."""
        pairs = hard_scaling_workload(
            n_tuples=600, n_databases=1, seed=0,
            query_names=("q_chain", "q_a_chain"),
        )
        clear_witness_cache()
        batch = solve_batch(pairs, mode="approx")
        for (db, q), bounded in zip(pairs, batch):
            assert bounded.lower_bound <= bounded.upper_bound
            if bounded.upper_bound:
                assert is_contingency_set(db, q, set(bounded.contingency_set))
            # The intervals must be informative, not [0, n].
            assert bounded.lower_bound > 0
            assert bounded.upper_bound < len(db.relations["R"].tuples)
