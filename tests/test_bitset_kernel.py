"""The bitset kernel against its frozenset reference oracles.

Every stage of the vectorized hitting-set kernel — superset
elimination, unit forcing, dominated-tuple elimination (the Section 2
kernelization), component decomposition, and the branch-and-bound
search shared by the exact and anytime tiers — must be *bit-identical*
to the reference implementation it replaced: same sets in the same
deterministic order, same forced ids, same statistics, same incumbents
and certified bounds under any node budget.
"""

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, strategies as st

from repro.resilience.approx import (
    _BudgetMeter,
    _budgeted_bnb,
    _budgeted_bnb_bitset,
    _budgeted_bnb_reference,
    greedy_hitting_set,
)
from repro.resilience.solver import solve
from repro.resilience.types import Budget
from repro.witness import clear_witness_cache
from repro.witness.structure import (
    ReductionStats,
    WitnessStructure,
    _decompose_matrix,
    _decompose_reference,
    _dominated_matrix,
    _dominated_tuples,
    _kernel_backend,
    _matrix_from_sets,
    _minimal_matrix,
    _minimal_sets,
    _reduce,
    _reduce_matrix,
    _reduce_reference,
    _sets_from_matrix,
)
from repro.workloads import random_database_for_query, random_ssj_binary_cq


@contextmanager
def _env(**overrides):
    old = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in old.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# Random hitting-set instances: ids are drawn sparse on purpose so the
# matrix padding/compression logic sees gaps, not just dense ranges.
set_systems = st.integers(min_value=0, max_value=10**6).map(
    lambda seed: _random_sets(seed)
)


def _random_sets(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 40)
    m = rng.randint(1, 80)
    ids = rng.sample(range(3 * n + 1), n)
    return [
        frozenset(rng.sample(ids, rng.randint(1, min(n, rng.randint(1, 6)))))
        for _ in range(m)
    ]


class TestReductionStages:
    @given(set_systems)
    def test_minimal_matrix_matches_reference_order(self, sets):
        """Superset elimination: same kept sets in the same
        (len, sorted elements) output order."""
        reference = _minimal_sets(list(sets))
        mat, pad = _matrix_from_sets(sets)
        vectorized = _sets_from_matrix(_minimal_matrix(mat, pad), pad)
        assert vectorized == reference

    @given(set_systems)
    def test_dominated_matrix_matches_reference(self, sets):
        """Dominated-tuple elimination picks exactly the same tuples."""
        distinct = sorted(set(sets), key=lambda s: (len(s), sorted(s)))
        reference = _dominated_tuples(distinct)
        mat, pad = _matrix_from_sets(distinct)
        assert _dominated_matrix(mat, pad) == reference

    @given(set_systems)
    def test_reduce_matrix_matches_reference_fixpoint(self, sets):
        """The full stages 1–3 fixpoint: sets, order, forced ids,
        domination count, and round/minimality statistics all equal."""
        ref_stats = ReductionStats()
        ref_sets, ref_forced, ref_dom = _reduce_reference(
            list(sets), ref_stats
        )
        bit_stats = ReductionStats()
        mat, pad = _matrix_from_sets(sets)
        out, forced, dom = _reduce_matrix(mat, pad, bit_stats)
        assert _sets_from_matrix(out, pad) == ref_sets
        assert frozenset(forced) == ref_forced
        assert dom == ref_dom
        assert bit_stats.rounds == ref_stats.rounds
        assert bit_stats.witnesses_minimal == ref_stats.witnesses_minimal

    @given(set_systems)
    def test_reduce_dispatcher_matches_reference(self, sets):
        """The public ``_reduce`` (threshold dispatch included) is
        indistinguishable from the reference."""
        ref_stats = ReductionStats()
        reference = _reduce_reference(list(sets), ref_stats)
        got_stats = ReductionStats()
        got = _reduce(list(sets), got_stats)
        assert got == reference
        assert (got_stats.rounds, got_stats.witnesses_minimal) == (
            ref_stats.rounds,
            ref_stats.witnesses_minimal,
        )

    @given(set_systems)
    def test_decompose_matrix_matches_reference(self, sets):
        """Connected components: same members, same sets, same order."""
        assert _decompose_matrix(list(sets)) == _decompose_reference(sets)


class TestBudgetedBnB:
    @given(set_systems, st.integers(min_value=0, max_value=200))
    def test_bitset_search_matches_reference_under_budgets(
        self, sets, node_limit
    ):
        """Same incumbent set, certified lower bound, and completion
        flag for unlimited and node-budgeted searches (identical node
        accounting — the searches expand the same tree)."""
        seed = greedy_hitting_set(sets)
        universe = sorted({t for s in sets for t in s})
        for budget in (Budget(), Budget(node_limit=node_limit)):
            reference = _budgeted_bnb_reference(
                sets, set(seed), _BudgetMeter(budget)
            )
            bitset = _budgeted_bnb_bitset(
                sets, set(seed), _BudgetMeter(budget), universe
            )
            assert bitset == reference

    @given(set_systems)
    def test_dispatcher_matches_reference(self, sets):
        seed = greedy_hitting_set(sets)
        reference = _budgeted_bnb_reference(
            sets, set(seed), _BudgetMeter(Budget())
        )
        assert _budgeted_bnb(sets, set(seed), _BudgetMeter(Budget())) == reference


class TestEndToEnd:
    def _instance(self, seed):
        rng = random.Random(seed)
        query = random_ssj_binary_cq(rng=rng)
        database = random_database_for_query(
            query,
            domain_size=rng.randint(3, 6),
            density=rng.uniform(0.2, 0.6),
            rng=rng,
        )
        return database, query

    def test_structures_identical_across_kernel_backends(self):
        for seed in range(12):
            database, query = self._instance(seed)
            built = {}
            for backend in ("reference", "bitset"):
                with _env(REPRO_KERNEL_BACKEND=backend):
                    try:
                        built[backend] = WitnessStructure.build(database, query)
                    except Exception as exc:
                        built[backend] = type(exc)
            ref, bit = built["reference"], built["bitset"]
            if isinstance(ref, type) or isinstance(bit, type):
                assert ref == bit
                continue
            assert bit.sets == ref.sets
            assert bit.forced_ids == ref.forced_ids
            assert bit.universe == ref.universe
            assert [(c.tuple_ids, c.sets) for c in bit.components] == [
                (c.tuple_ids, c.sets) for c in ref.components
            ]
            assert (
                bit.stats.rounds,
                bit.stats.witnesses_minimal,
                bit.stats.forced_tuples,
                bit.stats.dominated_tuples,
                bit.stats.components,
            ) == (
                ref.stats.rounds,
                ref.stats.witnesses_minimal,
                ref.stats.forced_tuples,
                ref.stats.dominated_tuples,
                ref.stats.components,
            )

    @pytest.mark.parametrize("mode", ["exact", "approx", "anytime"])
    def test_solver_answers_identical_across_kernel_backends(self, mode):
        """Values, contingency sets, intervals, and method names equal
        for both kernels in all three modes (budgeted anytime too)."""
        budget = Budget(node_limit=50) if mode == "anytime" else None
        for seed in range(10):
            database, query = self._instance(seed)
            answers = {}
            for backend in ("reference", "bitset"):
                with _env(REPRO_KERNEL_BACKEND=backend):
                    clear_witness_cache()
                    try:
                        result = solve(database, query, mode=mode, budget=budget)
                    except Exception as exc:
                        answers[backend] = type(exc)
                        continue
                    if mode == "exact":
                        answers[backend] = (
                            result.value,
                            result.contingency_set,
                            result.method,
                        )
                    else:
                        answers[backend] = (
                            result.interval,
                            result.contingency_set,
                            result.method,
                        )
            clear_witness_cache()
            assert answers["reference"] == answers["bitset"], seed

    def test_kernel_backend_default_and_validation(self):
        with _env(REPRO_KERNEL_BACKEND=None):
            assert _kernel_backend() == "bitset"
        with _env(REPRO_KERNEL_BACKEND="reference"):
            assert _kernel_backend() == "reference"
        with _env(REPRO_KERNEL_BACKEND="typo"):
            with pytest.raises(ValueError):
                _kernel_backend()
