"""Cache-key stability and canonical-form memoization.

Two regression suites pinned against the same invariants:

* **Golden keys** — the streaming-digest rewrite of
  ``pair_cache_key``/``component_cache_key`` (the SHA-256 is now fed
  segment by segment from the memoized ``Database.canonical_text()``
  instead of one concatenated ``material`` string) must produce keys
  bit-for-bit identical to the pre-rewrite implementation, or every
  persisted result-cache entry silently invalidates.  The hexdigests
  below were captured from the original implementation and are the
  authoritative values.

* **Memoization epochs** — ``Database.canonical_form()`` (and
  ``canonical_text``/``content_digest``) must materialize exactly once
  per mutation epoch: repeat hash/equality lookups reuse the memo, and
  any mutation (``add``/``discard``/``set_cost``/exogenous flip)
  invalidates it.
"""

import pytest

from repro.db.database import Database
from repro.db.tuples import DBTuple
from repro.query.zoo import ALL_QUERIES
from repro.resilience.types import Budget
from repro.witness.cache import (
    _canonical_pair_text,
    component_cache_key,
    pair_cache_key,
)


def _instance_a():
    db = Database()
    for u, v in [(1, 2), (2, 3), (3, 1), (2, 2), ("a", 1)]:
        db.add("R", u, v)
    db.add("A", 1)
    db.add("A", "a")
    db.declare("H", 2, exogenous=True)
    db.add("H", 1, 3)
    return db, ALL_QUERIES["q_chain"]


def _instance_b():
    db = Database()
    db.add("R", 1, 2, cost=5)
    db.add("R", 2, 1)
    db.add("A", 1)
    db.set_cost(DBTuple("R", (2, 1)), 3)
    return db, ALL_QUERIES["q_Aperm"]


class TestGoldenPairKeys:
    """Keys captured from the pre-streaming implementation."""

    def test_default_parameters(self):
        db, q = _instance_a()
        assert pair_cache_key(db, q) == (
            "c9e46ca8f2aaf0f7d53cbb8704d9f04f69fcaef12db2bcca37dc10f567fa8b1d"
        )

    def test_anytime_with_float_budget(self):
        db, q = _instance_a()
        assert pair_cache_key(db, q, mode="anytime", method=None, budget=2.5) == (
            "f384e69fcbe7c124deccb9516da309db512632e21473a2b5235ca97fee78be8f"
        )

    def test_forced_method(self):
        db, q = _instance_a()
        assert pair_cache_key(db, q, mode="exact", method="flow") == (
            "e8b739177e7c8a3e426884bdb5015bb8149298e3af043b074dfb78b6515420f0"
        )

    def test_budget_object(self):
        db, q = _instance_a()
        key = pair_cache_key(
            db,
            q,
            mode="anytime",
            budget=Budget(time_limit=1.5, node_limit=77),
            weighted=False,
        )
        assert key == (
            "b29c578884f171f0bf2d9b7f64efc463273de9866a9854e3c35875553ef17dbf"
        )

    def test_weighted_instance(self):
        db, q = _instance_b()
        assert pair_cache_key(db, q, weighted=True) == (
            "1bbce872befd38adcc27eb0a51da168a28a669d66ce92dc33918a289295d78b7"
        )
        assert pair_cache_key(db, q, weighted=False) == (
            "9ffd769f7537a7c7537a3583788ed3bb439830ebbdc7a7c54bb71f73f75deced"
        )

    def test_streaming_matches_joined_material(self):
        """Structural cross-check: the streamed digest equals a SHA-256
        over the old one-string material, for every parameter shape."""
        import hashlib

        db, q = _instance_a()
        for kwargs in (
            {},
            {"mode": "anytime", "budget": 2.5},
            {"mode": "exact", "method": "ilp"},
            {"weighted": True},
        ):
            time_limit = node_limit = None
            if kwargs.get("budget") is not None:
                b = Budget.coerce(kwargs["budget"])
                time_limit, node_limit = b.time_limit, b.node_limit
            from repro.witness.cache import CACHE_SCHEMA

            material = "\x1f".join(
                [
                    f"schema={CACHE_SCHEMA}",
                    f"mode={kwargs.get('mode', 'exact')}",
                    f"method={kwargs.get('method')}",
                    f"time_limit={time_limit!r}",
                    f"node_limit={node_limit!r}",
                    f"weighted={bool(kwargs.get('weighted', False))}",
                    _canonical_pair_text(db, q),
                ]
            )
            expected = hashlib.sha256(material.encode()).hexdigest()
            assert pair_cache_key(db, q, **kwargs) == expected


class TestGoldenComponentKeys:
    def test_component_keys(self):
        s1 = frozenset({DBTuple("R", (1, 2)), DBTuple("R", (2, 3))})
        s2 = frozenset({DBTuple("R", (2, 3)), DBTuple("A", (1,))})
        assert component_cache_key([s1, s2], mode="exact", backend="bnb") == (
            "4b331b4b59b800a40dfafc8248d918b854b2ca24bfdf9d65163915d9be2e23d5"
        )
        assert component_cache_key((s2, s1), mode="exact", backend="ilp") == (
            "3b0202186ff225d1680e7665de7d57825c7a73f0f43412f2b55c5169cb6e4777"
        )
        assert component_cache_key([s1], mode="approx", backend=None) == (
            "798331a5af3700c235a269291870a84030152ad676ce6d8cd1dd7fbddbad9f54"
        )

    def test_order_insensitive(self):
        s1 = frozenset({DBTuple("R", (1, 2))})
        s2 = frozenset({DBTuple("A", (1,))})
        assert component_cache_key([s1, s2]) == component_cache_key([s2, s1])


class TestCanonicalFormMemoization:
    def _counting(self, db, monkeypatch):
        calls = {"n": 0}
        original = Database._materialize_canonical_form

        def counted(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(Database, "_materialize_canonical_form", counted)
        return calls

    def test_one_materialization_per_epoch(self, monkeypatch):
        db, _ = _instance_a()
        calls = self._counting(db, monkeypatch)
        for _ in range(5):
            hash(db)
            db.canonical_form()
        assert calls["n"] == 1, "unmutated database re-materialized"

        db.add("R", 9, 9)  # mutation: new epoch
        for _ in range(3):
            db.canonical_form()
        assert calls["n"] == 2

        db.set_cost(DBTuple("R", (9, 9)), 4)  # cost change: new epoch
        db.canonical_form()
        db.canonical_form()
        assert calls["n"] == 3

    def test_noop_mutations_keep_the_epoch(self, monkeypatch):
        db, _ = _instance_a()
        calls = self._counting(db, monkeypatch)
        before = db.content_epoch()
        db.canonical_form()
        db.add("R", 1, 2)  # already present: no-op
        db.relation("R").discard(DBTuple("R", (777, 777)))  # absent: no-op
        db.set_exogenous("H")  # already exogenous: no-op
        assert db.content_epoch() == before
        db.canonical_form()
        assert calls["n"] == 1

    def test_every_mutation_kind_invalidates(self):
        db, _ = _instance_a()
        epochs = [db.content_epoch()]

        db.add("S", 7)  # new relation
        epochs.append(db.content_epoch())
        db.add("S", 8)  # new fact
        epochs.append(db.content_epoch())
        db.relation("S").discard(DBTuple("S", (8,)))  # removal
        epochs.append(db.content_epoch())
        db.set_cost(DBTuple("S", (7,)), 3)  # cost set
        epochs.append(db.content_epoch())
        db.set_cost(DBTuple("S", (7,)), 1)  # cost cleared
        epochs.append(db.content_epoch())
        db.set_exogenous("S")  # flag flip
        epochs.append(db.content_epoch())

        assert len(set(epochs)) == len(epochs), "an effective mutation reused an epoch"

    def test_hash_and_eq_track_content(self):
        db1, _ = _instance_a()
        db2, _ = _instance_a()
        assert db1 == db2 and hash(db1) == hash(db2)
        db2.add("R", 42, 42)
        assert db1 != db2
        db2.relation("R").discard(DBTuple("R", (42, 42)))
        assert db1 == db2 and hash(db1) == hash(db2)

    def test_content_digest_is_stable_and_content_keyed(self):
        db1, _ = _instance_a()
        db2, _ = _instance_a()
        assert db1.content_digest() == db2.content_digest()
        assert len(db1.content_digest()) == 64
        db2.add("R", 5, 5)
        assert db1.content_digest() != db2.content_digest()

    def test_canonical_text_matches_pair_text_db_segment(self):
        db, q = _instance_a()
        pair = _canonical_pair_text(db, q)
        assert pair.startswith(db.canonical_text() + "#")

    def test_copy_does_not_share_memo_state(self):
        db, _ = _instance_a()
        db.canonical_form()
        clone = db.copy()
        clone.add("R", 100, 100)
        assert db != clone
        assert db.canonical_form() != clone.canonical_form()

    def test_minus_sees_fresh_epochs(self):
        db, _ = _instance_b()
        fact = DBTuple("R", (1, 2))
        smaller = db.minus([fact])
        assert fact in db and fact not in smaller
        assert db.content_digest() != smaller.content_digest()
