"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_database, main


@pytest.fixture
def db_file(tmp_path):
    spec = {
        "relations": {
            "R": {"arity": 2, "tuples": [[1, 2], [2, 3], [3, 3]]},
        }
    }
    path = tmp_path / "db.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestLoadDatabase:
    def test_basic(self, db_file):
        db = load_database(db_file)
        assert len(db) == 3
        assert db.relation("R").arity == 2

    def test_exogenous_flag(self, tmp_path):
        spec = {"relations": {"H": {"arity": 1, "exogenous": True, "tuples": [[7]]}}}
        path = tmp_path / "db.json"
        path.write_text(json.dumps(spec))
        db = load_database(str(path))
        assert db.relation("H").exogenous

    def test_arity_mismatch(self, tmp_path):
        spec = {"relations": {"R": {"arity": 2, "tuples": [[1]]}}}
        path = tmp_path / "db.json"
        path.write_text(json.dumps(spec))
        with pytest.raises(ValueError):
            load_database(str(path))

    def test_scalar_rows_for_unary(self, tmp_path):
        spec = {"relations": {"A": {"arity": 1, "tuples": [1, 2]}}}
        path = tmp_path / "db.json"
        path.write_text(json.dumps(spec))
        assert len(load_database(str(path))) == 2


class TestCommands:
    def test_classify_hard(self, capsys):
        assert main(["classify", "R(x,y), R(y,z)"]) == 0
        out = capsys.readouterr().out
        assert "NP-complete" in out and "chain" in out

    def test_classify_easy(self, capsys):
        assert main(["classify", "A(x), R(x,y), R(z,y), C(z)"]) == 0
        out = capsys.readouterr().out
        assert "is P" in out

    def test_solve(self, capsys, db_file):
        assert main(["solve", "R(x,y), R(y,z)", db_file]) == 0
        out = capsys.readouterr().out
        assert "rho = 2" in out

    def test_zoo(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "q_chain" in out and "q_AC3conf" in out

    def test_ijp_found(self, capsys):
        assert main(["ijp", "R(x), S(x,y), R(y)", "--max-joins", "1"]) == 0
        assert "IJP found" in capsys.readouterr().out

    def test_ijp_not_found(self, capsys):
        assert main(["ijp", "R(x,y), R(y,x)", "--budget", "3000"]) == 1
        assert "no IJP" in capsys.readouterr().out

    def test_ijp_sweep(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        assert main(
            [
                "ijp", "sweep",
                "--queries", "q_z7,q_S3cc",
                "--copies", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "q_S3cc" in out and "q_z7" in out
        assert "shards resumed" in out
        payload = json.loads(out_path.read_text())
        assert payload["sweep_schema"] >= 1
        table = {row["query"]: row for row in payload["table"]}
        assert table["q_S3cc"]["first_certificate_k"] == 1
        assert table["q_z7"]["first_certificate_k"] is None
        # Rerun resumes every shard from the checkpoint directory.
        assert main(
            [
                "ijp", "sweep",
                "--queries", "q_z7,q_S3cc",
                "--copies", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "0 shards resumed" not in capsys.readouterr().out

    def test_ijp_sweep_unknown_query(self, capsys):
        assert main(["ijp", "sweep", "--queries", "q_nonsense"]) == 2
        assert "unknown zoo queries" in capsys.readouterr().err

    def test_ijp_sweep_random_queries(self, capsys):
        assert main(
            ["ijp", "sweep", "--queries", "q_z7", "--copies", "1",
             "--random", "2", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rand_3occ_3_0" in out and "rand_3occ_3_1" in out

    def test_bench(self, capsys):
        assert main(
            [
                "bench",
                "--databases", "2",
                "--domain-size", "4",
                "--repeat", "2",
                "--compare",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pairs:" in out
        assert "methods:" in out
        assert "witness structures built" in out
        assert "speedup" in out

    def test_bench_unknown_query(self, capsys):
        assert main(["bench", "--queries", "q_nonsense"]) == 2
        assert "unknown zoo queries" in capsys.readouterr().err

    def test_bench_incompatible_vocabulary(self, capsys):
        # q_chain's binary R clashes with q_vc's unary R.
        assert main(["bench", "--queries", "q_chain,q_vc"]) == 2
        assert "incompatible query set" in capsys.readouterr().err

    def test_bench_custom_queries(self, capsys):
        assert main(
            ["bench", "--queries", "q_chain,q_perm", "--databases", "2",
             "--domain-size", "4"]
        ) == 0
        assert "2 queries" in capsys.readouterr().out

    def test_serve_check(self, capsys):
        """`repro serve --check` binds an ephemeral port, round-trips
        /health over a real socket, and exits cleanly (the CI smoke)."""
        assert main(["serve", "--check", "--port", "0"]) == 0
        out = capsys.readouterr().out
        assert "serving resilience on http://127.0.0.1:" in out
        assert '"status": "ok"' in out
